/// Property tests of the DP kernel hot path (PR: DP-kernel overhaul):
///
///  * the prefix-cost tables agree with sequential accumulation on every
///    (pair, bunch-range) of sampled scenarios;
///  * max_feasible_chunk (binary search over the prefixes) matches a
///    linear scan for arbitrary limits;
///  * the sorted-frontier invariant holds after every bucket the forward
///    sweep line materializes (DpOptions::check_invariants throws on
///    violation);
///  * incumbent pruning and witness warm starts are prune-only: the full
///    RankResult — rank, certificate, placements, witness — is identical
///    with them on or off, across a 200-seed scenario block;
///  * the data-oriented v2 kernel is pinned bitwise against the retained
///    scalar reference path (dp_rank_reference), deterministic effort
///    counters included, over the same seed block and option variants;
///  * one DpKernel reused across every scenario produces results identical
///    to a fresh kernel per solve, and solve_into into dirty storage
///    equals solve into fresh storage.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/dp_rank.hpp"
#include "src/core/instance.hpp"
#include "src/core/selfcheck.hpp"
#include "tests/helpers.hpp"

namespace core = iarank::core;

namespace {

constexpr std::uint64_t kSeeds = 200;

/// Bitwise equality of two rank results, certificate and witness included.
void expect_identical(const core::RankResult& a, const core::RankResult& b) {
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.normalized, b.normalized);  // exact, not NEAR
  EXPECT_EQ(a.all_assigned, b.all_assigned);
  EXPECT_EQ(a.prefix_bunches, b.prefix_bunches);
  EXPECT_EQ(a.refined_wires, b.refined_wires);
  EXPECT_EQ(a.repeater_count, b.repeater_count);
  EXPECT_EQ(a.repeater_area_used, b.repeater_area_used);
  EXPECT_EQ(a.witness.break_pair, b.witness.break_pair);
  EXPECT_EQ(a.witness.first_bunch, b.witness.first_bunch);
  EXPECT_EQ(a.witness.chunk_len, b.witness.chunk_len);
  EXPECT_EQ(a.witness.w_extra, b.witness.w_extra);
  EXPECT_EQ(a.witness.chunk_first, b.witness.chunk_first);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t p = 0; p < a.placements.size(); ++p) {
    EXPECT_EQ(a.placements[p].bunch, b.placements[p].bunch);
    EXPECT_EQ(a.placements[p].pair, b.placements[p].pair);
    EXPECT_EQ(a.placements[p].wires, b.placements[p].wires);
    EXPECT_EQ(a.placements[p].meeting_delay, b.placements[p].meeting_delay);
  }
}

/// expect_identical plus the usage trace and every deterministic DpStats
/// counter. Timings are excluded, and so is arena_bytes: the scalar
/// reference path allocates from the heap and reports 0 there.
void expect_identical_with_stats(const core::RankResult& a,
                                 const core::RankResult& b) {
  expect_identical(a, b);
  ASSERT_EQ(a.usage.size(), b.usage.size());
  for (std::size_t j = 0; j < a.usage.size(); ++j) {
    EXPECT_EQ(a.usage[j].pair_name, b.usage[j].pair_name);
    EXPECT_EQ(a.usage[j].wires_meeting_delay, b.usage[j].wires_meeting_delay);
    EXPECT_EQ(a.usage[j].wires_total, b.usage[j].wires_total);
    EXPECT_EQ(a.usage[j].wire_area, b.usage[j].wire_area);
    EXPECT_EQ(a.usage[j].via_blockage, b.usage[j].via_blockage);
    EXPECT_EQ(a.usage[j].repeaters, b.usage[j].repeaters);
    EXPECT_EQ(a.usage[j].repeater_area, b.usage[j].repeater_area);
  }
  EXPECT_EQ(a.dp.arena_nodes, b.dp.arena_nodes);
  EXPECT_EQ(a.dp.max_frontier, b.dp.max_frontier);
  EXPECT_EQ(a.dp.heap_pops, b.dp.heap_pops);
  EXPECT_EQ(a.dp.verify_calls, b.dp.verify_calls);
  EXPECT_EQ(a.dp.pruned_entries, b.dp.pruned_entries);
  EXPECT_EQ(a.dp.frontier_dominated, b.dp.frontier_dominated);
  EXPECT_EQ(a.dp.frontier_erased, b.dp.frontier_erased);
  EXPECT_EQ(a.dp.warm_start_checked, b.dp.warm_start_checked);
  EXPECT_EQ(a.dp.warm_start_hit, b.dp.warm_start_hit);
}

}  // namespace

// --- prefix-cost tables --------------------------------------------------------

TEST(DpKernelPrefixTables, MatchSequentialAccumulation) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    const std::size_t n = inst.bunch_count();
    for (std::size_t j = 0; j < inst.pair_count(); ++j) {
      for (std::size_t b = 0; b < n; ++b) {
        double wire = 0.0;
        double rep = 0.0;
        std::int64_t count = 0;
        bool feasible_so_far = true;
        for (std::size_t e = b; e < n; ++e) {
          const core::DelayPlan& plan = inst.plan(e, j);
          const std::int64_t wires = inst.bunch(e).count;
          wire += inst.wire_area(e, j, wires);
          if (plan.feasible) {
            rep += static_cast<double>(wires) * plan.area_per_wire;
            count += wires * plan.repeaters_per_wire();
          } else {
            feasible_so_far = false;
          }
          const std::size_t c = e - b + 1;
          // Plan feasibility of the whole range is one table lookup.
          EXPECT_EQ(inst.first_infeasible(j, b) >= b + c, feasible_so_far)
              << "seed " << seed << " j=" << j << " [" << b << "," << b + c
              << ")";
          const core::Instance::ChunkTotals t = inst.chunk_totals(j, b, c);
          const double tol = 1e-9 * (1.0 + wire + rep);
          EXPECT_NEAR(t.wire_area, wire, tol) << "seed " << seed;
          EXPECT_NEAR(t.rep_area, rep, tol) << "seed " << seed;
          EXPECT_EQ(t.rep_count, count) << "seed " << seed;  // integral: exact
        }
      }
    }
  }
}

TEST(DpKernelPrefixTables, MaxFeasibleChunkMatchesLinearScan) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    const std::size_t n = inst.bunch_count();
    // A limit grid bracketing the interesting region, degenerate values
    // included.
    const double wire_limits[] = {-1.0, 0.0, inst.pair_capacity() * 0.3,
                                  inst.pair_capacity(), 1e30};
    const double rep_limits[] = {-1.0, 0.0, inst.repeater_budget() * 0.5,
                                 inst.repeater_budget(), 1e30};
    for (std::size_t j = 0; j < inst.pair_count(); ++j) {
      for (std::size_t b = 0; b < n; ++b) {
        for (const double wl : wire_limits) {
          for (const double rl : rep_limits) {
            std::int64_t expect = 0;
            while (b + static_cast<std::size_t>(expect) < n) {
              const auto c = static_cast<std::size_t>(expect) + 1;
              if (inst.first_infeasible(j, b) < b + c) break;
              const core::Instance::ChunkTotals t = inst.chunk_totals(j, b, c);
              if (t.wire_area > wl || t.rep_area > rl) break;
              ++expect;
            }
            EXPECT_EQ(inst.max_feasible_chunk(j, b, wl, rl), expect)
                << "seed " << seed << " j=" << j << " b=" << b << " wl=" << wl
                << " rl=" << rl;
          }
        }
      }
    }
  }
}

// --- frontier invariant --------------------------------------------------------

TEST(DpKernelFrontier, SortInvariantHoldsOnEveryMaterializedBucket) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    core::DpOptions checked;
    checked.check_invariants = true;  // util::require throws on violation
    core::RankResult a;
    ASSERT_NO_THROW(a = core::dp_rank(inst, checked)) << "seed " << seed;
    const core::RankResult b = core::dp_rank(inst, {});
    expect_identical(a, b);
  }
}

// --- pruning and warm starts are prune-only ------------------------------------

TEST(DpKernelPruning, OnOffIdenticalResultAcrossSeedBlock) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    core::DpOptions no_prune;
    no_prune.enable_pruning = false;
    expect_identical(core::dp_rank(inst, {}), core::dp_rank(inst, no_prune));
  }
}

TEST(DpKernelWarmStart, OwnWitnessIsPruneOnly) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    const core::RankResult cold = core::dp_rank(inst, {});
    core::DpOptions warm_opt;
    warm_opt.warm_start = &cold.witness;  // the best witness there is
    const core::RankResult warm = core::dp_rank(inst, warm_opt);
    expect_identical(cold, warm);
    if (cold.all_assigned) {
      EXPECT_TRUE(warm.dp.warm_start_checked) << "seed " << seed;
      EXPECT_TRUE(warm.dp.warm_start_hit) << "seed " << seed;
    }
  }
}

TEST(DpKernelWarmStart, ForeignWitnessIsPruneOnly) {
  // Witness from a *different* scenario: shapes rarely line up, and when
  // they do the bound must still be admissible. Either way the result is
  // identical to the cold solve.
  for (std::uint64_t seed = 0; seed + 1 < kSeeds; ++seed) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    const core::RankResult neighbour =
        core::dp_rank(core::sample_scenario(seed + 1).instance(), {});
    const core::RankResult cold = core::dp_rank(inst, {});
    core::DpOptions warm_opt;
    warm_opt.warm_start = &neighbour.witness;
    expect_identical(cold, core::dp_rank(inst, warm_opt));
  }
}

TEST(DpKernelWarmStart, InvalidWitnessIsIgnored) {
  const core::Instance inst =
      iarank::testing::random_instance(7, {.allow_infeasible_plans = false});
  const core::RankResult cold = core::dp_rank(inst, {});

  core::DpWitness bogus;
  bogus.break_pair = 99;  // out of range
  bogus.chunk_first.assign(100, 0);
  core::DpOptions opt;
  opt.warm_start = &bogus;
  const core::RankResult guarded = core::dp_rank(inst, opt);
  expect_identical(cold, guarded);
  EXPECT_FALSE(guarded.dp.warm_start_hit);

  core::DpWitness malformed;  // valid() == false: never even checked
  core::DpOptions opt2;
  opt2.warm_start = &malformed;
  const core::RankResult skipped = core::dp_rank(inst, opt2);
  expect_identical(cold, skipped);
  EXPECT_FALSE(skipped.dp.warm_start_checked);
}

// --- v2 kernel vs the retained scalar reference --------------------------------

TEST(DpKernelReference, BitwiseEqualAcrossSeedBlock) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    expect_identical_with_stats(core::dp_rank(inst, {}),
                                core::dp_rank_reference(inst, {}));
  }
}

TEST(DpKernelReference, BitwiseEqualUnderOptionVariants) {
  // Exercise the option axes that change which kernel paths run: trace
  // reconstruction off, boundary refinement off, pruning off, and a warm
  // start from the instance's own witness.
  for (std::uint64_t seed = 0; seed < kSeeds; seed += 4) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    const core::RankResult cold = core::dp_rank(inst, {});

    core::DpOptions no_trace;
    no_trace.build_trace = false;
    expect_identical_with_stats(core::dp_rank(inst, no_trace),
                                core::dp_rank_reference(inst, no_trace));

    core::DpOptions no_refine;
    no_refine.refine_boundary = false;
    expect_identical_with_stats(core::dp_rank(inst, no_refine),
                                core::dp_rank_reference(inst, no_refine));

    core::DpOptions no_prune;
    no_prune.enable_pruning = false;
    expect_identical_with_stats(core::dp_rank(inst, no_prune),
                                core::dp_rank_reference(inst, no_prune));

    core::DpOptions warm;
    warm.warm_start = &cold.witness;
    expect_identical_with_stats(core::dp_rank(inst, warm),
                                core::dp_rank_reference(inst, warm));
  }
}

// --- kernel reuse --------------------------------------------------------------

TEST(DpKernelReuse, ReusedKernelMatchesFreshKernelPerSolve) {
  // One kernel carried across the whole seed block — its pool is reset,
  // never freed, so any stale-state leak between solves would surface as
  // a mismatch against the fresh-kernel oracle.
  core::DpKernel reused;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    const core::RankResult a = reused.solve(inst, {});
    core::DpKernel fresh;
    expect_identical_with_stats(a, fresh.solve(inst, {}));
  }
}

TEST(DpKernelReuse, SolveIntoDirtyStorageEqualsSolve) {
  // solve_into reuses the previous result's buffers; alternating between
  // scenarios of different shapes checks both growth and shrink reuse.
  core::DpKernel kernel;
  core::RankResult dirty;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    kernel.solve_into(inst, {}, dirty);
    core::DpKernel fresh;
    expect_identical_with_stats(dirty, fresh.solve(inst, {}));
  }
}

TEST(DpKernelReuse, PoolAccountingIsMonotone) {
  core::DpKernel kernel;
  std::int64_t high_water = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    const core::RankResult r = kernel.solve(inst, {});
    const core::DpKernel::PoolStats stats = kernel.pool_stats();
    EXPECT_EQ(stats.arena_bytes, r.dp.arena_bytes) << "seed " << seed;
    EXPECT_GE(stats.high_water_bytes, stats.arena_bytes) << "seed " << seed;
    EXPECT_GE(stats.high_water_bytes, high_water) << "seed " << seed;
    high_water = stats.high_water_bytes;
  }
  // Re-solving the block draws the same bytes per solve (deterministic
  // pool accounting) without raising the high-water mark.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const core::Instance inst = core::sample_scenario(seed).instance();
    const core::RankResult r = kernel.solve(inst, {});
    EXPECT_EQ(r.dp.arena_bytes, kernel.pool_stats().arena_bytes);
  }
  EXPECT_EQ(kernel.pool_stats().high_water_bytes, high_water);
}
