/// Tests for the crosstalk-noise extension: the charge-sharing estimator
/// and the noise-constrained rank.

#include <gtest/gtest.h>

#include "src/core/engine.hpp"
#include "src/core/paper_setup.hpp"
#include "src/tech/noise.hpp"
#include "src/tech/node.hpp"
#include "src/tech/tuning.hpp"
#include "src/util/error.hpp"
#include "src/util/units.hpp"
#include "src/wld/wld.hpp"

namespace core = iarank::core;
namespace tech = iarank::tech;
namespace wld = iarank::wld;
namespace units = iarank::util::units;

namespace {

tech::LayerGeometry geometry_of(const tech::TierGeometry& tier) {
  return {tier.min_width, tier.min_spacing, tier.thickness, tier.thickness,
          tier.via_width};
}

tech::RcParams params() {
  return {tech::copper(), 3.9, 2.0, tech::CapacitanceModel::kSakuraiTamaru};
}

}  // namespace

TEST(Noise, RatioInUnitInterval) {
  for (const tech::TechNode& node : tech::all_nodes()) {
    for (const auto* tier : {&node.local, &node.semi_global, &node.global}) {
      const double ratio =
          tech::coupling_noise_ratio(geometry_of(*tier), params());
      EXPECT_GT(ratio, 0.0);
      EXPECT_LT(ratio, 1.0);
    }
  }
}

TEST(Noise, IndependentOfPermittivity) {
  const auto g = geometry_of(tech::node_130nm().local);
  auto p1 = params();
  auto p2 = params();
  p2.ild_permittivity = 2.0;
  EXPECT_NEAR(tech::coupling_noise_ratio(g, p1),
              tech::coupling_noise_ratio(g, p2), 1e-12);
}

TEST(Noise, WiderSpacingReducesNoise) {
  auto g = geometry_of(tech::node_130nm().local);
  const double base = tech::coupling_noise_ratio(g, params());
  g.spacing *= 2.0;
  EXPECT_LT(tech::coupling_noise_ratio(g, params()), base);
}

TEST(Noise, MinPitchWiresAreCouplingDominated) {
  // At minimum pitch, lateral plates dominate the parallel-plate budget —
  // the motivation for the paper's M sweep. (The Sakurai model's fringe
  // terms inflate the ground component and moderate the ratio.)
  tech::RcParams pp = params();
  pp.model = tech::CapacitanceModel::kParallelPlate;
  const double plate_ratio =
      tech::coupling_noise_ratio(geometry_of(tech::node_130nm().local), pp);
  EXPECT_GT(plate_ratio, 0.5);
  const double sakurai_ratio = tech::coupling_noise_ratio(
      geometry_of(tech::node_130nm().local), params());
  EXPECT_LT(sakurai_ratio, plate_ratio);
}

TEST(NoiseRank, UnconstrainedMatchesBaseline) {
  core::PaperSetup setup =
      core::paper_baseline("130nm", 50000, core::scaled_regime(50000));
  setup.options.bunch_size = 500;
  const auto w = core::default_wld(setup.design);
  const auto base = core::compute_rank(setup.design, setup.options, w);
  core::RankOptions off = setup.options;
  off.max_noise_ratio = 1.0;
  EXPECT_EQ(core::compute_rank(setup.design, off, w).rank, base.rank);
}

TEST(NoiseRank, TightBudgetReducesRank) {
  core::PaperSetup setup =
      core::paper_baseline("130nm", 50000, core::scaled_regime(50000));
  setup.options.bunch_size = 500;
  const auto w = core::default_wld(setup.design);
  const auto base = core::compute_rank(setup.design, setup.options, w);

  core::RankOptions tight = setup.options;
  tight.max_noise_ratio = 0.3;  // excludes min-pitch pairs
  const auto constrained = core::compute_rank(setup.design, tight, w);
  EXPECT_LT(constrained.rank, base.rank);
  // Packing is unaffected: everything still fits.
  EXPECT_TRUE(constrained.all_assigned);
}

TEST(NoiseRank, ZeroBudgetMeansNoDelayMetWires) {
  core::PaperSetup setup =
      core::paper_baseline("130nm", 50000, core::scaled_regime(50000));
  setup.options.bunch_size = 500;
  setup.options.max_noise_ratio = 0.0;
  const auto w = core::default_wld(setup.design);
  const auto r = core::compute_rank(setup.design, setup.options, w);
  EXPECT_EQ(r.rank, 0);
  EXPECT_TRUE(r.all_assigned);
}

TEST(NoiseRank, SpacingTuningRecoversRank) {
  // Doubling the spacing on a tier pushes its noise ratio under a budget
  // that previously excluded it (trading routing pitch for noise) —
  // the co-optimization knob the annealer exercises.
  const tech::TechNode node = tech::node_130nm();
  const double base_ratio =
      tech::coupling_noise_ratio(geometry_of(node.semi_global), params());
  tech::NodeTuning tuning;
  tuning.semi_global.spacing = 2.5;
  const tech::TechNode tuned = tech::apply_tuning(node, tuning);
  const double tuned_ratio =
      tech::coupling_noise_ratio(geometry_of(tuned.semi_global), params());
  EXPECT_LT(tuned_ratio, base_ratio);
  EXPECT_LT(tuned_ratio, 0.45);
}

TEST(NoiseRank, InvalidBudgetThrows) {
  core::RankOptions opts;
  opts.max_noise_ratio = 1.5;
  EXPECT_THROW(opts.validate(), iarank::util::Error);
}
