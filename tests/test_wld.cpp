/// Tests for src/wld: the container, Davis model (paper ref [4]),
/// discrete validation, coarsening (paper Section 5.1 + footnote 7),
/// synthetic generators and I/O.

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "src/util/error.hpp"
#include "src/wld/coarsen.hpp"
#include "src/wld/davis.hpp"
#include "src/wld/discrete.hpp"
#include "src/wld/io.hpp"
#include "src/wld/synthetic.hpp"
#include "src/wld/wld.hpp"

namespace wld = iarank::wld;
using iarank::util::Error;

// --- Wld container ---------------------------------------------------------------

TEST(Wld, MergesEqualLengthsAndSorts) {
  const wld::Wld w({{5.0, 2}, {7.0, 1}, {5.0, 3}});
  ASSERT_EQ(w.group_count(), 2u);
  EXPECT_DOUBLE_EQ(w.groups()[0].length, 7.0);
  EXPECT_EQ(w.groups()[1].count, 5);
  EXPECT_EQ(w.total_wires(), 6);
}

TEST(Wld, DropsZeroCounts) {
  const wld::Wld w({{5.0, 0}, {3.0, 2}});
  EXPECT_EQ(w.group_count(), 1u);
}

TEST(Wld, RejectsNegativeCountsAndLengths) {
  EXPECT_THROW((void)wld::Wld({{5.0, -1}}), Error);
  EXPECT_THROW((void)wld::Wld({{-2.0, 3}}), Error);
}

TEST(Wld, FromLengths) {
  const auto w = wld::Wld::from_lengths({3.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(w.total_wires(), 4);
  EXPECT_EQ(w.groups()[0].count, 2);  // two wires of length 3
}

TEST(Wld, RankLookup) {
  const wld::Wld w({{10.0, 2}, {5.0, 3}});
  EXPECT_DOUBLE_EQ(w.length_at_rank(1), 10.0);
  EXPECT_DOUBLE_EQ(w.length_at_rank(2), 10.0);
  EXPECT_DOUBLE_EQ(w.length_at_rank(3), 5.0);
  EXPECT_DOUBLE_EQ(w.length_at_rank(5), 5.0);
  EXPECT_THROW((void)w.length_at_rank(6), Error);
  EXPECT_THROW((void)w.length_at_rank(0), Error);
}

TEST(Wld, CountLongerThan) {
  const wld::Wld w({{10.0, 2}, {5.0, 3}});
  EXPECT_EQ(w.count_longer_than(10.0), 0);
  EXPECT_EQ(w.count_longer_than(7.0), 2);
  EXPECT_EQ(w.count_longer_than(1.0), 5);
}

TEST(Wld, Stats) {
  const wld::Wld w({{10.0, 1}, {2.0, 3}});
  const auto s = w.stats();
  EXPECT_EQ(s.total_wires, 4);
  EXPECT_DOUBLE_EQ(s.total_length, 16.0);
  EXPECT_DOUBLE_EQ(s.mean_length, 4.0);
  EXPECT_DOUBLE_EQ(s.max_length, 10.0);
  EXPECT_DOUBLE_EQ(s.min_length, 2.0);
  EXPECT_DOUBLE_EQ(s.median_length, 2.0);
}

TEST(Wld, ScaledPreservesCounts) {
  const wld::Wld w({{10.0, 2}, {5.0, 3}});
  const auto s = w.scaled(2.0);
  EXPECT_DOUBLE_EQ(s.max_length(), 20.0);
  EXPECT_EQ(s.total_wires(), 5);
  EXPECT_THROW((void)w.scaled(0.0), Error);
}

TEST(Wld, EmptyDistribution) {
  const wld::Wld w;
  EXPECT_TRUE(w.empty());
  EXPECT_THROW((void)w.max_length(), Error);
  EXPECT_THROW((void)w.stats(), Error);
}

// --- Davis model ------------------------------------------------------------------

TEST(Davis, ParamsValidate) {
  wld::DavisParams p{1000, 0.6, 4.0, 3.0};
  EXPECT_NO_THROW(p.validate());
  p.rent_p = 1.2;
  EXPECT_THROW(p.validate(), Error);
  p = {2, 0.6, 4.0, 3.0};
  EXPECT_THROW(p.validate(), Error);
}

TEST(Davis, AlphaFromFanout) {
  const wld::DavisParams p{1000, 0.6, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(p.alpha(), 0.75);
}

TEST(Davis, RentTotal) {
  const wld::DavisParams p{10000, 0.6, 4.0, 3.0};
  const double expected =
      0.75 * 4.0 * 10000.0 * (1.0 - std::pow(10000.0, -0.4));
  EXPECT_NEAR(p.total_interconnects(), expected, 1e-9);
}

TEST(Davis, DensityZeroOutsideSupport) {
  const wld::DavisModel m({10000, 0.6, 4.0, 3.0});
  EXPECT_DOUBLE_EQ(m.density(0.5), 0.0);
  EXPECT_DOUBLE_EQ(m.density(201.0), 0.0);  // beyond 2 sqrt(N)
}

TEST(Davis, DensityContinuousAtRegionBoundary) {
  const wld::DavisModel m({10000, 0.6, 4.0, 3.0});
  const double sqrt_n = 100.0;
  const double below = m.density(sqrt_n - 1e-6);
  const double above = m.density(sqrt_n + 1e-6);
  EXPECT_NEAR(below, above, below * 1e-4);
}

TEST(Davis, DensityDecreasesWithLength) {
  const wld::DavisModel m({10000, 0.6, 4.0, 3.0});
  EXPECT_GT(m.density(1.0), m.density(2.0));
  EXPECT_GT(m.density(2.0), m.density(10.0));
  EXPECT_GT(m.density(100.0), m.density(190.0));
}

TEST(Davis, NormalizationIntegratesToRentTotal) {
  const wld::DavisParams p{10000, 0.6, 4.0, 3.0};
  const wld::DavisModel m(p);
  const double integral = m.expected_count(1.0, p.max_length());
  EXPECT_NEAR(integral, p.total_interconnects(),
              p.total_interconnects() * 1e-6);
}

TEST(Davis, GenerateTotalMatches) {
  const wld::DavisParams p{100000, 0.6, 4.0, 3.0};
  const auto w = wld::DavisModel(p).generate();
  EXPECT_NEAR(static_cast<double>(w.total_wires()), p.total_interconnects(),
              2.0);
  EXPECT_LE(w.max_length(), p.max_length());
}

TEST(Davis, GenerateIsDeterministic) {
  const wld::DavisParams p{50000, 0.6, 4.0, 3.0};
  const auto a = wld::DavisModel(p).generate();
  const auto b = wld::DavisModel(p).generate();
  ASSERT_EQ(a.group_count(), b.group_count());
  EXPECT_EQ(a.total_wires(), b.total_wires());
}

TEST(Davis, HigherRentExponentMeansLongerWires) {
  const auto low = wld::DavisModel({100000, 0.5, 4.0, 3.0}).generate();
  const auto high = wld::DavisModel({100000, 0.7, 4.0, 3.0}).generate();
  EXPECT_GT(high.stats().mean_length, low.stats().mean_length);
}

/// The continuous density shape must be proportional to the exact
/// discrete gate-pair counts (times occupancy l^(2p-4)) on a small array.
/// The closed form approximates the lattice count up to a constant factor
/// absorbed by Gamma, so we compare shapes normalized at a reference
/// length.
TEST(Davis, ShapeTracksDiscretePairCounts) {
  const int n = 24;  // 576 gates
  const wld::DavisModel m({n * n, 0.6, 4.0, 3.0});
  auto discrete_shape = [n](int l) {
    const double occupancy = std::pow(static_cast<double>(l), 2.0 * 0.6 - 4.0);
    return static_cast<double>(wld::pair_count_exact(n, l)) * occupancy;
  };
  const int ref = 4;
  const double scale =
      m.raw_shape(static_cast<double>(ref)) / discrete_shape(ref);
  for (int l = 6; l < n; l += 4) {
    const double expected = scale * discrete_shape(l);
    const double continuous = m.raw_shape(static_cast<double>(l));
    EXPECT_NEAR(continuous / expected, 1.0, 0.2) << "l=" << l;
  }
}

// --- discrete pair counts -----------------------------------------------------------

TEST(Discrete, BruteForceMatchesExactFormula) {
  for (const int n : {2, 3, 5, 8, 12}) {
    const auto brute = wld::pair_counts_brute_force(n);
    for (int l = 1; l <= 2 * (n - 1); ++l) {
      EXPECT_EQ(brute[static_cast<std::size_t>(l - 1)],
                wld::pair_count_exact(n, l))
          << "n=" << n << " l=" << l;
    }
  }
}

TEST(Discrete, TotalPairs) {
  const int n = 6;
  const auto counts = wld::pair_counts_brute_force(n);
  std::int64_t total = 0;
  for (const auto c : counts) total += c;
  const std::int64_t gates = n * n;
  EXPECT_EQ(total, gates * (gates - 1) / 2);
}

TEST(Discrete, OutOfRangeIsZero) {
  EXPECT_EQ(wld::pair_count_exact(4, 0), 0);
  EXPECT_EQ(wld::pair_count_exact(4, 7), 0);
}

// --- coarsening -----------------------------------------------------------------------

TEST(Bunch, PaperExample) {
  // 100 wires of one size, bunch 40 -> bunches of 40, 40, 20.
  const wld::Wld w({{10.0, 100}});
  const auto bunches = wld::bunch(w, 40);
  ASSERT_EQ(bunches.size(), 3u);
  EXPECT_EQ(bunches[0].count, 40);
  EXPECT_EQ(bunches[1].count, 40);
  EXPECT_EQ(bunches[2].count, 20);
}

TEST(Bunch, PreservesTotalAndOrder) {
  const wld::Wld w({{10.0, 25}, {5.0, 7}, {2.0, 13}});
  const auto bunches = wld::bunch(w, 10);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < bunches.size(); ++i) {
    total += bunches[i].count;
    EXPECT_LE(bunches[i].count, 10);
    if (i > 0) EXPECT_LE(bunches[i].length, bunches[i - 1].length);
  }
  EXPECT_EQ(total, w.total_wires());
  EXPECT_EQ(wld::bunch_count(w, 10), static_cast<std::int64_t>(bunches.size()));
}

TEST(Bunch, SizeOneIsWireGranularity) {
  const wld::Wld w({{4.0, 3}});
  EXPECT_EQ(wld::bunch(w, 1).size(), 3u);
}

TEST(Bunch, InvalidSizeThrows) {
  EXPECT_THROW((void)wld::bunch(wld::Wld({{1.0, 1}}), 0), Error);
}

TEST(Bin, PaperFootnote7Example) {
  // Lengths 5996..6000 with counts 3,2,2,1,1 -> one group of 9 at 5998.
  const wld::Wld w(
      {{5996.0, 3}, {5997.0, 2}, {5998.0, 2}, {5999.0, 1}, {6000.0, 1}});
  const auto binned = wld::bin_absolute(w, 4.0);
  ASSERT_EQ(binned.group_count(), 1u);
  EXPECT_EQ(binned.groups()[0].count, 9);
  EXPECT_NEAR(binned.groups()[0].length, 5998.0, 0.75);
}

TEST(Bin, ZeroWindowIsIdentity) {
  const wld::Wld w({{10.0, 2}, {5.0, 3}});
  const auto binned = wld::bin_absolute(w, 0.0);
  EXPECT_EQ(binned.group_count(), 2u);
}

TEST(Bin, PreservesTotalCountAndLength) {
  const wld::Wld w({{10.0, 2}, {9.0, 4}, {5.0, 3}, {4.5, 1}});
  const auto binned = wld::bin_absolute(w, 1.0);
  EXPECT_EQ(binned.total_wires(), w.total_wires());
  EXPECT_NEAR(binned.stats().total_length, w.stats().total_length, 1e-9);
  EXPECT_LT(binned.group_count(), w.group_count());
}

TEST(Bin, RelativeWindow) {
  const wld::Wld w({{100.0, 1}, {99.0, 1}, {50.0, 1}});
  const auto binned = wld::bin_relative(w, 0.02);
  EXPECT_EQ(binned.group_count(), 2u);
}

// --- synthetic generators -----------------------------------------------------------------

TEST(Synthetic, UniformLength) {
  const auto w = wld::uniform_length(7.0, 4);
  EXPECT_EQ(w.total_wires(), 4);
  EXPECT_DOUBLE_EQ(w.max_length(), 7.0);
}

TEST(Synthetic, UniformSpread) {
  const auto w = wld::uniform_spread(1.0, 10.0, 4, 21);
  EXPECT_EQ(w.total_wires(), 21);
  EXPECT_EQ(w.group_count(), 4u);
  EXPECT_DOUBLE_EQ(w.max_length(), 10.0);
}

TEST(Synthetic, Geometric) {
  const auto w = wld::geometric(100.0, 1, 2.0, 0.5, 4);
  EXPECT_EQ(w.group_count(), 4u);
  EXPECT_DOUBLE_EQ(w.max_length(), 100.0);
  // counts 1, 2, 4, 8 at lengths 100, 50, 25, 12.5
  EXPECT_EQ(w.groups()[3].count, 8);
}

TEST(Synthetic, PowerLawMonotone) {
  const auto w = wld::power_law(100, 1e6, 2.8);
  const auto& g = w.groups();
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_GE(g[i].count, g[i - 1].count);  // shorter wires more numerous
  }
}

TEST(Synthetic, SampledExponentialDeterministic) {
  const auto a = wld::sampled_exponential(1000, 5.0, 100.0, 42);
  const auto b = wld::sampled_exponential(1000, 5.0, 100.0, 42);
  EXPECT_EQ(a.total_wires(), 1000);
  EXPECT_EQ(a.group_count(), b.group_count());
  EXPECT_GE(a.stats().min_length, 1.0);
  EXPECT_LE(a.max_length(), 100.0);
}

// --- I/O -------------------------------------------------------------------------------------

TEST(WldIo, RoundTrip) {
  const wld::Wld w({{10.5, 2}, {5.0, 30}});
  std::stringstream ss;
  wld::write_wld(ss, w);
  const auto loaded = wld::read_wld(ss);
  ASSERT_EQ(loaded.group_count(), 2u);
  EXPECT_DOUBLE_EQ(loaded.max_length(), 10.5);
  EXPECT_EQ(loaded.total_wires(), 32);
}

TEST(WldIo, IgnoresCommentsAndBlanks) {
  std::istringstream in("# header\n\n3.0 4\n# tail\n1.0 2\n");
  const auto w = wld::read_wld(in);
  EXPECT_EQ(w.total_wires(), 6);
}

TEST(WldIo, MalformedLineThrows) {
  std::istringstream in("3.0 oops\n");
  EXPECT_THROW((void)wld::read_wld(in), Error);
}

TEST(WldIo, MissingFileThrows) {
  EXPECT_THROW((void)wld::load_wld("/nonexistent/path.wld"), Error);
}

TEST(WldIo, TrailingTokenRejected) {
  // "5 10 junk" used to parse as {5, 10}, silently dropping the rest.
  std::istringstream in("5.0 10 junk\n");
  EXPECT_THROW((void)wld::read_wld(in), Error);
}

TEST(WldIo, TrailingNumberRejected) {
  std::istringstream in("5.0 10 7\n");
  EXPECT_THROW((void)wld::read_wld(in), Error);
}

TEST(WldIo, NonPositiveLengthRejected) {
  std::istringstream zero("0 4\n");
  EXPECT_THROW((void)wld::read_wld(zero), Error);
  std::istringstream negative("-2.5 4\n");
  EXPECT_THROW((void)wld::read_wld(negative), Error);
}

TEST(WldIo, NegativeCountRejected) {
  std::istringstream in("3.0 -1\n");
  EXPECT_THROW((void)wld::read_wld(in), Error);
}

TEST(WldIo, ZeroCountGroupIsDropped) {
  std::istringstream in("3.0 0\n2.0 5\n");
  const auto w = wld::read_wld(in);
  EXPECT_EQ(w.group_count(), 1u);
  EXPECT_EQ(w.total_wires(), 5);
}

TEST(WldIo, ErrorsNameTheLine) {
  // Comments and blanks count toward the reported line number.
  std::istringstream in("# header\n3.0 4\n\n5.0 10 junk\n");
  try {
    (void)wld::read_wld(in);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(WldIo, PartialNumberRejected) {
  // atof-style prefix parsing ("3.0abc" -> 3.0) must not be accepted.
  std::istringstream in("3.0abc 4\n");
  EXPECT_THROW((void)wld::read_wld(in), Error);
}
