/// Tests for core::Instance (raw construction, accounting helpers) and
/// build_instance (the physical flow of paper Section 5.2).

#include <gtest/gtest.h>

#include "src/core/engine.hpp"
#include "src/core/instance.hpp"
#include "src/tech/die.hpp"
#include "src/core/paper_setup.hpp"
#include "src/util/error.hpp"
#include "src/util/units.hpp"
#include "src/wld/synthetic.hpp"

namespace core = iarank::core;
namespace tech = iarank::tech;
namespace wld = iarank::wld;
namespace units = iarank::util::units;
using iarank::util::Error;

namespace {

core::Instance tiny_instance() {
  std::vector<core::Bunch> bunches = {{4.0, 2, 1.0}, {2.0, 3, 0.5}};
  std::vector<core::PairInfo> pairs = {{"top", 1.0, 0.01, 1.0, 0.5},
                                       {"bottom", 0.5, 0.02, 1.0, 0.25}};
  core::DelayPlan ok;
  ok.feasible = true;
  ok.stages = 3;
  ok.area_per_wire = 1.0;
  core::DelayPlan no;  // infeasible
  std::vector<std::vector<core::DelayPlan>> plans = {{ok, no}, {ok, ok}};
  return core::Instance::from_raw(bunches, pairs, plans, 20.0, 5.0,
                                  tech::ViaSpec{});
}

}  // namespace

TEST(Instance, Shape) {
  const auto inst = tiny_instance();
  EXPECT_EQ(inst.bunch_count(), 2u);
  EXPECT_EQ(inst.pair_count(), 2u);
  EXPECT_EQ(inst.total_wires(), 5);
}

TEST(Instance, WiresBeforePrefixSums) {
  const auto inst = tiny_instance();
  EXPECT_EQ(inst.wires_before(0), 0);
  EXPECT_EQ(inst.wires_before(1), 2);
  EXPECT_EQ(inst.wires_before(2), 5);
  EXPECT_THROW((void)inst.wires_before(3), Error);
}

TEST(Instance, WireAreaFormula) {
  const auto inst = tiny_instance();
  EXPECT_DOUBLE_EQ(inst.wire_area(0, 0, 2), 4.0 * 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(inst.wire_area(1, 1, 3), 2.0 * 0.5 * 3.0);
}

TEST(Instance, BlockageUsesPairViaArea) {
  const auto inst = tiny_instance();
  // vias_per_wire = 2, vias_per_repeater = 1 (defaults)
  EXPECT_DOUBLE_EQ(inst.blockage(0, 10.0, 4.0), (2.0 * 10.0 + 4.0) * 0.01);
  EXPECT_DOUBLE_EQ(inst.blockage(1, 10.0, 4.0), (2.0 * 10.0 + 4.0) * 0.02);
}

TEST(Instance, MaxFitRespectsAreaAndCount) {
  const auto inst = tiny_instance();
  // Pair 0, bunch 0: per-wire area 4.0, capacity 20 -> 5 would fit, but
  // the bunch only has 2 wires.
  EXPECT_EQ(inst.max_fit(0, 0, 0, 0.0, 0.0, 0.0), 2);
  // With 18 units already used only half a wire fits -> 0.
  EXPECT_EQ(inst.max_fit(0, 0, 0, 18.0, 0.0, 0.0), 0);
  // Offset consumes bunch wires.
  EXPECT_EQ(inst.max_fit(0, 0, 1, 0.0, 0.0, 0.0), 1);
}

TEST(Instance, MaxFitDegeneratePitchClampsBeforeCast) {
  // A near-zero (but positive) pitch makes free_area / per_wire exceed
  // the int64 range; the old code cast that double directly — undefined
  // behaviour. The clamp must resolve it to "everything fits".
  std::vector<core::Bunch> bunches = {{1.0, 7, 1.0}};
  std::vector<core::PairInfo> pairs = {{"thin", 1e-300, 0.0, 1.0, 0.0}};
  core::DelayPlan ok;
  ok.feasible = true;
  ok.stages = 1;
  std::vector<std::vector<core::DelayPlan>> plans = {{ok}};
  const auto inst =
      core::Instance::from_raw(bunches, pairs, plans, 20.0, 5.0,
                               tech::ViaSpec{});
  EXPECT_EQ(inst.max_fit(0, 0, 0, 0.0, 0.0, 0.0), 7);
  EXPECT_EQ(inst.max_fit(0, 0, 3, 0.0, 0.0, 0.0), 4);
  // Exhausted area still yields zero, not a wrapped negative.
  EXPECT_EQ(inst.max_fit(0, 0, 0, 25.0, 0.0, 0.0), 0);
}

TEST(Instance, PlanLookup) {
  const auto inst = tiny_instance();
  EXPECT_TRUE(inst.plan(0, 0).feasible);
  EXPECT_FALSE(inst.plan(0, 1).feasible);
  EXPECT_EQ(inst.plan(0, 0).repeaters_per_wire(), 2);
  EXPECT_THROW((void)inst.plan(2, 0), Error);
}

TEST(Instance, FromRawValidation) {
  std::vector<core::Bunch> unsorted = {{2.0, 1, 1.0}, {4.0, 1, 1.0}};
  std::vector<core::PairInfo> pairs = {{"p", 1.0, 0.0, 1.0, 0.5}};
  std::vector<std::vector<core::DelayPlan>> plans(2,
                                                  std::vector<core::DelayPlan>(1));
  EXPECT_THROW((void)core::Instance::from_raw(unsorted, pairs, plans, 10.0,
                                              1.0, tech::ViaSpec{}),
               Error);

  std::vector<core::Bunch> ok = {{4.0, 1, 1.0}, {2.0, 1, 1.0}};
  EXPECT_THROW((void)core::Instance::from_raw(ok, {}, plans, 10.0, 1.0,
                                              tech::ViaSpec{}),
               Error);
  EXPECT_THROW((void)core::Instance::from_raw(ok, pairs, plans, 0.0, 1.0,
                                              tech::ViaSpec{}),
               Error);
  std::vector<std::vector<core::DelayPlan>> short_plans(
      1, std::vector<core::DelayPlan>(1));
  EXPECT_THROW((void)core::Instance::from_raw(ok, pairs, short_plans, 10.0,
                                              1.0, tech::ViaSpec{}),
               Error);
}

// --- build_instance ------------------------------------------------------------------

TEST(BuildInstance, BaselineDimensions) {
  const core::DesignSpec design = core::baseline_design("130nm", 10000);
  core::RankOptions options;
  options.bunch_size = 100;
  const auto wld_pitches = wld::uniform_spread(1.0, 50.0, 10, 1000);
  const auto inst = core::build_instance(design, options, wld_pitches);

  EXPECT_EQ(inst.pair_count(), 4u);
  EXPECT_EQ(inst.total_wires(), 1000);
  // 10 groups x ceil(100/100) bunches each.
  EXPECT_EQ(inst.bunch_count(), 10u);
  EXPECT_GT(inst.repeater_budget(), 0.0);
  // Capacity defaults to 2 x A_d.
  const tech::DieModel die({10000, design.node.gate_pitch(), 0.4});
  EXPECT_NEAR(inst.pair_capacity(), 2.0 * die.die_area(), 1e-18);
}

TEST(BuildInstance, LengthsScaledByEffectivePitch) {
  const core::DesignSpec design = core::baseline_design("130nm", 10000);
  const core::RankOptions options;
  const auto wld_pitches = wld::uniform_length(50.0, 10);
  const auto inst = core::build_instance(design, options, wld_pitches);
  const tech::DieModel die({10000, design.node.gate_pitch(), 0.4});
  EXPECT_NEAR(inst.bunch(0).length, 50.0 * die.effective_gate_pitch(), 1e-15);
}

TEST(BuildInstance, TargetsFollowLinearModel) {
  const core::DesignSpec design = core::baseline_design("130nm", 10000);
  core::RankOptions options;  // linear targets, 500 MHz
  const auto wld_pitches = wld::Wld({{100.0, 5}, {50.0, 5}});
  const auto inst = core::build_instance(design, options, wld_pitches);
  // Longest wire gets the full period; the half-length wire half of it.
  EXPECT_NEAR(inst.bunch(0).target_delay, 2.0 * units::ns, 1e-15);
  EXPECT_NEAR(inst.bunch(1).target_delay, 1.0 * units::ns, 1e-15);
}

TEST(BuildInstance, BunchSizeControlsGranularity) {
  const core::DesignSpec design = core::baseline_design("130nm", 10000);
  core::RankOptions coarse;
  coarse.bunch_size = 1000;
  core::RankOptions fine;
  fine.bunch_size = 10;
  const auto wld_pitches = wld::uniform_length(20.0, 100);
  EXPECT_EQ(core::build_instance(design, coarse, wld_pitches).bunch_count(),
            1u);
  EXPECT_EQ(core::build_instance(design, fine, wld_pitches).bunch_count(),
            10u);
}

TEST(BuildInstance, BinningReducesBunches) {
  const core::DesignSpec design = core::baseline_design("130nm", 10000);
  core::RankOptions options;
  options.bin_window = 5.0;
  const auto wld_pitches =
      wld::Wld({{100.0, 1}, {99.0, 1}, {98.0, 1}, {50.0, 1}});
  const auto inst = core::build_instance(design, options, wld_pitches);
  EXPECT_EQ(inst.bunch_count(), 2u);
  EXPECT_EQ(inst.total_wires(), 4);
}

TEST(BuildInstance, MinRepeaterSpacingCapsStages) {
  core::PaperSetup setup = core::paper_baseline("130nm", 10000);
  // One long and one very short wire.
  const auto wld_pitches = wld::Wld({{500.0, 1}, {1.0, 1}});
  setup.options.clock_frequency = 100.0 * units::GHz;  // brutally tight
  const auto inst =
      core::build_instance(setup.design, setup.options, wld_pitches);
  // The 1-pitch wire can hold at most a handful of stages; at 100 GHz the
  // quadratic target is unattainable within that cap on every pair.
  for (std::size_t j = 0; j < inst.pair_count(); ++j) {
    EXPECT_FALSE(inst.plan(1, j).feasible) << "pair " << j;
  }
}

TEST(BuildInstance, EmptyWldThrows) {
  const core::DesignSpec design = core::baseline_design("130nm", 10000);
  EXPECT_THROW(
      (void)core::build_instance(design, core::RankOptions{}, wld::Wld{}),
      Error);
}

TEST(BuildInstance, InvalidOptionsThrow) {
  const core::DesignSpec design = core::baseline_design("130nm", 10000);
  core::RankOptions options;
  options.repeater_fraction = 1.0;
  EXPECT_THROW((void)core::build_instance(design, options,
                                          wld::uniform_length(10.0, 5)),
               Error);
}
