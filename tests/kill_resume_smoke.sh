#!/usr/bin/env bash
# Kill-and-resume smoke test: SIGKILL a checkpointed sweep mid-grid, rerun
# it against the surviving journal, and require the resumed CSV to be
# byte-identical to an uninterrupted run's. SIGKILL cannot be trapped, so
# this exercises the journal's real crash contract: whatever records made
# it to the file at the instant of death are what resume gets.
#
# usage: kill_resume_smoke.sh <rank_tool> <config>
set -euo pipefail

RANK_TOOL=${1:?usage: kill_resume_smoke.sh <rank_tool> <config>}
CONFIG=${2:?usage: kill_resume_smoke.sh <rank_tool> <config>}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

GRID=(sweep K 3.9 1.8 22)

# Reference: one uninterrupted run, no checkpoint.
"$RANK_TOOL" "$CONFIG" "${GRID[@]}" --out "$WORK/reference.csv" > /dev/null

# Start a checkpointed run and SIGKILL it once a few points are journaled
# (header line + >= 2 records).
"$RANK_TOOL" "$CONFIG" "${GRID[@]}" \
  --checkpoint "$WORK/sweep.journal" > /dev/null &
PID=$!
for _ in $(seq 1 500); do
  if [ -f "$WORK/sweep.journal" ] \
     && [ "$(wc -l < "$WORK/sweep.journal")" -ge 3 ]; then
    break
  fi
  sleep 0.02
done
kill -9 "$PID" 2> /dev/null || true
wait "$PID" 2> /dev/null || true

if [ ! -f "$WORK/sweep.journal" ]; then
  echo "FAIL: no journal was written before the kill" >&2
  exit 1
fi

# Resume against the surviving journal and compare byte for byte.
"$RANK_TOOL" "$CONFIG" "${GRID[@]}" --checkpoint "$WORK/sweep.journal" \
  --out "$WORK/resumed.csv" > "$WORK/resume_stdout.txt"
RESUMED=$(sed -n \
  's/^checkpoint: .* (\([0-9]*\) of [0-9]* points resumed)$/\1/p' \
  "$WORK/resume_stdout.txt")
echo "resumed ${RESUMED:-0} of 22 points after SIGKILL"

diff "$WORK/reference.csv" "$WORK/resumed.csv"
echo "OK: resumed sweep is byte-identical to the uninterrupted run"
