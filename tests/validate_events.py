#!/usr/bin/env python3
"""Validates a JSONL event log written by util::EventLog (--log / the
flight recorder dump).

Checks (exit 0 when all hold, 1 otherwise, 2 on usage/IO errors):
  * every line is a standalone JSON object (the file is JSONL — a torn
    or truncated line anywhere fails the file)
  * every event carries a numeric "ts_ms", a "sev" in
    {debug, info, warn, error} and a nonempty string "type"
  * "fields", when present, is an object
  * no unknown top-level keys (the schema is closed: consumers sort and
    filter on exactly these four)
  * with --require-type NAME (repeatable), at least one event of each
    named type is present

Usage: validate_events.py FILE [--require-type NAME]...
       validate_events.py -        (read stdin)
       validate_events.py --self-test
"""

import io
import json
import sys

SEVERITIES = {"debug", "info", "warn", "error"}
TOP_KEYS = {"ts_ms", "sev", "type", "fields", "truncated"}


def fail(message):
    print(f"validate_events: FAIL: {message}", file=sys.stderr)
    return 1


def validate(stream, required):
    events = 0
    types = set()
    for lineno, line in enumerate(stream, start=1):
        line = line.rstrip("\n")
        if not line:
            return fail(f"line {lineno}: empty line inside the log")
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(f"line {lineno}: not valid JSON ({e})")
        if not isinstance(event, dict):
            return fail(f"line {lineno}: not a JSON object")
        unknown = set(event) - TOP_KEYS
        if unknown:
            return fail(f"line {lineno}: unknown keys {sorted(unknown)}")
        if not isinstance(event.get("ts_ms"), (int, float)) or \
                isinstance(event.get("ts_ms"), bool):
            return fail(f"line {lineno}: ts_ms missing or not numeric")
        if event.get("sev") not in SEVERITIES:
            return fail(f"line {lineno}: sev {event.get('sev')!r} not in "
                        f"{sorted(SEVERITIES)}")
        etype = event.get("type")
        if not isinstance(etype, str) or not etype:
            return fail(f"line {lineno}: type missing or empty")
        if "fields" in event and not isinstance(event["fields"], dict):
            return fail(f"line {lineno}: fields is not an object")
        events += 1
        types.add(etype)
    if events == 0:
        return fail("log contains no events")
    for name in required:
        if name not in types:
            return fail(f"required event type {name!r} not present; saw "
                        f"{sorted(types)[:10]}")
    print(f"validate_events: OK: {events} events, {len(types)} distinct "
          f"types")
    return 0


def self_test():
    ok = (
        '{"fields":{"pid":1},"sev":"info","ts_ms":1717171717000,'
        '"type":"tool.start"}\n'
        '{"sev":"debug","ts_ms":1717171717001,"type":"sweep.point"}\n'
        '{"sev":"warn","truncated":true,"ts_ms":1717171717002,'
        '"type":"request.slow"}\n'
    )
    cases = [
        (ok, [], 0),
        (ok, ["tool.start"], 0),
        (ok, ["missing.type"], 1),
        ("", [], 1),                                   # empty log
        ('{"sev":"info","ts_ms":1,"type":"a"}\nnot json\n', [], 1),
        ('{"sev":"fatal","ts_ms":1,"type":"a"}\n', [], 1),   # bad sev
        ('{"sev":"info","ts_ms":"x","type":"a"}\n', [], 1),  # bad ts
        ('{"sev":"info","ts_ms":1,"type":""}\n', [], 1),     # empty type
        ('{"sev":"info","ts_ms":1,"type":"a","extra":1}\n', [], 1),
        ('{"fields":[1],"sev":"info","ts_ms":1,"type":"a"}\n', [], 1),
        ('[1,2]\n', [], 1),                            # not an object
    ]
    for i, (text, required, expected) in enumerate(cases):
        got = validate(io.StringIO(text), required)
        if got != expected:
            print(f"validate_events: self-test case {i} returned {got}, "
                  f"expected {expected}", file=sys.stderr)
            return 1
    print("validate_events: self-test OK")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[1] == "--self-test":
        return self_test()
    path = argv[1]
    required = []
    args = argv[2:]
    while args:
        if args[0] == "--require-type" and len(args) >= 2:
            required.append(args[1])
            args = args[2:]
        else:
            print(f"validate_events: unknown argument {args[0]}",
                  file=sys.stderr)
            return 2
    try:
        if path == "-":
            return validate(sys.stdin, required)
        with open(path, encoding="utf-8") as f:
            return validate(f, required)
    except OSError as e:
        print(f"validate_events: cannot read {path}: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
