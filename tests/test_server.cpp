/// \file test_server.cpp
/// \brief The rank server stack, bottom up: the JSON value type, the
///        bounded queue, the frame protocol over socketpairs, the
///        socket-free service, and the full daemon end to end.
///
/// The load-bearing contracts:
///  - a `rank` response equals the in-process dp_rank result bitwise
///    (the service adds no arithmetic of its own);
///  - concurrent clients issuing the same request receive identical
///    bytes;
///  - a malformed or oversized frame poisons one connection, never the
///    daemon;
///  - a full job queue answers `overloaded` instead of queueing
///    unboundedly;
///  - stop() drains: requests accepted before shutdown get responses.

#include <fcntl.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cmath>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/config_run.hpp"
#include "src/core/dp_rank.hpp"
#include "src/core/engine.hpp"
#include "src/core/paper_setup.hpp"
#include "src/server/context.hpp"
#include "src/server/protocol.hpp"
#include "src/server/server.hpp"
#include "src/server/service.hpp"
#include "src/util/bounded_queue.hpp"
#include "src/util/error.hpp"
#include "src/util/event_log.hpp"
#include "src/util/json.hpp"
#include "src/util/metrics.hpp"

namespace iarank {
namespace {

// --- util::Json -------------------------------------------------------------------

TEST(Json, ParsesScalarsAndContainers) {
  EXPECT_TRUE(util::Json::parse("null").is_null());
  EXPECT_EQ(util::Json::parse("true").as_bool(), true);
  EXPECT_EQ(util::Json::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(util::Json::parse("2.5e-3").as_double(), 2.5e-3);
  EXPECT_EQ(util::Json::parse("\"a\\nb\"").as_string(), "a\nb");
  EXPECT_EQ(util::Json::parse("[1,2,3]").as_array().size(), 3u);

  const util::Json obj = util::Json::parse(
      "{\"k\": 3.9, \"nested\": {\"deep\": [true, null]}}");
  EXPECT_DOUBLE_EQ(obj.at("k").as_double(), 3.9);
  EXPECT_TRUE(obj.at("nested").at("deep").as_array()[1].is_null());
}

TEST(Json, UnicodeEscapesIncludingSurrogatePairs) {
  EXPECT_EQ(util::Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(util::Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  // U+1F600 via a surrogate pair.
  EXPECT_EQ(util::Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\":1}x", "\"\x01\"",
        "nan", "+1", "\"\\ud83d\"", "01a"}) {
    EXPECT_THROW((void)util::Json::parse(bad), util::Error) << bad;
  }
  // Depth bomb: deeper than the parser's recursion limit.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)util::Json::parse(deep), util::Error);
}

TEST(Json, DumpParseRoundTripsDoublesBitwise) {
  const std::vector<double> values = {0.0,    -0.0,       1.0 / 3.0,
                                      1e-308, 1.7976e308, 0.1,
                                      3.9,    2148408.0,  5e-324};
  for (const double v : values) {
    const util::Json parsed = util::Json::parse(util::Json(v).dump());
    const double back = parsed.as_double();
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << v;
  }
}

TEST(Json, DumpIsDeterministicAndOrdered) {
  util::Json a;
  a["zeta"] = 1;
  a["alpha"] = 2;
  util::Json b;
  b["alpha"] = 2;
  b["zeta"] = 1;
  EXPECT_EQ(a.dump(), b.dump());  // map order, not insertion order
  EXPECT_EQ(a.dump(), "{\"alpha\":2,\"zeta\":1}");
  EXPECT_TRUE(a == b);

  // Non-finite numbers have no JSON spelling: dump must refuse, not emit.
  EXPECT_THROW((void)util::Json(std::nan("")).dump(), util::Error);
}

// --- util::BoundedQueue -----------------------------------------------------------

TEST(BoundedQueue, RejectsWhenFullAndDeliversInOrder) {
  util::BoundedQueue<int> queue(2);
  using Push = util::BoundedQueue<int>::PushResult;
  EXPECT_EQ(queue.try_push(1), Push::kOk);
  EXPECT_EQ(queue.try_push(2), Push::kOk);
  EXPECT_EQ(queue.try_push(3), Push::kFull);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.try_push(3), Push::kOk);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_EQ(queue.pop().value(), 3);
}

TEST(BoundedQueue, CloseDrainsThenSignalsConsumers) {
  util::BoundedQueue<int> queue(4);
  (void)queue.try_push(7);
  (void)queue.try_push(8);
  queue.close();
  EXPECT_EQ(queue.try_push(9), util::BoundedQueue<int>::PushResult::kClosed);
  // Items enqueued before the close are still delivered (drain, not drop).
  EXPECT_EQ(queue.pop().value(), 7);
  EXPECT_EQ(queue.pop().value(), 8);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  util::BoundedQueue<int> queue(1);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_FALSE(queue.pop().has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
  EXPECT_TRUE(woke);
}

// --- frame protocol ---------------------------------------------------------------

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Protocol, FrameRoundTripIncludingEmptyAndBinary) {
  SocketPair sp;
  std::string binary = "x\0y\xff z";
  binary[1] = '\0';
  for (const std::string& payload :
       {std::string(), std::string("{\"type\":\"ping\"}"), binary,
        std::string(100000, 'q')}) {
    ASSERT_TRUE(server::write_frame(sp.a, payload).ok());
    const server::FrameResult got = server::read_frame(sp.b);
    ASSERT_EQ(got.state, server::FrameResult::State::kOk);
    EXPECT_EQ(got.payload, payload);
  }
}

TEST(Protocol, EofAtFrameBoundaryVsMidFrame) {
  {
    SocketPair sp;
    ::close(sp.a);
    sp.a = -1;
    EXPECT_EQ(server::read_frame(sp.b).state, server::FrameResult::State::kEof);
  }
  {
    SocketPair sp;
    // Two header bytes, then the stream dies: an error, not a clean EOF.
    ASSERT_EQ(::send(sp.a, "\x00\x00", 2, 0), 2);
    ::close(sp.a);
    sp.a = -1;
    const server::FrameResult got = server::read_frame(sp.b);
    EXPECT_EQ(got.state, server::FrameResult::State::kError);
  }
}

TEST(Protocol, OversizedFrameIsRejectedWithoutAllocating) {
  SocketPair sp;
  // Header declaring ~4 GiB; read_frame must refuse before reading payload.
  const unsigned char header[4] = {0xFF, 0xFF, 0xFF, 0xF0};
  ASSERT_EQ(::send(sp.a, header, 4, 0), 4);
  const server::FrameResult got = server::read_frame(sp.b, 1 << 20);
  EXPECT_EQ(got.state, server::FrameResult::State::kOversized);
}

TEST(Protocol, ParseAddressForms) {
  const server::Address unix_addr = server::parse_address("unix:/tmp/x.sock");
  EXPECT_EQ(unix_addr.kind, server::Address::Kind::kUnix);
  EXPECT_EQ(unix_addr.path, "/tmp/x.sock");
  EXPECT_EQ(server::to_string(unix_addr), "unix:/tmp/x.sock");

  const server::Address bare_path = server::parse_address("/tmp/y.sock");
  EXPECT_EQ(bare_path.kind, server::Address::Kind::kUnix);

  const server::Address tcp = server::parse_address("tcp:127.0.0.1:8080");
  EXPECT_EQ(tcp.kind, server::Address::Kind::kTcp);
  EXPECT_EQ(tcp.port, 8080);

  const server::Address local = server::parse_address("localhost:9");
  EXPECT_EQ(local.host, "127.0.0.1");

  EXPECT_THROW((void)server::parse_address("unix:"), util::Error);
  EXPECT_THROW((void)server::parse_address("tcp:1.2.3.4:99999"), util::Error);
  EXPECT_THROW((void)server::parse_address("justaname"), util::Error);
}

// --- RankService (socket-free) ----------------------------------------------------

/// One service over a small paper-regime design, shared across the
/// service/daemon tests (construction builds the WLD once).
class ServiceTest : public ::testing::Test {
 protected:
  static core::RunSpec& spec() {
    static core::RunSpec s = [] {
      const core::PaperSetup setup = core::paper_baseline("130nm", 200000);
      core::RunSpec out;
      out.design = setup.design;
      out.options = setup.options;
      return out;
    }();
    return s;
  }
  static const wld::Wld& wld() {
    static wld::Wld w = core::default_wld(spec().design);
    return w;
  }
  static server::RankService& service() {
    static server::RankService s(spec(), wld());
    return s;
  }
};

TEST_F(ServiceTest, PingPongs) {
  EXPECT_EQ(service().handle("{\"type\":\"ping\"}"),
            "{\"ok\":true,\"type\":\"pong\"}");
}

TEST_F(ServiceTest, RankMatchesInProcessComputeRankBitwise) {
  const util::Json response =
      util::Json::parse(service().handle("{\"type\":\"rank\"}"));
  ASSERT_TRUE(response.at("ok").as_bool());

  const core::RankResult direct =
      core::compute_rank(spec().design, spec().options, wld());
  EXPECT_EQ(response.at("rank").as_int(), direct.rank);
  EXPECT_EQ(response.at("total_wires").as_int(), direct.total_wires);
  EXPECT_EQ(response.at("prefix_bunches").as_int(), direct.prefix_bunches);
  EXPECT_EQ(response.at("refined_wires").as_int(), direct.refined_wires);
  EXPECT_EQ(response.at("repeater_count").as_int(), direct.repeater_count);
  EXPECT_EQ(response.at("all_assigned").as_bool(), direct.all_assigned);
  // Bitwise, not approximate: the service must add no arithmetic.
  const double got_norm = response.at("normalized").as_double();
  const double got_area = response.at("repeater_area_m2").as_double();
  EXPECT_EQ(std::memcmp(&got_norm, &direct.normalized, sizeof got_norm), 0);
  EXPECT_EQ(
      std::memcmp(&got_area, &direct.repeater_area_used, sizeof got_area), 0);
}

TEST_F(ServiceTest, OverridesReachTheSolverAndUnknownKeysAreRejected) {
  // A 3x clock makes targets strictly harder: the override must visibly
  // reach the solver (the small test design has no K headroom, so the
  // clock is the discriminating knob here).
  const util::Json base =
      util::Json::parse(service().handle("{\"type\":\"rank\"}"));
  const util::Json harder = util::Json::parse(service().handle(
      "{\"type\":\"rank\",\"overrides\":{\"clock_hz\":1.5e9}}"));
  EXPECT_LT(harder.at("rank").as_int(), base.at("rank").as_int());

  // String-typed numbers go through the same parser.
  const util::Json same = util::Json::parse(service().handle(
      "{\"type\":\"rank\",\"overrides\":{\"clock_hz\":\"1.5e9\"}}"));
  EXPECT_EQ(same.dump(), harder.dump());

  const util::Json rejected = util::Json::parse(service().handle(
      "{\"type\":\"rank\",\"overrides\":{\"gates\":9}}"));
  EXPECT_FALSE(rejected.at("ok").as_bool());
  EXPECT_EQ(rejected.at("error").at("code").as_string(), "bad-input");

  const util::Json invalid = util::Json::parse(service().handle(
      "{\"type\":\"rank\",\"overrides\":{\"miller_factor\":-1}}"));
  EXPECT_FALSE(invalid.at("ok").as_bool());
  EXPECT_EQ(invalid.at("error").at("code").as_string(), "bad-input");
}

TEST_F(ServiceTest, SweepMatchesRankPointForPoint) {
  const util::Json sweep = util::Json::parse(service().handle(
      "{\"type\":\"sweep\",\"parameter\":\"K\",\"lo\":3.9,\"hi\":2.9,"
      "\"steps\":3}"));
  ASSERT_TRUE(sweep.at("ok").as_bool());
  const auto& points = sweep.at("points").as_array();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].at("value").as_double(), 3.9);
  EXPECT_DOUBLE_EQ(points[2].at("value").as_double(), 2.9);

  for (const util::Json& point : points) {
    util::Json request;
    request["type"] = "rank";
    util::Json overrides;
    overrides["ild_permittivity"] = point.at("value").as_double();
    request["overrides"] = std::move(overrides);
    const util::Json one = util::Json::parse(service().handle(request.dump()));
    EXPECT_EQ(one.at("rank").as_int(), point.at("rank").as_int());
  }
}

TEST_F(ServiceTest, ErrorsNeverEscapeHandle) {
  for (const char* bad : {
           "not json at all",
           "[]",                                     // not an object
           "{\"no_type\":1}",                        // missing type
           "{\"type\":\"launch-missiles\"}",         // unknown type
           "{\"type\":\"sleep\",\"ms\":1}",          // gated test endpoint
           "{\"type\":\"sweep\",\"parameter\":\"K\",\"lo\":1,\"hi\":2,"
           "\"steps\":100000000}",                   // steps cap
           "{\"type\":\"sweep\",\"parameter\":\"Q\",\"lo\":1,\"hi\":2,"
           "\"steps\":2}",                           // unknown parameter
       }) {
    const util::Json response = util::Json::parse(service().handle(bad));
    EXPECT_FALSE(response.at("ok").as_bool()) << bad;
    EXPECT_FALSE(response.at("error").at("code").as_string().empty()) << bad;
  }
  const util::Json malformed =
      util::Json::parse(service().handle("{{{{"));
  EXPECT_EQ(malformed.at("error").at("code").as_string(), "malformed");
}

TEST_F(ServiceTest, MetricsExportIsServedInline) {
  const util::Json response =
      util::Json::parse(service().handle("{\"type\":\"metrics\"}"));
  ASSERT_TRUE(response.at("ok").as_bool());
  const std::string& body = response.at("body").as_string();
  EXPECT_NE(body.find("iarank_server_requests_total"), std::string::npos);
  EXPECT_NE(body.find("iarank_server_request_seconds"), std::string::npos);
}

// --- the daemon end to end --------------------------------------------------------

class ServerTest : public ServiceTest {
 protected:
  /// A fresh unix-socket path under a per-test temp directory (sun_path
  /// is only ~100 bytes, so keep it short).
  static std::string socket_path(const std::string& name) {
    const auto dir = std::filesystem::path(::testing::TempDir()) / "iarank_srv";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
};

TEST_F(ServerTest, EndToEndOverUnixSocket) {
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("e2e.sock");
  options.workers = 2;
  server::Server daemon(service(), options);

  const int fd = server::connect_to(daemon.address());
  EXPECT_EQ(server::round_trip(fd, "{\"type\":\"ping\"}"),
            "{\"ok\":true,\"type\":\"pong\"}");
  // The response over the wire is the service's response, byte for byte.
  EXPECT_EQ(server::round_trip(fd, "{\"type\":\"rank\"}"),
            service().handle("{\"type\":\"rank\"}"));
  ::close(fd);
  daemon.stop();
}

TEST_F(ServerTest, ConcurrentClientsReceiveIdenticalBytes) {
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("concurrent.sock");
  options.workers = 4;
  server::Server daemon(service(), options);

  const std::string request =
      "{\"type\":\"rank\",\"overrides\":{\"ild_permittivity\":3.1}}";
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 5;
  std::vector<std::string> first_responses(kClients);
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = server::connect_to(daemon.address());
      first_responses[c] = server::round_trip(fd, request);
      for (int r = 1; r < kRequestsEach; ++r) {
        if (server::round_trip(fd, request) != first_responses[c]) {
          ++mismatches;
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  daemon.stop();

  EXPECT_EQ(mismatches.load(), 0);
  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(first_responses[c], first_responses[0]) << "client " << c;
  }
  EXPECT_NE(first_responses[0].find("\"ok\":true"), std::string::npos);
}

TEST_F(ServerTest, MalformedFramePoisonsOnlyItsConnection) {
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("malformed.sock");
  options.workers = 1;
  options.max_frame_bytes = 4096;
  server::Server daemon(service(), options);

  // Connection 1 sends an oversized frame: it gets an error and a close.
  const int bad_fd = server::connect_to(daemon.address());
  const unsigned char huge_header[4] = {0x7F, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::send(bad_fd, huge_header, 4, 0), 4);
  const server::FrameResult reply = server::read_frame(bad_fd);
  ASSERT_EQ(reply.state, server::FrameResult::State::kOk);
  EXPECT_NE(reply.payload.find("\"malformed\""), std::string::npos);
  EXPECT_EQ(server::read_frame(bad_fd).state,
            server::FrameResult::State::kEof);
  ::close(bad_fd);

  // Unparseable JSON inside a well-formed frame: error response, the
  // connection stays usable.
  const int fd = server::connect_to(daemon.address());
  const std::string garbage_reply = server::round_trip(fd, "}{");
  EXPECT_NE(garbage_reply.find("\"malformed\""), std::string::npos);
  EXPECT_EQ(server::round_trip(fd, "{\"type\":\"ping\"}"),
            "{\"ok\":true,\"type\":\"pong\"}");
  ::close(fd);
  daemon.stop();
}

TEST_F(ServerTest, FloodedQueueAnswersOverloaded) {
  // One worker, a one-slot queue, and a service with the sleep endpoint:
  // occupy the worker, fill the slot, then the next request must bounce.
  server::ServiceOptions service_options;
  service_options.enable_test_endpoints = true;
  server::RankService slow_service(spec(), wld(), service_options);

  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("overload.sock");
  options.workers = 1;
  options.queue_capacity = 1;
  server::Server daemon(slow_service, options);

  const auto occupy = [&](int ms) {
    return std::thread([&, ms] {
      const int fd = server::connect_to(daemon.address());
      const std::string response = server::round_trip(
          fd, "{\"type\":\"sleep\",\"ms\":" + std::to_string(ms) + "}");
      EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
      ::close(fd);
    });
  };
  // First sleeper occupies the worker; give it time to be popped, then
  // the second parks in the queue's only slot.
  std::thread first = occupy(600);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::thread second = occupy(10);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const int fd = server::connect_to(daemon.address());
  const std::string bounced =
      server::round_trip(fd, "{\"type\":\"sleep\",\"ms\":1}");
  EXPECT_NE(bounced.find("\"overloaded\"", 0), std::string::npos) << bounced;
  // The same connection is still healthy for cheap inline requests.
  EXPECT_EQ(server::round_trip(fd, "{\"type\":\"ping\"}"),
            "{\"ok\":true,\"type\":\"pong\"}");
  ::close(fd);

  first.join();
  second.join();
  daemon.stop();
}

TEST_F(ServerTest, StopDrainsQueuedRequests) {
  server::ServiceOptions service_options;
  service_options.enable_test_endpoints = true;
  server::RankService slow_service(spec(), wld(), service_options);

  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("drain.sock");
  options.workers = 1;
  options.queue_capacity = 8;
  server::Server daemon(slow_service, options);

  // Three in-flight sleepers: one running, two queued. stop() must answer
  // all three (drain), not drop the queued ones.
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      const int fd = server::connect_to(daemon.address());
      const std::string response =
          server::round_trip(fd, "{\"type\":\"sleep\",\"ms\":150}");
      if (response.find("\"ok\":true") != std::string::npos) ++answered;
      ::close(fd);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  daemon.stop();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(answered.load(), 3);
}

TEST_F(ServerTest, StaleSocketFileIsReplacedLiveListenerIsNot) {
  const std::string path = socket_path("stale.sock");
  {
    server::ServerOptions options;
    options.address.kind = server::Address::Kind::kUnix;
    options.address.path = path;
    server::Server daemon(service(), options);
    // A second daemon on the same live socket must refuse.
    EXPECT_THROW(server::Server(service(), options), util::Error);
    daemon.stop();
  }
  // Simulate a crashed daemon: recreate the socket file with no listener.
  {
    server::ServerOptions options;
    options.address.kind = server::Address::Kind::kUnix;
    options.address.path = path;
    server::Server first(service(), options);
    // Destructor unlinks; re-create a stale file by hand.
  }
  {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::snprintf(sa.sun_path, sizeof(sa.sun_path), "%s", path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
    ::close(fd);  // bound but never listening: a stale file remains
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = path;
  server::Server daemon(service(), options);  // must replace the stale file
  const int fd = server::connect_to(daemon.address());
  EXPECT_EQ(server::round_trip(fd, "{\"type\":\"ping\"}"),
            "{\"ok\":true,\"type\":\"pong\"}");
  ::close(fd);
  daemon.stop();
}

TEST_F(ServerTest, TcpLoopbackWithKernelAssignedPort) {
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kTcp;
  options.address.host = "127.0.0.1";
  options.address.port = 0;  // kernel picks
  server::Server daemon(service(), options);
  ASSERT_GT(daemon.address().port, 0);

  const int fd = server::connect_to(daemon.address());
  EXPECT_EQ(server::round_trip(fd, "{\"type\":\"ping\"}"),
            "{\"ok\":true,\"type\":\"pong\"}");
  ::close(fd);
  daemon.stop();
}

// --- wire-level robustness --------------------------------------------------------

TEST_F(ServerTest, SlowClientDribblesAFrameByteAtATime) {
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("dribble.sock");
  options.workers = 1;
  server::Server daemon(service(), options);

  const int fd = server::connect_to(daemon.address());
  // Client -> server: the frame arrives one byte per read, so the
  // server's partial-read state machine must reassemble it.
  std::string framed;
  server::append_frame(framed, "{\"type\":\"ping\"}");
  for (const char byte : framed) {
    ASSERT_EQ(::send(fd, &byte, 1, 0), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Server -> client: drain the response one byte at a time too.
  const auto recv_byte = [&] {
    char byte = 0;
    ::ssize_t n;
    do {
      n = ::recv(fd, &byte, 1, 0);
    } while (n < 0 && errno == EINTR);
    EXPECT_EQ(n, 1);
    return byte;
  };
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len = (len << 8) | static_cast<unsigned char>(recv_byte());
  }
  std::string payload;
  for (std::uint32_t i = 0; i < len; ++i) payload += recv_byte();
  EXPECT_EQ(payload, "{\"ok\":true,\"type\":\"pong\"}");
  ::close(fd);
  daemon.stop();
}

TEST_F(ServerTest, FrameSizedExactlyAtTheLimitRoundTrips) {
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("maxframe.sock");
  options.workers = 1;
  server::Server daemon(service(), options);

  // A valid request padded to exactly kMaxFrameBytes: the limit is
  // inclusive on both the client writer and the server reader.
  const std::string prefix = "{\"type\":\"ping\",\"pad\":\"";
  const std::string suffix = "\"}";
  std::string request = prefix;
  request.resize(server::kMaxFrameBytes - suffix.size(), 'x');
  request += suffix;
  ASSERT_EQ(request.size(), server::kMaxFrameBytes);

  const int fd = server::connect_to(daemon.address());
  EXPECT_EQ(server::round_trip(fd, request),
            "{\"ok\":true,\"type\":\"pong\"}");
  // The connection survives the giant frame.
  EXPECT_EQ(server::round_trip(fd, "{\"type\":\"ping\"}"),
            "{\"ok\":true,\"type\":\"pong\"}");
  ::close(fd);
  daemon.stop();
}

TEST_F(ServerTest, PipelinedResponsesStayOrderedUnderPartialWrites) {
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("pipeline.sock");
  options.workers = 2;
  server::Server daemon(service(), options);

  // Write far more responses than the socket buffers hold before reading
  // any: the server must buffer the overflow (short writes) and still
  // deliver responses strictly in request order. Every 7th request is
  // malformed so the expected sequence has distinct entries.
  constexpr int kCount = 20000;
  const std::string ping = "{\"type\":\"ping\"}";
  const std::string garbage = "}{";
  const std::string pong_expected = service().handle(ping);
  const std::string garbage_expected = service().handle(garbage);

  const int fd = server::connect_to(daemon.address());
  std::thread writer([&] {
    std::string bulk;
    for (int i = 0; i < kCount; ++i) {
      server::append_frame(bulk, i % 7 == 6 ? garbage : ping);
    }
    std::size_t sent = 0;
    while (sent < bulk.size()) {
      const ::ssize_t n =
          ::send(fd, bulk.data() + sent, bulk.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  });
  int out_of_order = 0;
  for (int i = 0; i < kCount; ++i) {
    const server::FrameResult got = server::read_frame(fd);
    ASSERT_EQ(got.state, server::FrameResult::State::kOk) << "at " << i;
    const std::string& expected =
        i % 7 == 6 ? garbage_expected : pong_expected;
    if (got.payload != expected) ++out_of_order;
  }
  EXPECT_EQ(out_of_order, 0);
  writer.join();
  ::close(fd);
  daemon.stop();
}

// --- request batching -------------------------------------------------------------

TEST_F(ServerTest, QueuedIdenticalRankRequestsCoalesceOntoOneBatch) {
  // One worker pinned by a sleep request: identical rank requests that
  // arrive meanwhile must coalesce onto one batch — one service call,
  // every client answered with identical bytes.
  server::ServiceOptions service_options;
  service_options.enable_test_endpoints = true;
  server::RankService slow_service(spec(), wld(), service_options);

  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("coalesce.sock");
  options.workers = 1;
  options.queue_capacity = 8;
  server::Server daemon(slow_service, options);

  util::Counter& batched =
      util::MetricsRegistry::counter("iarank_server_batched_requests_total");
  util::Counter& total =
      util::MetricsRegistry::counter("iarank_server_requests_total");
  const std::int64_t batched_before = batched.value();
  const std::int64_t total_before = total.value();

  std::thread sleeper([&] {
    const int fd = server::connect_to(daemon.address());
    const std::string response =
        server::round_trip(fd, "{\"type\":\"sleep\",\"ms\":500}");
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
    ::close(fd);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const std::string request = "{\"type\":\"rank\"}";
  constexpr int kClients = 4;
  int fds[kClients];
  for (int c = 0; c < kClients; ++c) {
    fds[c] = server::connect_to(daemon.address());
    ASSERT_TRUE(server::write_frame(fds[c], request).ok());
  }
  std::vector<std::string> responses;
  for (int c = 0; c < kClients; ++c) {
    server::FrameResult got = server::read_frame(fds[c]);
    ASSERT_EQ(got.state, server::FrameResult::State::kOk);
    responses.push_back(std::move(got.payload));
    ::close(fds[c]);
  }
  sleeper.join();
  daemon.stop();

  // Snapshot the deltas before the reference handle() call below bumps
  // the same process-wide counters.
  const std::int64_t batched_delta = batched.value() - batched_before;
  const std::int64_t total_delta = total.value() - total_before;
  const std::string expected = slow_service.handle(request);
  for (const std::string& response : responses) {
    EXPECT_EQ(response, expected);
  }
  // 3 of the 4 attached to the first one's open batch, and the books
  // still count all of them: 1 sleep + 1 executed rank + 3 coalesced.
  EXPECT_EQ(batched_delta, kClients - 1);
  EXPECT_EQ(total_delta, kClients + 1);
}

TEST_F(ServerTest, BatchedResponsesBitwiseIdenticalAcrossWorkerCounts) {
  // The batching equivalence property: under mixed-override traffic with
  // natural coalescing, every response equals the unbatched service
  // response bitwise, for 1, 4 and 8 workers.
  const std::vector<std::string> variants = {
      "{\"type\":\"rank\"}",
      "{\"type\":\"rank\",\"overrides\":{\"ild_permittivity\":3.0}}",
      "{\"type\":\"rank\",\"overrides\":{\"ild_permittivity\":3.3}}",
      "{\"type\":\"rank\",\"overrides\":{\"miller_factor\":1.4}}",
      "{\"type\":\"rank\",\"overrides\":{\"clock_hz\":\"1.5e9\"}}",
  };
  std::vector<std::string> expected;
  expected.reserve(variants.size());
  for (const std::string& v : variants) expected.push_back(service().handle(v));

  for (const unsigned workers : {1u, 4u, 8u}) {
    server::ServerOptions options;
    options.address.kind = server::Address::Kind::kUnix;
    options.address.path =
        socket_path("equiv" + std::to_string(workers) + ".sock");
    options.workers = workers;
    server::Server daemon(service(), options);

    constexpr int kClients = 6;
    constexpr int kRequestsEach = 10;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        const int fd = server::connect_to(daemon.address());
        for (int r = 0; r < kRequestsEach; ++r) {
          const std::size_t v = (c + r) % variants.size();
          if (server::round_trip(fd, variants[v]) != expected[v]) {
            ++mismatches;
          }
        }
        ::close(fd);
      });
    }
    for (std::thread& t : clients) t.join();
    daemon.stop();
    EXPECT_EQ(mismatches.load(), 0) << "workers=" << workers;
  }
}

// --- the HTTP listener ------------------------------------------------------------

/// One raw HTTP exchange: send `request` verbatim, read to EOF (the
/// server closes after each response).
std::string http_exchange(const server::Address& address,
                          const std::string& request) {
  const int fd = server::connect_to(address);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ::ssize_t n = ::send(fd, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    EXPECT_GT(n, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ::ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(ServerTest, HttpMetricsEndpointSpeaksPrometheusText) {
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("http.sock");
  options.workers = 1;
  options.http_port = 0;  // kernel picks
  server::Server daemon(service(), options);
  ASSERT_TRUE(daemon.http_enabled());
  ASSERT_GT(daemon.http_address().port, 0);

  const std::string response = http_exchange(
      daemon.http_address(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(
      response.find(
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"),
      std::string::npos);
  const auto body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  // Content-Length matches the body actually delivered.
  const auto cl_at = response.find("Content-Length: ");
  ASSERT_NE(cl_at, std::string::npos);
  EXPECT_EQ(std::stoul(response.substr(cl_at + 16)), body.size());
  EXPECT_NE(body.find("# TYPE iarank_server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("iarank_server_request_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);

  // /metrics.json parses as JSON; /healthz answers; unknown paths 404;
  // non-GET methods 405.
  const std::string json_response = http_exchange(
      daemon.http_address(), "GET /metrics.json HTTP/1.1\r\n\r\n");
  const auto json_at = json_response.find("\r\n\r\n");
  ASSERT_NE(json_at, std::string::npos);
  EXPECT_NO_THROW((void)util::Json::parse(json_response.substr(json_at + 4)));
  EXPECT_EQ(http_exchange(daemon.http_address(),
                          "GET /healthz HTTP/1.1\r\n\r\n")
                .rfind("HTTP/1.1 200 OK\r\n", 0),
            0u);
  EXPECT_EQ(http_exchange(daemon.http_address(),
                          "GET /nope HTTP/1.1\r\n\r\n")
                .rfind("HTTP/1.1 404 Not Found\r\n", 0),
            0u);
  EXPECT_EQ(http_exchange(daemon.http_address(),
                          "POST /metrics HTTP/1.1\r\n\r\n")
                .rfind("HTTP/1.1 405 Method Not Allowed\r\n", 0),
            0u);
  daemon.stop();
}

TEST_F(ServerTest, HttpGarbageIsIsolatedFromTheLoop) {
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("httpbad.sock");
  options.workers = 1;
  options.http_port = 0;
  server::Server daemon(service(), options);

  // A malformed request line gets a 400.
  EXPECT_EQ(http_exchange(daemon.http_address(), "NOT-HTTP-AT-ALL\r\n\r\n")
                .rfind("HTTP/1.1 400 Bad Request\r\n", 0),
            0u);
  // An unbounded header stream is cut off with a 400, not buffered
  // forever.
  EXPECT_EQ(http_exchange(daemon.http_address(),
                          "GET / HTTP/1.1\r\n" +
                              std::string(20000, 'h') + "\r\n")
                .rfind("HTTP/1.1 400 Bad Request\r\n", 0),
            0u);
  // Framed-protocol bytes on the HTTP port: never a response, and the
  // connection ends at the client's EOF instead of wedging the loop.
  {
    const int fd = server::connect_to(daemon.http_address());
    std::string framed;
    server::append_frame(framed, "{\"type\":\"ping\"}");
    ASSERT_EQ(::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<::ssize_t>(framed.size()));
    ::shutdown(fd, SHUT_WR);
    char buf[64];
    EXPECT_EQ(::recv(fd, buf, sizeof buf, 0), 0);  // EOF, no bytes
    ::close(fd);
  }
  // Both listeners still serve.
  EXPECT_EQ(http_exchange(daemon.http_address(),
                          "GET /healthz HTTP/1.1\r\n\r\n")
                .rfind("HTTP/1.1 200 OK\r\n", 0),
            0u);
  const int fd = server::connect_to(daemon.address());
  EXPECT_EQ(server::round_trip(fd, "{\"type\":\"ping\"}"),
            "{\"ok\":true,\"type\":\"pong\"}");
  ::close(fd);
  daemon.stop();
}

// --- the startup lockfile ---------------------------------------------------------

TEST_F(ServerTest, LockfileClosesTheStaleProbeRace) {
  // Regression for the probe-then-unlink-then-bind TOCTOU: a starter that
  // loses the lock race must neither bind nor unlink anything — the stale
  // file is untouched until the lock holder decides its fate.
  const std::string path = socket_path("toctou.sock");
  {
    // A stale socket file (bound once, never listening, owner gone).
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::snprintf(sa.sun_path, sizeof(sa.sun_path), "%s", path.c_str());
    ::unlink(path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
    ::close(fd);
  }
  // Another starter holds the lock mid-sequence.
  const int lock_fd =
      ::open((path + ".lock").c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0600);
  ASSERT_GE(lock_fd, 0);
  ASSERT_EQ(::flock(lock_fd, LOCK_EX | LOCK_NB), 0);

  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = path;
  EXPECT_THROW(server::Server(service(), options), util::Error);
  EXPECT_TRUE(std::filesystem::exists(path))
      << "loser of the lock race must not unlink the socket file";

  ASSERT_EQ(::flock(lock_fd, LOCK_UN), 0);
  ::close(lock_fd);

  // With the lock released, startup replaces the stale file and serves.
  server::Server daemon(service(), options);
  const int fd = server::connect_to(daemon.address());
  EXPECT_EQ(server::round_trip(fd, "{\"type\":\"ping\"}"),
            "{\"ok\":true,\"type\":\"pong\"}");
  ::close(fd);
  daemon.stop();
}

// --- request-scoped observability -------------------------------------------------

TEST_F(ServerTest, TracedRequestsEchoUniqueIdsDefaultResponsesCarryNone) {
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("traceid.sock");
  options.workers = 2;
  server::Server daemon(service(), options);

  const int fd = server::connect_to(daemon.address());
  // The default path: no trace field, no request_id, bytes identical to
  // the socket-free service response.
  const std::string plain = server::round_trip(fd, "{\"type\":\"rank\"}");
  EXPECT_EQ(plain.find("request_id"), std::string::npos);
  EXPECT_EQ(plain, service().handle("{\"type\":\"rank\"}"));

  // Opting in: a top-level trace field buys a server-assigned id, unique
  // per request, with the payload otherwise unchanged.
  const util::Json first = util::Json::parse(
      server::round_trip(fd, "{\"trace\":true,\"type\":\"rank\"}"));
  const util::Json second = util::Json::parse(
      server::round_trip(fd, "{\"trace\":true,\"type\":\"rank\"}"));
  ASSERT_TRUE(first.at("ok").as_bool());
  EXPECT_GT(first.at("request_id").as_int(), 0);
  EXPECT_NE(first.at("request_id").as_int(), second.at("request_id").as_int());
  EXPECT_EQ(first.at("rank").as_int(),
            util::Json::parse(plain).at("rank").as_int());
  ::close(fd);
  daemon.stop();
}

TEST_F(ServerTest, EventLogEnabledKeepsResponsesByteIdenticalAcrossWorkers) {
  // The tentpole determinism contract: with the event log open, the
  // flight recorder armed and a slow threshold that flags everything,
  // default-path responses stay bitwise identical to the plain service
  // responses — for 1, 4 and 8 workers.
  const std::vector<std::string> variants = {
      "{\"type\":\"rank\"}",
      "{\"type\":\"rank\",\"overrides\":{\"ild_permittivity\":3.0}}",
      "{\"type\":\"rank\",\"overrides\":{\"ild_permittivity\":3.3}}",
      "{\"type\":\"rank\",\"overrides\":{\"miller_factor\":1.4}}",
      "{\"type\":\"rank\",\"overrides\":{\"clock_hz\":\"1.5e9\"}}",
  };
  std::vector<std::string> expected;  // captured with the log disabled
  expected.reserve(variants.size());
  for (const std::string& v : variants) expected.push_back(service().handle(v));

  const auto dir = std::filesystem::path(::testing::TempDir()) / "iarank_srv";
  std::filesystem::create_directories(dir);
  const std::string log_path = (dir / "server_events.jsonl").string();
  const std::string flight_path = (dir / "server_flight.jsonl").string();
  std::filesystem::remove(log_path);
  util::EventLog& events = util::EventLog::instance();
  events.open(log_path);
  events.arm_flight_recorder(flight_path);

  for (const unsigned workers : {1u, 4u, 8u}) {
    server::ServerOptions options;
    options.address.kind = server::Address::Kind::kUnix;
    options.address.path =
        socket_path("evtlog" + std::to_string(workers) + ".sock");
    options.workers = workers;
    options.slow_ms = 1e-6;  // everything is "slow": maximal logging
    server::Server daemon(service(), options);

    constexpr int kClients = 6;
    constexpr int kRequestsEach = 10;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        const int fd = server::connect_to(daemon.address());
        for (int r = 0; r < kRequestsEach; ++r) {
          const std::size_t v = (c + r) % variants.size();
          if (server::round_trip(fd, variants[v]) != expected[v]) {
            ++mismatches;
          }
        }
        ::close(fd);
      });
    }
    for (std::thread& t : clients) t.join();
    daemon.stop();
    EXPECT_EQ(mismatches.load(), 0) << "workers=" << workers;
  }

  events.flush();
  events.disarm_flight_recorder();
  events.close();

  // The log actually captured the traffic, and every line is valid.
  std::ifstream in(log_path);
  std::string line;
  std::size_t slow_events = 0;
  while (std::getline(in, line)) {
    const util::Json event = util::Json::parse(line);
    EXPECT_TRUE(event.at("ts_ms").is_number()) << line;
    if (event.at("type").as_string() == "request.slow") ++slow_events;
  }
  EXPECT_GT(slow_events, 0u);
}

TEST_F(ServerTest, DebugEndpointsServeRequestLogAndBoundedTraceCapture) {
  server::ServerOptions options;
  options.address.kind = server::Address::Kind::kUnix;
  options.address.path = socket_path("debug.sock");
  options.workers = 2;
  options.http_port = 0;
  options.slow_ms = 1e-6;  // every request lands in the slow ring
  server::Server daemon(service(), options);
  ASSERT_TRUE(daemon.http_enabled());

  util::Histogram& queue_wait = util::MetricsRegistry::histogram(
      "iarank_server_queue_wait_seconds", util::Histogram::duration_bounds());
  const std::int64_t waits_before = queue_wait.count();

  const int fd = server::connect_to(daemon.address());
  for (int i = 0; i < 3; ++i) {
    (void)server::round_trip(fd, "{\"type\":\"rank\"}");
  }
  (void)server::round_trip(fd, "{\"trace\":true,\"type\":\"rank\"}");
  ::close(fd);
  // rank requests take the batched path, so each one's queue wait was
  // observed.
  EXPECT_GE(queue_wait.count() - waits_before, 4);

  const auto body_of = [](const std::string& response) {
    const auto at = response.find("\r\n\r\n");
    EXPECT_NE(at, std::string::npos) << response;
    return response.substr(at + 4);
  };

  // /debug/requests: the recent ring, oldest first, with the stage
  // breakdown on every entry.
  const std::string recent_response = http_exchange(
      daemon.http_address(), "GET /debug/requests HTTP/1.1\r\n\r\n");
  ASSERT_EQ(recent_response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  const util::Json recent = util::Json::parse(body_of(recent_response));
  EXPECT_GE(recent.at("count").as_int(), 4);
  const auto& entries = recent.at("requests").as_array();
  ASSERT_GE(entries.size(), 4u);
  for (const util::Json& entry : entries) {
    EXPECT_GT(entry.at("request_id").as_int(), 0);
    EXPECT_TRUE(entry.at("ms").contains("queue"));
    EXPECT_TRUE(entry.at("ms").contains("dp"));
    EXPECT_TRUE(entry.at("ms").contains("write"));
  }

  // /debug/slow: with a microscopic threshold, the same requests again.
  const util::Json slow = util::Json::parse(body_of(http_exchange(
      daemon.http_address(), "GET /debug/slow HTTP/1.1\r\n\r\n")));
  EXPECT_GE(slow.at("count").as_int(), 4);
  EXPECT_GT(slow.at("slow_threshold_ms").as_double(), 0.0);

  // /debug/trace: a bounded capture returns Chrome trace JSON; bad or
  // missing ms is a client error, not a hang.
  const std::string trace_response = http_exchange(
      daemon.http_address(), "GET /debug/trace?ms=50 HTTP/1.1\r\n\r\n");
  ASSERT_EQ(trace_response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_TRUE(util::Json::parse(body_of(trace_response))
                  .contains("traceEvents"));
  EXPECT_EQ(http_exchange(daemon.http_address(),
                          "GET /debug/trace?ms=bogus HTTP/1.1\r\n\r\n")
                .rfind("HTTP/1.1 400 Bad Request\r\n", 0),
            0u);

  // Only one capture at a time: a second request while one is running is
  // refused with 409, and the first still completes.
  const int slow_fd = server::connect_to(daemon.http_address());
  const std::string first_request =
      "GET /debug/trace?ms=400 HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(slow_fd, first_request.data(), first_request.size(),
                   MSG_NOSIGNAL),
            static_cast<::ssize_t>(first_request.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(http_exchange(daemon.http_address(),
                          "GET /debug/trace?ms=10 HTTP/1.1\r\n\r\n")
                .rfind("HTTP/1.1 409 Conflict\r\n", 0),
            0u);
  std::string first_response;
  char buf[4096];
  while (true) {
    const ::ssize_t n = ::recv(slow_fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    first_response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(slow_fd);
  EXPECT_EQ(first_response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  daemon.stop();
}

TEST(RequestLog, RingsAreBoundedAndSlowCaptureHonorsTheThreshold) {
  server::RequestLog log(/*recent_capacity=*/4, /*slow_capacity=*/2);
  log.set_slow_threshold_ms(10.0);
  for (int i = 0; i < 10; ++i) {
    server::RequestContext context;
    context.request_id = static_cast<std::uint64_t>(i + 1);
    context.type = "rank";
    context.ok = true;
    context.status = "ok";
    context.total_seconds = i >= 8 ? 0.05 : 0.001;  // last two are slow
    log.record(context);
  }
  const util::Json recent = log.recent_json();
  EXPECT_EQ(recent.at("count").as_int(), 10);  // lifetime total
  const auto& entries = recent.at("requests").as_array();
  ASSERT_EQ(entries.size(), 4u);  // ring capacity
  EXPECT_EQ(entries.back().at("request_id").as_int(), 10);  // newest kept

  const util::Json slow = log.slow_json();
  EXPECT_EQ(slow.at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(slow.at("slow_threshold_ms").as_double(), 10.0);
  for (const util::Json& entry : slow.at("requests").as_array()) {
    EXPECT_GE(entry.at("ms").at("total").as_double(), 10.0);
  }

  // The write stage is the residual of total minus the clocked stages.
  server::RequestContext context;
  context.total_seconds = 0.010;
  context.dp_seconds = 0.004;
  context.parse_seconds = 0.001;
  const util::Json rendered = context.to_json();
  EXPECT_NEAR(rendered.at("ms").at("write").as_double(), 5.0, 1e-9);

  // A non-positive threshold disables slow capture entirely.
  server::RequestLog quiet(4, 2);
  quiet.set_slow_threshold_ms(0.0);
  server::RequestContext slow_context;
  slow_context.total_seconds = 99.0;
  quiet.record(slow_context);
  EXPECT_EQ(quiet.slow_json().at("count").as_int(), 0);
}

// --- client resilience: timeouts and bounded retry --------------------------------

/// A unix socket that listens but never accepts or responds — the wire
/// view of a wedged daemon. Connects land in the backlog and succeed;
/// every read after that stalls forever.
class StalledListener {
 public:
  explicit StalledListener(const std::string& path) : path_(path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(fd_, 8), 0);
  }
  ~StalledListener() {
    if (fd_ >= 0) ::close(fd_);
    std::filesystem::remove(path_);
  }
  [[nodiscard]] server::Address address() const {
    server::Address a;
    a.kind = server::Address::Kind::kUnix;
    a.path = path_;
    return a;
  }

 private:
  std::string path_;
  int fd_ = -1;
};

TEST_F(ServerTest, StalledServerFailsWithinTheReadDeadline) {
  const StalledListener stalled(socket_path("stalled.sock"));
  server::ClientOptions client;
  client.timeout_seconds = 0.3;
  const auto start = std::chrono::steady_clock::now();
  const int fd = server::connect_to(stalled.address(), client);
  try {
    (void)server::round_trip(fd, "{\"type\":\"ping\"}");
    ::close(fd);
    FAIL() << "a never-responding server must not hang the client";
  } catch (const util::Error& e) {
    ::close(fd);
    EXPECT_EQ(e.category(), util::ErrorCategory::kIo);
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  EXPECT_LT(elapsed, 5.0) << "deadline did not bound the stall";
}

TEST_F(ServerTest, RetryBudgetExhaustsAgainstAPersistentStall) {
  const StalledListener stalled(socket_path("stalled_retry.sock"));
  server::ClientOptions client;
  client.timeout_seconds = 0.2;
  client.retries = 2;
  client.backoff_seconds = 0.01;
  EXPECT_THROW(
      {
        (void)server::request_with_retry(stalled.address(),
                                         "{\"type\":\"ping\"}", client);
      },
      util::Error);
}

TEST_F(ServerTest, RetrySucceedsOnceTheServerComesUp) {
  const std::string path = socket_path("lateboot.sock");
  // The daemon appears only after the client's first attempts have been
  // refused: the connect failures are kIo, so the retry loop must carry
  // the client across the gap.
  std::atomic<bool> served{false};
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    server::ServerOptions options;
    options.address.kind = server::Address::Kind::kUnix;
    options.address.path = path;
    options.workers = 1;
    server::Server daemon(service(), options);
    while (!served.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    daemon.stop();
  });
  server::Address address;
  address.kind = server::Address::Kind::kUnix;
  address.path = path;
  server::ClientOptions client;
  client.timeout_seconds = 5.0;
  client.retries = 20;
  client.backoff_seconds = 0.05;
  const std::string response =
      server::request_with_retry(address, "{\"type\":\"ping\"}", client);
  served.store(true);
  late.join();
  EXPECT_EQ(response, "{\"ok\":true,\"type\":\"pong\"}");
}

}  // namespace
}  // namespace iarank
