/// Cross-cutting property tests: invariances of the rank metric
/// (scaling, bunch merging), packer monotonicities, node projection,
/// WLD algebra, and parameterized sweeps across nodes and Rent exponents.

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/dp_rank.hpp"
#include "src/core/free_pack.hpp"
#include "src/tech/rc.hpp"
#include "src/tech/scaling.hpp"
#include "src/util/error.hpp"
#include "src/util/units.hpp"
#include "src/wld/davis.hpp"
#include "tests/helpers.hpp"

namespace core = iarank::core;
namespace tech = iarank::tech;
namespace wld = iarank::wld;
namespace units = iarank::util::units;
using iarank::util::Error;

// --- rank invariances --------------------------------------------------------------

namespace {

/// Rebuilds an instance with all lengths scaled by `c` and all areas
/// (pitch-derived wire areas, via areas, repeater areas, capacity,
/// budget) scaled consistently — rank must be invariant.
core::Instance scaled_copy(const core::Instance& inst, double c) {
  std::vector<core::Bunch> bunches = inst.bunches();
  for (auto& b : bunches) b.length *= c;
  std::vector<core::PairInfo> pairs = inst.pairs();
  for (auto& p : pairs) {
    p.via_area *= c;       // wire areas scale by c via length; match vias
    p.repeater_area *= c;  // and the repeater budget below
  }
  std::vector<std::vector<core::DelayPlan>> plans;
  plans.reserve(inst.bunch_count());
  for (std::size_t b = 0; b < inst.bunch_count(); ++b) {
    std::vector<core::DelayPlan> row;
    for (std::size_t j = 0; j < inst.pair_count(); ++j) {
      core::DelayPlan p = inst.plan(b, j);
      p.area_per_wire *= c;
      row.push_back(p);
    }
    plans.push_back(std::move(row));
  }
  return core::Instance::from_raw(std::move(bunches), std::move(pairs),
                                  std::move(plans), inst.pair_capacity() * c,
                                  inst.repeater_budget() * c, inst.vias());
}

}  // namespace

class RankInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RankInvariance, ScaleInvariant) {
  const auto inst = iarank::testing::random_instance(GetParam() + 9000);
  const auto base = core::dp_rank(inst);
  for (const double c : {0.01, 7.3}) {
    const auto scaled = scaled_copy(inst, c);
    EXPECT_EQ(core::dp_rank(scaled).rank, base.rank)
        << "seed " << GetParam() << " c=" << c;
  }
}

TEST_P(RankInvariance, MergingIdenticalBunchesPreservesRank) {
  // Split every bunch of count >= 2 into two; rank must not change
  // (the DP's chunk enumeration sees a finer but equivalent instance).
  iarank::testing::RandomInstanceSpec spec;
  spec.min_bunches = 3;
  spec.max_bunches = 5;
  const auto inst = iarank::testing::random_instance(GetParam() + 9500, spec);

  std::vector<core::Bunch> bunches;
  std::vector<std::vector<core::DelayPlan>> plans;
  for (std::size_t b = 0; b < inst.bunch_count(); ++b) {
    std::vector<core::DelayPlan> row;
    for (std::size_t j = 0; j < inst.pair_count(); ++j) {
      row.push_back(inst.plan(b, j));
    }
    // Duplicate the bunch (count 1 each in the helper) as two entries of
    // the same length: a legal sorted order.
    bunches.push_back(inst.bunch(b));
    plans.push_back(row);
    bunches.push_back(inst.bunch(b));
    plans.push_back(std::move(row));
  }
  const auto doubled = core::Instance::from_raw(
      std::move(bunches), inst.pairs(), std::move(plans),
      inst.pair_capacity(), inst.repeater_budget(), inst.vias());

  // Doubling every bunch doubles the wire population; compare against
  // the brute-force optimum of the doubled instance for exactness.
  const auto dp = core::dp_rank(doubled);
  const auto oracle = core::brute_force_rank(doubled);
  EXPECT_EQ(dp.rank, oracle.rank) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankInvariance,
                         ::testing::Range<std::uint64_t>(0, 25));

// --- packer monotonicities --------------------------------------------------------------

class PackerMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackerMonotone, MoreRepeatersAboveNeverHelps) {
  const auto inst = iarank::testing::random_instance(GetParam() + 11000);
  core::FreePackInput few;
  few.repeaters_total = 1.0;
  core::FreePackInput many = few;
  many.repeaters_total = 50.0;
  if (core::free_pack_feasible(inst, many)) {
    EXPECT_TRUE(core::free_pack_feasible(inst, few)) << "seed " << GetParam();
  }
}

TEST_P(PackerMonotone, PreUsedAreaNeverHelps) {
  const auto inst = iarank::testing::random_instance(GetParam() + 12000);
  core::FreePackInput used;
  used.area_used_first_pair = 0.3 * inst.pair_capacity();
  if (core::free_pack_feasible(inst, used)) {
    EXPECT_TRUE(core::free_pack_feasible(inst, {})) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackerMonotone,
                         ::testing::Range<std::uint64_t>(0, 30));

// --- node projection -----------------------------------------------------------------------

TEST(ScaleNode, GeometryShrinksProportionally) {
  const tech::TechNode n130 = tech::node_130nm();
  const tech::TechNode n65 = tech::scale_node(n130, 65 * units::nm);
  EXPECT_NEAR(n65.local.min_width, 0.5 * n130.local.min_width, 1e-15);
  EXPECT_NEAR(n65.global.thickness, 0.5 * n130.global.thickness, 1e-15);
  EXPECT_NEAR(n65.device.c_o, 0.5 * n130.device.c_o, 1e-24);
  EXPECT_NEAR(n65.device.min_inv_area, 0.25 * n130.device.min_inv_area,
              1e-24);
  EXPECT_DOUBLE_EQ(n65.device.r_o, n130.device.r_o);
  EXPECT_NE(n65.name.find("65nm"), std::string::npos);
}

TEST(ScaleNode, ResistancePerLengthGrowsQuadratically) {
  const tech::TechNode n130 = tech::node_130nm();
  const tech::TechNode n65 = tech::scale_node(n130, 65 * units::nm);
  const tech::RcParams params{tech::copper(), 3.9, 2.0,
                              tech::CapacitanceModel::kParallelPlate};
  auto r_of = [&params](const tech::TierGeometry& t) {
    return tech::extract_rc({t.min_width, t.min_spacing, t.thickness,
                             t.thickness, t.via_width},
                            params)
        .resistance;
  };
  EXPECT_NEAR(r_of(n65.local) / r_of(n130.local), 4.0, 1e-9);
  // Capacitance per length is scale-free for fixed aspect ratios.
  auto c_of = [&params](const tech::TierGeometry& t) {
    return tech::extract_rc({t.min_width, t.min_spacing, t.thickness,
                             t.thickness, t.via_width},
                            params)
        .capacitance;
  };
  EXPECT_NEAR(c_of(n65.local) / c_of(n130.local), 1.0, 1e-9);
}

TEST(ScaleNode, FrozenDevicesKeepDeviceParams) {
  const tech::TechNode n130 = tech::node_130nm();
  const tech::TechNode n65 =
      tech::scale_node(n130, 65 * units::nm, tech::DeviceScaling::kFrozen);
  EXPECT_DOUBLE_EQ(n65.device.c_o, n130.device.c_o);
  EXPECT_DOUBLE_EQ(n65.device.min_inv_area, n130.device.min_inv_area);
  // Wires still shrink.
  EXPECT_NEAR(n65.local.min_width, 0.5 * n130.local.min_width, 1e-15);
}

TEST(ScaleNode, DeShrinkThrows) {
  EXPECT_THROW(
      (void)tech::scale_node(tech::node_130nm(), 180 * units::nm), Error);
  EXPECT_THROW((void)tech::scale_node(tech::node_130nm(), 0.0), Error);
}

// --- WLD algebra ------------------------------------------------------------------------------

TEST(WldAlgebra, ReplicatedScalesCounts) {
  const wld::Wld w({{10.0, 2}, {5.0, 3}});
  const auto r = w.replicated(4);
  EXPECT_EQ(r.total_wires(), 20);
  EXPECT_EQ(r.group_count(), 2u);
  EXPECT_THROW((void)w.replicated(0), Error);
}

TEST(WldAlgebra, SlicedKeepsRange) {
  const wld::Wld w({{10.0, 1}, {5.0, 2}, {2.0, 4}});
  const auto s = w.sliced(3.0, 10.0);
  EXPECT_EQ(s.total_wires(), 3);
  EXPECT_DOUBLE_EQ(s.max_length(), 10.0);
  EXPECT_TRUE(w.sliced(100.0, 200.0).empty());
}

TEST(WldAlgebra, MergedCombinesEqualLengths) {
  const wld::Wld a({{10.0, 1}, {5.0, 2}});
  const wld::Wld b({{5.0, 3}, {1.0, 1}});
  const auto m = wld::Wld::merged(a, b);
  EXPECT_EQ(m.total_wires(), 7);
  EXPECT_EQ(m.group_count(), 3u);
  EXPECT_EQ(m.count_longer_than(4.0), 6);
}

TEST(WldAlgebra, SliceAndMergeRoundTrip) {
  const auto w = wld::DavisModel({10000, 0.6, 4.0, 3.0}).generate();
  const auto lower = w.sliced(0.0, 10.0);
  const auto upper = w.sliced(10.0 + 1e-9, 1e9);
  const auto back = wld::Wld::merged(lower, upper);
  EXPECT_EQ(back.total_wires(), w.total_wires());
  EXPECT_EQ(back.group_count(), w.group_count());
}

// --- Davis parameter sweep --------------------------------------------------------------------

class DavisSweep : public ::testing::TestWithParam<double> {};

TEST_P(DavisSweep, NormalizationHoldsAcrossRentP) {
  const double p = GetParam();
  const wld::DavisParams params{40000, p, 4.0, 3.0};
  const wld::DavisModel model(params);
  EXPECT_NEAR(model.expected_count(1.0, params.max_length()),
              params.total_interconnects(),
              params.total_interconnects() * 1e-6);
}

TEST_P(DavisSweep, GeneratedMeanMonotoneInP) {
  const double p = GetParam();
  if (p >= 0.75) return;  // compare p with p + 0.1
  const auto low = wld::DavisModel({40000, p, 4.0, 3.0}).generate();
  const auto high = wld::DavisModel({40000, p + 0.1, 4.0, 3.0}).generate();
  EXPECT_GT(high.stats().mean_length, low.stats().mean_length) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(RentExponents, DavisSweep,
                         ::testing::Values(0.45, 0.55, 0.6, 0.65, 0.75));

// --- cross-node RC ordering ------------------------------------------------------------------

class NodeRc : public ::testing::TestWithParam<const char*> {};

TEST_P(NodeRc, TierResistanceOrdering) {
  const tech::TechNode node = tech::node_by_name(GetParam());
  const tech::RcParams params{tech::copper(), 3.9, 2.0,
                              tech::CapacitanceModel::kSakuraiTamaru};
  auto r_of = [&params](const tech::TierGeometry& t) {
    return tech::extract_rc({t.min_width, t.min_spacing, t.thickness,
                             t.thickness, t.via_width},
                            params)
        .resistance;
  };
  // Local wires are the thinnest, global the fattest.
  EXPECT_GT(r_of(node.local), r_of(node.semi_global));
  EXPECT_GT(r_of(node.semi_global), r_of(node.global));
}

INSTANTIATE_TEST_SUITE_P(AllNodes, NodeRc,
                         ::testing::Values("180nm", "130nm", "90nm"));
