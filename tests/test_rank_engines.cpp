/// Cross-validation of the rank engines: production DP (dp_rank) against
/// the brute-force oracle and the paper-faithful reference DP; the greedy
/// baseline's suboptimality (paper Figure 2); trace consistency.

#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/dp_rank.hpp"
#include "src/core/figure2.hpp"
#include "src/core/greedy_rank.hpp"
#include "src/core/reference_dp.hpp"
#include "tests/helpers.hpp"

namespace core = iarank::core;
namespace tech = iarank::tech;

// --- Figure 2 (the paper's counterexample) ------------------------------------------

TEST(Figure2, GreedyAchievesRankTwo) {
  const auto inst = core::figure2_instance();
  const auto greedy = core::greedy_rank(inst);
  EXPECT_EQ(greedy.rank, core::figure2_expectation().greedy_rank);
  EXPECT_TRUE(greedy.all_assigned);
}

TEST(Figure2, DpAchievesRankFour) {
  const auto inst = core::figure2_instance();
  const auto dp = core::dp_rank(inst);
  EXPECT_EQ(dp.rank, core::figure2_expectation().optimal_rank);
  EXPECT_TRUE(dp.all_assigned);
  // Optimal solution: 1 wire up (4 repeaters) + 3 down (3 repeaters).
  EXPECT_LE(dp.repeater_area_used, inst.repeater_budget() + 1e-9);
}

TEST(Figure2, BruteForceConfirmsOptimum) {
  const auto inst = core::figure2_instance();
  EXPECT_EQ(core::brute_force_rank(inst).rank, 4);
}

TEST(Figure2, ReferenceDpConfirmsOptimum) {
  const auto inst = core::figure2_instance();
  // Budget 8 with unit repeater areas: 8 quanta are exact.
  EXPECT_EQ(core::reference_dp_rank(inst, {8}).rank, 4);
}

// --- randomized oracle cross-validation ----------------------------------------------

class DpOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpOracle, DpMatchesBruteForce) {
  const auto inst = iarank::testing::random_instance(GetParam());
  const auto oracle = core::brute_force_rank(inst);
  const auto dp = core::dp_rank(inst);
  EXPECT_EQ(dp.rank, oracle.rank) << "seed " << GetParam();
  EXPECT_EQ(dp.all_assigned, oracle.all_assigned) << "seed " << GetParam();
}

TEST_P(DpOracle, DpAtLeastGreedy) {
  const auto inst = iarank::testing::random_instance(GetParam() + 1000);
  const auto dp = core::dp_rank(inst);
  const auto greedy = core::greedy_rank(inst);
  EXPECT_GE(dp.rank, greedy.rank) << "seed " << GetParam();
}

TEST_P(DpOracle, ReferenceDpNeverExceedsOracle) {
  const auto inst = iarank::testing::random_instance(GetParam() + 2000);
  const auto oracle = core::brute_force_rank(inst);
  const auto ref = core::reference_dp_rank(inst, {96});
  EXPECT_LE(ref.rank, oracle.rank) << "seed " << GetParam();
}

TEST_P(DpOracle, ReferenceDpConvergesWithQuanta) {
  const auto inst = iarank::testing::random_instance(GetParam() + 3000);
  const auto coarse = core::reference_dp_rank(inst, {8});
  const auto fine = core::reference_dp_rank(inst, {256});
  EXPECT_LE(coarse.rank, fine.rank) << "seed " << GetParam();
}

TEST_P(DpOracle, NoViasVariant) {
  iarank::testing::RandomInstanceSpec spec;
  spec.with_vias = false;
  const auto inst = iarank::testing::random_instance(GetParam() + 4000, spec);
  EXPECT_EQ(core::dp_rank(inst).rank, core::brute_force_rank(inst).rank)
      << "seed " << GetParam();
}

TEST_P(DpOracle, AllPlansFeasibleVariant) {
  iarank::testing::RandomInstanceSpec spec;
  spec.allow_infeasible_plans = false;
  const auto inst = iarank::testing::random_instance(GetParam() + 5000, spec);
  EXPECT_EQ(core::dp_rank(inst).rank, core::brute_force_rank(inst).rank)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpOracle,
                         ::testing::Range<std::uint64_t>(0, 120));

// --- trace consistency ------------------------------------------------------------------

class DpTrace : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpTrace, UsageAccountsForEveryWireAndStaysInBudget) {
  const auto inst = iarank::testing::random_instance(GetParam() + 7000);
  const auto dp = core::dp_rank(inst);
  if (!dp.all_assigned) {
    EXPECT_EQ(dp.rank, 0);
    return;
  }
  ASSERT_EQ(dp.usage.size(), inst.pair_count());
  std::int64_t wires = 0;
  std::int64_t meeting = 0;
  std::int64_t repeaters = 0;
  double rep_area = 0.0;
  for (std::size_t j = 0; j < dp.usage.size(); ++j) {
    const core::PairUsage& u = dp.usage[j];
    wires += u.wires_total;
    meeting += u.wires_meeting_delay;
    repeaters += u.repeaters;
    rep_area += u.repeater_area;
    EXPECT_GE(u.wires_total, u.wires_meeting_delay);
    EXPECT_LE(u.wire_area,
              inst.pair_capacity() * (1.0 + 1e-9));
  }
  EXPECT_EQ(wires, inst.total_wires());
  EXPECT_EQ(meeting, dp.rank);
  EXPECT_EQ(repeaters, dp.repeater_count);
  EXPECT_NEAR(rep_area, dp.repeater_area_used, 1e-9);
  EXPECT_LE(dp.repeater_area_used,
            inst.repeater_budget() * (1.0 + 1e-9) + 1e-12);
  EXPECT_NEAR(dp.normalized,
              static_cast<double>(dp.rank) /
                  static_cast<double>(inst.total_wires()),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpTrace,
                         ::testing::Range<std::uint64_t>(0, 40));

// --- degenerate and edge cases -------------------------------------------------------------

namespace {

core::Instance single_pair_instance(double capacity, double budget,
                                    bool feasible_plan) {
  std::vector<core::Bunch> bunches = {{2.0, 1, 1.0}, {1.0, 1, 1.0}};
  std::vector<core::PairInfo> pairs = {{"only", 1.0, 0.0, 1.0, 1.0}};
  core::DelayPlan plan;
  plan.feasible = feasible_plan;
  plan.stages = 2;
  plan.area_per_wire = 1.0;
  std::vector<std::vector<core::DelayPlan>> plans(
      2, std::vector<core::DelayPlan>{plan});
  return core::Instance::from_raw(bunches, pairs, plans, capacity, budget,
                                  tech::ViaSpec{});
}

}  // namespace

TEST(DpEdge, SinglePairAllMeet) {
  const auto inst = single_pair_instance(10.0, 5.0, true);
  const auto dp = core::dp_rank(inst);
  EXPECT_EQ(dp.rank, 2);
  EXPECT_EQ(dp.prefix_bunches + (dp.refined_wires > 0 ? 1 : 0), 2);
}

TEST(DpEdge, ZeroBudgetMeansNoDelayMet) {
  const auto inst = single_pair_instance(10.0, 0.0, true);
  const auto dp = core::dp_rank(inst);
  // Plans need 1 repeater per wire; zero budget -> rank 0, still packable.
  EXPECT_EQ(dp.rank, 0);
  EXPECT_TRUE(dp.all_assigned);
}

TEST(DpEdge, Definition3InfeasiblePacking) {
  const auto inst = single_pair_instance(2.0, 5.0, true);  // demand 3 > 2
  const auto dp = core::dp_rank(inst);
  EXPECT_EQ(dp.rank, 0);
  EXPECT_FALSE(dp.all_assigned);
  const auto oracle = core::brute_force_rank(inst);
  EXPECT_FALSE(oracle.all_assigned);
}

TEST(DpEdge, InfeasiblePlansEverywhere) {
  const auto inst = single_pair_instance(10.0, 5.0, false);
  const auto dp = core::dp_rank(inst);
  EXPECT_EQ(dp.rank, 0);
  EXPECT_TRUE(dp.all_assigned);
}

TEST(DpEdge, RefinementExtendsIntoBigBunch) {
  // One bunch of 10 identical wires, budget for exactly 7 repeaters
  // (1 per wire): bunch-granular rank is 0, refinement reaches 7.
  std::vector<core::Bunch> bunches = {{1.0, 10, 1.0}};
  std::vector<core::PairInfo> pairs = {{"only", 1.0, 0.0, 1.0, 1.0}};
  core::DelayPlan plan;
  plan.feasible = true;
  plan.stages = 2;
  plan.area_per_wire = 1.0;
  std::vector<std::vector<core::DelayPlan>> plans = {{plan}};
  const auto inst = core::Instance::from_raw(bunches, pairs, plans, 20.0, 7.0,
                                             tech::ViaSpec{});
  const auto with = core::dp_rank(inst, {true, true});
  EXPECT_EQ(with.rank, 7);
  EXPECT_EQ(with.refined_wires, 7);
  const auto without = core::dp_rank(inst, {true, false});
  EXPECT_EQ(without.rank, 0);
}

TEST(DpEdge, GreedyTraceConsistent) {
  const auto inst = core::figure2_instance();
  const auto g = core::greedy_rank(inst);
  std::int64_t wires = 0;
  for (const auto& u : g.usage) wires += u.wires_total;
  EXPECT_EQ(wires, inst.total_wires());
  EXPECT_LE(g.repeater_area_used, inst.repeater_budget() + 1e-9);
}
