#!/usr/bin/env bash
# Metrics exposition check: self-test the validator, then produce a real
# Prometheus export from rank_tool (--metrics) and require it to pass.
#
# usage: metrics_check.sh <rank_tool> <config>
set -euo pipefail

RANK_TOOL=${1:?usage: metrics_check.sh <rank_tool> <config>}
CONFIG=${2:?usage: metrics_check.sh <rank_tool> <config>}
HERE=$(cd "$(dirname "$0")" && pwd)
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

python3 "$HERE/validate_metrics.py" --self-test

# One solve publishes the DP pool gauges; require them so the export
# schema cannot silently lose the zero-steady-state-allocation evidence.
"$RANK_TOOL" "$CONFIG" rank --metrics "$WORK/metrics.prom" > /dev/null
python3 "$HERE/validate_metrics.py" "$WORK/metrics.prom" \
  --require iarank_dp_arena_bytes \
  --require iarank_pool_bytes \
  --require iarank_pool_chunks_total \
  --require iarank_dp_runs_total

echo "OK: validator self-test passed and a live export validates"
