/// Tests for src/delay: the Otten-Brayton wire delay model (paper Eq. 2-3),
/// optimal repeater sizing (Eq. 4), insertion solving (Section 4.1), target
/// models, and the per-architecture electrical stack.

#include <cmath>

#include <gtest/gtest.h>

#include "src/delay/model.hpp"
#include "src/delay/stack.hpp"
#include "src/delay/target.hpp"
#include "src/tech/node.hpp"
#include "src/util/error.hpp"
#include "src/util/numeric.hpp"
#include "src/util/units.hpp"

namespace delay = iarank::delay;
namespace tech = iarank::tech;
namespace units = iarank::util::units;
using iarank::util::Error;

namespace {

delay::WireDelayModel sample_model() {
  // Representative semi-global 130nm wire and driver.
  const delay::LineParams line{300.0 * units::kohm, 300e-12};  // per metre
  const delay::DriverParams driver{6.7 * units::kohm, 1.5 * units::fF,
                                   1.5 * units::fF};
  return delay::WireDelayModel(line, driver);
}

}  // namespace

// --- construction & validation ------------------------------------------------

TEST(DelayModel, RejectsInvalidParams) {
  const delay::DriverParams driver{1000.0, 1e-15, 1e-15};
  EXPECT_THROW(delay::WireDelayModel({0.0, 1e-10}, driver), Error);
  EXPECT_THROW(delay::WireDelayModel({1e5, -1.0}, driver), Error);
  EXPECT_THROW(delay::WireDelayModel({1e5, 1e-10}, {0.0, 1e-15, 0.0}), Error);
  EXPECT_THROW(delay::WireDelayModel({1e5, 1e-10}, {1e3, 1e-15, 1e-15},
                                     {0.0, 0.7}),
               Error);
}

// --- Eq. 4: optimal repeater size ------------------------------------------------

TEST(DelayModel, OptimalSizeClosedForm) {
  const auto m = sample_model();
  const double expected = std::sqrt((300e-12 * 6.7e3) / (1.5e-15 * 3.0e5));
  EXPECT_NEAR(m.optimal_repeater_size(), expected, expected * 1e-12);
}

TEST(DelayModel, OptimalSizeMinimizesDelayNumerically) {
  const auto m = sample_model();
  const double l = 2e-3;
  const double s_star = iarank::util::golden_min(
      [&](double s) { return m.delay(l, 8, s); }, 1.0, 10000.0, 1e-12);
  EXPECT_NEAR(s_star, m.optimal_repeater_size(),
              m.optimal_repeater_size() * 1e-3);
}

// --- Eq. 3: delay formula ------------------------------------------------------------

TEST(DelayModel, DelayMatchesManualFormula) {
  const auto m = sample_model();
  const double l = 1e-3;
  const double s = 50.0;
  const std::int64_t eta = 4;
  const double a = 0.4;
  const double b = 0.7;
  const double manual = b * 6.7e3 * (1.5e-15 + 1.5e-15) * 4.0 +
                        b * (300e-12 * 6.7e3 / s + 3.0e5 * 1.5e-15 * s) * l +
                        a * 3.0e5 * 300e-12 * l * l / 4.0;
  EXPECT_NEAR(m.delay(l, eta, s), manual, manual * 1e-12);
}

TEST(DelayModel, DelayConvexInStages) {
  const auto m = sample_model();
  const double l = 5e-3;
  const auto opt = m.optimal_stage_count(l);
  ASSERT_GT(opt, 1);
  EXPECT_LT(m.delay_opt_size(l, opt), m.delay_opt_size(l, opt - 1));
  EXPECT_LE(m.delay_opt_size(l, opt), m.delay_opt_size(l, opt + 1));
}

TEST(DelayModel, ZeroLengthDelayIsDriverOnly) {
  const auto m = sample_model();
  const double expected = 0.7 * 6.7e3 * 3.0e-15;  // b r_o (c_o + c_p)
  EXPECT_NEAR(m.delay(0.0, 1, 10.0), expected, expected * 1e-12);
}

TEST(DelayModel, InvalidDelayArgsThrow) {
  const auto m = sample_model();
  EXPECT_THROW((void)m.delay(-1.0, 1, 1.0), Error);
  EXPECT_THROW((void)m.delay(1.0, 0, 1.0), Error);
  EXPECT_THROW((void)m.delay(1.0, 1, 0.0), Error);
}

// --- stage counts ---------------------------------------------------------------------

TEST(DelayModel, ShortWireNeedsOneStage) {
  EXPECT_EQ(sample_model().optimal_stage_count(1e-6), 1);
}

TEST(DelayModel, ContinuousOptimalScalesLinearly) {
  const auto m = sample_model();
  EXPECT_NEAR(m.continuous_optimal_stages(2e-3),
              2.0 * m.continuous_optimal_stages(1e-3), 1e-9);
}

TEST(DelayModel, MinAchievableDecreasingInBudgetSense) {
  const auto m = sample_model();
  // min achievable delay grows with length.
  EXPECT_LT(m.min_achievable_delay(1e-3), m.min_achievable_delay(2e-3));
}

// --- stages_to_meet (incremental insertion, Section 4.1) ----------------------------------

TEST(StagesToMeet, GenerousTargetNeedsNoRepeaters) {
  const auto m = sample_model();
  const auto sol = m.stages_to_meet(1e-3, 1.0);  // one full second
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->stages, 1);
  EXPECT_EQ(sol->repeater_count(), 0);
}

TEST(StagesToMeet, UnattainableTargetReturnsNullopt) {
  const auto m = sample_model();
  EXPECT_FALSE(m.stages_to_meet(5e-3, 1e-15).has_value());
}

TEST(StagesToMeet, SolutionMeetsTargetMinimally) {
  const auto m = sample_model();
  const double l = 5e-3;
  const double target = 1.2 * m.min_achievable_delay(l);
  const auto sol = m.stages_to_meet(l, target);
  ASSERT_TRUE(sol.has_value());
  EXPECT_LE(sol->delay, target * (1.0 + 1e-9));
  if (sol->stages > 1) {
    // One fewer stage must miss the target (minimality).
    EXPECT_GT(m.delay_opt_size(l, sol->stages - 1), target);
  }
}

TEST(StagesToMeet, MaxStagesCapBlocksSolution) {
  const auto m = sample_model();
  const double l = 5e-3;
  const auto unconstrained = m.stages_to_meet(l, 1.05 * m.min_achievable_delay(l));
  ASSERT_TRUE(unconstrained.has_value());
  ASSERT_GT(unconstrained->stages, 2);
  const auto capped = m.stages_to_meet(l, 1.05 * m.min_achievable_delay(l),
                                       unconstrained->stages - 1);
  EXPECT_FALSE(capped.has_value());
}

TEST(StagesToMeet, ExactlyAchievableAtOptimum) {
  const auto m = sample_model();
  const double l = 3e-3;
  const double target = m.min_achievable_delay(l);
  const auto sol = m.stages_to_meet(l, target);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->delay, target, target * 1e-9);
}

/// Property sweep: for many lengths, stages_to_meet at a target slightly
/// above the minimum achievable must succeed and be minimal.
class StagesSweep : public ::testing::TestWithParam<double> {};

TEST_P(StagesSweep, MinimalFeasibleStageCount) {
  const auto m = sample_model();
  const double l = GetParam();
  const double target = 1.1 * m.min_achievable_delay(l);
  const auto sol = m.stages_to_meet(l, target);
  ASSERT_TRUE(sol.has_value()) << "l=" << l;
  EXPECT_LE(sol->delay, target * (1.0 + 1e-9));
  if (sol->stages > 1) {
    EXPECT_GT(m.delay_opt_size(l, sol->stages - 1), target * (1.0 - 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, StagesSweep,
                         ::testing::Values(1e-5, 1e-4, 5e-4, 1e-3, 3e-3, 1e-2,
                                           3e-2));

// --- target models --------------------------------------------------------------------------

TEST(TargetDelay, LinearMatchesPaperFormula) {
  // d_i = (l_i / l_max) (1 / f_c), paper Section 4.1.
  const delay::TargetDelay t(delay::TargetModel::kLinear, 500.0 * units::MHz,
                             1e-2);
  EXPECT_NEAR(t.target(1e-2), 2.0 * units::ns, 1e-18);
  EXPECT_NEAR(t.target(5e-3), 1.0 * units::ns, 1e-18);
}

TEST(TargetDelay, QuadraticTracksSquare) {
  const delay::TargetDelay t(delay::TargetModel::kQuadratic, 1.0 * units::GHz,
                             1e-2);
  EXPECT_NEAR(t.target(5e-3), 0.25 * units::ns, 1e-18);
}

TEST(TargetDelay, SqrtLooserForShortWires) {
  const delay::TargetDelay lin(delay::TargetModel::kLinear, 1e9, 1.0);
  const delay::TargetDelay sq(delay::TargetModel::kSqrt, 1e9, 1.0);
  EXPECT_GT(sq.target(0.01), lin.target(0.01));
  EXPECT_DOUBLE_EQ(sq.target(1.0), lin.target(1.0));
}

TEST(TargetDelay, UniformIgnoresLength) {
  const delay::TargetDelay t(delay::TargetModel::kUniform, 2e9, 1.0);
  EXPECT_DOUBLE_EQ(t.target(0.1), t.target(0.9));
  EXPECT_DOUBLE_EQ(t.target(0.1), 0.5e-9);
}

TEST(TargetDelay, ClampsAboveMaxLength) {
  const delay::TargetDelay t(delay::TargetModel::kLinear, 1e9, 1.0);
  EXPECT_DOUBLE_EQ(t.target(2.0), t.target(1.0));
}

TEST(TargetDelay, MonotoneInLength) {
  for (const auto model :
       {delay::TargetModel::kLinear, delay::TargetModel::kSqrt,
        delay::TargetModel::kQuadratic}) {
    const delay::TargetDelay t(model, 1e9, 1.0);
    double prev = 0.0;
    for (double l = 0.1; l <= 1.0; l += 0.1) {
      EXPECT_GE(t.target(l), prev) << delay::to_string(model);
      prev = t.target(l);
    }
  }
}

TEST(TargetDelay, InvalidArgsThrow) {
  EXPECT_THROW(delay::TargetDelay(delay::TargetModel::kLinear, 0.0, 1.0),
               Error);
  EXPECT_THROW(delay::TargetDelay(delay::TargetModel::kLinear, 1e9, -1.0),
               Error);
  const delay::TargetDelay t(delay::TargetModel::kLinear, 1e9, 1.0);
  EXPECT_THROW((void)t.target(-0.1), Error);
}

// --- electrical stack ---------------------------------------------------------------------------

TEST(ElectricalStack, OnePerPairTopFirst) {
  const auto arch =
      tech::Architecture::build(tech::node_130nm(), tech::ArchitectureSpec{});
  const delay::ElectricalStack stack(
      arch, {tech::copper(), 3.9, 2.0, tech::CapacitanceModel::kSakuraiTamaru});
  ASSERT_EQ(stack.size(), 4u);
  // Global wires (wide, thick) have lower resistance than local ones.
  EXPECT_LT(stack.pair(0).rc.resistance, stack.pair(3).rc.resistance);
  EXPECT_THROW((void)stack.pair(4), Error);
}

TEST(ElectricalStack, SoptConsistentWithModel) {
  const auto arch =
      tech::Architecture::build(tech::node_90nm(), tech::ArchitectureSpec{});
  const delay::ElectricalStack stack(
      arch, {tech::copper(), 3.9, 2.0, tech::CapacitanceModel::kParallelPlate});
  for (std::size_t j = 0; j < stack.size(); ++j) {
    EXPECT_DOUBLE_EQ(stack.pair(j).s_opt,
                     stack.pair(j).model.optimal_repeater_size());
  }
}

TEST(ElectricalStack, GlobalPairBuffersLessOften) {
  // For the same length and generous target, the global pair needs no
  // more stages than the local pair.
  const auto arch =
      tech::Architecture::build(tech::node_130nm(), tech::ArchitectureSpec{});
  const delay::ElectricalStack stack(
      arch, {tech::copper(), 3.9, 2.0, tech::CapacitanceModel::kSakuraiTamaru});
  const double l = 5e-3;
  const double target = 1.5 * stack.pair(0).model.min_achievable_delay(l);
  const auto global = stack.pair(0).model.stages_to_meet(l, target);
  ASSERT_TRUE(global.has_value());
  const auto local = stack.pair(3).model.stages_to_meet(l, target);
  if (local.has_value()) {
    EXPECT_GE(local->stages, global->stages);
  }
}
