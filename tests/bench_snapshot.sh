#!/usr/bin/env bash
# DP-kernel performance snapshot: runs the DP microbenchmarks and the
# paper-scale BM_SweepTable4C, then fuses both google-benchmark JSON
# reports plus the deterministic DP counters of a --metrics C sweep into
# one BENCH_dp.json. CI's perf-smoke job uploads the file as an artifact;
# the checked-in copy at the repo root records the numbers the README
# quotes.
#
# usage: bench_snapshot.sh <build-dir> [out.json] [dp|server]
#
# Mode `server` regenerates the rank_server load snapshot instead: it
# runs bench_server (which audits its own wire books and exits nonzero on
# any imbalance) and writes its BENCH_server.json to <out.json>.
set -euo pipefail

BUILD=${1:?usage: bench_snapshot.sh <build-dir> [out.json] [dp|server]}
OUT=${2:-BENCH_dp.json}
MODE=${3:-dp}
CONFIG=$(dirname "$0")/../configs/baseline_130nm.cfg
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

if [ "$MODE" = "server" ]; then
  "$BUILD"/bench/bench_server --seconds 3 --out "$OUT"
  exit 0
elif [ "$MODE" != "dp" ]; then
  echo "bench_snapshot.sh: unknown mode '$MODE' (want dp or server)" >&2
  exit 2
fi

"$BUILD"/bench/bench_dp_kernel \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$WORK/dp_kernel.json"

"$BUILD"/bench/bench_runtime \
  --benchmark_filter='^BM_SweepTable4C$' \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$WORK/sweep.json"

# Deterministic DP effort of one single-threaded Table 4 C sweep, from
# the process metrics registry (prune/warm counters included), plus the
# kernel pool accounting (arena bytes per solve, pool high water, chunks
# ever allocated — all exact for a fixed instance at --jobs 1).
"$BUILD"/tools/rank_tool "$CONFIG" sweep C 0.5e9 1.7e9 13 --jobs 1 \
  --metrics "$WORK/metrics.txt" > /dev/null
grep -E '^(iarank_dp_|iarank_pool_bytes |iarank_pool_chunks_total )' \
  "$WORK/metrics.txt" | sort > "$WORK/dp_counters.txt"

python3 - "$WORK" "$OUT" <<'EOF'
import json, sys
work, out = sys.argv[1], sys.argv[2]
snapshot = {}
for name in ("dp_kernel", "sweep"):
    with open(f"{work}/{name}.json") as f:
        report = json.load(f)
    snapshot[name] = {
        "context": {k: report["context"].get(k)
                    for k in ("num_cpus", "mhz_per_cpu", "library_version")},
        "benchmarks": [
            {k: b.get(k) for k in ("name", "real_time", "cpu_time",
                                   "time_unit", "iterations")
             if b.get(k) is not None} |
            {k: v for k, v in b.items()
             if k not in ("name", "real_time", "cpu_time", "time_unit",
                          "iterations", "run_name", "family_index",
                          "per_family_instance_index", "repetitions",
                          "repetition_index", "threads", "run_type",
                          "aggregate_name", "aggregate_unit")}
            for b in report["benchmarks"]
        ],
    }
counters = {}
with open(f"{work}/dp_counters.txt") as f:
    for line in f:
        parts = line.split()
        if len(parts) == 2:
            counters[parts[0]] = float(parts[1])
snapshot["sweep_c_jobs1_dp_counters"] = counters
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")
EOF
