#!/usr/bin/env bash
# Server smoke test: boot a real rank_server daemon (framed protocol plus
# the HTTP metrics listener), drive it through the CLI client, scrape
# GET /metrics over plain HTTP and validate the exposition, require the
# server's books to balance EXACTLY against the requests this script
# sent, then SIGTERM it and require a clean drain: exit status 0 and the
# socket file (and its startup lockfile) unlinked.
#
# usage: server_smoke.sh <rank_tool> <config> [bench_server]
set -euo pipefail

RANK_TOOL=${1:?usage: server_smoke.sh <rank_tool> <config> [bench_server]}
CONFIG=${2:?usage: server_smoke.sh <rank_tool> <config> [bench_server]}
BENCH_SERVER=${3:-}
HERE=$(cd "$(dirname "$0")" && pwd)
WORK=$(mktemp -d)
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCKET="$WORK/rank.sock"
ADDR="unix:$SOCKET"

# --slow-ms far below any real request time: every request must land in
# the /debug/slow ring, so the debug-surface checks below see traffic.
"$RANK_TOOL" serve "$CONFIG" --socket "$SOCKET" --workers 2 --http-port 0 \
  --slow-ms 0.001 > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the readiness lines (the daemon prints them only once the
# listeners are accepting; the http line carries the resolved port).
for _ in $(seq 1 500); do
  grep -q "^http listening on" "$WORK/server.log" 2> /dev/null && break
  if ! kill -0 "$SERVER_PID" 2> /dev/null; then
    echo "FAIL: server died during startup" >&2
    cat "$WORK/server.log" >&2
    exit 1
  fi
  sleep 0.02
done
grep -q "^listening on" "$WORK/server.log" \
  || { echo "FAIL: no readiness line" >&2; exit 1; }
HTTP_PORT=$(sed -n 's/^http listening on tcp:127\.0\.0\.1:\([0-9]*\)$/\1/p' \
  "$WORK/server.log")
[ -n "$HTTP_PORT" ] || { echo "FAIL: no http readiness line" >&2; exit 1; }
if [ ! -e "$SOCKET.lock" ]; then
  echo "FAIL: startup lockfile missing next to the socket" >&2
  exit 1
fi

# A request mix: health check, two warm ranks (the second hits the builder
# caches), an override variant, a malformed body (must fail the request,
# not the daemon), and a small sweep. Every framed request is counted in
# EXPECTED_* so the final books check is exact, not just balanced.
EXPECTED_OK=0
EXPECTED_FAILED=0
"$RANK_TOOL" request "$ADDR" ping;                   EXPECTED_OK=$((EXPECTED_OK + 1))
"$RANK_TOOL" request "$ADDR" rank > "$WORK/rank1.json"; EXPECTED_OK=$((EXPECTED_OK + 1))
"$RANK_TOOL" request "$ADDR" rank > "$WORK/rank2.json"; EXPECTED_OK=$((EXPECTED_OK + 1))
diff "$WORK/rank1.json" "$WORK/rank2.json"  # deterministic responses
"$RANK_TOOL" request "$ADDR" rank ild_permittivity=2.7 > /dev/null
EXPECTED_OK=$((EXPECTED_OK + 1))
if "$RANK_TOOL" request "$ADDR" raw '{"type":"rank","overrides":{"no_such_key":1}}' \
    > "$WORK/bad.json" 2>&1; then
  echo "FAIL: unknown override was accepted" >&2
  exit 1
fi
EXPECTED_FAILED=$((EXPECTED_FAILED + 1))
grep -q '"bad-input"' "$WORK/bad.json"
"$RANK_TOOL" request "$ADDR" sweep K 3.9 3.3 3 > /dev/null
EXPECTED_OK=$((EXPECTED_OK + 1))

# Trace opt-in: a top-level `trace` field buys a request_id echo; the
# default responses diffed above must carry none (byte determinism).
if grep -q 'request_id' "$WORK/rank1.json"; then
  echo "FAIL: default response leaked a request_id" >&2
  exit 1
fi
"$RANK_TOOL" request "$ADDR" raw '{"trace":true,"type":"rank"}' \
  > "$WORK/traced.json"
EXPECTED_OK=$((EXPECTED_OK + 1))
grep -q '"request_id":' "$WORK/traced.json"

# The HTTP metrics endpoint: scrape it like a real Prometheus server
# would and validate the exposition format (cumulative buckets, +Inf,
# _count/_sum consistency).
http_get() {
  if command -v curl > /dev/null 2>&1; then
    curl -fsS "http://127.0.0.1:$HTTP_PORT$1"
  else
    python3 -c "import sys, urllib.request; \
sys.stdout.write(urllib.request.urlopen('http://127.0.0.1:$HTTP_PORT' + \
sys.argv[1]).read().decode())" "$1"
  fi
}
http_get /healthz > "$WORK/healthz.json"
python3 - "$WORK/healthz.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["status"] == "ok", doc
for key in ("git", "compiler", "sanitize", "start_time", "uptime_seconds"):
    assert key in doc, f"healthz lacks {key}"
EOF
http_get /metrics > "$WORK/metrics_http.txt"
python3 "$HERE/validate_metrics.py" "$WORK/metrics_http.txt"
grep -q 'iarank_server_http_requests_total' "$WORK/metrics_http.txt"
grep -q '^iarank_build_info{' "$WORK/metrics_http.txt"

# The debug surfaces. /debug/requests and /debug/slow must parse and
# carry the contract fields (the microscopic --slow-ms above guarantees
# the slow ring saw the mix); /debug/trace is a bounded capture, so give
# it a request mid-window and validate the Chrome trace it returns.
http_get /debug/requests > "$WORK/debug_requests.json"
python3 - "$WORK/debug_requests.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["count"] >= len(doc["requests"]) > 0, "recent ring is empty"
for entry in doc["requests"]:
    assert entry["request_id"] > 0, entry
    for stage in ("parse", "queue", "dp", "total", "write"):
        assert stage in entry["ms"], entry
EOF
http_get /debug/slow > "$WORK/debug_slow.json"
python3 - "$WORK/debug_slow.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["slow_threshold_ms"] > 0, doc
assert doc["count"] > 0 and len(doc["requests"]) > 0, "slow ring is empty"
EOF
http_get '/debug/trace?ms=800' > "$WORK/debug_trace.json" &
TRACE_HTTP_PID=$!
sleep 0.2
"$RANK_TOOL" request "$ADDR" rank miller_factor=1.5 > /dev/null
EXPECTED_OK=$((EXPECTED_OK + 1))
wait "$TRACE_HTTP_PID"
python3 "$HERE/validate_trace.py" "$WORK/debug_trace.json" \
  --require-span dp_rank

# Optional load generator against the same daemon's service class (it
# spins up its own in-process server; run it for the throughput numbers
# and its internal books audit — it exits nonzero on any imbalance).
if [ -n "$BENCH_SERVER" ]; then
  "$BENCH_SERVER" --seconds 2 --out "$WORK/BENCH_server.json"
fi

# The daemon's books must balance EXACTLY: this script sent a known
# request mix, and the framed scrape below counts itself.
"$RANK_TOOL" request "$ADDR" metrics > "$WORK/metrics.txt"
EXPECTED_OK=$((EXPECTED_OK + 1))
python3 "$HERE/validate_metrics.py" "$WORK/metrics.txt"
awk -v want_ok="$EXPECTED_OK" -v want_failed="$EXPECTED_FAILED" '
  $1 == "iarank_server_requests_total"        { total  = $2 }
  $1 == "iarank_server_requests_ok_total"     { ok     = $2 }
  $1 == "iarank_server_requests_failed_total" { failed = $2 }
  END {
    if (total == "" || total != ok + failed) {
      printf "FAIL: books do not balance: total=%s ok=%s failed=%s\n", \
             total, ok, failed > "/dev/stderr"
      exit 1
    }
    if (ok != want_ok || failed != want_failed) {
      printf "FAIL: books do not match the sent mix: ok=%d want %d, " \
             "failed=%d want %d\n", ok, want_ok, failed, want_failed \
             > "/dev/stderr"
      exit 1
    }
    printf "metrics exact: total=%d == ok=%d + failed=%d (as sent)\n", \
           total, ok, failed
  }' "$WORK/metrics.txt"

# SIGTERM must drain and exit 0, and the socket file and lockfile must be
# unlinked.
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=
if [ "$STATUS" -ne 0 ]; then
  echo "FAIL: server exited $STATUS after SIGTERM" >&2
  cat "$WORK/server.log" >&2
  exit 1
fi
grep -q "draining" "$WORK/server.log"
if [ -e "$SOCKET" ]; then
  echo "FAIL: socket file left behind after shutdown" >&2
  exit 1
fi
if [ -e "$SOCKET.lock" ]; then
  echo "FAIL: lockfile left behind after shutdown" >&2
  exit 1
fi
echo "OK: daemon served the mix, HTTP scrape and debug surfaces" \
     "validated, books exact, SIGTERM drained cleanly"
