#!/usr/bin/env bash
# Server smoke test: boot a real rank_server daemon, drive it through the
# CLI client, require the server's own books to balance
# (requests_total == requests_ok + requests_failed), then SIGTERM it and
# require a clean drain: exit status 0 and the socket file unlinked.
#
# usage: server_smoke.sh <rank_tool> <config> [bench_server]
set -euo pipefail

RANK_TOOL=${1:?usage: server_smoke.sh <rank_tool> <config> [bench_server]}
CONFIG=${2:?usage: server_smoke.sh <rank_tool> <config> [bench_server]}
BENCH_SERVER=${3:-}
WORK=$(mktemp -d)
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCKET="$WORK/rank.sock"
ADDR="unix:$SOCKET"

"$RANK_TOOL" serve "$CONFIG" --socket "$SOCKET" --workers 2 \
  > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the readiness line (the daemon prints it only once the listener
# is accepting).
for _ in $(seq 1 500); do
  grep -q "listening on" "$WORK/server.log" 2> /dev/null && break
  if ! kill -0 "$SERVER_PID" 2> /dev/null; then
    echo "FAIL: server died during startup" >&2
    cat "$WORK/server.log" >&2
    exit 1
  fi
  sleep 0.02
done
grep -q "listening on" "$WORK/server.log" \
  || { echo "FAIL: no readiness line" >&2; exit 1; }

# A request mix: health check, two warm ranks (the second hits the builder
# caches), an override variant, a malformed body (must fail the request,
# not the daemon), and a small sweep.
"$RANK_TOOL" request "$ADDR" ping
"$RANK_TOOL" request "$ADDR" rank > "$WORK/rank1.json"
"$RANK_TOOL" request "$ADDR" rank > "$WORK/rank2.json"
diff "$WORK/rank1.json" "$WORK/rank2.json"  # deterministic responses
"$RANK_TOOL" request "$ADDR" rank ild_permittivity=2.7 > /dev/null
if "$RANK_TOOL" request "$ADDR" raw '{"type":"rank","overrides":{"no_such_key":1}}' \
    > "$WORK/bad.json" 2>&1; then
  echo "FAIL: unknown override was accepted" >&2
  exit 1
fi
grep -q '"bad-input"' "$WORK/bad.json"
"$RANK_TOOL" request "$ADDR" sweep K 3.9 3.3 3 > /dev/null

# Optional load generator against the same daemon's service class (it
# spins up its own in-process server; run it for the throughput numbers
# and its internal metrics cross-check).
if [ -n "$BENCH_SERVER" ]; then
  "$BENCH_SERVER" --seconds 2 --out "$WORK/BENCH_server.json"
fi

# The daemon's books must balance: requests_total == ok + failed.
"$RANK_TOOL" request "$ADDR" metrics > "$WORK/metrics.txt"
awk '
  $1 == "iarank_server_requests_total"        { total  = $2 }
  $1 == "iarank_server_requests_ok_total"     { ok     = $2 }
  $1 == "iarank_server_requests_failed_total" { failed = $2 }
  END {
    if (total == "" || total != ok + failed) {
      printf "FAIL: books do not balance: total=%s ok=%s failed=%s\n", \
             total, ok, failed > "/dev/stderr"
      exit 1
    }
    printf "metrics consistent: total=%d == ok=%d + failed=%d\n", \
           total, ok, failed
  }' "$WORK/metrics.txt"

# SIGTERM must drain and exit 0, and the socket file must be unlinked.
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=
if [ "$STATUS" -ne 0 ]; then
  echo "FAIL: server exited $STATUS after SIGTERM" >&2
  cat "$WORK/server.log" >&2
  exit 1
fi
grep -q "draining" "$WORK/server.log"
if [ -e "$SOCKET" ]; then
  echo "FAIL: socket file left behind after shutdown" >&2
  exit 1
fi
echo "OK: daemon served the mix, books balanced, SIGTERM drained cleanly"
