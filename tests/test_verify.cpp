/// Tests for the placement-certificate checker (core/verify): DP results
/// must verify on random and physical instances; tampered certificates
/// must be rejected with the right reason.

#include <gtest/gtest.h>

#include "src/core/dp_rank.hpp"
#include "src/core/engine.hpp"
#include "src/core/figure2.hpp"
#include "src/core/paper_setup.hpp"
#include "src/core/verify.hpp"
#include "tests/helpers.hpp"

namespace core = iarank::core;
namespace wld = iarank::wld;

// --- positive: every DP result certifies ----------------------------------------

class VerifyDp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifyDp, RandomInstancesCertify) {
  const auto inst = iarank::testing::random_instance(GetParam() + 20000);
  const auto r = core::dp_rank(inst);
  const auto outcome = core::verify_placements(inst, r);
  EXPECT_TRUE(outcome.ok) << "seed " << GetParam() << ": " << outcome.failure;
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifyDp,
                         ::testing::Range<std::uint64_t>(0, 80));

TEST(Verify, Figure2Certifies) {
  const auto inst = core::figure2_instance();
  const auto r = core::dp_rank(inst);
  const auto outcome = core::verify_placements(inst, r);
  EXPECT_TRUE(outcome.ok) << outcome.failure;
  EXPECT_FALSE(r.placements.empty());
}

TEST(Verify, PhysicalBaselineCertifies) {
  // The 1M-gate baseline is far beyond the brute-force oracle; the
  // certificate is the independent feasibility evidence at full scale.
  const core::PaperSetup setup = core::paper_baseline();
  const auto w = core::default_wld(setup.design);
  const auto inst = core::build_instance(setup.design, setup.options, w);
  const auto r = core::dp_rank(inst);
  const auto outcome = core::verify_placements(inst, r);
  EXPECT_TRUE(outcome.ok) << outcome.failure;
  // Certificate covers every wire.
  std::int64_t placed = 0;
  for (const auto& p : r.placements) placed += p.wires;
  EXPECT_EQ(placed, inst.total_wires());
}

// --- negative: tampering is caught -----------------------------------------------

namespace {

core::RankResult valid_result(const core::Instance& inst) {
  return core::dp_rank(inst);
}

}  // namespace

TEST(Verify, MissingCertificateFails) {
  const auto inst = core::figure2_instance();
  auto r = valid_result(inst);
  r.placements.clear();
  const auto outcome = core::verify_placements(inst, r);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.failure.find("certificate"), std::string::npos);
}

TEST(Verify, InflatedRankFails) {
  const auto inst = core::figure2_instance();
  auto r = valid_result(inst);
  r.rank += 1;
  EXPECT_FALSE(core::verify_placements(inst, r).ok);
}

TEST(Verify, DroppedWireFails) {
  const auto inst = core::figure2_instance();
  auto r = valid_result(inst);
  ASSERT_FALSE(r.placements.empty());
  r.placements.pop_back();
  const auto outcome = core::verify_placements(inst, r);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.failure.find("wires"), std::string::npos);
}

TEST(Verify, OrderViolationFails) {
  const auto inst = core::figure2_instance();
  // Hand-build an illegal embedding: one long wire below two short ones —
  // figure2's bunches are all equal length, so craft a custom instance.
  std::vector<core::Bunch> bunches = {{4.0, 1, 1.0}, {1.0, 1, 1.0}};
  std::vector<core::PairInfo> pairs = {{"top", 1.0, 0.0, 1.0, 1.0},
                                       {"bottom", 1.0, 0.0, 1.0, 1.0}};
  std::vector<std::vector<core::DelayPlan>> plans(
      2, std::vector<core::DelayPlan>(2));
  const auto custom = core::Instance::from_raw(bunches, pairs, plans, 10.0,
                                               0.0, iarank::tech::ViaSpec{});
  core::RankResult r;
  r.all_assigned = true;
  r.rank = 0;
  r.placements = {{0, 1, 1, 0}, {1, 0, 1, 0}};  // long below short
  const auto outcome = core::verify_placements(custom, r);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.failure.find("order"), std::string::npos);
}

TEST(Verify, BudgetViolationFails) {
  // Two wires, each needing one unit-area repeater, budget for one: the
  // DP meets one; flipping the other's row to "meets delay" overruns the
  // budget and must be rejected.
  std::vector<core::Bunch> bunches = {{2.0, 1, 1.0}, {2.0, 1, 1.0}};
  std::vector<core::PairInfo> pairs = {{"only", 1.0, 0.0, 1.0, 1.0}};
  core::DelayPlan plan;
  plan.feasible = true;
  plan.stages = 2;
  plan.area_per_wire = 1.0;
  std::vector<std::vector<core::DelayPlan>> plans(
      2, std::vector<core::DelayPlan>{plan});
  const auto inst = core::Instance::from_raw(bunches, pairs, plans, 10.0, 1.0,
                                             iarank::tech::ViaSpec{});
  auto r = core::dp_rank(inst);
  ASSERT_EQ(r.rank, 1);
  ASSERT_TRUE(core::verify_placements(inst, r).ok);
  bool flipped = false;
  for (auto& p : r.placements) {
    if (p.meeting_delay < p.wires) {
      p.meeting_delay = p.wires;
      flipped = true;
    }
  }
  ASSERT_TRUE(flipped);
  // Keep the claimed rank consistent so the budget check is what trips.
  r.rank = 2;
  r.repeater_count = 2;
  const auto outcome = core::verify_placements(inst, r);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.failure.find("repeater area exceeds the budget"),
            std::string::npos)
      << outcome.failure;
}

TEST(Verify, ViaBlockageOverflowFails) {
  // Two equal wires, one pair of capacity 4 above a pair whose via area
  // is large. Packing both below (the DP's choice) is fine; corrupting
  // the certificate to route one wire on top puts its via shadow over the
  // bottom pair and must trip the capacity check with the blockage
  // folded in.
  std::vector<core::Bunch> bunches = {{2.0, 1, 1.0}, {2.0, 1, 1.0}};
  std::vector<core::PairInfo> pairs = {{"top", 1.0, 0.0, 1.0, 1.0},
                                       {"bottom", 1.0, 3.0, 1.0, 1.0}};
  std::vector<std::vector<core::DelayPlan>> plans(
      2, std::vector<core::DelayPlan>(2));  // no feasible plans: rank 0
  iarank::tech::ViaSpec vias;
  vias.vias_per_wire = 1.0;
  vias.vias_per_repeater = 0.0;
  const auto inst =
      core::Instance::from_raw(bunches, pairs, plans, 4.0, 0.0, vias);
  auto r = core::dp_rank(inst);
  ASSERT_TRUE(r.all_assigned);
  ASSERT_TRUE(core::verify_placements(inst, r).ok);
  ASSERT_FALSE(r.placements.empty());
  for (auto& p : r.placements) {
    if (p.bunch == 0) p.pair = 0;  // move the first wire above the other
  }
  const auto outcome = core::verify_placements(inst, r);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.failure.find("over capacity"), std::string::npos)
      << outcome.failure;
}

TEST(Verify, CorruptedOrderReportsOrderViolation) {
  // Start from a valid free-packed result, then swap the pairs of the
  // longest and shortest wires so a longer wire sits strictly below a
  // shorter one.
  std::vector<core::Bunch> bunches = {{4.0, 1, 1.0}, {1.0, 1, 1.0}};
  std::vector<core::PairInfo> pairs = {{"top", 1.0, 0.0, 1.0, 1.0},
                                       {"bottom", 1.0, 0.0, 1.0, 1.0}};
  std::vector<std::vector<core::DelayPlan>> plans(
      2, std::vector<core::DelayPlan>(2));
  const auto inst = core::Instance::from_raw(bunches, pairs, plans, 10.0, 0.0,
                                             iarank::tech::ViaSpec{});
  auto r = core::dp_rank(inst);
  ASSERT_TRUE(core::verify_placements(inst, r).ok);
  ASSERT_FALSE(r.placements.empty());
  for (auto& p : r.placements) {
    p.pair = p.bunch == 0 ? 1 : 0;  // long wire below, short wire above
  }
  const auto outcome = core::verify_placements(inst, r);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.failure.find("order violation"), std::string::npos)
      << outcome.failure;
}

TEST(Verify, InfeasibleResultWithZeroRankPasses) {
  const auto inst = core::figure2_instance();
  core::RankResult r;
  r.all_assigned = false;
  r.rank = 0;
  EXPECT_TRUE(core::verify_placements(inst, r).ok);
  r.rank = 3;
  EXPECT_FALSE(core::verify_placements(inst, r).ok);
}
