/// Unit tests for src/util: numerics, strings, config, tables.

#include <clocale>
#include <cmath>
#include <locale>
#include <sstream>

#include <gtest/gtest.h>

#include "src/util/config.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/metrics.hpp"
#include "src/util/numeric.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

namespace util = iarank::util;

// --- almost_equal -------------------------------------------------------------

TEST(AlmostEqual, EqualValues) { EXPECT_TRUE(util::almost_equal(1.0, 1.0)); }

TEST(AlmostEqual, RelativeTolerance) {
  EXPECT_TRUE(util::almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(util::almost_equal(1.0, 1.001));
}

TEST(AlmostEqual, AbsoluteToleranceNearZero) {
  EXPECT_TRUE(util::almost_equal(0.0, 1e-13));
  EXPECT_FALSE(util::almost_equal(0.0, 1e-3));
}

// --- linspace ------------------------------------------------------------------

TEST(Linspace, EndpointsIncluded) {
  const auto v = util::linspace(1.0, 2.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 2.0);
  EXPECT_DOUBLE_EQ(v[2], 1.5);
}

TEST(Linspace, SinglePoint) {
  const auto v = util::linspace(3.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(Linspace, ZeroCountThrows) {
  EXPECT_THROW((void)util::linspace(0.0, 1.0, 0), util::Error);
}

TEST(Linspace, DescendingRange) {
  const auto v = util::linspace(2.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(v[1], 1.5);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
}

// --- brent_root ------------------------------------------------------------------

TEST(BrentRoot, Linear) {
  const double r = util::brent_root([](double x) { return 2.0 * x - 4.0; },
                                    0.0, 10.0);
  EXPECT_NEAR(r, 2.0, 1e-10);
}

TEST(BrentRoot, Cubic) {
  const double r = util::brent_root(
      [](double x) { return x * x * x - 2.0 * x - 5.0; }, 1.0, 3.0);
  EXPECT_NEAR(r, 2.0945514815423265, 1e-9);
}

TEST(BrentRoot, RootAtBracketEdge) {
  const double r = util::brent_root([](double x) { return x; }, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(BrentRoot, NoSignChangeThrows) {
  EXPECT_THROW((void)util::brent_root([](double x) { return x * x + 1.0; },
                                      -1.0, 1.0),
               util::Error);
}

// --- integrate ------------------------------------------------------------------

TEST(Integrate, Polynomial) {
  // Simpson is exact for cubics.
  const double v =
      util::integrate([](double x) { return x * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(v, 4.0, 1e-12);
}

TEST(Integrate, Transcendental) {
  const double v = util::integrate([](double x) { return std::sin(x); }, 0.0,
                                   M_PI);
  EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(Integrate, EmptyInterval) {
  EXPECT_DOUBLE_EQ(util::integrate([](double) { return 1.0; }, 3.0, 3.0), 0.0);
}

TEST(Integrate, SteepPowerLaw) {
  // Same shape as the Davis occupancy factor l^(2p-4), p = 0.6.
  const double v = util::integrate(
      [](double x) { return std::pow(x, -2.8); }, 1.0, 1000.0, 1e-12);
  const double exact = (1.0 - std::pow(1000.0, -1.8)) / 1.8;
  EXPECT_NEAR(v, exact, 1e-8);
}

// --- golden_min ------------------------------------------------------------------

TEST(GoldenMin, Parabola) {
  const double x = util::golden_min(
      [](double t) { return (t - 1.5) * (t - 1.5); }, 0.0, 10.0);
  EXPECT_NEAR(x, 1.5, 1e-7);
}

TEST(GoldenMin, RepeaterSizeShape) {
  // f(s) = a/s + b*s has minimum at sqrt(a/b) — the s_opt shape (Eq. 4).
  const double x = util::golden_min(
      [](double s) { return 9.0 / s + 4.0 * s; }, 0.1, 100.0);
  EXPECT_NEAR(x, 1.5, 1e-6);
}

// --- strings --------------------------------------------------------------------

TEST(Strings, TrimBothEnds) { EXPECT_EQ(util::trim("  a b \t\n"), "a b"); }

TEST(Strings, TrimAllWhitespace) { EXPECT_EQ(util::trim(" \t "), ""); }

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = util::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitTrimsFields) {
  const auto parts = util::split(" x ; y ", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "x");
  EXPECT_EQ(parts[1], "y");
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(util::parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(util::parse_double(" -1e-3 "), -1e-3);
}

TEST(Strings, ParseDoubleRejectsGarbage) {
  EXPECT_THROW((void)util::parse_double("3.2x"), util::Error);
  EXPECT_THROW((void)util::parse_double(""), util::Error);
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(util::parse_int("42"), 42);
  EXPECT_THROW((void)util::parse_int("-3"), util::Error);
  EXPECT_THROW((void)util::parse_int("4.2"), util::Error);
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(util::starts_with("foobar", "foo"));
  EXPECT_FALSE(util::starts_with("fo", "foo"));
}

// --- locale independence --------------------------------------------------------

namespace {

/// German-style numpunct: comma decimal point, dot grouping. Installing it
/// as the global C++ locale reproduces the comma-decimal hazard even when
/// the container ships no de_DE locale data.
struct CommaDecimal : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// Restores both the C locale and the C++ global locale on scope exit, so
/// a failing assertion cannot leak comma-decimal formatting into later
/// tests.
struct LocaleGuard {
  std::string saved_c;
  std::locale saved_cpp;
  LocaleGuard() : saved_c(std::setlocale(LC_ALL, nullptr)) {}
  ~LocaleGuard() {
    std::locale::global(saved_cpp);
    std::setlocale(LC_ALL, saved_c.c_str());
  }
};

}  // namespace

TEST(Locale, NumericsIgnoreCommaDecimalLocales) {
  const LocaleGuard guard;
  // Prefer real de_DE data when the host has it (exercises the C library
  // paths too); the custom facet below covers the C++ stream paths either
  // way.
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) break;
  }
  std::locale::global(std::locale(std::locale::classic(), new CommaDecimal));

  // Parsing: '.' is the only decimal separator, ',' is always garbage.
  EXPECT_DOUBLE_EQ(util::parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(util::parse_double("-1e-3"), -1e-3);
  EXPECT_THROW((void)util::parse_double("2,5"), util::Error);

  // Formatting: never a comma, never grouping separators.
  EXPECT_EQ(util::format_double_shortest(2.5), "2.5");
  EXPECT_EQ(util::format_double_fixed(1234567.5, 2), "1234567.50");
  const std::string sci = util::format_double_sci(6.25e-3, 2);
  EXPECT_EQ(sci.find(','), std::string::npos) << sci;
  EXPECT_DOUBLE_EQ(util::parse_double(sci), 6.25e-3);
  EXPECT_EQ(util::format_double_general(1234.5, 6), "1234.5");
  EXPECT_EQ(util::TextTable::num(1234.5, 2), "1234.50");

  // Config round-trip keeps the C-locale spelling.
  const auto cfg = util::Config::parse("x = 2.5\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("x"), 2.5);

  // Json dump/parse stays bit-exact under the hostile locale.
  const util::Json doc = util::Json::parse("{\"k\":2.5,\"n\":-1e-3}");
  EXPECT_EQ(doc.dump(), "{\"k\":2.5,\"n\":-0.001}");
  EXPECT_DOUBLE_EQ(util::Json::parse(doc.dump()).at("k").as_double(), 2.5);

  // Prometheus exposition must use '.' decimals (scrapers reject commas).
  auto& histogram = util::MetricsRegistry::histogram(
      "iarank_test_locale_seconds", {0.25, 2.5});
  histogram.observe(0.5);
  std::ostringstream prometheus;
  util::MetricsRegistry::instance().write_prometheus(prometheus);
  const std::string text = prometheus.str();
  EXPECT_NE(text.find("le=\"0.25\""), std::string::npos);
  EXPECT_NE(text.find("iarank_test_locale_seconds_sum 0.5"),
            std::string::npos);
  EXPECT_EQ(text.find("0,25"), std::string::npos);
  EXPECT_EQ(text.find("0,5"), std::string::npos);
}

// --- config ---------------------------------------------------------------------

TEST(Config, ParseBasic) {
  const auto cfg = util::Config::parse("a = 1\n# comment\nb = hello\n\n");
  EXPECT_EQ(cfg.size(), 2u);
  EXPECT_EQ(cfg.get("b"), "hello");
  EXPECT_DOUBLE_EQ(cfg.get_double("a"), 1.0);
}

TEST(Config, DefaultsForMissing) {
  const auto cfg = util::Config::parse("x = 2");
  EXPECT_DOUBLE_EQ(cfg.get_double("y", 7.5), 7.5);
  EXPECT_EQ(cfg.get_int("z", 3), 3);
}

TEST(Config, MissingKeyThrows) {
  const auto cfg = util::Config::parse("");
  EXPECT_THROW((void)cfg.get("nope"), util::Error);
}

TEST(Config, DuplicateKeyThrows) {
  EXPECT_THROW((void)util::Config::parse("a=1\na=2"), util::Error);
}

TEST(Config, DuplicateKeyReportsLineNumber) {
  // The duplicate is on line 4 (comments and blanks count as lines).
  try {
    (void)util::Config::parse("a = 1\n# comment\nb = 2\na = 3\n");
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("duplicate key 'a'"), std::string::npos) << message;
    EXPECT_NE(message.find("line 4"), std::string::npos) << message;
  }
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW((void)util::Config::parse("just text"), util::Error);
}

// --- table ----------------------------------------------------------------------

TEST(TextTable, RendersAlignedRows) {
  util::TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"k", "3.9"});
  t.add_row({"miller", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| miller | 2"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  util::TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, RowWidthMismatchThrows) {
  util::TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), util::Error);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(util::TextTable::num(0.3973, 4), "0.3973");
  EXPECT_EQ(util::TextTable::sci(5e8, 2), "5.00e+08");
}

// --- require / error -------------------------------------------------------------

TEST(Require, PassesOnTrue) { EXPECT_NO_THROW(util::require(true, "ok")); }

TEST(Require, ThrowsWithLocation) {
  try {
    util::require(false, "boom");
    FAIL() << "expected throw";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

// --- units ----------------------------------------------------------------------

TEST(Units, Consistency) {
  namespace units = util::units;
  EXPECT_DOUBLE_EQ(1000.0 * units::nm, units::um);
  EXPECT_DOUBLE_EQ(1e6 * units::um2, units::m2 * 1e-6);
  EXPECT_DOUBLE_EQ(2.0 * units::GHz, 2e9);
  EXPECT_NEAR(units::eps0, 8.854e-12, 1e-15);
}

// --- Rng (portable deterministic sampling for the selfcheck harness) -----------

TEST(Rng, GoldenSequenceIsPortable) {
  // Pinned outputs of xoshiro256++ under splitmix64 seeding: the selfcheck
  // harness prints seeds as bug repros, so these values must never change
  // across compilers, standard libraries or platforms.
  util::Rng r(42);
  EXPECT_EQ(r.next(), 15021278609987233951ull);
  EXPECT_EQ(r.next(), 5881210131331364753ull);
  EXPECT_EQ(r.next(), 18149643915985481100ull);

  util::Rng u(7);
  EXPECT_DOUBLE_EQ(u.uniform01(), 0.055360436478333108);
  EXPECT_EQ(u.uniform_int(10, 20), 10);

  util::Rng f(123);
  EXPECT_EQ(f.fork(1).next(), 16043893320582157476ull);
  EXPECT_EQ(f.fork(2).next(), 7939852756940248847ull);
}

TEST(Rng, SameSeedSameStream) {
  util::Rng a(999);
  util::Rng b(999);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, Uniform01StaysInRange) {
  util::Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  util::Rng r(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(r.uniform_int(7, 7), 7);
}

TEST(Rng, ForkDoesNotConsumeParentState) {
  util::Rng a(31);
  util::Rng b(31);
  (void)a.fork(1);
  (void)a.fork(2);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkedStreamsDiffer) {
  util::Rng r(64);
  EXPECT_NE(r.fork(1).next(), r.fork(2).next());
}

TEST(Rng, ChanceEdgeCases) {
  util::Rng r(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.1));
  }
}

TEST(Rng, PickStaysInBounds) {
  util::Rng r(17);
  for (int i = 0; i < 500; ++i) EXPECT_LT(r.pick(5), 5u);
}
