#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file written by `rank_tool --trace`.

Checks (exit 0 when all hold, 1 otherwise, 2 on usage/IO errors):
  * the file is valid JSON of the form {"traceEvents": [...]}
  * every event carries name/ph/ts/pid/tid, with ph in {"B", "E"}
  * per tid, every "B" has a matching "E" and spans nest strictly
    (the "E" closes the innermost open span of the same name)
  * per tid, timestamps are non-decreasing
  * at least one known top-level span is present (the trace actually
    captured the instrumented pipeline, not just an empty envelope)

Usage: validate_trace.py FILE.json [--require-span NAME]...
"""

import json
import sys

KNOWN_SPANS = {
    "sweep", "sweep.point", "builder.build", "dp_rank", "compute_rank",
    "selfcheck", "faultcheck",
}


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    required = []
    args = argv[2:]
    while args:
        if args[0] == "--require-span" and len(args) >= 2:
            required.append(args[1])
            args = args[2:]
        else:
            print(f"validate_trace: unknown argument {args[0]}",
                  file=sys.stderr)
            return 2

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_trace: cannot load {path}: {e}", file=sys.stderr)
        return 2

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail("traceEvents must be an array")

    stacks = {}   # tid -> [open span names]
    last_ts = {}  # tid -> last timestamp seen
    names = set()
    for i, e in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                return fail(f"event {i} lacks required key '{key}': {e}")
        if e["ph"] not in ("B", "E"):
            return fail(f"event {i} has unexpected phase {e['ph']!r}")
        if not isinstance(e["ts"], (int, float)):
            return fail(f"event {i} ts is not numeric: {e['ts']!r}")
        tid = e["tid"]
        if tid in last_ts and e["ts"] < last_ts[tid]:
            return fail(f"event {i}: ts went backwards on tid {tid}")
        last_ts[tid] = e["ts"]

        stack = stacks.setdefault(tid, [])
        if e["ph"] == "B":
            stack.append(e["name"])
            names.add(e["name"])
        else:
            if not stack:
                return fail(f"event {i}: 'E' with no open span on tid {tid}")
            if stack[-1] != e["name"]:
                return fail(
                    f"event {i}: 'E' for {e['name']!r} but innermost open "
                    f"span on tid {tid} is {stack[-1]!r} (bad nesting)")
            stack.pop()

    for tid, stack in stacks.items():
        if stack:
            return fail(f"tid {tid} ends with unclosed spans: {stack}")
    if not events:
        return fail("trace contains no events")
    if not names & KNOWN_SPANS:
        return fail(f"no known pipeline span found; saw {sorted(names)[:10]}")
    for name in required:
        if name not in names:
            return fail(f"required span {name!r} not present")

    n_threads = len(stacks)
    print(f"validate_trace: OK: {len(events)} events, {n_threads} thread(s), "
          f"{len(names)} distinct spans")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
