#!/usr/bin/env bash
# Kill-storm chaos test for `rank_tool explore`: run a 10^5-point grid
# sharded across worker processes while SIGKILLing random workers every
# few hundred milliseconds, and require (a) the run to complete, (b) no
# point to be quarantined (the storm is fault-free — every kill is
# external), and (c) the merged points.csv / pareto.csv to be
# byte-identical to an uninterrupted single-process run. SIGKILL cannot
# be trapped, so this exercises the real crash contract: leased chunks
# reclaimed from dead workers, journals with torn tails, duplicate
# records from steal/reclaim overlap — all merged back to the exact
# clean-run bytes.
#
# usage: explore_chaos_smoke.sh <rank_tool> [workers]
set -euo pipefail

RANK_TOOL=${1:?usage: explore_chaos_smoke.sh <rank_tool> [workers]}
WORKERS=${2:-4}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# 20 x 10 x 2 x 25 x 10 = 100000 grid points, each cheap enough that the
# whole grid stays a smoke test but the worker phase lasts long enough
# for the storm to land many kills mid-chunk.
cat > "$WORK/grid.explore" << 'EOF'
gates = 50000
bunch_size = 2500
explore.K = 2.2:3.9:20
explore.M = 1.0:2.0:10
explore.target_model = linear, sqrt
explore.C = 4e8:8e8:25
explore.R = 0.25:0.45:10
EOF

# Reference: one uninterrupted single-process run.
"$RANK_TOOL" explore "$WORK/grid.explore" --dir "$WORK/clean" \
  --jobs "$WORKERS" > "$WORK/clean_stdout.txt"
grep -q 'quarantined 0' "$WORK/clean_stdout.txt"

# Chaos run: workers with a short lease TTL and small chunks, under a
# storm that SIGKILLs a random child of the coordinator every 0.2-0.4s.
"$RANK_TOOL" explore "$WORK/grid.explore" --dir "$WORK/chaos" \
  --workers "$WORKERS" --chunk 128 --lease-ttl 1 \
  > "$WORK/chaos_stdout.txt" &
COORD=$!

KILLS=0
while kill -0 "$COORD" 2> /dev/null; do
  sleep "0.$((2 + RANDOM % 3))"
  # Storm only while unfinished chunks exist: the queue directory holds
  # todo-*/lease-* files exactly while the worker phase is live, so the
  # storm never hits the merge phase's salvage children (killing those
  # would legitimately quarantine a point and change the output).
  if ! compgen -G "$WORK/chaos/queue/todo-*" > /dev/null \
     && ! compgen -G "$WORK/chaos/queue/lease-*" > /dev/null; then
    break
  fi
  mapfile -t VICTIMS < <(pgrep -P "$COORD" || true)
  [ "${#VICTIMS[@]}" -gt 0 ] || continue
  if kill -9 "${VICTIMS[$((RANDOM % ${#VICTIMS[@]}))]}" 2> /dev/null; then
    KILLS=$((KILLS + 1))
  fi
done

wait "$COORD"
echo "storm landed $KILLS worker kills"
cat "$WORK/chaos_stdout.txt"

if [ "$KILLS" -lt 1 ]; then
  echo "FAIL: the storm never landed a kill — grid too small for this host" >&2
  exit 1
fi
grep -q 'quarantined 0' "$WORK/chaos_stdout.txt" \
  || { echo "FAIL: fault-free kills must not quarantine points" >&2; exit 1; }

cmp "$WORK/clean/points.csv" "$WORK/chaos/points.csv"
cmp "$WORK/clean/pareto.csv" "$WORK/chaos/pareto.csv"

# The liveness surface survived the storm: status.json must have reached
# its final "done" form and reconcile exactly with the merge audit the
# coordinator printed.
python3 - "$WORK/chaos/status.json" "$WORK/chaos_stdout.txt" << 'EOF'
import json, re, sys
status = json.load(open(sys.argv[1]))
stdout = open(sys.argv[2]).read()
assert status["state"] == "done", status
m = re.search(
    r"explore: (\d+) points, ok (\d+), failed (\d+), quarantined (\d+)",
    stdout)
assert m, stdout
for key, value in zip(("total_points", "ok", "failed", "quarantined"),
                      map(int, m.groups())):
    assert status[key] == value, (key, status[key], value)
m = re.search(r"merge: resumed (\d+), duplicates (\d+), torn tails (\d+)",
              stdout)
assert m, stdout
for key, value in zip(("resumed", "duplicates", "torn_tails"),
                      map(int, m.groups())):
    assert status[key] == value, (key, status[key], value)
m = re.search(r"pareto front: (\d+) points", stdout)
assert m and status["pareto_points"] == int(m.group(1)), stdout
assert status["ok"] + status["failed"] == status["total_points"], status
print("status.json reconciles with the merge audit")
EOF

# Per-worker event logs were merged; torn tails are possible on SIGKILLed
# workers, so just require the merged log to exist with content (the
# clean-path schema is validated by tests/events_check.sh).
test -s "$WORK/chaos/events.jsonl" \
  || { echo "FAIL: merged events.jsonl missing or empty" >&2; exit 1; }

echo "OK: chaos-run merge is byte-identical to the uninterrupted run"
