/// \file test_explore.cpp
/// \brief Crash-tolerant exploration: lease-queue semantics, journal scan
///        and merge edge cases, spec parsing, and the standing invariant
///        that a sharded worker run is bitwise-identical to a clean
///        single-process run — including under injected worker crashes.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "src/core/explore.hpp"
#include "src/util/config.hpp"
#include "src/util/error.hpp"
#include "src/util/journal.hpp"
#include "src/util/lease_queue.hpp"

namespace iarank {
namespace {

namespace fs = std::filesystem;

std::string scratch_path(const std::string& name) {
  // Per-process suffix: ctest runs each discovered test as its own
  // process, in parallel — a shared fixed path would race.
  const fs::path dir = fs::path(testing::TempDir()) /
                       (name + "." + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// LeaseQueue

TEST(LeaseQueue, ClaimRenewCompleteLifecycle) {
  util::LeaseQueue queue(scratch_path("lq_lifecycle"), {});
  EXPECT_TRUE(queue.idle());
  EXPECT_FALSE(queue.claim("a").has_value());

  queue.enqueue(0, 100, 0);
  EXPECT_FALSE(queue.idle());
  EXPECT_EQ(queue.todo_count(), 1u);

  const std::optional<util::LeaseChunk> chunk = queue.claim("a");
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->lo, 0);
  EXPECT_EQ(chunk->hi, 100);
  EXPECT_EQ(chunk->attempts, 0);
  EXPECT_EQ(queue.todo_count(), 0u);
  EXPECT_FALSE(queue.idle());  // leased, not done

  const std::optional<std::int64_t> hi = queue.renew(*chunk, "a", 40);
  ASSERT_TRUE(hi.has_value());
  EXPECT_EQ(*hi, 100);

  queue.complete(*chunk, "a");
  EXPECT_TRUE(queue.idle());
}

TEST(LeaseQueue, ClaimsLowestChunkFirst) {
  util::LeaseQueue queue(scratch_path("lq_order"), {});
  queue.enqueue(100, 200, 0);
  queue.enqueue(0, 100, 0);
  const std::optional<util::LeaseChunk> chunk = queue.claim("a");
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->lo, 0);
}

TEST(LeaseQueue, RenewReportsForeignOrMissingLease) {
  util::LeaseQueue queue(scratch_path("lq_foreign"), {});
  queue.enqueue(0, 50, 0);
  const std::optional<util::LeaseChunk> chunk = queue.claim("a");
  ASSERT_TRUE(chunk.has_value());
  EXPECT_FALSE(queue.renew(*chunk, "b", 10).has_value());  // not the owner
  queue.complete(*chunk, "b");                             // ignored: foreign
  EXPECT_FALSE(queue.idle());
  queue.complete(*chunk, "a");
  EXPECT_TRUE(queue.idle());
  EXPECT_FALSE(queue.renew(*chunk, "a", 10).has_value());  // lease gone
}

TEST(LeaseQueue, StealSplitsLargestForeignLease) {
  util::LeaseQueue queue(scratch_path("lq_steal"), {});
  queue.enqueue(0, 100, 0);
  const std::optional<util::LeaseChunk> victim = queue.claim("a");
  ASSERT_TRUE(victim.has_value());

  EXPECT_FALSE(queue.steal("a"));  // never steals from itself
  ASSERT_TRUE(queue.steal("b"));
  const std::optional<util::LeaseChunk> stolen = queue.claim("b");
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->lo, 50);
  EXPECT_EQ(stolen->hi, 100);

  // The victim learns about the shrink on its next heartbeat.
  const std::optional<std::int64_t> hi = queue.renew(*victim, "a", 10);
  ASSERT_TRUE(hi.has_value());
  EXPECT_EQ(*hi, 50);
}

TEST(LeaseQueue, StealRespectsMinimumChunk) {
  util::LeaseQueue queue(scratch_path("lq_steal_min"), {});
  queue.enqueue(0, 20, 0);  // below 2 * min_steal_points = 32
  ASSERT_TRUE(queue.claim("a").has_value());
  EXPECT_FALSE(queue.steal("b"));
}

TEST(LeaseQueue, ReclaimRequeuesOnlyUnjournaledRemainder) {
  util::LeaseQueue::Options options;
  options.lease_ttl_seconds = 0.05;
  util::LeaseQueue queue(scratch_path("lq_reclaim"), options);
  queue.enqueue(0, 100, 0);
  const std::optional<util::LeaseChunk> chunk = queue.claim("a");
  ASSERT_TRUE(chunk.has_value());
  ASSERT_TRUE(queue.renew(*chunk, "a", 40).has_value());

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  const std::vector<util::LeaseQueue::Reclaimed> reclaimed =
      queue.reclaim_expired();
  ASSERT_EQ(reclaimed.size(), 1u);
  EXPECT_EQ(reclaimed[0].worker, "a");
  EXPECT_EQ(reclaimed[0].taken_lo, 0);
  EXPECT_EQ(reclaimed[0].chunk.lo, 40);  // [0, 40) is already journaled
  EXPECT_EQ(reclaimed[0].chunk.hi, 100);
  EXPECT_EQ(reclaimed[0].chunk.attempts, 1);

  const std::optional<util::LeaseChunk> retaken = queue.claim("b");
  ASSERT_TRUE(retaken.has_value());
  EXPECT_EQ(retaken->lo, 40);
  EXPECT_EQ(retaken->attempts, 1);
}

TEST(LeaseQueue, TornClaimIsExpiredImmediately) {
  util::LeaseQueue queue(scratch_path("lq_torn"), {});
  // A worker SIGKILLed between rename(todo, lease) and the content rewrite
  // leaves the original 3-field todo body under the lease name.
  write_file(queue.dir() + "/lease-0", "0 10 2\n");
  const std::vector<util::LeaseQueue::Reclaimed> reclaimed =
      queue.reclaim_expired();
  ASSERT_EQ(reclaimed.size(), 1u);
  EXPECT_EQ(reclaimed[0].worker, "");
  EXPECT_EQ(reclaimed[0].chunk.lo, 0);
  EXPECT_EQ(reclaimed[0].chunk.hi, 10);
  EXPECT_EQ(reclaimed[0].chunk.attempts, 3);
}

TEST(LeaseQueue, HeartbeatFromBeforeRebootIsExpired) {
  util::LeaseQueue queue(scratch_path("lq_reboot"), {});
  // CLOCK_MONOTONIC restarts at boot, so a pre-reboot heartbeat sits in
  // the apparent future forever. It must count as expired, not as fresh.
  write_file(queue.dir() + "/lease-0", "0 10 0 w 9000000000000000 3\n");
  const std::vector<util::LeaseQueue::Reclaimed> reclaimed =
      queue.reclaim_expired();
  ASSERT_EQ(reclaimed.size(), 1u);
  EXPECT_EQ(reclaimed[0].worker, "w");
  EXPECT_EQ(reclaimed[0].chunk.lo, 3);  // progress survives the reboot
  EXPECT_EQ(reclaimed[0].chunk.hi, 10);
}

TEST(LeaseQueue, ClearRemovesEveryChunkFile) {
  util::LeaseQueue queue(scratch_path("lq_clear"), {});
  queue.enqueue(0, 100, 0);
  queue.enqueue(100, 200, 0);
  ASSERT_TRUE(queue.claim("a").has_value());
  EXPECT_FALSE(queue.idle());
  queue.clear();
  EXPECT_TRUE(queue.idle());
  EXPECT_EQ(queue.todo_count(), 0u);
}

// ---------------------------------------------------------------------------
// CheckpointJournal::scan — the read-only merge-side view

TEST(JournalScan, MissingFile) {
  const util::CheckpointJournal::Scan scan = util::CheckpointJournal::scan(
      scratch_path("js_missing") + "/nope.journal", 7);
  EXPECT_FALSE(scan.exists);
  EXPECT_FALSE(scan.key_matches);
  EXPECT_TRUE(scan.entries.empty());
}

TEST(JournalScan, ZeroByteFileHasNoKeyAndNoEntries) {
  const std::string dir = scratch_path("js_empty");
  fs::create_directories(dir);
  const std::string path = dir + "/empty.journal";
  write_file(path, "");
  const util::CheckpointJournal::Scan scan =
      util::CheckpointJournal::scan(path, 7);
  EXPECT_TRUE(scan.exists);
  EXPECT_FALSE(scan.key_matches);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_TRUE(scan.entries.empty());
}

TEST(JournalScan, KeyMismatchYieldsNoEntries) {
  const std::string dir = scratch_path("js_key");
  fs::create_directories(dir);
  const std::string path = dir + "/j.journal";
  {
    util::CheckpointJournal journal(path, 1, {false});
    journal.append(0, "zero");
  }
  const util::CheckpointJournal::Scan scan =
      util::CheckpointJournal::scan(path, 2);
  EXPECT_TRUE(scan.exists);
  EXPECT_FALSE(scan.key_matches);
  EXPECT_TRUE(scan.entries.empty());
}

TEST(JournalScan, TornTailIsReportedAndPrefixKept) {
  const std::string dir = scratch_path("js_torn");
  fs::create_directories(dir);
  const std::string path = dir + "/j.journal";
  {
    util::CheckpointJournal journal(path, 9, {false});
    journal.append(0, "first");
    journal.append(1, "second");
  }
  const std::string full = read_file(path);
  write_file(path, full.substr(0, full.size() - 3));  // tear the last record

  const util::CheckpointJournal::Scan scan =
      util::CheckpointJournal::scan(path, 9);
  EXPECT_TRUE(scan.key_matches);
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.entries.size(), 1u);
  EXPECT_EQ(scan.entries.at(0), "first");
}

TEST(JournalScan, LaterRecordForSameIndexWins) {
  const std::string dir = scratch_path("js_rewrite");
  fs::create_directories(dir);
  const std::string path = dir + "/j.journal";
  {
    util::CheckpointJournal journal(path, 9, {false});
    journal.append(4, "!");  // intent marker: "about to evaluate index 4"
    journal.append(4, "completed");
  }
  const util::CheckpointJournal::Scan scan =
      util::CheckpointJournal::scan(path, 9);
  ASSERT_EQ(scan.entries.size(), 1u);
  EXPECT_EQ(scan.entries.at(4), "completed");
}

// ---------------------------------------------------------------------------
// ExploreSpec parsing

constexpr const char* kSpecText =
    "gates = 20000\n"
    "bunch_size = 2000\n"
    "explore.K = 2.2:3.9:3\n"
    "explore.M = 1.0, 2.0\n"
    "explore.R = 0.3, 0.4\n";

core::ExploreSpec test_spec() {
  return core::ExploreSpec::parse(util::Config::parse(kSpecText));
}

TEST(ExploreSpec, ParsesListsAndLinspace) {
  const core::ExploreSpec spec = test_spec();
  ASSERT_EQ(spec.k_values().size(), 3u);  // lo:hi:n linspace
  EXPECT_DOUBLE_EQ(spec.k_values()[0], 2.2);
  EXPECT_DOUBLE_EQ(spec.k_values()[1], 3.05);
  EXPECT_DOUBLE_EQ(spec.k_values()[2], 3.9);
  ASSERT_EQ(spec.m_values().size(), 2u);  // explicit comma list
  EXPECT_DOUBLE_EQ(spec.m_values()[1], 2.0);
  // Unswept dimensions collapse to the single base value.
  EXPECT_EQ(spec.nodes().size(), 1u);
  EXPECT_EQ(spec.rent_ps().size(), 1u);
  EXPECT_EQ(spec.target_models().size(), 1u);
  EXPECT_EQ(spec.c_values().size(), 1u);
  EXPECT_EQ(spec.total_points(), 3 * 2 * 2);
}

TEST(ExploreSpec, ScenarioDecomposesRowMajorWithRFastest) {
  const core::ExploreSpec spec = test_spec();
  std::int64_t index = 0;
  for (std::size_t k = 0; k < spec.k_values().size(); ++k) {
    for (std::size_t m = 0; m < spec.m_values().size(); ++m) {
      for (std::size_t r = 0; r < spec.r_values().size(); ++r, ++index) {
        const core::ExploreSpec::Scenario s = spec.scenario(index);
        EXPECT_EQ(s.k, k) << index;
        EXPECT_EQ(s.m, m) << index;
        EXPECT_EQ(s.r, r) << index;
        EXPECT_EQ(s.node, 0u);
        const core::RankOptions options = spec.options_at(s);
        EXPECT_DOUBLE_EQ(options.ild_permittivity, spec.k_values()[k]);
        EXPECT_DOUBLE_EQ(options.miller_factor, spec.m_values()[m]);
        EXPECT_DOUBLE_EQ(options.repeater_fraction, spec.r_values()[r]);
      }
    }
  }
  EXPECT_EQ(index, spec.total_points());
}

TEST(ExploreSpec, RejectsRentSweepOverFixedWldFile) {
  const std::string dir = scratch_path("spec_wldfile");
  fs::create_directories(dir);
  const std::string wld_path = dir + "/fixed.wld";
  write_file(wld_path, "600 2\n350 30\n180 200\n90 1500\n40 2200\n");
  const std::string text = "gates = 20000\nwld.file = " + wld_path +
                           "\nexplore.rent_p = 0.55, 0.65\n";
  EXPECT_THROW(
      { (void)core::ExploreSpec::parse(util::Config::parse(text)); },
      util::Error);
}

TEST(ExploreSpec, KeyTracksDimensionValues) {
  const core::ExploreSpec a = test_spec();
  const core::ExploreSpec b = test_spec();
  EXPECT_EQ(a.key(), b.key());
  const std::string changed = std::string(kSpecText) + "explore.C = 4e8, 6e8\n";
  const core::ExploreSpec c =
      core::ExploreSpec::parse(util::Config::parse(changed));
  EXPECT_NE(a.key(), c.key());
}

// ---------------------------------------------------------------------------
// End-to-end: merge, dedup, torn tails, crash salvage, bitwise identity

struct CleanRun {
  core::ExploreResult result;
  std::string dir;
  std::string points_csv;
  std::string pareto_csv;
};

/// One shared clean reference run (workers = 0): every other e2e test
/// compares its outputs byte-for-byte against this.
const CleanRun& clean_run() {
  static const CleanRun run = [] {
    CleanRun r;
    r.dir = scratch_path("explore_clean");
    core::ExploreOptions options;
    options.dir = r.dir;
    options.jobs = 2;
    r.result = core::run_explore(test_spec(), options);
    r.points_csv = read_file(r.dir + "/points.csv");
    r.pareto_csv = read_file(r.dir + "/pareto.csv");
    return r;
  }();
  return run;
}

TEST(Explore, CleanRunEvaluatesWholeGrid) {
  const CleanRun& clean = clean_run();
  EXPECT_EQ(static_cast<std::int64_t>(clean.result.points.size()),
            test_spec().total_points());
  EXPECT_GT(clean.result.ok, 0);
  EXPECT_EQ(clean.result.quarantined, 0);
  EXPECT_FALSE(clean.result.pareto.empty());
  EXPECT_NE(clean.points_csv.find("index,node,rent_p"), std::string::npos);
}

TEST(Explore, WorkerRunIsBitwiseIdenticalToCleanRun) {
  const CleanRun& clean = clean_run();
  core::ExploreOptions options;
  options.dir = scratch_path("explore_workers");
  options.workers = 2;
  options.chunk_points = 3;
  const core::ExploreResult result = core::run_explore(test_spec(), options);
  EXPECT_EQ(result.ok, clean.result.ok);
  EXPECT_EQ(result.quarantined, 0);
  EXPECT_EQ(read_file(options.dir + "/points.csv"), clean.points_csv);
  EXPECT_EQ(read_file(options.dir + "/pareto.csv"), clean.pareto_csv);
}

TEST(Explore, MergesTwoTornJournalsWithDuplicatesBitwiseIdentically) {
  const CleanRun& clean = clean_run();
  // Two overlapping journal copies, each with its last record torn mid-line
  // (a SIGKILL mid-append on two workers at once). Merge must count both
  // tails, dedup the bitwise-equal overlap, and recompute only the torn-off
  // indices — ending bitwise-identical to the clean run.
  core::ExploreOptions options;
  options.dir = scratch_path("explore_torn");
  fs::create_directories(options.dir + "/journals");
  const std::string full = read_file(clean.dir + "/journals/inline.journal");
  write_file(options.dir + "/journals/wa.journal",
             full.substr(0, full.size() - 3));
  write_file(options.dir + "/journals/wb.journal",
             full.substr(0, full.size() - 3));
  const core::ExploreResult result = core::run_explore(test_spec(), options);
  EXPECT_EQ(result.torn_tails, 2);
  EXPECT_GT(result.duplicates, 0);
  EXPECT_GT(result.resumed, 0);
  EXPECT_LT(result.resumed, test_spec().total_points());  // tail was torn off
  EXPECT_EQ(read_file(options.dir + "/points.csv"), clean.points_csv);
  EXPECT_EQ(read_file(options.dir + "/pareto.csv"), clean.pareto_csv);
}

TEST(Explore, ZeroByteJournalIsIgnored) {
  const CleanRun& clean = clean_run();
  core::ExploreOptions options;
  options.dir = scratch_path("explore_zerobyte");
  fs::create_directories(options.dir + "/journals");
  write_file(options.dir + "/journals/dead.journal", "");
  const core::ExploreResult result = core::run_explore(test_spec(), options);
  EXPECT_EQ(result.torn_tails, 0);
  EXPECT_EQ(result.resumed, 0);
  EXPECT_EQ(read_file(options.dir + "/points.csv"), clean.points_csv);
}

TEST(Explore, DivergentDuplicateRecordsFailTheBitwiseAudit) {
  core::ExploreOptions options;
  options.dir = scratch_path("explore_divergent");
  fs::create_directories(options.dir + "/journals");
  const std::uint64_t key = test_spec().key();
  {
    util::CheckpointJournal a(options.dir + "/journals/wa.journal", key,
                              {false});
    a.append(0, "payload-one");
  }
  {
    util::CheckpointJournal b(options.dir + "/journals/wb.journal", key,
                              {false});
    b.append(0, "payload-two");
  }
  try {
    (void)core::run_explore(test_spec(), options);
    FAIL() << "divergent duplicates must not merge silently";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kInternal);
    EXPECT_NE(std::string(e.what()).find("bitwise audit"), std::string::npos);
  }
}

TEST(Explore, PointThatKillsItsWorkerTwiceIsSalvaged) {
  const CleanRun& clean = clean_run();
  const std::string dir = scratch_path("explore_crash");
  fs::create_directories(dir);
  const std::string state = dir + "/crash.state";
  // Grid index 5 SIGKILLs its evaluating process twice, then behaves: the
  // coordinator reclaims the lease each time, marks the point poisoned at
  // the second crash, and the salvage child recovers its true value — so
  // the merged output still matches the clean run byte for byte.
  ASSERT_EQ(setenv("IARANK_EXPLORE_CRASH", ("5:2:" + state).c_str(), 1), 0);
  core::ExploreOptions options;
  options.dir = dir + "/run";
  options.workers = 2;
  options.chunk_points = 3;
  options.lease_ttl_seconds = 0.3;
  core::ExploreResult result;
  try {
    result = core::run_explore(test_spec(), options);
  } catch (...) {
    unsetenv("IARANK_EXPLORE_CRASH");
    throw;
  }
  unsetenv("IARANK_EXPLORE_CRASH");

  // The hook fired: each crash appended one line to the state file.
  EXPECT_EQ(read_file(state), "x\nx\n");
  EXPECT_EQ(result.quarantined, 0);
  EXPECT_EQ(result.ok, clean.result.ok);
  EXPECT_EQ(read_file(options.dir + "/points.csv"), clean.points_csv);
  EXPECT_EQ(read_file(options.dir + "/pareto.csv"), clean.pareto_csv);
}

}  // namespace
}  // namespace iarank
