/// Tests for core::free_pack — the paper's greedy_assign (Alg. 5 / M''),
/// the delay-free bottom-up packer proven optimal by Lemma 1.

#include <functional>

#include <gtest/gtest.h>

#include "src/core/free_pack.hpp"
#include "src/core/instance.hpp"
#include "tests/helpers.hpp"

namespace core = iarank::core;
namespace tech = iarank::tech;

namespace {

/// Instance with no delay plans (packing only): lengths/counts and two
/// pairs with different pitches.
core::Instance pack_instance(double capacity, double via_area = 0.0,
                             tech::ViaSpec vias = {0.0, 0.0}) {
  std::vector<core::Bunch> bunches = {{4.0, 2, 1.0}, {2.0, 4, 1.0},
                                      {1.0, 6, 1.0}};
  std::vector<core::PairInfo> pairs = {{"top", 1.0, via_area, 1.0, 1.0},
                                       {"bottom", 1.0, via_area, 1.0, 1.0}};
  std::vector<std::vector<core::DelayPlan>> plans(
      3, std::vector<core::DelayPlan>(2));
  return core::Instance::from_raw(bunches, pairs, plans, capacity, 0.0, vias);
}

}  // namespace

TEST(FreePack, EverythingFitsComfortably) {
  // Total demand: 2*4 + 4*2 + 6*1 = 22; two pairs of 20 each.
  const auto inst = pack_instance(20.0);
  const auto loads = core::free_pack(inst, {});
  ASSERT_TRUE(loads.has_value());
  std::int64_t placed = 0;
  for (const auto& l : *loads) placed += l.wires;
  EXPECT_EQ(placed, inst.total_wires());
}

TEST(FreePack, BottomPairFilledFirst) {
  const auto inst = pack_instance(20.0);
  const auto loads = core::free_pack(inst, {});
  ASSERT_TRUE(loads.has_value());
  // Bottom pair (index 1) holds the short wires: 6*1 + 4*2 + ...
  // Greedy bottom-up packs 6+4 wires (area 6+8=14) then 1 long wire (18),
  // leaving 1 long wire for the top pair.
  ASSERT_EQ(loads->size(), 2u);
  EXPECT_EQ((*loads)[0].pair, 0u);
  EXPECT_EQ((*loads)[0].wires, 1);
  EXPECT_EQ((*loads)[1].pair, 1u);
  EXPECT_EQ((*loads)[1].wires, 11);
}

TEST(FreePack, InfeasibleWhenTooTight) {
  // Demand 22 > 2 x 10.
  const auto inst = pack_instance(10.0);
  EXPECT_FALSE(core::free_pack(inst, {}).has_value());
}

TEST(FreePack, WireGranularityBlocksFractionalFit) {
  // Capacity 11 per pair, demand 22: an exact split would need 2.5 of the
  // length-2 wires in the bottom pair — wires are atomic, so infeasible.
  const auto inst = pack_instance(11.0);
  EXPECT_FALSE(core::free_pack(inst, {}).has_value());
}

TEST(FreePack, SplitsBunchAcrossPairs) {
  const auto inst = pack_instance(12.0);
  const auto loads = core::free_pack(inst, {});
  ASSERT_TRUE(loads.has_value());
  // Bottom: 6 shorts (6) + 3 mids (6) = 12 full; the mid bunch splits,
  // its 4th wire lands on the top pair with the 2 longs (2 + 8 = 10).
  ASSERT_EQ(loads->size(), 2u);
  EXPECT_EQ((*loads)[1].wires, 9);
  EXPECT_EQ((*loads)[0].wires, 3);
  std::int64_t total = 0;
  for (const auto& l : *loads) total += l.wires;
  EXPECT_EQ(total, 12);
}

TEST(FreePack, OffsetSkipsPrefixWires) {
  const auto inst = pack_instance(20.0);
  core::FreePackInput in;
  in.first_bunch = 0;
  in.first_bunch_offset = 2;  // both long wires already placed elsewhere
  const auto loads = core::free_pack(inst, in);
  ASSERT_TRUE(loads.has_value());
  std::int64_t total = 0;
  for (const auto& l : *loads) total += l.wires;
  EXPECT_EQ(total, 10);
}

TEST(FreePack, FirstPairAreaAlreadyUsed) {
  // Capacity 12 per pair fits the suffix; pre-using 5 units in the first
  // pair must make it infeasible.
  const auto inst = pack_instance(12.0);
  EXPECT_TRUE(core::free_pack(inst, {}).has_value());
  core::FreePackInput in;
  in.area_used_first_pair = 5.0;
  EXPECT_FALSE(core::free_pack(inst, in).has_value());
}

TEST(FreePack, StartAtLowerPairOnly) {
  const auto inst = pack_instance(22.0);
  core::FreePackInput in;
  in.first_pair = 1;  // only the bottom pair is available
  EXPECT_TRUE(core::free_pack(inst, in).has_value());
  core::FreePackInput tight = in;
  tight.area_used_first_pair = 1.0;
  EXPECT_FALSE(core::free_pack(inst, tight).has_value());
}

TEST(FreePack, NothingToPlaceIsTriviallyFeasible) {
  const auto inst = pack_instance(1.0);
  core::FreePackInput in;
  in.first_bunch = 3;  // past the last bunch
  const auto loads = core::free_pack(inst, in);
  ASSERT_TRUE(loads.has_value());
  EXPECT_TRUE(loads->empty());
}

TEST(FreePack, RepeaterViasShrinkLowerPairs) {
  // Via blockage from repeaters above: each repeater blocks via_area in
  // every pair below the first.
  tech::ViaSpec vias{0.0, 1.0};  // only repeater vias
  const auto inst = pack_instance(12.0, /*via_area=*/0.5, vias);
  core::FreePackInput in;
  in.repeaters_total = 0.0;
  EXPECT_TRUE(core::free_pack(inst, in).has_value());
  in.repeaters_total = 10.0;  // blocks 5.0 area in the bottom pair
  EXPECT_FALSE(core::free_pack(inst, in).has_value());
}

TEST(FreePack, WireViasShrinkButReleaseAsPacked) {
  // Wires above a pair block it; wires packed at or below it do not.
  // With vias_per_wire = 1 and via_area = 0.2: if all 12 wires were
  // "above" the bottom pair it would lose 2.4 of its 12.2; packing wires
  // into it releases blockage as they move at-or-below, leaving exactly
  // enough room for the 2-mid + 2-long top load.
  tech::ViaSpec vias{1.0, 0.0};
  const auto inst = pack_instance(12.2, /*via_area=*/0.2, vias);
  EXPECT_TRUE(core::free_pack(inst, {}).has_value());
}

TEST(FreePack, LoadsAreaAccountingConsistent) {
  const auto inst = pack_instance(20.0);
  const auto loads = core::free_pack(inst, {});
  ASSERT_TRUE(loads.has_value());
  for (const auto& l : *loads) {
    EXPECT_GT(l.wires, 0);
    EXPECT_LE(l.wire_area, inst.pair_capacity() * (1.0 + 1e-9));
  }
}

/// Randomized cross-check: free_pack feasibility equals exhaustive
/// packing feasibility on tiny delay-free instances.
class FreePackOracle : public ::testing::TestWithParam<std::uint64_t> {};

namespace {

/// Exhaustive packing check at wire granularity (count-1 bunches):
/// all monotone assignments bunch -> pair, with blockage accounting.
bool exhaustive_packable(const core::Instance& inst) {
  const std::size_t n = inst.bunch_count();
  const std::size_t m = inst.pair_count();
  std::vector<std::size_t> ends(m, 0);
  std::function<bool(std::size_t, std::size_t)> rec =
      [&](std::size_t pair, std::size_t assigned) -> bool {
    if (pair == m) {
      if (assigned != n) return false;
      // Verify areas with blockage (no repeaters).
      std::size_t start = 0;
      double wires_above = 0.0;
      for (std::size_t q = 0; q < m; ++q) {
        double area = 0.0;
        double here = 0.0;
        for (std::size_t t = start; t < ends[q]; ++t) {
          area += inst.wire_area(t, q, inst.bunch(t).count);
          here += static_cast<double>(inst.bunch(t).count);
        }
        if (area > inst.pair_capacity() - inst.blockage(q, wires_above, 0.0) +
                       inst.pair_capacity() * 1e-9) {
          return false;
        }
        wires_above += here;
        start = ends[q];
      }
      return true;
    }
    for (std::size_t take = 0; take <= n - assigned; ++take) {
      ends[pair] = assigned + take;
      if (rec(pair + 1, assigned + take)) return true;
    }
    return false;
  };
  return rec(0, 0);
}

}  // namespace

TEST_P(FreePackOracle, MatchesExhaustivePacking) {
  iarank::testing::RandomInstanceSpec spec;
  spec.min_bunches = 3;
  spec.max_bunches = 6;
  const auto inst = iarank::testing::random_instance(GetParam(), spec);
  EXPECT_EQ(core::free_pack_feasible(inst, {}), exhaustive_packable(inst))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FreePackOracle,
                         ::testing::Range<std::uint64_t>(0, 60));
