/// End-to-end tests: engine facade, paper baseline, Table-4 sweep
/// machinery, monotonicity properties of the rank metric, bunching error
/// bound (paper Section 5.1), and the architecture optimizer.

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/engine.hpp"
#include "src/core/optimizer.hpp"
#include "src/core/paper_setup.hpp"
#include "src/core/sweep.hpp"
#include "src/util/error.hpp"
#include "src/util/units.hpp"
#include "src/wld/davis.hpp"
#include "src/wld/synthetic.hpp"

namespace core = iarank::core;
namespace wld = iarank::wld;
namespace units = iarank::util::units;

namespace {

/// Small paper-regime setup (50k gates) so each rank evaluation is fast.
/// The regime knobs are rescaled for the smaller die (the calibration is
/// gate-count dependent — see paper_setup.hpp) so the design still sits
/// in the paper's budget-limited operating point (~0.39 baseline).
core::PaperSetup small_setup() {
  core::PaperSetup setup =
      core::paper_baseline("130nm", 50000, core::scaled_regime(50000));
  setup.options.bunch_size = 500;
  return setup;
}

const wld::Wld& small_wld() {
  static const wld::Wld w = core::default_wld(small_setup().design);
  return w;
}

}  // namespace

// --- facade ------------------------------------------------------------------------

TEST(Engine, BaselineDesignMatchesTable2) {
  const auto d = core::baseline_design("130nm");
  EXPECT_EQ(d.gate_count, 1000000);
  EXPECT_EQ(d.arch.global_pairs, 1);
  EXPECT_EQ(d.arch.semi_global_pairs, 2);
  EXPECT_EQ(d.arch.local_pairs, 1);
}

TEST(Engine, DefaultWldIsDavisAtRent06) {
  const auto setup = small_setup();
  const auto w = core::default_wld(setup.design);
  const wld::DavisParams params{50000, 0.6, 4.0, 3.0};
  EXPECT_NEAR(static_cast<double>(w.total_wires()),
              params.total_interconnects(), 2.0);
}

TEST(Engine, ComputeRankRunsEndToEnd) {
  const auto setup = small_setup();
  const auto r = core::compute_rank(setup.design, setup.options, small_wld());
  EXPECT_TRUE(r.all_assigned);
  EXPECT_GT(r.rank, 0);
  EXPECT_LT(r.normalized, 1.0);
  EXPECT_GT(r.repeater_count, 0);
}

TEST(Engine, DpBeatsOrMatchesGreedyOnPhysicalInstance) {
  // The DP is exact at bunch granularity; greedy splits bunches wire by
  // wire, so it can lead by at most one bunch (the paper's Section 5.1
  // coarsening error). Strict DP >= greedy at wire granularity is covered
  // by the randomized oracle tests.
  const auto setup = small_setup();
  const auto dp = core::compute_rank(setup.design, setup.options, small_wld());
  const auto greedy =
      core::compute_rank_greedy(setup.design, setup.options, small_wld());
  EXPECT_GE(dp.rank + setup.options.bunch_size, greedy.rank);
}

// --- monotonicity properties (the paper's qualitative claims) --------------------------

TEST(Monotonicity, RankImprovesAsPermittivityDrops) {
  const auto setup = small_setup();
  const auto sweep = core::sweep_parameter(
      setup.design, setup.options, small_wld(),
      core::SweepParameter::kIldPermittivity, {3.9, 3.3, 2.7, 2.1});
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    EXPECT_GE(sweep.points[i].result.rank, sweep.points[i - 1].result.rank)
        << "K=" << sweep.points[i].value;
  }
}

TEST(Monotonicity, RankImprovesAsMillerDrops) {
  const auto setup = small_setup();
  const auto sweep = core::sweep_parameter(
      setup.design, setup.options, small_wld(),
      core::SweepParameter::kMillerFactor, {2.0, 1.6, 1.3, 1.0});
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    EXPECT_GE(sweep.points[i].result.rank, sweep.points[i - 1].result.rank);
  }
}

TEST(Monotonicity, RankDegradesAsClockRises) {
  const auto setup = small_setup();
  const auto sweep = core::sweep_parameter(
      setup.design, setup.options, small_wld(),
      core::SweepParameter::kClockFrequency,
      {0.5e9, 0.8e9, 1.1e9, 1.4e9, 1.7e9});
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    EXPECT_LE(sweep.points[i].result.rank, sweep.points[i - 1].result.rank);
  }
}

TEST(Monotonicity, RankGrowsWithRepeaterBudget) {
  const auto setup = small_setup();
  const auto sweep = core::sweep_parameter(
      setup.design, setup.options, small_wld(),
      core::SweepParameter::kRepeaterFraction, {0.1, 0.2, 0.3, 0.4, 0.5});
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    EXPECT_GE(sweep.points[i].result.rank, sweep.points[i - 1].result.rank);
  }
}

// --- coarsening error bound (paper Section 5.1) ------------------------------------------

TEST(Coarsening, BunchingErrorBoundedByBunchSize) {
  // "error in rank computation due to bunching can be at most the size of
  // the maximum bunch" (paper Section 5.1) — the prefix-rounding loss is
  // one bunch; rounding the per-pair chunk boundaries can cost up to one
  // bunch per layer-pair, hence the m-aware bound checked here.
  auto setup = small_setup();
  setup.options.refine_boundary = false;  // pure bunch-granular rank
  core::RankOptions fine = setup.options;
  fine.bunch_size = 50;
  core::RankOptions coarse = setup.options;
  coarse.bunch_size = 2000;
  const auto r_fine =
      core::compute_rank(setup.design, fine, small_wld()).rank;
  const auto r_coarse =
      core::compute_rank(setup.design, coarse, small_wld()).rank;
  const std::int64_t pairs = 4;
  EXPECT_LE(std::llabs(r_fine - r_coarse), (2000 + 50) * pairs);
}

TEST(Coarsening, RefinementRecoversPartOfTheError) {
  auto setup = small_setup();
  core::RankOptions coarse = setup.options;
  coarse.bunch_size = 2000;
  coarse.refine_boundary = false;
  core::RankOptions refined = coarse;
  refined.refine_boundary = true;
  const auto plain = core::compute_rank(setup.design, coarse, small_wld());
  const auto with = core::compute_rank(setup.design, refined, small_wld());
  EXPECT_GE(with.rank, plain.rank);
}

TEST(Coarsening, BinningKeepsRankClose) {
  auto setup = small_setup();
  core::RankOptions binned = setup.options;
  binned.bin_window = 2.0;
  const auto base =
      core::compute_rank(setup.design, setup.options, small_wld());
  const auto b = core::compute_rank(setup.design, binned, small_wld());
  // Binning is lossy but should stay within a few percent of the rank.
  EXPECT_NEAR(b.normalized, base.normalized, 0.08);
}

// --- sweep utilities -----------------------------------------------------------------------

TEST(Sweep, Table4Grids) {
  EXPECT_EQ(core::table4_k_values().size(), 22u);  // 3.9 .. 1.8 step 0.1
  EXPECT_EQ(core::table4_m_values().size(), 21u);  // 2.00 .. 1.00 step 0.05
  EXPECT_EQ(core::table4_c_values().size(), 13u);  // 0.5 .. 1.7 GHz
  EXPECT_EQ(core::table4_r_values().size(), 5u);
  EXPECT_DOUBLE_EQ(core::table4_k_values().front(), 3.9);
  EXPECT_NEAR(core::table4_k_values().back(), 1.8, 1e-9);
  EXPECT_NEAR(core::table4_c_values().back(), 1.7e9, 1.0);
}

TEST(Sweep, Table4GridsAreExactByIndex) {
  // Every entry must be the double nearest its printed decimal — i.e. the
  // index formula, not a running sum that drifts by a few ULPs per step
  // and can drop the final point on some platforms.
  const auto k = core::table4_k_values();
  for (std::size_t i = 0; i < k.size(); ++i) {
    EXPECT_DOUBLE_EQ(k[i], static_cast<double>(39 - i) / 10.0) << "K[" << i << "]";
  }
  EXPECT_DOUBLE_EQ(k.back(), 1.8);

  const auto m = core::table4_m_values();
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m[i], static_cast<double>(200 - 5 * i) / 100.0)
        << "M[" << i << "]";
  }
  EXPECT_DOUBLE_EQ(m.back(), 1.0);

  const auto c = core::table4_c_values();
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_DOUBLE_EQ(c[i], static_cast<double>(5 + i) / 10.0 * units::GHz)
        << "C[" << i << "]";
  }
  EXPECT_DOUBLE_EQ(c.front(), 0.5 * units::GHz);
  EXPECT_DOUBLE_EQ(c.back(), 1.7 * units::GHz);
}

TEST(Sweep, ValueReachingRankInterpolates) {
  core::SweepResult sweep;
  sweep.parameter = core::SweepParameter::kIldPermittivity;
  core::RankResult r1;
  r1.normalized = 0.40;
  core::RankResult r2;
  r2.normalized = 0.50;
  sweep.points = {{3.9, r1}, {3.4, r2}};
  EXPECT_NEAR(core::value_reaching_rank(sweep, 0.45), 3.65, 1e-9);
  EXPECT_TRUE(std::isnan(core::value_reaching_rank(sweep, 0.9)));
}

TEST(Sweep, ParameterNames) {
  EXPECT_NE(core::to_string(core::SweepParameter::kMillerFactor).find("Miller"),
            std::string::npos);
}

// --- architecture optimizer (paper Section 6 future work) -------------------------------------

TEST(Optimizer, BestDominatesAllEvaluated) {
  auto setup = small_setup();
  core::OptimizerOptions search;
  search.min_total_pairs = 3;
  search.max_total_pairs = 4;
  search.max_global_pairs = 1;
  search.max_semi_global_pairs = 2;
  search.max_local_pairs = 2;
  const auto result = core::optimize_architecture(
      setup.design.node, setup.design.gate_count, setup.options, small_wld(),
      search);
  EXPECT_FALSE(result.evaluated.empty());
  for (const auto& cand : result.evaluated) {
    EXPECT_GE(result.best.result.rank, cand.result.rank);
  }
}

TEST(Optimizer, MorePairsNeverHurtRank) {
  auto setup = small_setup();
  core::DesignSpec big = setup.design;
  big.arch.semi_global_pairs = 3;
  const auto base =
      core::compute_rank(setup.design, setup.options, small_wld());
  const auto more = core::compute_rank(big, setup.options, small_wld());
  EXPECT_GE(more.rank, base.rank);
}

TEST(Optimizer, EmptyGridThrows) {
  auto setup = small_setup();
  core::OptimizerOptions search;
  search.min_total_pairs = 10;
  search.max_total_pairs = 2;  // impossible
  EXPECT_THROW((void)core::optimize_architecture(
                   setup.design.node, setup.design.gate_count, setup.options,
                   small_wld(), search),
               iarank::util::Error);
}

// --- paper regime sanity ---------------------------------------------------------------------

TEST(PaperRegime, BaselineLandsNearPaperRank) {
  // The full 1M-gate baseline sits near the paper's 0.397; the 50k-gate
  // variant used in tests should still land in a budget-limited regime.
  const auto setup = small_setup();
  const auto r = core::compute_rank(setup.design, setup.options, small_wld());
  EXPECT_GT(r.normalized, 0.05);
  EXPECT_LT(r.normalized, 0.95);
  // Budget-limited: the budget is essentially exhausted.
  const auto budget =
      core::build_instance(setup.design, setup.options, small_wld())
          .repeater_budget();
  EXPECT_GT(r.repeater_area_used, 0.5 * budget);
}

TEST(PaperRegime, InvalidRegimeThrows) {
  core::PaperRegime regime;
  regime.die_scale = 0.0;
  EXPECT_THROW((void)core::paper_baseline("130nm", 1000, regime),
               iarank::util::Error);
}
