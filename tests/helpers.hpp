/// \file helpers.hpp
/// \brief Shared test fixtures: deterministic random instances for
///        oracle cross-validation, and small canned designs.

#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "src/core/instance.hpp"
#include "src/core/options.hpp"

namespace iarank::testing {

/// Parameters of the random-instance generator.
struct RandomInstanceSpec {
  int min_pairs = 2;
  int max_pairs = 3;
  int min_bunches = 3;
  int max_bunches = 7;
  bool with_vias = true;
  bool allow_infeasible_plans = true;
};

/// Builds a small random Instance with one wire per bunch (so wire and
/// bunch granularity coincide and brute force is exact). Deterministic
/// for a given seed.
inline core::Instance random_instance(std::uint64_t seed,
                                      const RandomInstanceSpec& spec = {}) {
  std::mt19937_64 rng(seed);
  auto uniform = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  auto uniform_int = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  const int m = uniform_int(spec.min_pairs, spec.max_pairs);
  const int n = uniform_int(spec.min_bunches, spec.max_bunches);

  std::vector<double> lengths;
  lengths.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) lengths.push_back(uniform(1.0, 10.0));
  std::sort(lengths.rbegin(), lengths.rend());

  std::vector<core::Bunch> bunches;
  for (const double l : lengths) bunches.push_back({l, 1, 1.0});

  std::vector<core::PairInfo> pairs;
  for (int j = 0; j < m; ++j) {
    core::PairInfo p;
    p.name = "pair" + std::to_string(j);
    p.pitch = uniform(0.5, 3.0);
    p.via_area = spec.with_vias ? uniform(0.0, 0.05) : 0.0;
    p.s_opt = 1.0;
    p.repeater_area = uniform(0.2, 1.5);
    pairs.push_back(p);
  }

  std::vector<std::vector<core::DelayPlan>> plans(
      static_cast<std::size_t>(n),
      std::vector<core::DelayPlan>(static_cast<std::size_t>(m)));
  for (int b = 0; b < n; ++b) {
    for (int j = 0; j < m; ++j) {
      core::DelayPlan& plan = plans[static_cast<std::size_t>(b)]
                                   [static_cast<std::size_t>(j)];
      plan.feasible =
          !spec.allow_infeasible_plans || uniform(0.0, 1.0) > 0.25;
      if (plan.feasible) {
        plan.stages = uniform_int(1, 4);
        plan.delay = 0.9;
        plan.area_per_wire =
            static_cast<double>(plan.stages - 1) *
            pairs[static_cast<std::size_t>(j)].repeater_area;
      }
    }
  }

  const double capacity = uniform(8.0, 40.0);
  const double budget = uniform(0.0, 6.0);
  tech::ViaSpec vias;
  vias.vias_per_wire = spec.with_vias ? 2.0 : 0.0;
  vias.vias_per_repeater = spec.with_vias ? 1.0 : 0.0;

  return core::Instance::from_raw(std::move(bunches), std::move(pairs),
                                  std::move(plans), capacity, budget, vias);
}

}  // namespace iarank::testing
