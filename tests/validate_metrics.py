#!/usr/bin/env python3
"""Validate a Prometheus text exposition (format 0.0.4).

Checks the invariants a scraper relies on, the histogram ones being the
load-bearing part (regression guard for the `_count` != `+Inf` bucket
export bug):

  * every line is a comment, blank, or `name{labels} value` sample;
  * `# TYPE` appears once per family, before that family's samples;
  * no duplicate sample (same name + label set);
  * counter samples are finite and non-negative;
  * for each histogram family `x`:
      - `x_bucket` samples carry an `le` label, ascending, with
        non-decreasing cumulative counts,
      - an `le="+Inf"` bucket is present,
      - `x_count` exists and equals the `+Inf` bucket,
      - `x_sum` exists and is finite.

usage: validate_metrics.py [--require NAME]... FILE   # or '-' for stdin
       validate_metrics.py --self-test

--require NAME fails the run unless a sample of metric NAME is present —
CI pins the export schema with it (e.g. the DP pool gauges
iarank_dp_arena_bytes / iarank_pool_bytes / iarank_pool_chunks_total).
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>-?\d+))?$"
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def base_family(name):
    """Histogram/summary series name -> family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate(text):
    """Returns a list of violation strings (empty = valid)."""
    errors = []
    types = {}          # family -> declared type
    samples_seen = set()  # (name, labels-text) for duplicate detection
    families_sampled = set()
    buckets = {}        # family -> list of (le, value, line_no)
    counts = {}         # family -> value
    sums = {}           # family -> value

    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not NAME_RE.match(parts[2]):
                    errors.append(f"line {line_no}: malformed {parts[1]} comment")
                    continue
                if parts[1] == "TYPE":
                    family = parts[2]
                    kind = parts[3] if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                        errors.append(
                            f"line {line_no}: unknown TYPE '{kind}'")
                    if family in types:
                        errors.append(
                            f"line {line_no}: duplicate TYPE for '{family}'")
                    if family in families_sampled:
                        errors.append(
                            f"line {line_no}: TYPE for '{family}' after "
                            "its samples")
                    types[family] = kind
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {line_no}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        labels_text = m.group("labels") or ""
        labels = {}
        if labels_text:
            ok = True
            for part in labels_text.split(","):
                lm = LABEL_RE.match(part.strip())
                if not lm:
                    errors.append(
                        f"line {line_no}: malformed label '{part.strip()}'")
                    ok = False
                    break
                labels[lm.group(1)] = lm.group(2)
            if not ok:
                continue
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(
                f"line {line_no}: non-numeric value {m.group('value')!r}")
            continue

        key = (name, labels_text)
        if key in samples_seen:
            errors.append(f"line {line_no}: duplicate sample {name}"
                          f"{{{labels_text}}}")
        samples_seen.add(key)

        family = base_family(name)
        families_sampled.add(family)
        families_sampled.add(name)
        kind = types.get(family)

        if kind == "histogram":
            if name == family + "_bucket":
                if "le" not in labels:
                    errors.append(
                        f"line {line_no}: {name} sample without an le label")
                    continue
                try:
                    le = parse_value(labels["le"])
                except ValueError:
                    errors.append(
                        f"line {line_no}: unparseable le={labels['le']!r}")
                    continue
                buckets.setdefault(family, []).append((le, value, line_no))
            elif name == family + "_count":
                counts[family] = (value, line_no)
            elif name == family + "_sum":
                sums[family] = (value, line_no)
        elif kind == "counter":
            if math.isnan(value) or math.isinf(value) or value < 0:
                errors.append(
                    f"line {line_no}: counter {name} has value {value}")
        elif kind == "gauge":
            if math.isnan(value):
                errors.append(f"line {line_no}: gauge {name} is NaN")
        elif kind is None:
            errors.append(f"line {line_no}: sample {name} has no TYPE")

    for family, kind in types.items():
        if kind != "histogram":
            continue
        series = buckets.get(family, [])
        if not series:
            errors.append(f"histogram {family}: no _bucket samples")
            continue
        prev_le, prev_value = -math.inf, -math.inf
        for le, value, line_no in series:
            if le <= prev_le:
                errors.append(
                    f"line {line_no}: {family} le={le} out of order")
            if value < prev_value:
                errors.append(
                    f"line {line_no}: {family} bucket counts not "
                    f"cumulative ({value} < {prev_value})")
            prev_le, prev_value = le, value
        inf_le, inf_value, _ = series[-1]
        if not math.isinf(inf_le):
            errors.append(f"histogram {family}: missing le=\"+Inf\" bucket")
        if family not in counts:
            errors.append(f"histogram {family}: missing _count")
        elif math.isinf(inf_le) and counts[family][0] != inf_value:
            errors.append(
                f"histogram {family}: _count={counts[family][0]} != "
                f"+Inf bucket={inf_value}")
        if family not in sums:
            errors.append(f"histogram {family}: missing _sum")
        elif math.isnan(sums[family][0]) or math.isinf(sums[family][0]):
            errors.append(f"histogram {family}: _sum is not finite")

    return errors


GOOD = """\
# HELP demo_requests_total requests
# TYPE demo_requests_total counter
demo_requests_total 5
# TYPE demo_depth gauge
demo_depth -3
# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.1"} 2
demo_seconds_bucket{le="1"} 3
demo_seconds_bucket{le="+Inf"} 4
demo_seconds_sum 1.25
demo_seconds_count 4
"""

BAD_CASES = {
    "negative counter": "# TYPE x counter\nx -1\n",
    "untyped sample": "x 1\n",
    "non-cumulative buckets": (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\nh_bucket{le="+Inf"} 5\n'
        "h_sum 1\nh_count 5\n"
    ),
    "missing +Inf": (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\nh_sum 1\nh_count 5\n'
    ),
    "count != +Inf": (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 4\nh_bucket{le="+Inf"} 5\nh_sum 1\nh_count 4\n'
    ),
    "missing sum": (
        "# TYPE h histogram\n"
        'h_bucket{le="+Inf"} 5\nh_count 5\n'
    ),
    "duplicate sample": "# TYPE x counter\nx 1\nx 2\n",
    "garbage line": "# TYPE x counter\nx one\n",
}


def missing_required(text, names):
    """Returns the subset of `names` with no sample in the exposition."""
    present = set()
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if m:
            present.add(m.group("name"))
    return [n for n in names if n not in present]


def self_test():
    failures = []
    errors = validate(GOOD)
    if errors:
        failures.append(f"good exposition rejected: {errors}")
    for label, text in BAD_CASES.items():
        if not validate(text):
            failures.append(f"bad exposition accepted: {label}")
    if missing_required(GOOD, ["demo_depth", "demo_seconds_count"]):
        failures.append("--require rejected present metrics")
    if missing_required(GOOD, ["absent_metric"]) != ["absent_metric"]:
        failures.append("--require accepted a missing metric")
    for f in failures:
        print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
    print("self-test: %d bad cases rejected, good case accepted"
          % len(BAD_CASES) if not failures else "self-test failed")
    return 1 if failures else 0


def main(argv):
    args = argv[1:]
    required = []
    while "--require" in args:
        i = args.index("--require")
        if i + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        required.append(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    if args[0] == "--self-test":
        return self_test()
    if args[0] == "-":
        text = sys.stdin.read()
    else:
        with open(args[0], "r", encoding="utf-8") as fh:
            text = fh.read()
    errors = validate(text)
    errors += [f"required metric '{n}' has no sample"
               for n in missing_required(text, required)]
    for e in errors:
        print(f"INVALID: {e}", file=sys.stderr)
    if errors:
        return 1
    n_samples = sum(
        1 for line in text.splitlines()
        if line.strip() and not line.startswith("#"))
    print(f"valid Prometheus exposition: {n_samples} samples"
          + (f" ({len(required)} required present)" if required else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
