#!/usr/bin/env python3
"""Verify that every `// VEC-LOOP: <name>`-tagged loop vectorized.

The DP kernel's forward-pass mapping loops are written branch-free so the
auto-vectorizer takes them (src/core/dp_rank.cpp, DESIGN.md Section
10.5). This guard pins that property in CI: the file is compiled with
`-O3 -fopt-info-vec` and each tagged loop must produce a
"loop vectorized" record — a refactor that quietly breaks vectorization
(an introduced branch, a non-affine access) fails the build instead of
shipping a silent slowdown.

A marker tags the loop on one of the next few source lines:

    // VEC-LOOP: map-chunk-area
    for (std::size_t i = 0; i < n; ++i) cr[i] = pr + akr[i];

usage: check_vectorization.py SOURCE VEC_REPORT
       check_vectorization.py --self-test

where VEC_REPORT is the stderr of
`g++ -std=c++20 -O3 -fopt-info-vec -I. -c SOURCE -o /dev/null`.

exit codes: 0 all tagged loops vectorized, 1 some did not, 2 bad input.
"""

import os
import re
import sys

MARKER_RE = re.compile(r"//\s*VEC-LOOP:\s*(\S+)")
# e.g. "src/core/dp_rank.cpp:753:37: optimized: loop vectorized using ..."
RECORD_RE = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):\d+:\s+optimized:\s+loop vectorized"
)

# A marker sits directly above its loop; allow a few lines of slack for
# wrapped for-statements.
MARKER_WINDOW = 4


def find_markers(source_text):
    """Returns [(name, line_no)] for every VEC-LOOP marker."""
    markers = []
    for line_no, line in enumerate(source_text.splitlines(), 1):
        m = MARKER_RE.search(line)
        if m:
            markers.append((m.group(1), line_no))
    return markers


def vectorized_lines(report_text, source_basename):
    """Line numbers of 'loop vectorized' records for the source file."""
    lines = set()
    for raw in report_text.splitlines():
        m = RECORD_RE.match(raw.strip())
        if m and os.path.basename(m.group("file")) == source_basename:
            lines.add(int(m.group("line")))
    return lines


def check(source_text, report_text, source_basename):
    """Returns (results, failures): results is [(name, marker_line,
    vectorized_line_or_None)]."""
    markers = find_markers(source_text)
    records = vectorized_lines(report_text, source_basename)
    results = []
    failures = []
    for name, marker_line in markers:
        hit = next(
            (ln for ln in range(marker_line + 1,
                                marker_line + 1 + MARKER_WINDOW)
             if ln in records),
            None,
        )
        results.append((name, marker_line, hit))
        if hit is None:
            failures.append(name)
    return results, failures


def self_test():
    source = (
        "int f(double* a, double* b, int n) {\n"
        "  // VEC-LOOP: add\n"
        "  for (int i = 0; i < n; ++i) a[i] += b[i];\n"
        "  // VEC-LOOP: scaled\n"
        "  for (int i = 0; i < n; ++i)\n"
        "    a[i] = 2.0 * b[i];\n"
        "  // VEC-LOOP: broken\n"
        "  for (int i = 0; i < n; ++i) if (b[i] > 0) a[i] = 1;\n"
        "  return n;\n"
        "}\n"
    )
    report = (
        "x.cpp:3:3: optimized: loop vectorized using 16 byte vectors\n"
        "x.cpp:5:3: optimized: loop vectorized using 16 byte vectors\n"
        "other.cpp:8:3: optimized: loop vectorized using 16 byte vectors\n"
    )
    results, failures = check(source, report, "x.cpp")
    assert [r[0] for r in results] == ["add", "scaled", "broken"]
    assert failures == ["broken"], failures
    # No markers at all is a usage error the caller should notice.
    assert find_markers("int g() { return 0; }") == []
    print("check_vectorization self-test: OK")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    source_path, report_path = argv[1], argv[2]
    try:
        with open(source_path, "r", encoding="utf-8") as fh:
            source_text = fh.read()
        with open(report_path, "r", encoding="utf-8") as fh:
            report_text = fh.read()
    except OSError as e:
        print(f"check_vectorization: {e}", file=sys.stderr)
        return 2

    results, failures = check(source_text, report_text,
                              os.path.basename(source_path))
    if not results:
        print(f"check_vectorization: no VEC-LOOP markers in {source_path}",
              file=sys.stderr)
        return 2
    for name, marker_line, hit in results:
        status = f"vectorized (line {hit})" if hit else "NOT VECTORIZED"
        print(f"  {name:<24} {source_path}:{marker_line:<5} {status}")
    if failures:
        print(f"FAIL: {len(failures)} tagged loop(s) did not vectorize: "
              + ", ".join(failures), file=sys.stderr)
        return 1
    print(f"all {len(results)} tagged loops vectorized")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
