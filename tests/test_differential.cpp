/// Tier-1 slice of the differential self-check harness (core/selfcheck):
/// a fixed seed block must produce zero engine mismatches, the sampler
/// must be deterministic and cover every scenario family, and the
/// shrinker must minimize failing scenarios. The longer seeded sweep runs
/// in CI as `rank_tool selfcheck 200` and locally as
/// `rank_tool selfcheck 1000 --shrink`.

#include <gtest/gtest.h>

#include "src/core/dp_rank.hpp"
#include "src/core/greedy_rank.hpp"
#include "src/core/selfcheck.hpp"
#include "src/util/thread_pool.hpp"

namespace core = iarank::core;

// --- the headline contract: a fixed seed block is mismatch-free ----------------

TEST(Differential, FixedSeedBlockHasNoMismatches) {
  core::SelfCheckOptions options;
  options.first_seed = 0;
  options.shrink = false;  // a failure seed is repro enough for CI logs
  const core::SelfCheckReport report = core::run_selfcheck(150, options);
  EXPECT_EQ(report.scenarios, 150);
  for (const core::SelfCheckFailure& f : report.failures) {
    ADD_FAILURE() << "seed " << f.seed << ": " << f.mismatch << "\n"
                  << f.shrunk.describe();
  }
  // The block must actually exercise the oracle and the reference DP,
  // not just the production engines.
  EXPECT_GT(report.brute_checked, 0);
  EXPECT_GT(report.reference_checked, 0);
}

TEST(Differential, ReportIsIndependentOfParallelism) {
  core::SelfCheckOptions serial;
  serial.parallelism = 1;
  iarank::util::ThreadPool single(0);
  const auto a = core::run_selfcheck(40, serial, &single);
  const auto b = core::run_selfcheck(40, {});
  EXPECT_EQ(a.brute_checked, b.brute_checked);
  EXPECT_EQ(a.reference_checked, b.reference_checked);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

// --- sampler -------------------------------------------------------------------

TEST(Differential, SamplerIsDeterministic) {
  for (std::uint64_t seed : {0ull, 7ull, 123ull, 99999ull}) {
    const core::Scenario a = core::sample_scenario(seed);
    const core::Scenario b = core::sample_scenario(seed);
    EXPECT_EQ(a.describe(), b.describe()) << "seed " << seed;
  }
}

TEST(Differential, SamplerCoversEveryFamily) {
  int raw_small = 0;
  int raw_exact = 0;
  int physical = 0;
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    switch (core::sample_scenario(seed).family) {
      case core::ScenarioFamily::kRawSmall: ++raw_small; break;
      case core::ScenarioFamily::kRawExact: ++raw_exact; break;
      case core::ScenarioFamily::kPhysical: ++physical; break;
    }
  }
  EXPECT_GT(raw_small, 0);
  EXPECT_GT(raw_exact, 0);
  EXPECT_GT(physical, 0);
}

TEST(Differential, SampledScenariosMaterialize) {
  // Every sampled scenario must pass Instance::from_raw validation and
  // stay small enough for the differential engines.
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    const core::Scenario s = core::sample_scenario(seed);
    const core::Instance inst = s.instance();
    EXPECT_GE(inst.bunch_count(), 1u);
    EXPECT_LE(inst.bunch_count(), 14u) << "seed " << seed;
    EXPECT_GE(inst.pair_count(), 1u);
  }
}

TEST(Differential, ExactFamilyIsQuantizationExact) {
  bool saw_exact = false;
  for (std::uint64_t seed = 0; seed < 150 && !saw_exact; ++seed) {
    const core::Scenario s = core::sample_scenario(seed);
    if (s.family != core::ScenarioFamily::kRawExact) continue;
    saw_exact = true;
    EXPECT_TRUE(s.quantization_exact);
    for (const core::PairInfo& p : s.pairs) {
      EXPECT_DOUBLE_EQ(p.repeater_area, 1.0);
      EXPECT_DOUBLE_EQ(p.via_area, 0.0);
    }
  }
  EXPECT_TRUE(saw_exact);
}

// --- checker -------------------------------------------------------------------

TEST(Differential, CheckFillsEngineRanks) {
  const core::ScenarioCheck check =
      core::check_scenario(core::sample_scenario(3));
  EXPECT_GE(check.dp, 0);
  EXPECT_GE(check.dp_bunch, 0);
  EXPECT_GE(check.greedy, 0);
  EXPECT_LE(check.dp_bunch, check.dp);
  EXPECT_LE(check.greedy, check.dp);
}

// --- shrinker ------------------------------------------------------------------

TEST(Differential, ShrinkerMinimizesAgainstPredicate) {
  // Unit-test the shrinking machinery with a synthetic failure predicate:
  // "fails" iff the scenario still has >= 3 bunches and >= 2 pairs. The
  // minimum such scenario has exactly 3 bunches, 2 pairs, one wire per
  // bunch, no via coupling and no feasible plans.
  core::Scenario big;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    big = core::sample_scenario(seed);
    if (big.bunches.size() >= 5 && big.pairs.size() >= 3) break;
  }
  ASSERT_GE(big.bunches.size(), 5u);
  ASSERT_GE(big.pairs.size(), 3u);

  const auto predicate = [](const core::Scenario& s) {
    return s.bunches.size() >= 3 && s.pairs.size() >= 2;
  };
  const core::Scenario small = core::shrink_scenario(big, predicate);
  EXPECT_EQ(small.bunches.size(), 3u);
  EXPECT_EQ(small.pairs.size(), 2u);
  for (const core::Bunch& b : small.bunches) EXPECT_EQ(b.count, 1);
  EXPECT_DOUBLE_EQ(small.vias.vias_per_wire, 0.0);
  EXPECT_DOUBLE_EQ(small.vias.vias_per_repeater, 0.0);
  for (const auto& row : small.plans) {
    for (const core::DelayPlan& p : row) EXPECT_FALSE(p.feasible);
  }
  EXPECT_TRUE(predicate(small));
}

TEST(Differential, ShrinkerReturnsNonFailingScenarioUnchanged) {
  const core::Scenario s = core::sample_scenario(11);
  const auto never = [](const core::Scenario&) { return false; };
  const core::Scenario out = core::shrink_scenario(s, never);
  EXPECT_EQ(out.describe(), s.describe());
}

TEST(Differential, ShrinkerMinimizesGreedyGap) {
  // A semantically real shrink: find a sampled scenario where greedy is
  // strictly suboptimal (the paper's Figure 2 phenomenon) and minimize
  // while preserving the gap — emulating how an engine-bug repro shrinks.
  bool found = false;
  for (std::uint64_t seed = 0; seed < 400 && !found; ++seed) {
    const core::Scenario s = core::sample_scenario(seed);
    const auto gap = [](const core::Scenario& sc) {
      const core::Instance inst = sc.instance();
      return core::greedy_rank(inst).rank < core::dp_rank(inst).rank;
    };
    if (!gap(s)) continue;
    found = true;
    const core::Scenario small = core::shrink_scenario(s, gap);
    EXPECT_TRUE(gap(small));
    EXPECT_LE(small.bunches.size(), s.bunches.size());
    EXPECT_LE(small.pairs.size(), s.pairs.size());
  }
  EXPECT_TRUE(found) << "no greedy-suboptimal scenario in 400 seeds";
}
