/// Tests for the synthetic netlist substrate: Rent-driven generation,
/// Z-order placement, wire-length extraction, Rent-characteristic
/// measurement, and end-to-end agreement with the Davis model.

#include <cmath>

#include <gtest/gtest.h>

#include "src/netlist/generate.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/place.hpp"
#include "src/util/error.hpp"
#include "src/wld/davis.hpp"

namespace netlist = iarank::netlist;
namespace wld = iarank::wld;
using iarank::util::Error;

// --- container ----------------------------------------------------------------

TEST(Netlist, ValidatesPins) {
  EXPECT_THROW(netlist::Netlist(2, {{{0, 5}}}), Error);   // pin out of range
  EXPECT_THROW(netlist::Netlist(2, {{{0}}}), Error);      // < 2 pins
  EXPECT_THROW(netlist::Netlist(0, {}), Error);           // no gates
}

TEST(Netlist, Degrees) {
  const netlist::Netlist nl(4, {{{0, 1}}, {{1, 2, 3}}});
  EXPECT_EQ(nl.pin_count(), 5);
  EXPECT_DOUBLE_EQ(nl.average_degree(), 2.5);
}

// --- Z-order placement -----------------------------------------------------------

TEST(Place, ZOrderFirstQuad) {
  // Gates 0..3 fill the 2x2 block at the origin.
  EXPECT_EQ(netlist::z_order_position(0).x, 0);
  EXPECT_EQ(netlist::z_order_position(0).y, 0);
  EXPECT_EQ(netlist::z_order_position(1).x, 1);
  EXPECT_EQ(netlist::z_order_position(1).y, 0);
  EXPECT_EQ(netlist::z_order_position(2).x, 0);
  EXPECT_EQ(netlist::z_order_position(2).y, 1);
  EXPECT_EQ(netlist::z_order_position(3).x, 1);
  EXPECT_EQ(netlist::z_order_position(3).y, 1);
}

TEST(Place, ZOrderBlocksAreQuadrants) {
  // Gates [4k, 4k+4) always occupy a 2x2 block.
  for (const int base : {4, 8, 32, 1020}) {
    const auto p0 = netlist::z_order_position(base);
    for (int i = 1; i < 4; ++i) {
      const auto p = netlist::z_order_position(base + i);
      EXPECT_LE(std::abs(p.x - p0.x), 1);
      EXPECT_LE(std::abs(p.y - p0.y), 1);
    }
  }
}

TEST(Place, NetLengthTwoPin) {
  // Gates 0 (0,0) and 3 (1,1): Manhattan 2.
  EXPECT_DOUBLE_EQ(netlist::net_length({{0, 3}}), 2.0);
}

TEST(Place, NetLengthMultiPinIsHpwl) {
  // Gates 0 (0,0), 1 (1,0), 2 (0,1): bounding box 1x1 -> HPWL 2.
  EXPECT_DOUBLE_EQ(netlist::net_length({{0, 1, 2}}), 2.0);
}

TEST(Place, ExtractDropsZeroLengthNets) {
  // A net between a gate and itself has zero span.
  const netlist::Netlist nl(4, {{{0, 0}}, {{0, 3}}});
  const auto w = netlist::extract_wld(nl);
  EXPECT_EQ(w.total_wires(), 1);
}

// --- generator ---------------------------------------------------------------------

TEST(Generator, ParamsValidate) {
  netlist::GeneratorParams p;
  p.levels = 0;
  EXPECT_THROW((void)netlist::generate_netlist(p), Error);
  p = {};
  p.rent_p = 1.5;
  EXPECT_THROW((void)netlist::generate_netlist(p), Error);
}

TEST(Generator, DeterministicPerSeed) {
  netlist::GeneratorParams p;
  p.levels = 4;
  const auto a = netlist::generate_netlist(p);
  const auto b = netlist::generate_netlist(p);
  EXPECT_EQ(a.net_count(), b.net_count());
  p.seed = 99;
  const auto c = netlist::generate_netlist(p);
  EXPECT_NE(a.net_count(), c.net_count());
}

TEST(Generator, PinsStayInRangeAndNetsAreSmall) {
  netlist::GeneratorParams p;
  p.levels = 5;
  const auto nl = netlist::generate_netlist(p);
  for (const auto& net : nl.nets()) {
    EXPECT_GE(net.pins.size(), 2u);
    EXPECT_LE(net.pins.size(), 4u);
    for (const auto pin : net.pins) {
      EXPECT_GE(pin, 0);
      EXPECT_LT(pin, nl.gate_count());
    }
  }
}

TEST(Generator, SmallBlockTerminalsMatchRentRule) {
  // T(4) should be ~ k * 4^p: the bottom of the characteristic is pinned
  // by construction.
  netlist::GeneratorParams p;
  p.levels = 6;
  const auto nl = netlist::generate_netlist(p);
  const auto points = netlist::rent_characteristic(nl);
  ASSERT_GE(points.size(), 2u);
  const double expected = 4.0 * std::pow(4.0, 0.6);
  EXPECT_NEAR(points.front().avg_terminals, expected, expected * 0.15);
}

TEST(Generator, RentExponentRecovered) {
  netlist::GeneratorParams p;
  p.levels = 7;
  const auto nl = netlist::generate_netlist(p);
  auto points = netlist::rent_characteristic(nl);
  // Fit below the region-II rolloff (drop the top two levels).
  ASSERT_GE(points.size(), 4u);
  points.resize(points.size() - 2);
  const auto fit = netlist::fit_rent(points);
  EXPECT_NEAR(fit.exponent, 0.6, 0.12);
}

TEST(Generator, HigherRentPLeavesMoreExternalNets) {
  netlist::GeneratorParams low;
  low.levels = 5;
  low.rent_p = 0.45;
  netlist::GeneratorParams high = low;
  high.rent_p = 0.75;
  const auto wl = netlist::extract_wld(netlist::generate_netlist(low));
  const auto wh = netlist::extract_wld(netlist::generate_netlist(high));
  // Higher p -> more long (high-level) wires -> larger mean length.
  EXPECT_GT(wh.stats().mean_length, wl.stats().mean_length);
}

TEST(FitRent, ExactPowerLaw) {
  std::vector<netlist::RentPoint> points;
  for (const std::int64_t n : {4LL, 16LL, 64LL, 256LL}) {
    points.push_back({n, 3.0 * std::pow(static_cast<double>(n), 0.55)});
  }
  const auto fit = netlist::fit_rent(points);
  EXPECT_NEAR(fit.exponent, 0.55, 1e-9);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-6);
}

TEST(FitRent, TooFewPointsThrows) {
  EXPECT_THROW((void)netlist::fit_rent({{4, 9.0}}), Error);
}

// --- end-to-end: extracted WLD vs Davis ---------------------------------------------

TEST(NetlistWld, ShapeTracksDavis) {
  netlist::GeneratorParams p;
  p.levels = 7;  // 16384 gates
  const auto nl = netlist::generate_netlist(p);
  const auto extracted = netlist::extract_wld(nl);
  const auto davis =
      wld::DavisModel({p.gate_count(), 0.6, 4.0, 3.0}).generate();

  // Same support (up to ~2 sqrt(N)) and comparable central tendency.
  EXPECT_LT(extracted.max_length(), 2.0 * 128.0 + 1.0);
  EXPECT_GT(extracted.max_length(), 60.0);
  EXPECT_NEAR(extracted.stats().mean_length / davis.stats().mean_length, 1.0,
              0.8);

  // Both are dominated by short wires.
  const double ex_short =
      1.0 - static_cast<double>(extracted.count_longer_than(4.0)) /
                static_cast<double>(extracted.total_wires());
  const double dv_short =
      1.0 - static_cast<double>(davis.count_longer_than(4.0)) /
                static_cast<double>(davis.total_wires());
  EXPECT_GT(ex_short, 0.4);
  EXPECT_GT(dv_short, 0.4);
}
