/// Tests for the fault-tolerance layer: error categories and per-point
/// Status, atomic file publication, the CRC-guarded checkpoint journal
/// (torn tails, key mismatches, payload escaping), the checkpoint record
/// codecs, deterministic fault injection, per-point isolation inside the
/// sweep engine, and bitwise-identical checkpoint resume.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/checkpoint.hpp"
#include "src/core/engine.hpp"
#include "src/core/faultcheck.hpp"
#include "src/core/instance_builder.hpp"
#include "src/core/sweep.hpp"
#include "src/util/atomic_file.hpp"
#include "src/util/digest.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"
#include "src/util/journal.hpp"
#include "src/util/status.hpp"

namespace core = iarank::core;
namespace util = iarank::util;
namespace wld = iarank::wld;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Tiny 130 nm design (4k gates, coarse bunches) so a full sweep point
/// costs milliseconds.
struct TinySetup {
  core::DesignSpec design = core::baseline_design("130nm", 4000);
  core::RankOptions options;
  wld::Wld wld;

  TinySetup() {
    options.bunch_size = 200;
    wld = core::default_wld(design);
  }
};

/// Bitwise equality over the journal codec: two points are identical iff
/// their deterministic encodings agree (wall-time fields excluded).
std::string stable_encoding(const core::SweepPoint& point) {
  core::SweepPoint copy = point;
  copy.result.dp.seconds = 0.0;
  copy.result.dp.forward_seconds = 0.0;
  return core::encode_sweep_point(copy);
}

void expect_identical_points(const core::SweepResult& a,
                             const core::SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(stable_encoding(a.points[i]), stable_encoding(b.points[i]))
        << "point " << i;
  }
}

/// Disarms the process injector even when an assertion bails out early.
struct DisarmGuard {
  ~DisarmGuard() { util::FaultInjector::instance().disarm(); }
};

}  // namespace

// --- error categories and status --------------------------------------------------

TEST(ErrorCategory, NamesAndDefaults) {
  EXPECT_STREQ(to_string(util::ErrorCategory::kBadInput), "bad-input");
  EXPECT_STREQ(to_string(util::ErrorCategory::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(util::ErrorCategory::kInternal), "internal");
  EXPECT_STREQ(to_string(util::ErrorCategory::kIo), "io");
  EXPECT_EQ(util::Error("x").category(), util::ErrorCategory::kBadInput);

  try {
    util::require_io(false, "disk gone");
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kIo);
  }
}

TEST(Status, FromExceptionCarriesCategory) {
  const util::Error bad("no such node", util::ErrorCategory::kBadInput);
  EXPECT_EQ(util::Status::from_exception(bad).code,
            util::StatusCode::kBadInput);

  const util::Error infeasible("budget", util::ErrorCategory::kInfeasible);
  EXPECT_EQ(util::Status::from_exception(infeasible).code,
            util::StatusCode::kInfeasible);

  // IO failures inside a point are not the point's fault: internal.
  const util::Error io("rename failed", util::ErrorCategory::kIo);
  EXPECT_EQ(util::Status::from_exception(io).code,
            util::StatusCode::kInternal);

  const std::runtime_error plain("bad_alloc-ish");
  const util::Status s = util::Status::from_exception(plain);
  EXPECT_EQ(s.code, util::StatusCode::kInternal);
  EXPECT_EQ(s.message, "bad_alloc-ish");
}

TEST(Status, LabelIsCsvSafe) {
  EXPECT_EQ(util::Status::make_ok().label(), "ok");
  const util::Status s = util::Status::failure(
      util::StatusCode::kInfeasible, "budget 3,5 exceeded\nsecond line");
  EXPECT_EQ(s.label(), "n/a (infeasible: budget 3;5 exceeded;second line)");
}

// --- atomic file publication ------------------------------------------------------

TEST(AtomicFile, WritesAndReplacesWholeFiles) {
  const std::string path = temp_path("atomic_file_test.txt");
  util::atomic_write_file(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  util::atomic_write_file(path, "second, longer content\n");
  EXPECT_EQ(slurp(path), "second, longer content\n");
  std::filesystem::remove(path);

  EXPECT_THROW(
      util::atomic_write_file(temp_path("no/such/dir/file.txt"), "x"),
      util::Error);
}

TEST(AtomicFile, FailedPublicationLeavesNoTemporaryBehind) {
  const DisarmGuard guard;
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "atomic_clean";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string target = (dir / "out.json").string();
  util::atomic_write_file(target, "published\n");

  // Fail the publish step (the rename): the half-written temporary must be
  // unlinked and the previously published content must survive untouched.
  util::FaultInjector::instance().arm("util.atomic_file.rename", 1);
  EXPECT_THROW(util::atomic_write_file(target, "never published\n"),
               util::Error);
  std::vector<std::string> entries;
  for (const auto& entry : fs::directory_iterator(dir)) {
    entries.push_back(entry.path().filename().string());
  }
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0], "out.json");
  EXPECT_EQ(slurp(target), "published\n");

  // Same contract when the target never existed: the directory ends empty.
  const std::string fresh = (dir / "fresh.json").string();
  util::FaultInjector::instance().arm("util.atomic_file.rename", 1);
  EXPECT_THROW(util::atomic_write_file(fresh, "x"), util::Error);
  EXPECT_FALSE(fs::exists(fresh));
  EXPECT_EQ(std::distance(fs::directory_iterator(dir),
                          fs::directory_iterator()),
            1);
  fs::remove_all(dir);
}

// --- digest -----------------------------------------------------------------------

TEST(Digest, IsDeterministicOrderAndBitSensitive) {
  util::Digest a;
  a.str("node").f64(1.5).i64(-3).boolean(true);
  util::Digest b;
  b.str("node").f64(1.5).i64(-3).boolean(true);
  EXPECT_EQ(a.value(), b.value());

  util::Digest reordered;
  reordered.f64(1.5).str("node").i64(-3).boolean(true);
  EXPECT_NE(a.value(), reordered.value());

  // Doubles enter as bit patterns: -0.0 and 0.0 are different keys.
  util::Digest pos, neg;
  pos.f64(0.0);
  neg.f64(-0.0);
  EXPECT_NE(pos.value(), neg.value());
}

// --- checkpoint journal -----------------------------------------------------------

TEST(CheckpointJournal, AppendsAndRecoversAcrossReopen) {
  const std::string path = temp_path("journal_roundtrip.journal");
  std::filesystem::remove(path);
  {
    util::CheckpointJournal journal(path, 0xfeedu);
    EXPECT_FALSE(journal.restarted());
    EXPECT_TRUE(journal.entries().empty());
    journal.append(0, "alpha");
    journal.append(7, "with spaces and\nnewline\\backslash");
    EXPECT_GT(journal.bytes_appended(), 0);
  }
  util::CheckpointJournal reopened(path, 0xfeedu);
  EXPECT_FALSE(reopened.restarted());
  EXPECT_FALSE(reopened.salvaged_tail());
  ASSERT_EQ(reopened.entries().size(), 2u);
  EXPECT_EQ(reopened.entries().at(0), "alpha");
  EXPECT_EQ(reopened.entries().at(7), "with spaces and\nnewline\\backslash");
  std::filesystem::remove(path);
}

TEST(CheckpointJournal, KeyMismatchRestartsInsteadOfMixing) {
  const std::string path = temp_path("journal_key.journal");
  std::filesystem::remove(path);
  {
    util::CheckpointJournal journal(path, 1);
    journal.append(0, "stale");
  }
  util::CheckpointJournal other(path, 2);
  EXPECT_TRUE(other.restarted());
  EXPECT_TRUE(other.entries().empty());
  other.append(0, "fresh");

  // And the restarted file now belongs to key 2.
  util::CheckpointJournal back(path, 2);
  EXPECT_FALSE(back.restarted());
  ASSERT_EQ(back.entries().size(), 1u);
  EXPECT_EQ(back.entries().at(0), "fresh");
  std::filesystem::remove(path);
}

TEST(CheckpointJournal, TornTailIsSalvagedNotFatal) {
  const std::string path = temp_path("journal_torn.journal");
  std::filesystem::remove(path);
  {
    util::CheckpointJournal journal(path, 9);
    journal.append(0, "kept");
    journal.append(1, "also kept");
  }
  // Simulate a crash mid-append: garbage with no trailing newline.
  {
    std::ofstream tail(path, std::ios::app | std::ios::binary);
    tail << "r 12345678 2 torn-rec";
  }
  util::CheckpointJournal salvaged(path, 9);
  EXPECT_FALSE(salvaged.restarted());
  EXPECT_TRUE(salvaged.salvaged_tail());
  ASSERT_EQ(salvaged.entries().size(), 2u);
  EXPECT_EQ(salvaged.entries().at(1), "also kept");
  salvaged.append(2, "after salvage");

  // The compaction rewrote the file: a further reopen sees three clean
  // records and no tail damage.
  util::CheckpointJournal clean(path, 9);
  EXPECT_FALSE(clean.salvaged_tail());
  ASSERT_EQ(clean.entries().size(), 3u);
  EXPECT_EQ(clean.entries().at(2), "after salvage");
  std::filesystem::remove(path);
}

TEST(CheckpointJournal, CorruptRecordBytesFailTheCrc) {
  const std::string path = temp_path("journal_crc.journal");
  std::filesystem::remove(path);
  {
    util::CheckpointJournal journal(path, 5);
    journal.append(0, "good");
    journal.append(1, "flipped");
  }
  // Flip one payload byte of the last record (newline kept intact).
  std::string bytes = slurp(path);
  bytes[bytes.size() - 2] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  util::CheckpointJournal reopened(path, 5);
  EXPECT_TRUE(reopened.salvaged_tail());
  ASSERT_EQ(reopened.entries().size(), 1u);
  EXPECT_EQ(reopened.entries().at(0), "good");
  std::filesystem::remove(path);
}

// --- checkpoint codecs ------------------------------------------------------------

TEST(CheckpointCodec, SweepPointRoundTripsBitwise) {
  core::SweepPoint point;
  point.value = -0.1;  // not exactly representable: bit pattern must survive
  point.status = util::Status::failure(util::StatusCode::kInfeasible,
                                       "reason, with\ncontrol chars");
  point.result.rank = 1234567;
  point.result.normalized = 0.123456789012345678;
  point.result.all_assigned = true;
  point.result.prefix_bunches = 17;
  point.result.refined_wires = 3;
  point.result.repeater_count = 42;
  point.result.repeater_area_used = 6.5e-7;
  point.result.total_wires = 99;
  point.result.dp.seconds = 0.25;
  point.result.dp.arena_nodes = 11;
  point.result.usage.push_back({"G (global)", 10, 12, 1e-6, 2e-7, 3, 4e-8});
  point.result.placements.push_back({0, 1, 200, 180});
  point.result.placements.push_back({1, 0, 150, 150});

  const std::string encoded = core::encode_sweep_point(point);
  core::SweepPoint decoded;
  ASSERT_TRUE(core::decode_sweep_point(encoded, decoded));
  EXPECT_EQ(core::encode_sweep_point(decoded), encoded);
  EXPECT_EQ(decoded.status, point.status);
  EXPECT_EQ(decoded.result.usage.at(0).pair_name, "G (global)");
  EXPECT_EQ(decoded.result.placements.at(1).wires, 150);

  // Malformed records degrade to "recompute", never throw.
  core::SweepPoint sink;
  EXPECT_FALSE(core::decode_sweep_point("", sink));
  EXPECT_FALSE(core::decode_sweep_point("zzzz", sink));
  EXPECT_FALSE(core::decode_sweep_point(encoded.substr(0, 40), sink));
  EXPECT_FALSE(core::decode_sweep_point(encoded + " trailing", sink));
}

TEST(CheckpointCodec, ScenarioCheckRoundTrips) {
  core::ScenarioCheck check;
  check.ok = false;
  check.mismatch = "dp 5 < brute 6 (seed 17)";
  check.dp = 5;
  check.dp_bunch = 5;
  check.greedy = 4;
  check.brute = 6;
  check.reference = -1;
  check.brute_checked = true;
  check.reference_checked = false;

  const std::string encoded = core::encode_scenario_check(check);
  core::ScenarioCheck decoded;
  ASSERT_TRUE(core::decode_scenario_check(encoded, decoded));
  EXPECT_EQ(decoded.ok, false);
  EXPECT_EQ(decoded.mismatch, check.mismatch);
  EXPECT_EQ(decoded.brute, 6);
  EXPECT_TRUE(decoded.brute_checked);
  EXPECT_FALSE(decoded.reference_checked);

  core::ScenarioCheck sink;
  EXPECT_FALSE(core::decode_scenario_check("1 .", sink));
  EXPECT_FALSE(core::decode_scenario_check(encoded + " 9", sink));
}

TEST(CheckpointKey, TracksEveryInputThatChangesResults) {
  const TinySetup setup;
  core::InstanceBuilder builder(setup.design, setup.wld);
  const std::vector<double> grid = {3.9, 3.0};
  const std::uint64_t base_key = core::sweep_checkpoint_key(
      builder.fingerprint(), setup.options,
      core::SweepParameter::kIldPermittivity, grid);

  core::RankOptions other = setup.options;
  other.miller_factor += 0.25;
  EXPECT_NE(base_key,
            core::sweep_checkpoint_key(builder.fingerprint(), other,
                                       core::SweepParameter::kIldPermittivity,
                                       grid));
  EXPECT_NE(base_key,
            core::sweep_checkpoint_key(builder.fingerprint(), setup.options,
                                       core::SweepParameter::kMillerFactor,
                                       grid));
  EXPECT_NE(base_key,
            core::sweep_checkpoint_key(builder.fingerprint(), setup.options,
                                       core::SweepParameter::kIldPermittivity,
                                       {3.9, 3.1}));

  core::DesignSpec bigger = setup.design;
  bigger.gate_count *= 2;
  core::InstanceBuilder other_builder(bigger, setup.wld);
  EXPECT_NE(builder.fingerprint(), other_builder.fingerprint());
}

// --- fault injector ---------------------------------------------------------------

TEST(FaultInjector, SitesAreRegisteredBeforeMain) {
  std::vector<std::string> names;
  for (const util::FaultSite* site : util::FaultInjector::sites()) {
    names.push_back(site->name());
  }
  for (const char* expected :
       {"core.instance_builder.coarsen", "core.instance_builder.die",
        "core.instance_builder.stack", "core.instance_builder.plans",
        "core.instance_builder.assemble", "core.dp_rank", "core.free_pack",
        "wld.io.read", "util.config.parse", "util.atomic_file.rename"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(FaultInjector, ArmedNthHitFiresExactlyOnce) {
  const DisarmGuard guard;
  static const util::FaultSite* dp_site = [] {
    for (const util::FaultSite* s : util::FaultInjector::sites()) {
      if (std::string_view(s->name()) == "core.dp_rank") return s;
    }
    return static_cast<const util::FaultSite*>(nullptr);
  }();
  ASSERT_NE(dp_site, nullptr);

  util::FaultInjector& injector = util::FaultInjector::instance();
  injector.arm("core.dp_rank", 2);
  EXPECT_TRUE(util::FaultInjector::enabled());

  util::maybe_inject(*dp_site);  // hit 1: armed for hit 2, passes
  EXPECT_FALSE(injector.fired());
  try {
    util::maybe_inject(*dp_site);  // hit 2: fires
    FAIL() << "expected injected fault";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.category(), util::ErrorCategory::kInternal);
    EXPECT_EQ(std::string(e.what()), "injected fault at core.dp_rank (hit 2)");
  }
  EXPECT_TRUE(injector.fired());
  util::maybe_inject(*dp_site);  // one-shot: hit 3 passes
  EXPECT_EQ(injector.hits("core.dp_rank"), 3);

  injector.start_counting();
  EXPECT_EQ(injector.hits("core.dp_rank"), 0);  // counters reset
  util::maybe_inject(*dp_site);                 // counting never throws
  EXPECT_EQ(injector.hits("core.dp_rank"), 1);

  injector.disarm();
  EXPECT_FALSE(util::FaultInjector::enabled());
}

// --- sweep isolation --------------------------------------------------------------

TEST(SweepIsolation, InjectedFaultFailsOnePointAndSparesTheRest) {
  const DisarmGuard guard;
  const TinySetup setup;
  const std::vector<double> grid = {3.9, 3.0, 2.2};

  core::InstanceBuilder clean_builder(setup.design, setup.wld);
  const auto clean = core::sweep_parameter(clean_builder, setup.options,
                                           core::SweepParameter::kIldPermittivity,
                                           grid, 1);
  ASSERT_EQ(clean.profile.failed_points, 0);

  // Fail the second dp_rank call: point 1 of a single-threaded sweep.
  core::InstanceBuilder builder(setup.design, setup.wld);
  util::FaultInjector::instance().arm("core.dp_rank", 2);
  const auto swept = core::sweep_parameter(builder, setup.options,
                                           core::SweepParameter::kIldPermittivity,
                                           grid, 1);
  util::FaultInjector::instance().disarm();

  EXPECT_EQ(swept.profile.failed_points, 1);
  EXPECT_TRUE(swept.points[0].status.ok());
  EXPECT_FALSE(swept.points[1].status.ok());
  EXPECT_TRUE(swept.points[2].status.ok());
  EXPECT_EQ(swept.points[1].status.code, util::StatusCode::kInternal);
  EXPECT_NE(swept.points[1].status.message.find("core.dp_rank"),
            std::string::npos);
  // The failed point's result is empty, and its label renders for tables.
  EXPECT_EQ(swept.points[1].result.rank, 0);
  EXPECT_NE(swept.points[1].status.label().find("n/a (internal"),
            std::string::npos);
  // Surviving points match the clean sweep bitwise.
  EXPECT_EQ(stable_encoding(swept.points[0]), stable_encoding(clean.points[0]));
  EXPECT_EQ(stable_encoding(swept.points[2]), stable_encoding(clean.points[2]));

  // The builder that threw keeps serving: a rerun without the fault is
  // bitwise-identical to the clean sweep (stage caches survived).
  const auto rerun = core::sweep_parameter(builder, setup.options,
                                           core::SweepParameter::kIldPermittivity,
                                           grid, 1);
  expect_identical_points(clean, rerun);
}

// --- checkpoint resume ------------------------------------------------------------

TEST(CheckpointResume, InterruptedSweepResumesBitwiseIdentical) {
  const TinySetup setup;
  const std::vector<double> grid = {3.9, 3.4, 3.0, 2.6, 2.2};
  const std::string path = temp_path("sweep_resume.journal");
  std::filesystem::remove(path);

  core::SweepRunOptions run;
  run.checkpoint_path = path;
  run.fsync_checkpoint = false;

  core::InstanceBuilder builder(setup.design, setup.wld);
  const auto full = core::sweep_parameter(
      builder, setup.options, core::SweepParameter::kIldPermittivity, grid,
      run);
  EXPECT_EQ(full.profile.resumed_points, 0);
  EXPECT_EQ(full.profile.failed_points, 0);
  EXPECT_GE(full.profile.checkpoint_seconds, 0.0);

  // Simulate a SIGKILL after two completed points: truncate the journal
  // to its header plus the first two records.
  {
    std::istringstream lines(slurp(path));
    std::string line;
    std::string kept;
    for (int i = 0; i < 3 && std::getline(lines, line); ++i) {
      kept += line + "\n";
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << kept;
  }

  core::InstanceBuilder resumed_builder(setup.design, setup.wld);
  const auto resumed = core::sweep_parameter(
      resumed_builder, setup.options, core::SweepParameter::kIldPermittivity,
      grid, run);
  EXPECT_EQ(resumed.profile.resumed_points, 2);
  expect_identical_points(full, resumed);

  // Third run: everything is resumed, nothing recomputes.
  core::InstanceBuilder warm_builder(setup.design, setup.wld);
  const auto all_cached = core::sweep_parameter(
      warm_builder, setup.options, core::SweepParameter::kIldPermittivity,
      grid, run);
  EXPECT_EQ(all_cached.profile.resumed_points, 5);
  EXPECT_EQ(all_cached.profile.build.builds, 0);
  expect_identical_points(full, all_cached);

  // A changed option invalidates the key: the journal restarts rather
  // than resuming foreign results.
  core::RankOptions shifted = setup.options;
  shifted.miller_factor += 0.1;
  core::InstanceBuilder shifted_builder(setup.design, setup.wld);
  const auto restarted = core::sweep_parameter(
      shifted_builder, shifted, core::SweepParameter::kIldPermittivity, grid,
      run);
  EXPECT_EQ(restarted.profile.resumed_points, 0);
  std::filesystem::remove(path);
}

// --- faultcheck -------------------------------------------------------------------

TEST(FaultCheck, SmallSweepHoldsTheFailureModel) {
  core::FaultCheckOptions options;
  options.seeds = 2;
  const core::FaultCheckReport report = core::run_faultcheck(options);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
  EXPECT_FALSE(report.sites.empty());
  EXPECT_EQ(report.runs,
            static_cast<std::int64_t>(report.sites.size()) * options.seeds);
  for (const core::FaultSiteOutcome& site : report.sites) {
    EXPECT_GT(site.workload_hits, 0) << site.site;
    EXPECT_EQ(site.injections, options.seeds) << site.site;
    EXPECT_EQ(site.isolated + site.propagated, site.injections) << site.site;
    EXPECT_EQ(site.recovered, site.injections) << site.site;
  }
  EXPECT_FALSE(util::FaultInjector::enabled());
}
