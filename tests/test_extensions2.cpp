/// Tests for the second extension wave: driver-area reconciliation
/// (paper footnote 3), minimum-layer-count search, and parallel sweeps.

#include <gtest/gtest.h>

#include "src/core/engine.hpp"
#include "src/core/optimizer.hpp"
#include "src/core/paper_setup.hpp"
#include "src/core/sweep.hpp"
#include "src/util/error.hpp"

namespace core = iarank::core;
namespace wld = iarank::wld;
using iarank::util::Error;

namespace {

core::PaperSetup small_setup() {
  core::PaperSetup setup =
      core::paper_baseline("130nm", 50000, core::scaled_regime(50000));
  setup.options.bunch_size = 500;
  return setup;
}

const wld::Wld& small_wld() {
  static const wld::Wld w = core::default_wld(small_setup().design);
  return w;
}

}  // namespace

// --- footnote 3: driver-area reconciliation --------------------------------------

TEST(ChargeDrivers, ReducesRankInBudgetLimitedRegime) {
  const auto setup = small_setup();
  const auto base = core::compute_rank(setup.design, setup.options, small_wld());
  core::RankOptions charged = setup.options;
  charged.charge_drivers = true;
  const auto with = core::compute_rank(setup.design, charged, small_wld());
  // Charging one extra cell per wire strictly increases per-wire demand.
  EXPECT_LT(with.rank, base.rank);
  EXPECT_GT(with.rank, 0);
}

TEST(ChargeDrivers, PlanAreasIncludeDriverCell) {
  const auto setup = small_setup();
  core::RankOptions charged = setup.options;
  charged.charge_drivers = true;
  const auto base_inst =
      core::build_instance(setup.design, setup.options, small_wld());
  const auto charged_inst =
      core::build_instance(setup.design, charged, small_wld());
  ASSERT_EQ(base_inst.bunch_count(), charged_inst.bunch_count());
  bool found = false;
  for (std::size_t b = 0; b < base_inst.bunch_count() && !found; ++b) {
    for (std::size_t j = 0; j < base_inst.pair_count(); ++j) {
      const auto& p0 = base_inst.plan(b, j);
      const auto& p1 = charged_inst.plan(b, j);
      if (p0.feasible) {
        EXPECT_TRUE(p1.feasible);
        EXPECT_NEAR(p1.area_per_wire - p0.area_per_wire,
                    base_inst.pair(j).repeater_area,
                    base_inst.pair(j).repeater_area * 1e-9);
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found);
}

// --- minimum layer count --------------------------------------------------------------

TEST(MinPairs, FindsSmallestStackForModestTarget) {
  const auto setup = small_setup();
  core::OptimizerOptions bounds;
  bounds.min_total_pairs = 1;
  bounds.max_total_pairs = 5;
  bounds.max_global_pairs = 2;
  bounds.max_semi_global_pairs = 2;
  bounds.max_local_pairs = 2;

  const auto result = core::min_pairs_for_rank(
      setup.design.node, 50000, setup.options, small_wld(), 0.10, bounds);
  ASSERT_TRUE(result.achievable);
  EXPECT_GE(result.result.normalized, 0.10);

  // A tighter target needs at least as many pairs.
  const auto harder = core::min_pairs_for_rank(
      setup.design.node, 50000, setup.options, small_wld(), 0.35, bounds);
  if (harder.achievable) {
    EXPECT_GE(harder.spec.total_pairs(), result.spec.total_pairs());
  }
}

TEST(MinPairs, ImpossibleTargetReportsUnachievable) {
  const auto setup = small_setup();
  core::OptimizerOptions bounds;
  bounds.min_total_pairs = 1;
  bounds.max_total_pairs = 2;
  bounds.max_global_pairs = 1;
  bounds.max_semi_global_pairs = 1;
  bounds.max_local_pairs = 1;
  const auto result = core::min_pairs_for_rank(
      setup.design.node, 50000, setup.options, small_wld(), 0.999, bounds);
  EXPECT_FALSE(result.achievable);
}

TEST(MinPairs, InvalidTargetThrows) {
  const auto setup = small_setup();
  EXPECT_THROW((void)core::min_pairs_for_rank(setup.design.node, 50000,
                                              setup.options, small_wld(), 1.5),
               Error);
}

// --- parallel sweeps -------------------------------------------------------------------------

TEST(ParallelSweep, MatchesSequentialExactly) {
  const auto setup = small_setup();
  const std::vector<double> values = {3.9, 3.5, 3.1, 2.7, 2.3, 1.9};
  const auto seq = core::sweep_parameter(setup.design, setup.options,
                                         small_wld(),
                                         core::SweepParameter::kIldPermittivity,
                                         values, 1);
  const auto par = core::sweep_parameter(setup.design, setup.options,
                                         small_wld(),
                                         core::SweepParameter::kIldPermittivity,
                                         values, 4);
  ASSERT_EQ(seq.points.size(), par.points.size());
  for (std::size_t i = 0; i < seq.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq.points[i].value, par.points[i].value);
    EXPECT_EQ(seq.points[i].result.rank, par.points[i].result.rank);
    EXPECT_EQ(seq.points[i].result.repeater_count,
              par.points[i].result.repeater_count);
  }
}

TEST(ParallelSweep, MoreThreadsThanPoints) {
  const auto setup = small_setup();
  const auto sweep = core::sweep_parameter(
      setup.design, setup.options, small_wld(),
      core::SweepParameter::kRepeaterFraction, {0.2, 0.4}, 16);
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_GT(sweep.points[1].result.rank, 0);
}

TEST(ParallelSweep, ZeroThreadsThrows) {
  const auto setup = small_setup();
  EXPECT_THROW((void)core::sweep_parameter(
                   setup.design, setup.options, small_wld(),
                   core::SweepParameter::kMillerFactor, {2.0}, 0),
               Error);
}

TEST(ParallelSweep, IsolatesWorkerExceptionsPerPoint) {
  const auto setup = small_setup();
  // An invalid value (negative Miller factor) thrown inside a worker
  // thread is captured as that point's status; the rest of the grid
  // still completes — per-point isolation, not batch abort.
  const auto sweep = core::sweep_parameter(
      setup.design, setup.options, small_wld(),
      core::SweepParameter::kMillerFactor, {2.0, -1.0, 1.5}, 3);
  ASSERT_EQ(sweep.points.size(), 3u);
  EXPECT_TRUE(sweep.points[0].status.ok());
  EXPECT_FALSE(sweep.points[1].status.ok());
  EXPECT_TRUE(sweep.points[2].status.ok());
  EXPECT_EQ(sweep.points[1].status.code, iarank::util::StatusCode::kBadInput);
  EXPECT_EQ(sweep.profile.failed_points, 1);
  EXPECT_GT(sweep.points[0].result.rank, 0);
  EXPECT_GT(sweep.points[2].result.rank, 0);
}
