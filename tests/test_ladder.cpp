/// Tests for the RC-ladder simulator (src/delay/ladder) and its
/// cross-validation of the paper's closed-form delay model: the Elmore
/// delay must match the closed form at (a, b) = (0.5, 1.0) and the true
/// 50% transient must be approximated by the paper's (0.4, 0.7).

#include <gtest/gtest.h>

#include "src/delay/ladder.hpp"
#include "src/delay/model.hpp"
#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace delay = iarank::delay;
namespace units = iarank::util::units;
using iarank::util::Error;

namespace {

delay::LadderSpec sample_spec() {
  delay::LadderSpec spec;
  spec.driver_resistance = 1.0 * units::kohm;
  spec.driver_parasitic = 5.0 * units::fF;
  spec.load_capacitance = 10.0 * units::fF;
  spec.resistance_per_m = 300.0 * units::kohm;
  spec.capacitance_per_m = 300e-12;
  spec.length = 1.0 * units::mm;
  spec.sections = 400;
  return spec;
}

delay::WireDelayModel sample_model() {
  return delay::WireDelayModel({300.0 * units::kohm, 300e-12},
                               {6.7 * units::kohm, 1.5 * units::fF,
                                1.5 * units::fF});
}

}  // namespace

TEST(Ladder, SpecValidation) {
  auto spec = sample_spec();
  spec.sections = 0;
  EXPECT_THROW((void)delay::RcLadder(spec), Error);
  spec = sample_spec();
  spec.driver_resistance = 0.0;
  EXPECT_THROW((void)delay::RcLadder(spec), Error);
}

TEST(Ladder, ElmoreMatchesAnalyticFormula) {
  const auto spec = sample_spec();
  const delay::RcLadder ladder(spec);
  // Continuous-limit Elmore: R(CL + cp + cl) + r l (CL + cl/2), with the
  // discretized line carrying a +cl/(2n) lumping correction.
  const double r = spec.driver_resistance;
  const double cw = spec.capacitance_per_m * spec.length;
  const double rw = spec.resistance_per_m * spec.length;
  const double continuous = r * (spec.load_capacitance + spec.driver_parasitic +
                                 cw) +
                            rw * (spec.load_capacitance + cw / 2.0);
  EXPECT_NEAR(ladder.elmore_delay(), continuous, continuous * 5e-3);
}

TEST(Ladder, ElmoreConvergesWithSections) {
  auto coarse_spec = sample_spec();
  coarse_spec.sections = 10;
  auto fine_spec = sample_spec();
  fine_spec.sections = 2000;
  const double coarse = delay::RcLadder(coarse_spec).elmore_delay();
  const double fine = delay::RcLadder(fine_spec).elmore_delay();
  // The discretization error shrinks ~1/n.
  EXPECT_NEAR(coarse / fine, 1.0, 0.03);
}

TEST(Ladder, TransientBelowElmore) {
  // Elmore overestimates the 50% delay of RC ladders (it is the mean of
  // the impulse response, and the response is skewed right).
  const delay::RcLadder ladder(sample_spec());
  const double t50 = ladder.transient_delay50();
  EXPECT_LT(t50, ladder.elmore_delay());
  EXPECT_GT(t50, 0.3 * ladder.elmore_delay());
}

TEST(Ladder, TransientScalesWithLength) {
  auto spec = sample_spec();
  const double t1 = delay::RcLadder(spec).transient_delay50();
  spec.length *= 2.0;
  const double t2 = delay::RcLadder(spec).transient_delay50();
  // Wire-dominated: delay grows superlinearly (towards quadratically).
  EXPECT_GT(t2, 1.8 * t1);
}

TEST(Ladder, ClosedFormElmoreCoefficients) {
  // The paper's Eq. 2 with (a, b) = (0.5, 1.0) IS the Elmore delay of the
  // driven distributed line; verify against the ladder.
  const auto model = sample_model();
  const double l = 2.0 * units::mm;
  const double s = model.optimal_repeater_size();

  delay::LadderSpec spec;
  spec.driver_resistance = model.driver().r_o / s;
  spec.driver_parasitic = model.driver().c_p * s;
  spec.load_capacitance = model.driver().c_o * s;
  spec.resistance_per_m = model.line().resistance;
  spec.capacitance_per_m = model.line().capacitance;
  spec.length = l;
  spec.sections = 2000;

  const delay::WireDelayModel elmore_model(model.line(), model.driver(),
                                           {0.5, 1.0});
  EXPECT_NEAR(delay::RcLadder(spec).elmore_delay(),
              elmore_model.delay(l, 1, s),
              elmore_model.delay(l, 1, s) * 5e-3);
}

TEST(Ladder, PaperConstantsApproximateTransient) {
  // a = 0.4, b = 0.7 are 50%-crossing fitting constants; the closed form
  // should track the simulated 50% delay within ~25% across lengths.
  const auto model = sample_model();
  const double s = model.optimal_repeater_size();
  for (const double l : {0.5e-3, 1e-3, 2e-3, 5e-3}) {
    const double simulated = delay::simulate_repeated_wire(model, l, 1, s, 400);
    const double closed = model.delay(l, 1, s);
    EXPECT_NEAR(closed / simulated, 1.0, 0.25) << "l=" << l;
  }
}

TEST(Ladder, RepeatedWireSimulationTracksClosedForm) {
  const auto model = sample_model();
  const double l = 4e-3;
  const double s = model.optimal_repeater_size();
  const auto stages = model.optimal_stage_count(l);
  const double simulated =
      delay::simulate_repeated_wire(model, l, stages, s, 200);
  const double closed = model.delay(l, stages, s);
  EXPECT_NEAR(closed / simulated, 1.0, 0.25);
}

TEST(Ladder, RepeatersReduceSimulatedDelayOfLongWires) {
  const auto model = sample_model();
  const double l = 5e-3;
  const double s = model.optimal_repeater_size();
  const double unbuffered = delay::simulate_repeated_wire(model, l, 1, s, 200);
  const auto opt = model.optimal_stage_count(l);
  ASSERT_GT(opt, 1);
  const double buffered = delay::simulate_repeated_wire(model, l, opt, s, 200);
  EXPECT_LT(buffered, unbuffered);
}

TEST(Ladder, OptimalSizeNearSimulatedOptimum) {
  // The Eq. 4 closed-form s_opt should sit near the simulated optimum.
  const auto model = sample_model();
  const double l = 2e-3;
  const double s_opt = model.optimal_repeater_size();
  const double at_opt = delay::simulate_repeated_wire(model, l, 4, s_opt, 200);
  EXPECT_LT(at_opt, delay::simulate_repeated_wire(model, l, 4, s_opt * 3.0, 200));
  EXPECT_LT(at_opt, delay::simulate_repeated_wire(model, l, 4, s_opt / 3.0, 200));
}

TEST(Ladder, InvalidSimulateArgsThrow) {
  const auto model = sample_model();
  EXPECT_THROW((void)delay::simulate_repeated_wire(model, -1.0, 1, 1.0), Error);
  EXPECT_THROW((void)delay::simulate_repeated_wire(model, 1.0, 0, 1.0), Error);
}
