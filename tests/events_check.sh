#!/usr/bin/env bash
# Event-log surface check: self-test the validator, then exercise both
# sinks end to end —
#   (1) a sweep with --log must write a JSONL event log carrying the
#       tool and sweep lifecycle events;
#   (2) a run with --flight-recorder must leave a valid dump on a clean
#       exit;
#   (3) a sweep SIGTERMed mid-grid with --flight-recorder must still
#       leave a valid dump (the signal handler's async-signal-safe path;
#       if the race is lost and the sweep finishes first, the exit-time
#       dump covers the same contract).
#
# usage: events_check.sh <rank_tool> <config>
set -euo pipefail

RANK_TOOL=${1:?usage: events_check.sh <rank_tool> <config>}
CONFIG=${2:?usage: events_check.sh <rank_tool> <config>}
HERE=$(cd "$(dirname "$0")" && pwd)
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

python3 "$HERE/validate_events.py" --self-test

# (1) File sink: full lifecycle present, every line schema-valid.
"$RANK_TOOL" "$CONFIG" sweep C 0.5e9 1.7e9 5 --jobs 2 \
  --log "$WORK/events.jsonl" > /dev/null
python3 "$HERE/validate_events.py" "$WORK/events.jsonl" \
  --require-type tool.start --require-type sweep.start \
  --require-type sweep.point --require-type sweep.done \
  --require-type tool.exit

# (2) Flight recorder, clean exit.
"$RANK_TOOL" "$CONFIG" rank --flight-recorder "$WORK/flight.jsonl" > /dev/null
python3 "$HERE/validate_events.py" "$WORK/flight.jsonl" \
  --require-type tool.start

# (3) Flight recorder, SIGTERM mid-sweep. Either the handler's
# signal-safe dump or (race lost) the clean-exit dump must be there and
# valid — a torn or missing file fails either way. The delay before the
# signal races tool startup: on a loaded machine the SIGTERM can land
# before sweep.start is even emitted, in which case the (correct) dump
# holds only tool.start. That run didn't exercise the mid-sweep
# scenario, so retry with a longer delay; an invalid or missing dump
# still fails the first time.
attempt_ok=0
delay=0.2
for attempt in 1 2 3 4 5; do
  rm -f "$WORK/flight.jsonl"
  "$RANK_TOOL" "$CONFIG" sweep C 0.4e9 1.8e9 400 --jobs 1 \
    --flight-recorder "$WORK/flight.jsonl" > /dev/null 2>&1 &
  PID=$!
  sleep "$delay"
  kill -TERM "$PID" 2> /dev/null || true
  wait "$PID" || true
  python3 "$HERE/validate_events.py" "$WORK/flight.jsonl" \
    --require-type tool.start
  if grep -q '"type":"sweep.start"' "$WORK/flight.jsonl"; then
    attempt_ok=1
    break
  fi
  echo "events_check: SIGTERM landed before sweep.start" \
    "(attempt $attempt, delay ${delay}s); retrying" >&2
  delay=$(python3 -c "print($delay * 2)")
done
if [ "$attempt_ok" != 1 ]; then
  echo "events_check: FAIL: no attempt caught the sweep after" \
    "sweep.start (signal always landed during startup)" >&2
  exit 1
fi
python3 "$HERE/validate_events.py" "$WORK/flight.jsonl" \
  --require-type tool.start --require-type sweep.start

echo "OK: validator self-test passed, file sink and flight recorder validate"
