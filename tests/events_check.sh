#!/usr/bin/env bash
# Event-log surface check: self-test the validator, then exercise both
# sinks end to end —
#   (1) a sweep with --log must write a JSONL event log carrying the
#       tool and sweep lifecycle events;
#   (2) a run with --flight-recorder must leave a valid dump on a clean
#       exit;
#   (3) a sweep SIGTERMed mid-grid with --flight-recorder must still
#       leave a valid dump (the signal handler's async-signal-safe path;
#       if the race is lost and the sweep finishes first, the exit-time
#       dump covers the same contract).
#
# usage: events_check.sh <rank_tool> <config>
set -euo pipefail

RANK_TOOL=${1:?usage: events_check.sh <rank_tool> <config>}
CONFIG=${2:?usage: events_check.sh <rank_tool> <config>}
HERE=$(cd "$(dirname "$0")" && pwd)
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

python3 "$HERE/validate_events.py" --self-test

# (1) File sink: full lifecycle present, every line schema-valid.
"$RANK_TOOL" "$CONFIG" sweep C 0.5e9 1.7e9 5 --jobs 2 \
  --log "$WORK/events.jsonl" > /dev/null
python3 "$HERE/validate_events.py" "$WORK/events.jsonl" \
  --require-type tool.start --require-type sweep.start \
  --require-type sweep.point --require-type sweep.done \
  --require-type tool.exit

# (2) Flight recorder, clean exit.
"$RANK_TOOL" "$CONFIG" rank --flight-recorder "$WORK/flight.jsonl" > /dev/null
python3 "$HERE/validate_events.py" "$WORK/flight.jsonl" \
  --require-type tool.start

# (3) Flight recorder, SIGTERM mid-sweep. Either the handler's
# signal-safe dump or (race lost) the clean-exit dump must be there and
# valid — a torn or missing file fails either way.
rm -f "$WORK/flight.jsonl"
"$RANK_TOOL" "$CONFIG" sweep C 0.4e9 1.8e9 400 --jobs 1 \
  --flight-recorder "$WORK/flight.jsonl" > /dev/null 2>&1 &
PID=$!
sleep 0.2
kill -TERM "$PID" 2> /dev/null || true
wait "$PID" || true
python3 "$HERE/validate_events.py" "$WORK/flight.jsonl" \
  --require-type tool.start --require-type sweep.start

echo "OK: validator self-test passed, file sink and flight recorder validate"
