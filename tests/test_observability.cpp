/// Tests for the tracing & metrics layer (src/util/trace, src/util/metrics)
/// and its instrumentation contracts:
///
///  * deterministic counters are bitwise-identical across thread counts;
///  * an exported trace is well-formed (every B has a matching E, spans
///    nest strictly per thread);
///  * the disabled span path allocates nothing;
///  * Stopwatch/ScopedTimer never report negative elapsed time.

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.hpp"
#include "src/core/sweep.hpp"
#include "src/util/alloc_count.hpp"
#include "src/util/build_info.hpp"
#include "src/util/error.hpp"
#include "src/util/event_log.hpp"
#include "src/util/json.hpp"
#include "src/util/metrics.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"

namespace core = iarank::core;
namespace util = iarank::util;

#if !defined(IARANK_ALLOC_COUNTER)
// Fallback allocation counter for builds with IARANK_COUNT_ALLOCS=OFF.
// When the library's own operator-new hook is live (the default), defining
// another replacement here would be a duplicate symbol — the tests read
// util::alloc_total() instead.

namespace {

/// Global allocation counter for the zero-allocation contract. Counting
/// is toggled so gtest's own bookkeeping does not pollute the window.
std::atomic<std::int64_t> g_allocations{0};
std::atomic<bool> g_count_allocations{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#endif  // !IARANK_ALLOC_COUNTER

namespace {

// --- metric primitives -------------------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  util::Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);

  util::Gauge g;
  g.set(7);
  g.set_max(3);
  EXPECT_EQ(g.value(), 7);
  g.set_max(11);
  EXPECT_EQ(g.value(), 11);
  g.add(-1);
  EXPECT_EQ(g.value(), 10);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  util::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[3], 1);
  // Quantiles are interpolated but always bounded by the exact max.
  EXPECT_LE(h.quantile(0.99), h.max());
  EXPECT_GE(h.quantile(0.99), 50.0);
  EXPECT_GT(h.quantile(0.5), 0.0);
}

TEST(Metrics, RegistryReturnsSameMetricForSameName) {
  util::Counter& a =
      util::MetricsRegistry::counter("iarank_test_registry_total");
  util::Counter& b =
      util::MetricsRegistry::counter("iarank_test_registry_total");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW((void)util::MetricsRegistry::gauge("iarank_test_registry_total"),
               util::Error);
}

TEST(Metrics, PrometheusExportContainsRegisteredMetrics) {
  util::MetricsRegistry::counter("iarank_test_export_total", "a test counter")
      .inc(3);
  std::ostringstream os;
  util::MetricsRegistry::instance().write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE iarank_test_export_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("iarank_test_export_total 3"), std::string::npos);
  // The instrumented modules register at namespace scope, so their
  // metrics are present (possibly at zero) in every export.
  for (const char* name :
       {"iarank_dp_cells_total", "iarank_free_pack_bunch_takes_total",
        "iarank_pool_tasks_total", "iarank_checkpoint_records_written_total",
        "iarank_builder_coarsen_hits_total", "iarank_sweep_points_ok_total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST(Metrics, SummarizeTimings) {
  EXPECT_DOUBLE_EQ(util::summarize_timings({}).max, 0.0);
  const util::TimingSummary one = util::summarize_timings({3.0});
  EXPECT_DOUBLE_EQ(one.p50, 3.0);
  EXPECT_DOUBLE_EQ(one.max, 3.0);
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  const util::TimingSummary s = util::summarize_timings(samples);
  EXPECT_DOUBLE_EQ(s.p50, 51.0);
  EXPECT_DOUBLE_EQ(s.p95, 96.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

// --- timing primitives -------------------------------------------------------

TEST(Stopwatch, ElapsedIsNeverNegative) {
  // Regression: wall-clock timers must be steady_clock-based; a
  // system-clock step backwards (NTP) must not produce negative elapsed.
  util::Stopwatch sw;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(sw.seconds(), 0.0);
  }
  util::ScopedTimer timer(nullptr);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(timer.seconds(), 0.0);
  }
}

TEST(Stopwatch, ScopedTimerAccumulatesIntoSinkAndHistogram) {
  double sink = 0.0;
  util::Histogram h(util::Histogram::duration_bounds());
  {
    const util::ScopedTimer timer(&sink, &h);
  }
  {
    const util::ScopedTimer timer(&sink, &h);
  }
  EXPECT_GE(sink, 0.0);
  EXPECT_EQ(h.count(), 2);
  EXPECT_GE(h.sum(), 0.0);
}

// --- determinism across thread counts ---------------------------------------

/// The deterministic counter subset: totals that count work whose amount
/// is a pure function of the input, independent of scheduling. Pool
/// metrics (tasks, queue depth, durations) are deliberately excluded.
const char* const kDeterministicCounters[] = {
    "iarank_dp_runs_total",          "iarank_dp_cells_total",
    "iarank_dp_heap_pops_total",     "iarank_dp_verify_calls_total",
    "iarank_free_pack_calls_total",  "iarank_free_pack_bunch_takes_total",
    "iarank_builder_builds_total",   "iarank_builder_coarsen_misses_total",
    "iarank_builder_die_misses_total", "iarank_builder_stack_misses_total",
    "iarank_builder_plans_misses_total", "iarank_sweep_points_ok_total",
    "iarank_sweep_points_failed_total",
};

std::map<std::string, std::int64_t> deterministic_delta(
    const std::map<std::string, std::int64_t>& before,
    const std::map<std::string, std::int64_t>& after) {
  std::map<std::string, std::int64_t> out;
  for (const char* name : kDeterministicCounters) {
    const auto b = before.find(name);
    const auto a = after.find(name);
    out[name] = (a != after.end() ? a->second : 0) -
                (b != before.end() ? b->second : 0);
  }
  return out;
}

std::map<std::string, std::int64_t> sweep_counter_delta(unsigned threads) {
  const core::DesignSpec design = core::baseline_design("130nm", 500000);
  core::RankOptions options;
  const iarank::wld::Wld wld = core::default_wld(design);
  core::InstanceBuilder builder(design, wld);

  const auto before = util::MetricsRegistry::instance().snapshot_values();
  const core::SweepResult sweep =
      core::sweep_parameter(builder, options, core::SweepParameter::kMillerFactor,
                            {2.0, 1.8, 1.6, 1.4, 1.2, 1.0}, threads);
  EXPECT_EQ(sweep.profile.failed_points, 0);
  const auto after = util::MetricsRegistry::instance().snapshot_values();
  return deterministic_delta(before, after);
}

TEST(MetricsDeterminism, CounterTotalsIdenticalAcrossJobs) {
  const auto jobs1 = sweep_counter_delta(1);
  const auto jobs4 = sweep_counter_delta(4);
  const auto jobs8 = sweep_counter_delta(8);
  EXPECT_GT(jobs1.at("iarank_dp_cells_total"), 0);
  EXPECT_GT(jobs1.at("iarank_free_pack_bunch_takes_total"), 0);
  EXPECT_EQ(jobs1, jobs4);
  EXPECT_EQ(jobs1, jobs8);
}

// --- trace capture and export ------------------------------------------------

TEST(Trace, SpansRecordOnlyWhenEnabled) {
  util::Trace::disable();
  util::Trace::enable();  // fresh capture
  util::Trace::disable();
  { TRACE_SPAN("trace.test.disabled"); }
  for (const auto& events : util::Trace::snapshot()) {
    for (const auto& e : events) {
      if (e.name != nullptr) EXPECT_STRNE(e.name, "trace.test.disabled");
    }
  }

  util::Trace::enable();
  {
    TRACE_SPAN("trace.test.outer");
    TRACE_SPAN("trace.test.inner");
  }
  util::Trace::disable();
  std::int64_t begins = 0;
  std::int64_t ends = 0;
  for (const auto& events : util::Trace::snapshot()) {
    for (const auto& e : events) {
      (e.begin ? begins : ends) += 1;
    }
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
}

TEST(Trace, SummaryFoldsNestedSpans) {
  util::Trace::enable();
  for (int i = 0; i < 3; ++i) {
    TRACE_SPAN("trace.test.root");
    TRACE_SPAN("trace.test.child");
  }
  util::Trace::disable();
  const auto roots = util::Trace::summary();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "trace.test.root");
  EXPECT_EQ(roots[0].count, 3);
  ASSERT_EQ(roots[0].children.size(), 1u);
  EXPECT_EQ(roots[0].children[0].name, "trace.test.child");
  EXPECT_EQ(roots[0].children[0].count, 3);
  EXPECT_GE(roots[0].total_ns, roots[0].children[0].total_ns);
  EXPECT_EQ(roots[0].self_ns,
            roots[0].total_ns - roots[0].children[0].total_ns);
}

/// Parses the exporter's line-per-event JSON and checks the Chrome
/// trace-event contract the satellite demands: every "B" has a matching
/// "E" and spans nest strictly within each tid.
TEST(Trace, ExportedJsonIsBalancedAndNested) {
  util::Trace::enable();
  {
    const core::DesignSpec design = core::baseline_design("130nm", 200000);
    core::RankOptions options;
    (void)core::compute_rank(design, options);
  }
  util::Trace::disable();

  std::ostringstream os;
  util::Trace::write_chrome_json(os);
  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"traceEvents\":[");

  const auto field = [](const std::string& text, const std::string& key) {
    const std::string quoted = "\"" + key + "\":";
    const std::size_t at = text.find(quoted);
    EXPECT_NE(at, std::string::npos) << key << " missing in: " << text;
    std::size_t begin = at + quoted.size();
    std::size_t end = begin;
    if (text[begin] == '"') {
      ++begin;
      end = text.find('"', begin);
    } else {
      end = text.find_first_of(",}", begin);
    }
    return text.substr(begin, end - begin);
  };

  std::map<std::string, std::vector<std::string>> stacks;  // tid -> names
  std::map<std::string, double> last_ts;
  std::int64_t events = 0;
  bool saw_dp_rank = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '{') break;  // closing "]}"
    ++events;
    const std::string name = field(line, "name");
    const std::string ph = field(line, "ph");
    const std::string tid = field(line, "tid");
    const double ts = std::stod(field(line, "ts"));
    saw_dp_rank = saw_dp_rank || name == "dp_rank";

    // Timestamps are non-decreasing per thread (steady clock).
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) EXPECT_GE(ts, it->second);
    last_ts[tid] = ts;

    auto& stack = stacks[tid];
    if (ph == "B") {
      stack.push_back(name);
    } else {
      ASSERT_EQ(ph, "E");
      ASSERT_FALSE(stack.empty()) << "E without open span on tid " << tid;
      EXPECT_EQ(stack.back(), name) << "spans must nest per thread";
      stack.pop_back();
    }
  }
  EXPECT_GT(events, 0);
  EXPECT_TRUE(saw_dp_rank);
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

// --- disabled-path cost ------------------------------------------------------

TEST(Trace, DisabledSpanPathAllocatesNothing) {
  util::Trace::disable();
  util::Counter& counter =
      util::MetricsRegistry::counter("iarank_test_zero_alloc_total");
  util::Histogram& histogram = util::MetricsRegistry::histogram(
      "iarank_test_zero_alloc_seconds", util::Histogram::duration_bounds());

#if defined(IARANK_ALLOC_COUNTER)
  const std::int64_t before = util::alloc_total();
  for (int i = 0; i < 100000; ++i) {
    TRACE_SPAN("trace.test.zero_alloc");
    counter.inc();
    histogram.observe(1e-6);
  }
  EXPECT_EQ(util::alloc_total() - before, 0);
#else
  g_allocations.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    TRACE_SPAN("trace.test.zero_alloc");
    counter.inc();
    histogram.observe(1e-6);
  }
  g_count_allocations.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0);
#endif
}

// --- the event log -----------------------------------------------------------

std::string event_path(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / "iarank_evt";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Every event line must parse standalone and carry the closed schema
/// (ts_ms / sev / type, optional fields) — the C++ mirror of what
/// tests/validate_events.py enforces on real logs.
void expect_valid_event_line(const std::string& line) {
  const util::Json event = util::Json::parse(line);
  ASSERT_TRUE(event.is_object()) << line;
  EXPECT_TRUE(event.at("ts_ms").is_number()) << line;
  const std::string sev = event.at("sev").as_string();
  EXPECT_TRUE(sev == "debug" || sev == "info" || sev == "warn" ||
              sev == "error")
      << line;
  EXPECT_FALSE(event.at("type").as_string().empty()) << line;
  if (event.contains("fields")) {
    EXPECT_TRUE(event.at("fields").is_object()) << line;
  }
}

TEST(EventLog, DisabledSinkDropsEventsAndRingStaysEmpty) {
  util::EventLog& events = util::EventLog::instance();
  ASSERT_FALSE(events.enabled());
  events.emit(util::Severity::kInfo, "test.dropped");
  events.flush();  // no sink: must be a no-op, not a crash
  EXPECT_TRUE(events.ring_snapshot().empty());
  events.dump_flight_recorder();  // not armed: no-op
}

TEST(EventLog, FileSinkRoundTripsEventsFromManyThreads) {
  const std::string path = event_path("sink.jsonl");
  std::filesystem::remove(path);
  util::EventLog& events = util::EventLog::instance();
  events.open(path);
  EXPECT_TRUE(events.enabled());
  EXPECT_THROW(events.open(path), util::Error);  // one sink at a time

  constexpr int kThreads = 4;
  constexpr int kEach = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        util::Json fields;
        fields["thread"] = t;
        fields["i"] = i;
        events.emit(util::Severity::kDebug, "test.sink", std::move(fields));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  events.close();
  EXPECT_FALSE(events.enabled());

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kEach));
  for (const std::string& line : lines) expect_valid_event_line(line);
  // Per-thread FIFO: for each thread, the i fields appear in order.
  std::map<std::int64_t, std::int64_t> next;
  for (const std::string& line : lines) {
    const util::Json event = util::Json::parse(line);
    const std::int64_t thread = event.at("fields").at("thread").as_int();
    EXPECT_EQ(event.at("fields").at("i").as_int(), next[thread]) << line;
    ++next[thread];
  }
}

TEST(EventLog, FlightRecorderRingWrapsKeepingTheNewestEvents) {
  const std::string path = event_path("ring.jsonl");
  std::filesystem::remove(path);
  util::EventLog& events = util::EventLog::instance();
  events.arm_flight_recorder(path);
  EXPECT_TRUE(events.flight_recorder_armed());
  EXPECT_TRUE(events.enabled());

  const std::size_t total = util::EventLog::kRingSlots + 50;
  for (std::size_t i = 0; i < total; ++i) {
    util::Json fields;
    fields["i"] = static_cast<std::int64_t>(i);
    events.emit(util::Severity::kInfo, "test.ring", std::move(fields));
  }
  // After the wrap the snapshot is the pinned prefix (the first events
  // this process ever recorded — lifecycle context) followed by the
  // newest kRingSlots events.
  const std::vector<std::string> ring = events.ring_snapshot();
  ASSERT_EQ(ring.size(),
            util::EventLog::kRingSlots + util::EventLog::kPinnedSlots);
  const std::size_t window = ring.size() - util::EventLog::kRingSlots;
  for (std::size_t s = 0; s < window; ++s) {
    expect_valid_event_line(ring[s]);
  }
  for (std::size_t s = window; s < ring.size(); ++s) {
    expect_valid_event_line(ring[s]);
    EXPECT_EQ(util::Json::parse(ring[s]).at("fields").at("i").as_int(),
              static_cast<std::int64_t>(total - util::EventLog::kRingSlots +
                                        (s - window)));
  }

  events.dump_flight_recorder();
  const std::vector<std::string> dumped = read_lines(path);
  ASSERT_EQ(dumped.size(), ring.size());
  EXPECT_EQ(dumped, ring);

  events.disarm_flight_recorder();
  EXPECT_FALSE(events.enabled());
}

TEST(EventLog, OversizedRingLineBecomesAValidTruncationStub) {
  const std::string path = event_path("trunc.jsonl");
  util::EventLog& events = util::EventLog::instance();
  events.arm_flight_recorder(path);
  util::Json fields;
  fields["blob"] = std::string(2 * util::EventLog::kSlotBytes, 'x');
  events.emit(util::Severity::kWarn, "test.huge", std::move(fields));
  const std::vector<std::string> ring = events.ring_snapshot();
  ASSERT_FALSE(ring.empty());
  const util::Json stub = util::Json::parse(ring.back());
  EXPECT_TRUE(stub.at("truncated").as_bool());
  EXPECT_EQ(stub.at("type").as_string(), "test.huge");
  EXPECT_LE(ring.back().size(), util::EventLog::kSlotBytes);
  events.disarm_flight_recorder();
}

// --- build info --------------------------------------------------------------

TEST(BuildInfo, InfoMetricAndHealthzPayloadCarryTheBakedMetadata) {
  const util::BuildInfo& info = util::build_info();
  EXPECT_FALSE(info.git.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.sanitize.empty());
  EXPECT_GT(util::process_start_time_seconds(), 0.0);
  EXPECT_GE(util::process_uptime_seconds(), 0.0);

  util::register_build_metrics();
  std::ostringstream os;
  util::MetricsRegistry::instance().write_prometheus(os);
  const std::string text = os.str();
  // Info-metric convention: labeled sample with value 1, HELP/TYPE on
  // the bare family name (no braces — validate_metrics.py enforces it).
  EXPECT_NE(text.find("# TYPE iarank_build_info gauge"), std::string::npos);
  EXPECT_NE(text.find("iarank_build_info{"), std::string::npos);
  EXPECT_NE(text.find("\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("iarank_process_start_time_seconds"),
            std::string::npos);
  EXPECT_NE(text.find("iarank_process_uptime_seconds"), std::string::npos);

  const util::Json payload = util::build_info_json();
  for (const char* key :
       {"git", "compiler", "sanitize", "start_time", "uptime_seconds"}) {
    EXPECT_TRUE(payload.contains(key)) << key;
  }
}

// --- allocation counter ------------------------------------------------------

TEST(Metrics, AllocCounterSteadyState) {
  if (!util::alloc_counter_enabled()) {
    GTEST_SKIP() << "built with IARANK_COUNT_ALLOCS=OFF";
  }

  // The counter itself: monotone, and visible in the export.
  const std::int64_t t0 = util::alloc_total();
  {
    std::vector<int> v(1024, 7);
    EXPECT_EQ(v.back(), 7);
  }
  const std::int64_t t1 = util::alloc_total();
  EXPECT_GT(t1, t0);

  std::ostringstream prom;
  util::MetricsRegistry::instance().write_prometheus(prom);
  EXPECT_NE(prom.str().find("iarank_alloc_total"), std::string::npos);
  const auto snapshot = util::MetricsRegistry::instance().snapshot_values();
  const auto it = snapshot.find("iarank_alloc_total");
  ASSERT_NE(it, snapshot.end());
  EXPECT_GE(it->second, t1);

  // Steady state: once caches are warm, a repeated identical single-thread
  // sweep allocates the same amount every time — an allocation introduced
  // into the per-point hot path shows up as a delta mismatch here.
  const core::DesignSpec design = core::baseline_design("130nm", 500000);
  core::RankOptions options;
  const iarank::wld::Wld wld = core::default_wld(design);
  core::InstanceBuilder builder(design, wld);
  const std::vector<double> values = {2.0, 1.8, 1.6, 1.4, 1.2, 1.0};

  const auto run_once = [&] {
    const std::int64_t before = util::alloc_total();
    const core::SweepResult result = core::sweep_parameter(
        builder, options, core::SweepParameter::kMillerFactor, values, 1);
    EXPECT_EQ(result.points.size(), values.size());
    EXPECT_EQ(result.profile.failed_points, 0);
    return util::alloc_total() - before;
  };

  const std::int64_t cold = run_once();   // fills builder caches
  (void)run_once();                       // settle any once-only statics
  const std::int64_t warm_a = run_once();
  const std::int64_t warm_b = run_once();
  EXPECT_EQ(warm_a, warm_b);
  EXPECT_LT(warm_a, cold);
}

TEST(Metrics, WarmSweepPerPointAllocationsAreZero) {
  if (!util::alloc_counter_enabled()) {
    GTEST_SKIP() << "built with IARANK_COUNT_ALLOCS=OFF";
  }

  // The zero-steady-state contract (DESIGN.md Section 10.6): with warm
  // builder caches, a warm thread-local instance/kernel/result, and the
  // pool at its high-water footprint, the per-POINT cost of a sweep is
  // zero operator-new calls. Proven by size independence: a warm
  // 1000-point sweep performs exactly as many allocations as a warm
  // 100-point sweep (the remaining fixed per-sweep cost is the result
  // containers), so each of the extra 900 points allocated nothing.
  const core::DesignSpec design = core::baseline_design("130nm", 500000);
  core::RankOptions options;
  const iarank::wld::Wld wld = core::default_wld(design);
  core::InstanceBuilder builder(design, wld);

  // Values tiled from a fixed set of 8, so every point past warm-up hits
  // all four builder stage caches (distinct values would recompute the
  // plan stage, which legitimately allocates its result).
  const auto tiled = [](std::size_t n) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = 2.0 - 0.1 * static_cast<double>(i % 8);
    }
    return v;
  };

  const auto run_once = [&](const std::vector<double>& values) {
    const std::int64_t before = util::alloc_total();
    const core::SweepResult result = core::sweep_parameter(
        builder, options, core::SweepParameter::kMillerFactor, values, 1);
    EXPECT_EQ(result.points.size(), values.size());
    EXPECT_EQ(result.profile.failed_points, 0);
    return util::alloc_total() - before;
  };

  const std::vector<double> small = tiled(100);
  const std::vector<double> large = tiled(1000);
  (void)run_once(large);  // warm-up: caches, thread-locals, pool high water
  (void)run_once(small);
  const std::int64_t d_small = run_once(small);
  const std::int64_t d_large = run_once(large);
  EXPECT_EQ(d_large, d_small)
      << "the 900 extra warm points must not allocate: per-point delta = "
      << static_cast<double>(d_large - d_small) / 900.0;
}

}  // namespace
