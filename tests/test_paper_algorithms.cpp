/// Tests for the literal Algorithm 4 / Algorithm 5 implementations and
/// their cross-validation against the production engines, plus golden
/// regression pins for the headline numbers and the CSV report writer.

#include <sstream>

#include <gtest/gtest.h>

#include "src/core/engine.hpp"
#include "src/core/figure2.hpp"
#include "src/core/free_pack.hpp"
#include "src/core/greedy_rank.hpp"
#include "src/core/paper_algorithms.hpp"
#include "src/core/paper_setup.hpp"
#include "src/core/report.hpp"
#include "src/core/sweep.hpp"
#include "src/util/error.hpp"
#include "tests/helpers.hpp"

namespace core = iarank::core;
namespace wld = iarank::wld;
using iarank::util::Error;

// --- Algorithm 4 (wire_assign / M') -----------------------------------------------

TEST(PaperAlg4, Figure2UpperPairTwoWires) {
  // Two wires on the upper pair need 4 repeaters each (8 total), which
  // exactly exhausts the budget.
  const auto inst = core::figure2_instance();
  const auto r = core::paper_wire_assign(inst, 0, 2, 2, 0, 8.0, 0.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.repeaters, 8);
  EXPECT_DOUBLE_EQ(r.repeater_area, 8.0);
}

TEST(PaperAlg4, BudgetExhaustionReturnsZero) {
  const auto inst = core::figure2_instance();
  // 7 units cannot buffer two upper-pair wires (need 8).
  EXPECT_FALSE(core::paper_wire_assign(inst, 0, 2, 2, 0, 7.0, 0.0).feasible);
}

TEST(PaperAlg4, AreaExhaustionReturnsZero) {
  const auto inst = core::figure2_instance();
  // Three wires cannot fit the upper pair (capacity 2 wires).
  EXPECT_FALSE(core::paper_wire_assign(inst, 0, 3, 3, 0, 100.0, 0.0).feasible);
}

TEST(PaperAlg4, DelayFreeTailUsesAreaOnly) {
  const auto inst = core::figure2_instance();
  // One delay-met wire + one delay-free wire on the upper pair: only 4
  // repeaters needed.
  const auto r = core::paper_wire_assign(inst, 0, 1, 2, 0, 8.0, 0.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.repeaters, 4);
}

TEST(PaperAlg4, MatchesProductionPlanCosts) {
  // On random instances, the literal per-wire insertion must charge
  // exactly count * (stages - 1) repeaters when it succeeds.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto inst = iarank::testing::random_instance(seed);
    for (std::size_t b = 0; b < inst.bunch_count(); ++b) {
      const auto& plan = inst.plan(b, 0);
      if (!plan.feasible) continue;
      const auto r = core::paper_wire_assign(inst, b, 1, b + 1, 0,
                                             inst.repeater_budget() + 100.0,
                                             0.0);
      if (!r.feasible) continue;  // area-bound; cost comparison moot
      EXPECT_EQ(r.repeaters,
                inst.bunch(b).count * plan.repeaters_per_wire())
          << "seed " << seed << " bunch " << b;
    }
  }
}

TEST(PaperAlg4, InvalidArgsThrow) {
  const auto inst = core::figure2_instance();
  EXPECT_THROW((void)core::paper_wire_assign(inst, 0, 1, 1, 9, 1.0, 0.0),
               Error);
  EXPECT_THROW((void)core::paper_wire_assign(inst, 3, 3, 2, 0, 1.0, 0.0),
               Error);
}

// --- Algorithm 5 (greedy_assign / M'') ------------------------------------------------

TEST(PaperAlg5, Figure2SuffixFits) {
  const auto inst = core::figure2_instance();
  // Wires 2..3 into pair 1 (j+1 = 1): lower pair holds 3, fits.
  EXPECT_TRUE(core::paper_greedy_assign(inst, 2, 1, 8.0));
  // All four wires into pair 1 alone: only 3 fit.
  EXPECT_FALSE(core::paper_greedy_assign(inst, 0, 1, 0.0));
}

TEST(PaperAlg5, NothingToAssignIsFeasible) {
  const auto inst = core::figure2_instance();
  EXPECT_TRUE(core::paper_greedy_assign(inst, 4, 2, 0.0));
}

TEST(PaperAlg5, NoPairsLeftIsInfeasible) {
  const auto inst = core::figure2_instance();
  EXPECT_FALSE(core::paper_greedy_assign(inst, 1, 2, 0.0));
}

TEST(PaperAlg5, ConservativeVsProductionPacker) {
  // The paper's Alg. 5 charges packed wires' vias against their own pair
  // (conservative) and packs whole bunches; the production free_pack
  // releases blockage and splits. Hence: paper feasible => production
  // feasible, on every random instance.
  int paper_yes = 0;
  for (std::uint64_t seed = 100; seed < 220; ++seed) {
    const auto inst = iarank::testing::random_instance(seed);
    for (std::size_t j = 0; j < inst.pair_count(); ++j) {
      for (std::size_t i = 0; i <= inst.bunch_count(); ++i) {
        const bool paper = core::paper_greedy_assign(inst, i, j, 0.0);
        core::FreePackInput in;
        in.first_pair = j;
        in.first_bunch = i;
        in.wires_above_first = static_cast<double>(inst.wires_before(i));
        const bool production = core::free_pack_feasible(inst, in);
        if (paper) {
          ++paper_yes;
          EXPECT_TRUE(production)
              << "seed " << seed << " i=" << i << " j=" << j;
        }
      }
    }
  }
  EXPECT_GT(paper_yes, 100);  // the implication was actually exercised
}

TEST(PaperAlg5, EquivalentToProductionWithoutVias) {
  // With via areas zero and whole-bunch loads, the two packers agree
  // except for free_pack's bunch splitting (production can be feasible
  // where whole-bunch packing is not, never the reverse).
  iarank::testing::RandomInstanceSpec spec;
  spec.with_vias = false;
  for (std::uint64_t seed = 300; seed < 360; ++seed) {
    const auto inst = iarank::testing::random_instance(seed, spec);
    const bool paper = core::paper_greedy_assign(inst, 0, 0, 0.0);
    const bool production = core::free_pack_feasible(inst, {});
    if (paper) EXPECT_TRUE(production) << "seed " << seed;
  }
}

// --- golden regression pins ---------------------------------------------------------------

TEST(Golden, Figure2Ranks) {
  const auto inst = core::figure2_instance();
  EXPECT_EQ(core::dp_rank(inst).rank, 4);
  EXPECT_EQ(core::greedy_rank(inst).rank, 2);
}

TEST(Golden, SmallBaselineRankPinned) {
  // Regression pin for the 50k-gate scaled regime. If a model change
  // shifts this intentionally, update the pin and EXPERIMENTS.md.
  core::PaperSetup setup =
      core::paper_baseline("130nm", 50000, core::scaled_regime(50000));
  setup.options.bunch_size = 500;
  const auto w = core::default_wld(setup.design);
  const auto r = core::compute_rank(setup.design, setup.options, w);
  EXPECT_EQ(r.rank, 57470);
  EXPECT_TRUE(r.all_assigned);
}

TEST(Golden, SmallWldPinned) {
  const auto w = core::default_wld(
      core::paper_baseline("130nm", 50000, core::scaled_regime(50000)).design);
  EXPECT_EQ(w.total_wires(), 148021);
  EXPECT_DOUBLE_EQ(w.max_length(), 368.0);
}

// --- CSV reports ------------------------------------------------------------------------------

TEST(Report, ResultCsvContainsHeadlineFields) {
  const auto inst = core::figure2_instance();
  const auto r = core::dp_rank(inst);
  std::ostringstream os;
  core::write_result_csv(os, r);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("rank,4"), std::string::npos);
  EXPECT_NE(csv.find("all_assigned,1"), std::string::npos);
  EXPECT_NE(csv.find("upper (slow RC)"), std::string::npos);
}

TEST(Report, SweepCsvRoundShape) {
  core::SweepResult sweep;
  sweep.parameter = core::SweepParameter::kRepeaterFraction;
  core::RankResult r;
  r.normalized = 0.5;
  r.rank = 10;
  sweep.points = {{0.1, r}, {0.2, r}};
  std::ostringstream os;
  core::write_sweep_csv(os, sweep);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("R (max repeater fraction)"), std::string::npos);
  EXPECT_NE(csv.find("0.1,0.5,10,0"), std::string::npos);
}

TEST(Report, SaveToInvalidPathThrows) {
  core::SweepResult sweep;
  EXPECT_THROW(core::save_sweep_csv("/no/such/dir/x.csv", sweep), Error);
}
