/// Unit tests of the monotonic bump allocator behind the DP kernel
/// (src/util/pool.hpp): alignment of every handed-out pointer, dedicated
/// chunks for oversized requests, bytes/high-water/chunk accounting, and
/// the reset-reuse contract — after one warm-up round the pool stops
/// touching the heap (the steady-state zero-allocation guarantee the
/// IARANK_COUNT_ALLOCS referee enforces end to end).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/util/alloc_count.hpp"
#include "src/util/pool.hpp"

namespace util = iarank::util;

namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

}  // namespace

// --- MonotonicPool -------------------------------------------------------------

TEST(MonotonicPool, RespectsEveryPowerOfTwoAlignment) {
  util::MonotonicPool pool(/*chunk_bytes=*/4096);
  for (std::size_t align = 1; align <= 64; align *= 2) {
    for (int i = 0; i < 16; ++i) {
      // Odd sizes force misaligned bump offsets the next call must fix.
      void* p = pool.allocate(static_cast<std::size_t>(i) * 3 + 1, align);
      ASSERT_NE(p, nullptr);
      EXPECT_TRUE(aligned_to(p, align)) << "align " << align << " i " << i;
    }
  }
}

TEST(MonotonicPool, ZeroByteAllocationIsNotNull) {
  util::MonotonicPool pool;
  EXPECT_NE(pool.allocate(0, 1), nullptr);
  EXPECT_EQ(pool.bytes_used(), 0);
}

TEST(MonotonicPool, BytesUsedExcludesPaddingAndTracksHighWater) {
  util::MonotonicPool pool(4096);
  pool.allocate(10, 1);
  pool.allocate(6, 64);  // padding to 64 is not billed
  EXPECT_EQ(pool.bytes_used(), 16);
  EXPECT_EQ(pool.high_water_bytes(), 16);

  pool.reset();
  EXPECT_EQ(pool.bytes_used(), 0);
  EXPECT_EQ(pool.high_water_bytes(), 16);  // high water survives reset

  pool.allocate(100, 8);
  EXPECT_EQ(pool.bytes_used(), 100);
  EXPECT_EQ(pool.high_water_bytes(), 100);
}

TEST(MonotonicPool, OversizedRequestGetsDedicatedChunk) {
  util::MonotonicPool pool(/*chunk_bytes=*/1024);
  void* small = pool.allocate(8, 8);
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(pool.chunk_count(), 1);

  // Far beyond any doubling step: served by a chunk of its own size.
  const std::size_t big = 1 << 20;
  auto* p = static_cast<unsigned char*>(pool.allocate(big, 16));
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(aligned_to(p, 16));
  EXPECT_EQ(pool.chunk_count(), 2);
  EXPECT_EQ(pool.bytes_used(), static_cast<std::int64_t>(big) + 8);
  EXPECT_GE(pool.capacity_bytes(), static_cast<std::int64_t>(big));

  // The whole block is writable.
  std::memset(p, 0xAB, big);
  EXPECT_EQ(p[0], 0xAB);
  EXPECT_EQ(p[big - 1], 0xAB);
}

TEST(MonotonicPool, ResetRetainsChunksAndReusesThem) {
  util::MonotonicPool pool(/*chunk_bytes=*/1024);
  // Warm-up: force several chunks into the chain.
  std::vector<void*> first_round;
  for (int i = 0; i < 64; ++i) first_round.push_back(pool.allocate(256, 8));
  const std::int64_t warm_chunks = pool.chunks_allocated();
  const std::int64_t warm_capacity = pool.capacity_bytes();
  EXPECT_GT(warm_chunks, 1);

  // Ten more identical rounds: same pointers come back, no new chunks.
  for (int round = 0; round < 10; ++round) {
    pool.reset();
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(pool.allocate(256, 8), first_round[static_cast<std::size_t>(i)])
          << "round " << round << " i " << i;
    }
    EXPECT_EQ(pool.chunks_allocated(), warm_chunks) << "round " << round;
    EXPECT_EQ(pool.capacity_bytes(), warm_capacity) << "round " << round;
  }
}

TEST(MonotonicPool, WarmRoundsPerformZeroHeapAllocations) {
  if (!util::alloc_counter_enabled()) {
    GTEST_SKIP() << "built without IARANK_COUNT_ALLOCS";
  }
  util::MonotonicPool pool(/*chunk_bytes=*/1024);
  for (int i = 0; i < 64; ++i) pool.allocate(200, 8);  // warm-up

  const std::int64_t before = util::alloc_total();
  for (int round = 0; round < 10; ++round) {
    pool.reset();
    for (int i = 0; i < 64; ++i) pool.allocate(200, 8);
  }
  EXPECT_EQ(util::alloc_total(), before);
}

TEST(MonotonicPool, ReleaseReturnsEverythingAndPoolStaysUsable) {
  util::MonotonicPool pool(1024);
  pool.allocate(4000, 8);
  EXPECT_GT(pool.chunk_count(), 0);
  pool.release();
  EXPECT_EQ(pool.capacity_bytes(), 0);
  EXPECT_EQ(pool.bytes_used(), 0);
  // Usable again after release: a fresh chain is grown on demand.
  void* p = pool.allocate(64, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(pool.bytes_used(), 64);
}

// --- PoolVec -------------------------------------------------------------------

TEST(PoolVec, PushBackGrowsAndPreservesContents) {
  util::MonotonicPool pool;
  util::PoolVec<std::int64_t> v(&pool);
  for (std::int64_t i = 0; i < 1000; ++i) v.push_back(i * i);
  ASSERT_EQ(v.size(), 1000u);
  for (std::int64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(v[static_cast<std::size_t>(i)], i * i) << "i " << i;
  }
  EXPECT_EQ(v.back(), 999 * 999);
}

TEST(PoolVec, ReserveCopiesExistingElements) {
  util::MonotonicPool pool;
  util::PoolVec<int> v(&pool);
  for (int i = 0; i < 10; ++i) v.push_back(i);
  const int* old_data = v.data();
  v.reserve(4096);  // forces relocation into a fresh block
  EXPECT_NE(v.data(), old_data);
  ASSERT_EQ(v.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(PoolVec, ResizeValueInitializesNewTail) {
  util::MonotonicPool pool;
  util::PoolVec<double> v(&pool);
  v.push_back(3.5);
  v.resize(5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], 3.5);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(v[i], 0.0);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(PoolVec, SetSizeAfterReserveIsTheLaneLoopIdiom) {
  util::MonotonicPool pool;
  util::PoolVec<int> v(&pool);
  v.reserve(128);
  v.set_size(128);
  for (std::size_t i = 0; i < 128; ++i) v[i] = static_cast<int>(i);
  int sum = 0;
  for (const int x : v) sum += x;
  EXPECT_EQ(sum, 127 * 128 / 2);
}

TEST(PoolVec, AttachRebindsAfterPoolReset) {
  util::MonotonicPool pool;
  util::PoolVec<int> v(&pool);
  v.push_back(1);
  pool.reset();   // invalidates v's storage by contract
  v.attach(&pool);  // callers re-attach + re-reserve every solve
  EXPECT_EQ(v.size(), 0u);
  v.push_back(42);
  EXPECT_EQ(v[0], 42);
}
