/// Tests for the extension modules: Davis Monte-Carlo sampling, technology
/// file I/O, geometry tuning, rank sensitivities, the annealing optimizer
/// and the config-driven run builder.

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/anneal.hpp"
#include "src/core/config_run.hpp"
#include "src/core/sensitivity.hpp"
#include "src/tech/io.hpp"
#include "src/tech/rc.hpp"
#include "src/tech/tuning.hpp"
#include "src/util/error.hpp"
#include "src/wld/davis.hpp"

namespace core = iarank::core;
namespace tech = iarank::tech;
namespace wld = iarank::wld;
using iarank::util::Error;

// --- Davis sampling ---------------------------------------------------------------

TEST(DavisSample, TotalAndDeterminism) {
  const wld::DavisModel model({100000, 0.6, 4.0, 3.0});
  const auto a = model.sample(50000, 7);
  const auto b = model.sample(50000, 7);
  EXPECT_EQ(a.total_wires(), 50000);
  EXPECT_EQ(a.group_count(), b.group_count());
  EXPECT_DOUBLE_EQ(a.stats().mean_length, b.stats().mean_length);
}

TEST(DavisSample, DifferentSeedsDiffer) {
  const wld::DavisModel model({100000, 0.6, 4.0, 3.0});
  const auto a = model.sample(20000, 1);
  const auto b = model.sample(20000, 2);
  EXPECT_NE(a.stats().total_length, b.stats().total_length);
}

TEST(DavisSample, ConvergesToModelMean) {
  const wld::DavisModel model({100000, 0.6, 4.0, 3.0});
  const auto expected = model.generate().stats();
  const auto sampled = model.sample(400000, 3).stats();
  EXPECT_NEAR(sampled.mean_length / expected.mean_length, 1.0, 0.03);
}

TEST(DavisSample, InvalidCountThrows) {
  const wld::DavisModel model({10000, 0.6, 4.0, 3.0});
  EXPECT_THROW((void)model.sample(0, 1), Error);
}

// --- technology file I/O ---------------------------------------------------------------

TEST(TechIo, RoundTripAllNodes) {
  for (const tech::TechNode& node : tech::all_nodes()) {
    std::ostringstream os;
    tech::write_node(os, node);
    const tech::TechNode loaded =
        tech::node_from_config(iarank::util::Config::parse(os.str()));
    EXPECT_EQ(loaded.name, node.name);
    EXPECT_DOUBLE_EQ(loaded.feature_size, node.feature_size);
    EXPECT_DOUBLE_EQ(loaded.local.min_width, node.local.min_width);
    EXPECT_DOUBLE_EQ(loaded.global.thickness, node.global.thickness);
    EXPECT_DOUBLE_EQ(loaded.device.r_o, node.device.r_o);
    EXPECT_EQ(loaded.total_metal_layers, node.total_metal_layers);
    EXPECT_DOUBLE_EQ(loaded.max_clock, node.max_clock);
    EXPECT_EQ(loaded.conductor.name, node.conductor.name);
  }
}

TEST(TechIo, MissingKeyThrows) {
  EXPECT_THROW((void)tech::node_from_config(
                   iarank::util::Config::parse("name = broken")),
               Error);
}

TEST(TechIo, UnknownConductorThrows) {
  std::ostringstream os;
  tech::write_node(os, tech::node_130nm());
  std::string text = os.str();
  text.replace(text.find("conductor = cu"), 14, "conductor = au");
  EXPECT_THROW(
      (void)tech::node_from_config(iarank::util::Config::parse(text)), Error);
}

TEST(TechIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)tech::load_node("/nonexistent.tech"), Error);
}

// --- geometry tuning --------------------------------------------------------------------

TEST(Tuning, IdentityLeavesNodeUnchanged) {
  const tech::TechNode node = tech::node_130nm();
  const tech::TechNode tuned = tech::apply_tuning(node, {});
  EXPECT_EQ(tuned.name, node.name);
  EXPECT_DOUBLE_EQ(tuned.global.min_width, node.global.min_width);
}

TEST(Tuning, ScalesRequestedTier) {
  tech::NodeTuning tuning;
  tuning.global = {2.0, 1.5, 1.2};
  const tech::TechNode node = tech::node_130nm();
  const tech::TechNode tuned = tech::apply_tuning(node, tuning);
  EXPECT_DOUBLE_EQ(tuned.global.min_width, 2.0 * node.global.min_width);
  EXPECT_DOUBLE_EQ(tuned.global.min_spacing, 1.5 * node.global.min_spacing);
  EXPECT_DOUBLE_EQ(tuned.global.thickness, 1.2 * node.global.thickness);
  EXPECT_DOUBLE_EQ(tuned.local.min_width, node.local.min_width);
  EXPECT_NE(tuned.name, node.name);
}

TEST(Tuning, WiderGlobalWiresLowerResistance) {
  tech::NodeTuning tuning;
  tuning.global.width = 2.0;
  const tech::TechNode base = tech::node_130nm();
  const tech::TechNode tuned = tech::apply_tuning(base, tuning);
  const tech::RcParams params{tech::copper(), 3.9, 2.0,
                              tech::CapacitanceModel::kParallelPlate};
  const tech::LayerGeometry g0{base.global.min_width, base.global.min_spacing,
                               base.global.thickness, base.global.thickness,
                               base.global.via_width};
  const tech::LayerGeometry g1{tuned.global.min_width,
                               tuned.global.min_spacing,
                               tuned.global.thickness, tuned.global.thickness,
                               tuned.global.via_width};
  EXPECT_LT(tech::extract_rc(g1, params).resistance,
            tech::extract_rc(g0, params).resistance);
}

TEST(Tuning, InvalidMultiplierThrows) {
  tech::NodeTuning tuning;
  tuning.local.width = 0.0;
  EXPECT_THROW((void)tech::apply_tuning(tech::node_130nm(), tuning), Error);
}

// --- fixtures for engine-level extension tests --------------------------------------------

namespace {

core::PaperSetup small_setup() {
  core::PaperSetup setup =
      core::paper_baseline("130nm", 50000, core::scaled_regime(50000));
  setup.options.bunch_size = 500;
  return setup;
}

const wld::Wld& small_wld() {
  static const wld::Wld w = core::default_wld(small_setup().design);
  return w;
}

}  // namespace

// --- sensitivities -----------------------------------------------------------------------

TEST(Sensitivity, SignsMatchTable4Trends) {
  const auto setup = small_setup();
  const auto sens = core::rank_sensitivities(setup.design, setup.options,
                                             small_wld(), 0.10);
  ASSERT_EQ(sens.size(), 4u);
  for (const auto& s : sens) {
    switch (s.parameter) {
      case core::SweepParameter::kIldPermittivity:
      case core::SweepParameter::kMillerFactor:
      case core::SweepParameter::kClockFrequency:
        EXPECT_LE(s.elasticity, 0.0) << core::to_string(s.parameter);
        break;
      case core::SweepParameter::kRepeaterFraction:
        EXPECT_GT(s.elasticity, 0.0);
        break;
    }
    EXPECT_GT(s.base_normalized, 0.0);
    EXPECT_LT(s.low_value, s.high_value);
  }
}

TEST(Sensitivity, BudgetElasticityNearUnity) {
  // The budget-limited regime's signature: rank ~ R.
  const auto setup = small_setup();
  const auto sens = core::rank_sensitivities(setup.design, setup.options,
                                             small_wld(), 0.10);
  for (const auto& s : sens) {
    if (s.parameter == core::SweepParameter::kRepeaterFraction) {
      EXPECT_NEAR(s.elasticity, 1.0, 0.45);
    }
  }
}

TEST(Sensitivity, InvalidStepThrows) {
  const auto setup = small_setup();
  EXPECT_THROW((void)core::rank_sensitivities(setup.design, setup.options,
                                              small_wld(), 0.0),
               Error);
}

// --- annealing optimizer -----------------------------------------------------------------------

TEST(Anneal, ImprovesOnBaselineAndIsDeterministic) {
  const auto setup = small_setup();
  core::AnnealOptions opts;
  opts.iterations = 60;
  opts.seed = 11;
  const auto a = core::anneal_architecture(setup.design.node, 50000,
                                           setup.options, small_wld(), opts);
  const auto b = core::anneal_architecture(setup.design.node, 50000,
                                           setup.options, small_wld(), opts);
  const auto baseline =
      core::compute_rank(setup.design, setup.options, small_wld());
  EXPECT_GE(a.best_result.rank, baseline.rank);
  EXPECT_EQ(a.best_result.rank, b.best_result.rank);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_TRUE(a.best_result.all_assigned);
}

TEST(Anneal, TrajectoryIsMonotoneBestSoFar) {
  const auto setup = small_setup();
  core::AnnealOptions opts;
  opts.iterations = 40;
  const auto result = core::anneal_architecture(
      setup.design.node, 50000, setup.options, small_wld(), opts);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_GE(result.trajectory[i], result.trajectory[i - 1]);
  }
}

TEST(Anneal, InvalidOptionsThrow) {
  const auto setup = small_setup();
  core::AnnealOptions opts;
  opts.iterations = 0;
  EXPECT_THROW((void)core::anneal_architecture(setup.design.node, 50000,
                                               setup.options, small_wld(),
                                               opts),
               Error);
  opts = {};
  opts.multipliers.clear();
  EXPECT_THROW((void)core::anneal_architecture(setup.design.node, 50000,
                                               setup.options, small_wld(),
                                               opts),
               Error);
}

// --- config-driven runs ---------------------------------------------------------------------------

TEST(ConfigRun, DefaultsAreThePaperBaseline) {
  const auto spec =
      core::run_spec_from_config(iarank::util::Config::parse(""));
  EXPECT_EQ(spec.design.node.name, "130nm");
  EXPECT_EQ(spec.design.gate_count, 1000000);
  EXPECT_DOUBLE_EQ(spec.options.ild_permittivity, 3.9);
  EXPECT_DOUBLE_EQ(spec.options.repeater_fraction, 0.4);
  EXPECT_EQ(spec.options.target_model, iarank::delay::TargetModel::kQuadratic);
}

TEST(ConfigRun, OverridesApply) {
  const auto spec = core::run_spec_from_config(iarank::util::Config::parse(
      "node = 90nm\n"
      "gates = 250000\n"
      "ild_permittivity = 2.7\n"
      "miller_factor = 1.5\n"
      "clock_hz = 1e9\n"
      "repeater_fraction = 0.2\n"
      "arch.semi_global_pairs = 3\n"
      "bunch_size = 2000\n"
      "target_model = linear\n"
      "cap_model = sakurai\n"
      "wld.rent_p = 0.65\n"));
  EXPECT_EQ(spec.design.node.name, "90nm");
  EXPECT_EQ(spec.design.gate_count, 250000);
  EXPECT_DOUBLE_EQ(spec.options.ild_permittivity, 2.7);
  EXPECT_DOUBLE_EQ(spec.options.miller_factor, 1.5);
  EXPECT_DOUBLE_EQ(spec.options.clock_frequency, 1e9);
  EXPECT_EQ(spec.design.arch.semi_global_pairs, 3);
  EXPECT_EQ(spec.options.bunch_size, 2000);
  EXPECT_EQ(spec.options.target_model, iarank::delay::TargetModel::kLinear);
  EXPECT_EQ(spec.options.cap_model,
            tech::CapacitanceModel::kSakuraiTamaru);
  EXPECT_DOUBLE_EQ(spec.wld.rent_p, 0.65);
}

TEST(ConfigRun, RawPhysicalMode) {
  const auto spec = core::run_spec_from_config(
      iarank::util::Config::parse("paper_regime = 0\nnode = 180nm"));
  // Raw mode: untouched physical node, default options.
  EXPECT_DOUBLE_EQ(spec.design.node.gate_pitch_factor, 12.6);
  EXPECT_EQ(spec.options.target_model, iarank::delay::TargetModel::kLinear);
}

TEST(ConfigRun, UnknownEnumThrows) {
  EXPECT_THROW((void)core::run_spec_from_config(
                   iarank::util::Config::parse("cap_model = magic")),
               Error);
  EXPECT_THROW((void)core::run_spec_from_config(
                   iarank::util::Config::parse("target_model = cubic")),
               Error);
}

TEST(ConfigRun, ResolveWldUsesDavisByDefault) {
  auto spec =
      core::run_spec_from_config(iarank::util::Config::parse("gates = 10000"));
  const auto w = core::resolve_wld(spec);
  EXPECT_GT(w.total_wires(), 10000);
}

TEST(ConfigRun, EndToEndRank) {
  const auto spec = core::run_spec_from_config(iarank::util::Config::parse(
      "gates = 50000\n"
      "regime.die_scale = 27\n"
      "regime.repeater_cell_f2 = 160\n"
      "regime.capacity_factor = 0.0665\n"
      "bunch_size = 500\n"));
  const auto w = core::resolve_wld(spec);
  const auto r = core::compute_rank(spec.design, spec.options, w);
  EXPECT_TRUE(r.all_assigned);
  EXPECT_GT(r.rank, 0);
}
