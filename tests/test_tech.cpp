/// Unit and property tests for src/tech: materials, layers, nodes
/// (paper Table 3), RC extraction, die model (paper Eq. 6), vias,
/// architectures (paper Table 2).

#include <gtest/gtest.h>

#include "src/tech/architecture.hpp"
#include "src/tech/die.hpp"
#include "src/tech/envelope.hpp"
#include "src/tech/material.hpp"
#include "src/tech/node.hpp"
#include "src/tech/rc.hpp"
#include "src/tech/via.hpp"
#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace tech = iarank::tech;
namespace units = iarank::util::units;
using iarank::util::Error;

// --- materials -------------------------------------------------------------------

TEST(Material, CopperBeatsAluminum) {
  EXPECT_LT(tech::copper().resistivity, tech::aluminum().resistivity);
}

TEST(Material, OxidePermittivity) {
  EXPECT_DOUBLE_EQ(tech::silicon_dioxide().permittivity, 3.9);
}

TEST(Material, CustomDielectricValidated) {
  EXPECT_DOUBLE_EQ(tech::dielectric_with_k(2.2).permittivity, 2.2);
  EXPECT_THROW((void)tech::dielectric_with_k(0.5), Error);
}

// --- layer geometry -----------------------------------------------------------------

TEST(LayerGeometry, PitchAndViaArea) {
  tech::LayerGeometry g{0.2 * units::um, 0.3 * units::um, 0.4 * units::um,
                        0.4 * units::um, 0.25 * units::um};
  EXPECT_DOUBLE_EQ(g.pitch(), 0.5 * units::um);
  EXPECT_DOUBLE_EQ(g.via_area(), 0.0625 * units::um2);
}

TEST(LayerGeometry, ValidateRejectsZeroDimensions) {
  tech::LayerGeometry g{0.0, 0.3e-6, 0.4e-6, 0.4e-6, 0.2e-6};
  EXPECT_THROW(g.validate(), Error);
}

TEST(Tier, Names) {
  EXPECT_EQ(tech::to_string(tech::Tier::kLocal), "local");
  EXPECT_EQ(tech::to_string(tech::Tier::kGlobal), "global");
}

// --- nodes: the paper's Table 3 --------------------------------------------------------

TEST(Node, Table3Values130nm) {
  const tech::TechNode n = tech::node_130nm();
  EXPECT_DOUBLE_EQ(n.local.min_width, 0.160 * units::um);
  EXPECT_DOUBLE_EQ(n.local.min_spacing, 0.180 * units::um);
  EXPECT_DOUBLE_EQ(n.local.thickness, 0.336 * units::um);
  EXPECT_DOUBLE_EQ(n.semi_global.min_width, 0.200 * units::um);
  EXPECT_DOUBLE_EQ(n.global.thickness, 1.020 * units::um);
  EXPECT_DOUBLE_EQ(n.local.via_width, 0.190 * units::um);
  EXPECT_EQ(n.total_metal_layers, 7);
}

TEST(Node, Table3Values180nm) {
  const tech::TechNode n = tech::node_180nm();
  EXPECT_DOUBLE_EQ(n.local.min_width, 0.230 * units::um);
  EXPECT_DOUBLE_EQ(n.global.min_spacing, 0.460 * units::um);
  EXPECT_EQ(n.total_metal_layers, 6);
}

TEST(Node, Table3Values90nm) {
  const tech::TechNode n = tech::node_90nm();
  EXPECT_DOUBLE_EQ(n.semi_global.thickness, 0.300 * units::um);
  EXPECT_DOUBLE_EQ(n.global.min_width, 0.420 * units::um);
  EXPECT_EQ(n.total_metal_layers, 8);
}

TEST(Node, GatePitchIs12Point6F) {
  const tech::TechNode n = tech::node_130nm();
  EXPECT_NEAR(n.gate_pitch(), 12.6 * 0.13 * units::um, 1e-12);
}

TEST(Node, LookupByName) {
  EXPECT_EQ(tech::node_by_name("90nm").name, "90nm");
  EXPECT_THROW((void)tech::node_by_name("65nm"), Error);
}

TEST(Node, AllNodesValidate) {
  for (const tech::TechNode& n : tech::all_nodes()) {
    EXPECT_NO_THROW(n.validate()) << n.name;
  }
}

TEST(Node, FeatureSizesDescendButClocksRise) {
  const auto nodes = tech::all_nodes();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GT(nodes[i - 1].feature_size, nodes[i].feature_size);
    EXPECT_LT(nodes[i - 1].max_clock, nodes[i].max_clock);
  }
}

// --- RC extraction ---------------------------------------------------------------------

namespace {

tech::LayerGeometry sample_geometry() {
  return {0.2 * units::um, 0.21 * units::um, 0.34 * units::um, 0.34 * units::um,
          0.26 * units::um};
}

tech::RcParams sample_params(tech::CapacitanceModel model) {
  return {tech::copper(), 3.9, 2.0, model};
}

}  // namespace

TEST(Rc, ResistanceMatchesSheetFormula) {
  const auto rc = tech::extract_rc(
      sample_geometry(), sample_params(tech::CapacitanceModel::kParallelPlate));
  const double expected =
      tech::copper().resistivity / (0.2 * units::um * 0.34 * units::um);
  EXPECT_NEAR(rc.resistance, expected, expected * 1e-12);
}

TEST(Rc, ParallelPlateAlgebra) {
  const auto g = sample_geometry();
  const auto rc = tech::extract_rc(
      g, sample_params(tech::CapacitanceModel::kParallelPlate));
  const double eps = units::eps0 * 3.9;
  const double ground = 2.0 * eps * g.width / g.ild_height;
  const double coupling = 2.0 * eps * g.thickness / g.spacing;
  EXPECT_NEAR(rc.ground_cap, ground, ground * 1e-12);
  EXPECT_NEAR(rc.coupling_cap, coupling, coupling * 1e-12);
  EXPECT_NEAR(rc.capacitance, ground + 2.0 * coupling, 1e-22);
}

TEST(Rc, SakuraiExceedsParallelPlateGround) {
  // The empirical model adds fringe capacitance.
  const auto pp = tech::extract_rc(
      sample_geometry(), sample_params(tech::CapacitanceModel::kParallelPlate));
  const auto sk = tech::extract_rc(
      sample_geometry(), sample_params(tech::CapacitanceModel::kSakuraiTamaru));
  EXPECT_GT(sk.ground_cap, pp.ground_cap);
}

TEST(Rc, CapacitanceScalesLinearlyWithK) {
  auto p1 = sample_params(tech::CapacitanceModel::kSakuraiTamaru);
  auto p2 = p1;
  p2.ild_permittivity = 1.95;
  const auto rc1 = tech::extract_rc(sample_geometry(), p1);
  const auto rc2 = tech::extract_rc(sample_geometry(), p2);
  EXPECT_NEAR(rc2.capacitance / rc1.capacitance, 0.5, 1e-12);
}

TEST(Rc, MillerScalesOnlyCoupling) {
  auto p1 = sample_params(tech::CapacitanceModel::kSakuraiTamaru);
  auto p2 = p1;
  p2.miller_factor = 1.0;
  const auto rc1 = tech::extract_rc(sample_geometry(), p1);
  const auto rc2 = tech::extract_rc(sample_geometry(), p2);
  EXPECT_DOUBLE_EQ(rc1.ground_cap, rc2.ground_cap);
  EXPECT_NEAR(rc1.capacitance - rc2.capacitance, rc1.coupling_cap, 1e-22);
}

TEST(Rc, InvalidParamsThrow) {
  EXPECT_THROW(
      (void)tech::extract_rc(sample_geometry(),
                             {tech::copper(), 0.5, 2.0,
                              tech::CapacitanceModel::kParallelPlate}),
      Error);
  EXPECT_THROW(
      (void)tech::extract_rc(sample_geometry(),
                             {tech::copper(), 3.9, -1.0,
                              tech::CapacitanceModel::kParallelPlate}),
      Error);
}

/// Property sweep: capacitance decreases with spacing, resistance with
/// width, for both models.
class RcMonotonicity
    : public ::testing::TestWithParam<tech::CapacitanceModel> {};

TEST_P(RcMonotonicity, WiderSpacingLowersCoupling) {
  auto g = sample_geometry();
  const auto base = tech::extract_rc(g, sample_params(GetParam()));
  g.spacing *= 2.0;
  const auto wide = tech::extract_rc(g, sample_params(GetParam()));
  EXPECT_LT(wide.coupling_cap, base.coupling_cap);
}

TEST_P(RcMonotonicity, WiderWireLowersResistance) {
  auto g = sample_geometry();
  const auto base = tech::extract_rc(g, sample_params(GetParam()));
  g.width *= 2.0;
  const auto wide = tech::extract_rc(g, sample_params(GetParam()));
  EXPECT_LT(wide.resistance, base.resistance);
  EXPECT_GT(wide.ground_cap, base.ground_cap);
}

TEST_P(RcMonotonicity, TallerDielectricLowersGround) {
  auto g = sample_geometry();
  const auto base = tech::extract_rc(g, sample_params(GetParam()));
  g.ild_height *= 2.0;
  const auto tall = tech::extract_rc(g, sample_params(GetParam()));
  EXPECT_LT(tall.ground_cap, base.ground_cap);
}

INSTANTIATE_TEST_SUITE_P(BothModels, RcMonotonicity,
                         ::testing::Values(
                             tech::CapacitanceModel::kParallelPlate,
                             tech::CapacitanceModel::kSakuraiTamaru));

// --- die model (Eq. 6) -------------------------------------------------------------------

TEST(Die, Equation6) {
  const tech::DieModel die({1000000, 1.638 * units::um, 0.4});
  const double gate_area = 1.638e-6 * 1.638e-6 * 1e6;
  EXPECT_NEAR(die.gate_area(), gate_area, gate_area * 1e-12);
  EXPECT_NEAR(die.die_area(), gate_area / 0.6, gate_area * 1e-9);
  EXPECT_NEAR(die.repeater_area_budget(), 0.4 * die.die_area(), 1e-18);
}

TEST(Die, EffectivePitchRedistributesGates) {
  const tech::DieModel die({1000000, 1.0 * units::um, 0.36});
  EXPECT_NEAR(die.effective_gate_pitch(), 1.25 * units::um, 1e-12);
}

TEST(Die, ZeroRepeaterFraction) {
  const tech::DieModel die({100, 1.0 * units::um, 0.0});
  EXPECT_DOUBLE_EQ(die.die_area(), die.gate_area());
  EXPECT_DOUBLE_EQ(die.repeater_area_budget(), 0.0);
}

TEST(Die, InvalidSpecThrows) {
  EXPECT_THROW((void)tech::DieModel({0, 1e-6, 0.4}), Error);
  EXPECT_THROW((void)tech::DieModel({100, 1e-6, 1.0}), Error);
  EXPECT_THROW((void)tech::DieModel({100, -1e-6, 0.4}), Error);
}

// --- vias --------------------------------------------------------------------------------

TEST(Via, BlockageFormula) {
  tech::LayerGeometry g = sample_geometry();
  tech::ViaSpec spec;  // 2 vias per wire, 1 per repeater
  const double area =
      tech::via_blockage_area(g, spec, /*wires=*/10.0, /*repeaters=*/5.0);
  EXPECT_NEAR(area, (2.0 * 10.0 + 5.0) * g.via_area(), 1e-24);
}

TEST(Via, ZeroAboveMeansZeroBlockage) {
  EXPECT_DOUBLE_EQ(
      tech::via_blockage_area(sample_geometry(), tech::ViaSpec{}, 0.0, 0.0),
      0.0);
}

TEST(Via, NegativeCountsThrow) {
  EXPECT_THROW((void)tech::via_blockage_area(sample_geometry(),
                                             tech::ViaSpec{}, -1.0, 0.0),
               Error);
}

// --- architecture ----------------------------------------------------------------------------

TEST(Architecture, Table2BaselineStack) {
  const auto arch =
      tech::Architecture::build(tech::node_130nm(), tech::ArchitectureSpec{});
  ASSERT_EQ(arch.pair_count(), 4u);  // 1 global + 2 semi + 1 local
  EXPECT_EQ(arch.pair(0).tier, tech::Tier::kGlobal);
  EXPECT_EQ(arch.pair(1).tier, tech::Tier::kSemiGlobal);
  EXPECT_EQ(arch.pair(2).tier, tech::Tier::kSemiGlobal);
  EXPECT_EQ(arch.pair(3).tier, tech::Tier::kLocal);
}

TEST(Architecture, GeometriesComeFromNodeTiers) {
  const tech::TechNode n = tech::node_130nm();
  const auto arch = tech::Architecture::build(n, tech::ArchitectureSpec{});
  EXPECT_DOUBLE_EQ(arch.pair(0).geometry.width, n.global.min_width);
  EXPECT_DOUBLE_EQ(arch.pair(3).geometry.width, n.local.min_width);
  // Default ILD height = thickness.
  EXPECT_DOUBLE_EQ(arch.pair(0).geometry.ild_height, n.global.thickness);
}

TEST(Architecture, IldHeightFactorApplies) {
  tech::ArchitectureSpec spec;
  spec.ild_height_factor = 1.5;
  const auto arch = tech::Architecture::build(tech::node_130nm(), spec);
  EXPECT_DOUBLE_EQ(arch.pair(0).geometry.ild_height,
                   1.5 * tech::node_130nm().global.thickness);
}

TEST(Architecture, EmptySpecThrows) {
  tech::ArchitectureSpec spec{0, 0, 0, 1.0};
  EXPECT_THROW(
      (void)tech::Architecture::build(tech::node_130nm(), spec), Error);
}

TEST(Architecture, PairIndexOutOfRangeThrows) {
  const auto arch =
      tech::Architecture::build(tech::node_130nm(), tech::ArchitectureSpec{});
  EXPECT_THROW((void)arch.pair(4), Error);
}

TEST(Architecture, DescribeMentionsEveryPair) {
  const auto arch =
      tech::Architecture::build(tech::node_90nm(), tech::ArchitectureSpec{});
  const std::string text = arch.describe();
  for (const auto& p : arch.pairs()) {
    EXPECT_NE(text.find(p.name), std::string::npos);
  }
}

// --- sampling envelopes (selfcheck validity ranges) -----------------------------

TEST(Envelope, EveryNodeYieldsNonEmptyIntervals) {
  for (const auto& node : tech::all_nodes()) {
    const tech::SamplingEnvelopes env = tech::sampling_envelopes(node);
    for (const auto* e :
         {&env.ild_permittivity, &env.miller_factor, &env.clock_frequency,
          &env.repeater_fraction, &env.ild_height_factor,
          &env.pair_capacity_factor, &env.max_noise_ratio}) {
      EXPECT_LT(e->lo, e->hi) << node.name;
    }
    for (const auto* e :
         {&env.global_pairs, &env.semi_global_pairs, &env.local_pairs}) {
      EXPECT_LE(e->lo, e->hi) << node.name;
    }
  }
}

TEST(Envelope, ClockBoundedByNodeMaximum) {
  for (const auto& node : tech::all_nodes()) {
    const auto env = tech::sampling_envelopes(node);
    EXPECT_DOUBLE_EQ(env.clock_frequency.hi, node.max_clock) << node.name;
    EXPECT_GT(env.clock_frequency.lo, 0.0);
  }
}

TEST(Envelope, ContainsIsInclusive) {
  const tech::Envelope e{1.0, 2.0};
  EXPECT_TRUE(e.contains(1.0));
  EXPECT_TRUE(e.contains(2.0));
  EXPECT_FALSE(e.contains(0.999));
  EXPECT_FALSE(e.contains(2.001));
  const tech::IntEnvelope ie{0, 2};
  EXPECT_TRUE(ie.contains(0));
  EXPECT_TRUE(ie.contains(2));
  EXPECT_FALSE(ie.contains(3));
}

TEST(Envelope, ArchitectureBoundsBuildValidStacks) {
  // Every corner of the architecture envelope must pass the library's own
  // validation — the sampler relies on this.
  for (const auto& node : tech::all_nodes()) {
    const auto env = tech::sampling_envelopes(node);
    for (const int g : {env.global_pairs.lo, env.global_pairs.hi}) {
      for (const int sg : {env.semi_global_pairs.lo, env.semi_global_pairs.hi}) {
        for (const int l : {env.local_pairs.lo, env.local_pairs.hi}) {
          tech::ArchitectureSpec spec;
          spec.global_pairs = g;
          spec.semi_global_pairs = sg;
          spec.local_pairs = l;
          ASSERT_GE(spec.total_pairs(), 1) << node.name;
          EXPECT_NO_THROW(spec.validate()) << node.name;
          EXPECT_NO_THROW((void)tech::Architecture::build(node, spec))
              << node.name;
        }
      }
    }
  }
}
