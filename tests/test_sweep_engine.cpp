/// Tests for the sweep-engine overhaul: the shared util::ThreadPool, the
/// LRU stage caches and staged InstanceBuilder, sweep determinism across
/// thread counts and cache states (cached evaluations must be
/// bitwise-identical to cold ones), the sweep observability counters, and
/// the direction-aware value_reaching_rank.

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.hpp"
#include "src/core/instance_builder.hpp"
#include "src/core/paper_setup.hpp"
#include "src/core/sweep.hpp"
#include "src/util/error.hpp"
#include "src/util/lru_cache.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/units.hpp"

namespace core = iarank::core;
namespace util = iarank::util;
namespace wld = iarank::wld;
namespace units = iarank::util::units;

namespace {

/// Small paper-regime setup (50k gates) so each rank evaluation is fast,
/// rescaled to stay in the paper's budget-limited operating point.
core::PaperSetup small_setup() {
  core::PaperSetup setup =
      core::paper_baseline("130nm", 50000, core::scaled_regime(50000));
  setup.options.bunch_size = 500;
  return setup;
}

const wld::Wld& small_wld() {
  static const wld::Wld w = core::default_wld(small_setup().design);
  return w;
}

/// Bitwise equality of two rank results, including the full certificate.
void expect_identical(const core::RankResult& a, const core::RankResult& b) {
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.normalized, b.normalized);  // exact, not NEAR
  EXPECT_EQ(a.all_assigned, b.all_assigned);
  EXPECT_EQ(a.prefix_bunches, b.prefix_bunches);
  EXPECT_EQ(a.refined_wires, b.refined_wires);
  EXPECT_EQ(a.repeater_count, b.repeater_count);
  EXPECT_EQ(a.repeater_area_used, b.repeater_area_used);
  EXPECT_EQ(a.total_wires, b.total_wires);
  ASSERT_EQ(a.usage.size(), b.usage.size());
  for (std::size_t j = 0; j < a.usage.size(); ++j) {
    EXPECT_EQ(a.usage[j].wires_meeting_delay, b.usage[j].wires_meeting_delay);
    EXPECT_EQ(a.usage[j].wires_total, b.usage[j].wires_total);
    EXPECT_EQ(a.usage[j].wire_area, b.usage[j].wire_area);
    EXPECT_EQ(a.usage[j].via_blockage, b.usage[j].via_blockage);
    EXPECT_EQ(a.usage[j].repeaters, b.usage[j].repeaters);
    EXPECT_EQ(a.usage[j].repeater_area, b.usage[j].repeater_area);
  }
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t p = 0; p < a.placements.size(); ++p) {
    EXPECT_EQ(a.placements[p].bunch, b.placements[p].bunch);
    EXPECT_EQ(a.placements[p].pair, b.placements[p].pair);
    EXPECT_EQ(a.placements[p].wires, b.placements[p].wires);
    EXPECT_EQ(a.placements[p].meeting_delay, b.placements[p].meeting_delay);
  }
}

void expect_identical(const core::SweepResult& a, const core::SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].value, b.points[i].value);
    expect_identical(a.points[i].result, b.points[i].result);
  }
}

core::SweepResult synthetic_sweep(const std::vector<double>& values,
                                  const std::vector<double>& normalized) {
  core::SweepResult sweep;
  sweep.parameter = core::SweepParameter::kClockFrequency;
  for (std::size_t i = 0; i < values.size(); ++i) {
    core::RankResult r;
    r.normalized = normalized[i];
    sweep.points.push_back({values[i], r});
  }
  return sweep;
}

}  // namespace

// --- thread pool ------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> seen(257);
  pool.parallel_for(seen.size(), 0, [&](std::size_t i) {
    seen[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  util::ThreadPool pool(2);
  pool.parallel_for(0, 4, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, SequentialWhenParallelismOne) {
  util::ThreadPool pool(3);
  std::vector<std::size_t> order;
  pool.parallel_for(8, 1, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  util::ThreadPool pool(3);
  // Every index throws; index 0 is the first claimed, so its error is the
  // lowest recorded one regardless of scheduling.
  try {
    pool.parallel_for(16, 0, [](std::size_t i) {
      throw util::Error("boom " + std::to_string(i));
    });
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_STREQ(e.what(), "boom 0");
  }
}

TEST(ThreadPool, ExceptionStopsClaimingNewWork) {
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(10000, 0,
                                 [&](std::size_t) {
                                   ran.fetch_add(1);
                                   throw std::runtime_error("stop");
                                 }),
               std::runtime_error);
  // Claimed-but-running tasks finish; the vast majority is never started.
  EXPECT_LT(ran.load(), 100);
}

TEST(ThreadPool, ConcurrentThrowersYieldLowestExecutedIndex) {
  util::ThreadPool pool(4);
  // Indices 1 and 3 both throw. Claiming is monotonic from 0, so index 1
  // is always claimed (and thus executed) before claiming can stop —
  // whichever thrower finishes first, the lowest *executed* failing index
  // is deterministically 1.
  for (int round = 0; round < 25; ++round) {
    try {
      pool.parallel_for(8, 0, [](std::size_t i) {
        if (i == 1 || i == 3) {
          throw util::Error("thrower " + std::to_string(i));
        }
      });
      FAIL() << "expected util::Error";
    } catch (const util::Error& e) {
      EXPECT_STREQ(e.what(), "thrower 1");
    }
  }
}

TEST(ThreadPool, ZeroWorkerPoolRunsInlineAndPropagates) {
  util::ThreadPool pool(0);  // batches run inline on the calling thread
  EXPECT_EQ(pool.worker_count(), 0u);
  int ran = 0;
  try {
    pool.parallel_for(6, 0, [&](std::size_t i) {
      ++ran;
      if (i == 2) throw util::Error("inline failure");
    });
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_STREQ(e.what(), "inline failure");
  }
  // Inline execution is sequential: 0..2 ran, the rest were skipped.
  EXPECT_EQ(ran, 3);
}

TEST(ThreadPool, PoolIsReusableAfterAFailedBatch) {
  util::ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.parallel_for(32, 0,
                          [](std::size_t i) {
                            if (i % 2 == 0) throw std::runtime_error("even");
                          }),
        std::runtime_error);
    // The same pool must run a full clean batch right after the failure.
    std::vector<std::atomic<int>> seen(64);
    pool.parallel_for(seen.size(), 0, [&](std::size_t i) {
      seen[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  util::ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, 0, [&](std::size_t) {
    pool.parallel_for(4, 0,
                      [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, SharedPoolIsUsableAndStable) {
  util::ThreadPool& a = util::ThreadPool::shared();
  util::ThreadPool& b = util::ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  std::atomic<int> n{0};
  a.parallel_for(5, 2, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 5);
}

// --- lru cache --------------------------------------------------------------------

TEST(LruCache, ComputesOnceThenHits) {
  util::LruCache<int, int> cache(4);
  int computed = 0;
  bool hit = true;
  EXPECT_EQ(cache.get_or_compute(7, [&] { ++computed; return 70; }, &hit), 70);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.get_or_compute(7, [&] { ++computed; return 70; }, &hit), 70);
  EXPECT_TRUE(hit);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  util::LruCache<int, int> cache(2);
  bool hit = false;
  (void)cache.get_or_compute(1, [] { return 10; }, &hit);
  (void)cache.get_or_compute(2, [] { return 20; }, &hit);
  (void)cache.get_or_compute(1, [] { return 10; }, &hit);  // 1 is now MRU
  (void)cache.get_or_compute(3, [] { return 30; }, &hit);  // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get_or_compute(1, [] { return -1; }, &hit);
  EXPECT_TRUE(hit);  // still cached
  (void)cache.get_or_compute(2, [] { return 21; }, &hit);
  EXPECT_FALSE(hit);  // was evicted
}

TEST(Stopwatch, MeasuresForwardAndRestarts) {
  util::Stopwatch sw;
  const double first = sw.seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(sw.seconds(), first);
  sw.restart();
  EXPECT_LT(sw.seconds(), 60.0);  // sanity: restarted, not epoch-based
}

// --- staged instance builder ------------------------------------------------------

TEST(InstanceBuilder, CachedBuildMatchesColdBitwise) {
  const auto setup = small_setup();
  core::InstanceBuilder warm(setup.design, small_wld());
  const core::Instance first = warm.build(setup.options);
  const core::Instance second = warm.build(setup.options);  // all stages hit

  core::InstanceBuilder cold(setup.design, small_wld());
  const core::Instance fresh = cold.build(setup.options);

  const core::RankResult a = core::dp_rank(first);
  const core::RankResult b = core::dp_rank(second);
  const core::RankResult c = core::dp_rank(fresh);
  expect_identical(a, b);
  expect_identical(a, c);

  const core::BuildProfile prof = warm.profile();
  EXPECT_EQ(prof.builds, 2);
  EXPECT_EQ(prof.coarsen.misses, 1);
  EXPECT_EQ(prof.coarsen.hits, 1);
  EXPECT_EQ(prof.plans.misses, 1);
  EXPECT_EQ(prof.plans.hits, 1);
}

TEST(InstanceBuilder, StagesKeyOnTheFieldsTheyRead) {
  const auto setup = small_setup();
  core::InstanceBuilder builder(setup.design, small_wld());
  (void)builder.build(setup.options);

  // A K change must rebuild only the RC-dependent stages.
  core::RankOptions k_changed = setup.options;
  k_changed.ild_permittivity = 2.7;
  (void)builder.build(k_changed);
  core::BuildProfile prof = builder.profile();
  EXPECT_EQ(prof.coarsen.misses, 1);
  EXPECT_EQ(prof.coarsen.hits, 1);
  EXPECT_EQ(prof.die.misses, 1);
  EXPECT_EQ(prof.die.hits, 1);
  EXPECT_EQ(prof.stack.misses, 2);
  EXPECT_EQ(prof.plans.misses, 2);

  // A C change reuses the stack too; only the plans stage recomputes.
  core::RankOptions c_changed = setup.options;
  c_changed.clock_frequency = 0.9 * units::GHz;
  (void)builder.build(c_changed);
  prof = builder.profile();
  EXPECT_EQ(prof.stack.misses, 2);
  EXPECT_EQ(prof.stack.hits, 1);
  EXPECT_EQ(prof.plans.misses, 3);

  // A bunch-size change re-coarsens (and re-plans), nothing electrical.
  core::RankOptions b_changed = setup.options;
  b_changed.bunch_size = 1000;
  (void)builder.build(b_changed);
  prof = builder.profile();
  EXPECT_EQ(prof.coarsen.misses, 2);
  EXPECT_EQ(prof.stack.misses, 2);
  EXPECT_EQ(prof.plans.misses, 4);
  EXPECT_EQ(prof.builds, 4);
}

TEST(InstanceBuilder, ValidatesLikeBuildInstance) {
  const auto setup = small_setup();
  EXPECT_THROW(core::InstanceBuilder(setup.design, wld::Wld{}),
               iarank::util::Error);

  core::DesignSpec bad = setup.design;
  bad.gate_count = 0;
  EXPECT_THROW(core::InstanceBuilder(bad, small_wld()), iarank::util::Error);

  core::InstanceBuilder builder(setup.design, small_wld());
  core::RankOptions bad_options = setup.options;
  bad_options.ild_permittivity = -1.0;
  EXPECT_THROW((void)builder.build(bad_options), iarank::util::Error);
}

// --- sweep determinism ------------------------------------------------------------

TEST(SweepEngine, ThreadCountDoesNotChangeResults) {
  const auto setup = small_setup();
  const std::vector<double> k_values = {3.9, 3.3, 2.7, 2.1};
  const auto one =
      core::sweep_parameter(setup.design, setup.options, small_wld(),
                            core::SweepParameter::kIldPermittivity, k_values, 1);
  const auto four =
      core::sweep_parameter(setup.design, setup.options, small_wld(),
                            core::SweepParameter::kIldPermittivity, k_values, 4);
  const auto eight =
      core::sweep_parameter(setup.design, setup.options, small_wld(),
                            core::SweepParameter::kIldPermittivity, k_values, 8);
  expect_identical(one, four);
  expect_identical(one, eight);
  EXPECT_EQ(four.profile.dp_arena_nodes, one.profile.dp_arena_nodes);
  EXPECT_EQ(four.profile.dp_heap_pops, one.profile.dp_heap_pops);
}

TEST(SweepEngine, CachedSweepsMatchColdOnAllTable4Columns) {
  const auto setup = small_setup();
  const struct {
    core::SweepParameter parameter;
    std::vector<double> values;
  } columns[] = {
      {core::SweepParameter::kIldPermittivity, core::table4_k_values()},
      {core::SweepParameter::kMillerFactor, core::table4_m_values()},
      {core::SweepParameter::kClockFrequency, core::table4_c_values()},
      {core::SweepParameter::kRepeaterFraction, core::table4_r_values()},
  };

  core::InstanceBuilder shared(setup.design, small_wld());
  for (const auto& column : columns) {
    const auto cold =
        core::sweep_parameter(setup.design, setup.options, small_wld(),
                              column.parameter, column.values, 1);
    const auto warm1 = core::sweep_parameter(shared, setup.options,
                                             column.parameter, column.values, 1);
    // Second pass over the same grid: every stage is a cache hit.
    const auto warm2 = core::sweep_parameter(shared, setup.options,
                                             column.parameter, column.values, 1);
    expect_identical(cold, warm1);
    expect_identical(cold, warm2);
    EXPECT_EQ(warm2.profile.build.coarsen.misses, 0);
    EXPECT_EQ(warm2.profile.build.die.misses, 0);
    EXPECT_EQ(warm2.profile.build.stack.misses, 0);
    EXPECT_EQ(warm2.profile.build.plans.misses, 0);
    EXPECT_EQ(warm2.profile.build.builds,
              static_cast<std::int64_t>(column.values.size()));
  }
}

TEST(SweepEngine, ProfileCountsStagesAndDpEffort) {
  const auto setup = small_setup();
  const std::vector<double> k_values = {3.9, 3.5, 3.1};
  const auto sweep =
      core::sweep_parameter(setup.design, setup.options, small_wld(),
                            core::SweepParameter::kIldPermittivity, k_values, 1);
  const core::SweepProfile& prof = sweep.profile;
  EXPECT_EQ(prof.build.builds, 3);
  // K only perturbs the electrical stages: coarsening and die sizing are
  // computed once and hit twice.
  EXPECT_EQ(prof.build.coarsen.misses, 1);
  EXPECT_EQ(prof.build.coarsen.hits, 2);
  EXPECT_EQ(prof.build.die.misses, 1);
  EXPECT_EQ(prof.build.die.hits, 2);
  EXPECT_EQ(prof.build.stack.misses, 3);
  EXPECT_EQ(prof.build.plans.misses, 3);
  EXPECT_GT(prof.dp_arena_nodes, 0);
  EXPECT_GT(prof.dp_heap_pops, 0);
  EXPECT_GT(prof.dp_verify_calls, 0);
  EXPECT_GE(prof.dp_max_frontier, 1);
  EXPECT_GE(prof.total_seconds, 0.0);
  EXPECT_EQ(prof.threads, 1u);

  // Per-point DP stats are also surfaced on each result.
  for (const auto& p : sweep.points) {
    EXPECT_GT(p.result.dp.arena_nodes, 0);
    EXPECT_GE(p.result.dp.seconds, 0.0);
  }
}

// --- value_reaching_rank: all four sweep shapes -----------------------------------

TEST(ValueReachingRank, IncreasingSweepInterpolatesFirstCrossing) {
  const auto sweep =
      synthetic_sweep({3.9, 3.4, 2.9}, {0.40, 0.50, 0.60});
  EXPECT_NEAR(core::value_reaching_rank(sweep, 0.45), 3.65, 1e-12);
  EXPECT_NEAR(core::value_reaching_rank(sweep, 0.55), 3.15, 1e-12);
  // Already met at the first point: no extrapolation beyond the grid.
  EXPECT_EQ(core::value_reaching_rank(sweep, 0.40), 3.9);
  EXPECT_TRUE(std::isnan(core::value_reaching_rank(sweep, 0.9)));
}

TEST(ValueReachingRank, DecreasingSweepFindsEndOfMetPrefix) {
  // C-shaped: values ascend, rank declines. The met region is a prefix.
  const auto sweep =
      synthetic_sweep({1.0, 2.0, 3.0, 4.0}, {0.50, 0.40, 0.20, 0.10});
  // Crossing 0.30 sits halfway between the 2.0 and 3.0 points. The old
  // code returned points[0].value (1.0) for every reachable target.
  EXPECT_NEAR(core::value_reaching_rank(sweep, 0.30), 2.5, 1e-12);
  EXPECT_NEAR(core::value_reaching_rank(sweep, 0.45), 1.5, 1e-12);
  // Every point meets a low-enough target: the whole grid qualifies and
  // the largest swept value is the answer.
  EXPECT_EQ(core::value_reaching_rank(sweep, 0.05), 4.0);
  // Target above the best point: unreachable.
  EXPECT_TRUE(std::isnan(core::value_reaching_rank(sweep, 0.60)));
}

TEST(ValueReachingRank, FlatSweepReturnsFirstValue) {
  const auto sweep = synthetic_sweep({1.0, 2.0, 3.0}, {0.30, 0.30, 0.30});
  EXPECT_EQ(core::value_reaching_rank(sweep, 0.30), 1.0);
  EXPECT_TRUE(std::isnan(core::value_reaching_rank(sweep, 0.31)));
}

TEST(ValueReachingRank, EmptySweepIsNaN) {
  core::SweepResult sweep;
  EXPECT_TRUE(std::isnan(core::value_reaching_rank(sweep, 0.1)));
}
