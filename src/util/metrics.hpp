/// \file metrics.hpp
/// \brief Process-wide registry of named counters, gauges and fixed-bucket
///        histograms, exported as Prometheus text or JSON.
///
/// Naming convention: `iarank_<module>_<name>` with Prometheus suffixes
/// (`_total` for counters, `_seconds` for duration histograms). Metrics
/// are registered once — typically as a namespace-scope reference in the
/// instrumented .cpp:
///
/// \code
///   util::Counter& kDpHeapPops =
///       util::MetricsRegistry::counter("iarank_dp_heap_pops_total");
///   ...
///   kDpHeapPops.inc(stats.heap_pops);
/// \endcode
///
/// Namespace-scope registration means every metric a binary links in
/// appears in the export (at zero) even when its path never ran — scrape
/// consumers see a stable schema, not a run-dependent one.
///
/// Cost model: metrics are always on. An increment is one relaxed atomic
/// add; a histogram observation is a bucket scan (~16 comparisons) plus
/// three relaxed atomic updates. There is no registry lookup on the hot
/// path — call sites hold direct references. Counter values that count
/// deterministic work (cache hits, DP cells, free-pack takes) are
/// identical across thread counts; durations and queue depths are not.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace iarank::util {

/// Monotonically increasing count. Relaxed increments: totals are exact,
/// cross-metric ordering is not promised.
class Counter {
 public:
  void inc(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Instantaneous integer level (queue depth, high-water marks).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Raises the gauge to `v` when larger (high-water mark semantics).
  void set_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over doubles. Buckets are cumulative-le in the
/// Prometheus sense; quantiles are interpolated within the landing
/// bucket, `max()` is exact.
class Histogram {
 public:
  /// `bounds` are the ascending upper bounds; one overflow bucket is
  /// added on top.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double max() const;

  /// Interpolated quantile, q in [0, 1]; 0 when empty. Bounded above by
  /// `max()` so the overflow bucket cannot report +inf.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts, overflow bucket last.
  [[nodiscard]] std::vector<std::int64_t> bucket_counts() const;

  void reset();

  /// The default duration bucket ladder: 1 us to ~100 s, multiplicative
  /// steps of ~3.2 (two per decade) — 16 bounds.
  [[nodiscard]] static std::vector<double> duration_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// The process-wide registry. Thread-safe; metrics live forever once
/// registered (references never dangle).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Returns the metric named `name`, creating it on first call. A name
  /// registered as one kind must not be re-requested as another (throws
  /// util::Error, kInternal).
  static Counter& counter(std::string_view name, std::string_view help = "");
  static Gauge& gauge(std::string_view name, std::string_view help = "");
  static Histogram& histogram(std::string_view name,
                              std::vector<double> bounds,
                              std::string_view help = "");

  /// Prometheus text exposition format (counters as `counter`, gauges as
  /// `gauge`, histograms as `histogram` with `_bucket`/`_sum`/`_count`).
  void write_prometheus(std::ostream& os) const;

  /// One flat JSON object; histograms expand to nested objects.
  void write_json(std::ostream& os) const;

  /// Writes through util::atomic_write_file. A path ending in ".json"
  /// gets JSON, anything else the Prometheus text format.
  void save(const std::string& path) const;

  /// Counter and gauge values by name — the diffable view the
  /// determinism tests use.
  [[nodiscard]] std::map<std::string, std::int64_t> snapshot_values() const;

  /// Zeroes every registered metric (tests and long-lived embedders).
  void reset_all();

 private:
  MetricsRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  /// Heap-allocated and never freed: references handed to call sites must
  /// stay valid for the life of the process regardless of later
  /// registrations.
  struct Entry {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    Counter counter;                       ///< used when kind == kCounter
    Gauge gauge;                           ///< used when kind == kGauge
    std::unique_ptr<Histogram> histogram;  ///< used when kind == kHistogram
  };

  Entry& find_or_create(std::string_view name, std::string_view help,
                        Kind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
};

/// Exact order statistics of a sample set (harness per-seed timing
/// reports). Unlike Histogram::quantile these are not interpolated —
/// p50/p95 are the nearest-rank samples. All zero when `samples` is
/// empty.
struct TimingSummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

[[nodiscard]] TimingSummary summarize_timings(std::vector<double> samples);

/// RAII duration recorder: adds the elapsed seconds into `*sink` (when
/// non-null) and observes them into `*histogram` (when non-null) at scope
/// exit. The shared plumbing behind every `*_seconds` profile field.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink, Histogram* histogram = nullptr);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction, without stopping.
  [[nodiscard]] double seconds() const;

 private:
  double* sink_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace iarank::util
