/// \file small_vec.hpp
/// \brief Small-buffer vector for trivially-copyable elements.
///
/// `SmallVec<T, N>` stores up to N elements inline and spills to the heap
/// beyond that. The DP witness (`DpWitness::chunk_first`, one entry per
/// layer-pair in the prefix) rides in every RankResult and is copied into
/// and out of the sweep engine's warm-start slot on every point; with the
/// paper-scale stacks (<= 14 pairs) the inline buffer makes those copies
/// allocation-free, which the steady-state zero-allocation contract
/// (DESIGN.md Section 10.6) depends on.

#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>

namespace iarank::util {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(N >= 1);

 public:
  SmallVec() = default;

  SmallVec(const SmallVec& other) { assign_raw(other.data(), other.size_); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign_raw(other.data(), other.size_);
    return *this;
  }

  SmallVec(SmallVec&& other) noexcept {
    steal(other);
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      if (heap_ != nullptr) std::free(heap_);
      heap_ = nullptr;
      cap_ = N;
      steal(other);
    }
    return *this;
  }

  ~SmallVec() {
    if (heap_ != nullptr) std::free(heap_);
  }

  void assign(std::size_t n, const T& value) {
    reserve(n);
    T* d = data();
    for (std::size_t i = 0; i < n; ++i) d[i] = value;
    size_ = n;
  }

  void resize(std::size_t n) {
    reserve(n);
    T* d = data();
    for (std::size_t i = size_; i < n; ++i) d[i] = T{};
    size_ = n;
  }

  void reserve(std::size_t n) {
    if (n <= cap_) return;
    std::size_t want = cap_ * 2;
    if (want < n) want = n;
    T* fresh = static_cast<T*>(std::malloc(want * sizeof(T)));
    if (fresh == nullptr) throw std::bad_alloc();
    if (size_ > 0) std::memcpy(fresh, data(), size_ * sizeof(T));
    if (heap_ != nullptr) std::free(heap_);
    heap_ = fresh;
    cap_ = want;
  }

  void push_back(const T& v) {
    if (size_ == cap_) reserve(size_ + 1);
    data()[size_++] = v;
  }

  void clear() { size_ = 0; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* data() { return heap_ != nullptr ? heap_ : inline_; }
  [[nodiscard]] const T* data() const {
    return heap_ != nullptr ? heap_ : inline_;
  }
  [[nodiscard]] T& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] T& front() { return data()[0]; }
  [[nodiscard]] const T& front() const { return data()[0]; }
  [[nodiscard]] T& back() { return data()[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data()[size_ - 1]; }
  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    const T* pa = a.data();
    const T* pb = b.data();
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(pa[i] == pb[i])) return false;
    }
    return true;
  }

 private:
  void assign_raw(const T* src, std::size_t n) {
    reserve(n);
    if (n > 0) std::memcpy(data(), src, n * sizeof(T));
    size_ = n;
  }

  void steal(SmallVec& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = N;
      other.size_ = 0;
    } else {
      if (other.size_ > 0) {
        std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      }
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  T inline_[N] = {};
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace iarank::util
