/// \file units.hpp
/// \brief SI unit helpers and physical constants used throughout iarank.
///
/// All quantities in the library are stored in base SI units (metres, seconds,
/// ohms, farads, square metres). These helpers make call sites read like the
/// paper: `130 * units::nm`, `500 * units::MHz`.

#pragma once

namespace iarank::util::units {

// --- Length -----------------------------------------------------------------
inline constexpr double m = 1.0;          ///< metre
inline constexpr double cm = 1e-2;        ///< centimetre
inline constexpr double mm = 1e-3;        ///< millimetre
inline constexpr double um = 1e-6;        ///< micrometre
inline constexpr double nm = 1e-9;        ///< nanometre

// --- Area --------------------------------------------------------------------
inline constexpr double m2 = 1.0;         ///< square metre
inline constexpr double mm2 = 1e-6;       ///< square millimetre
inline constexpr double um2 = 1e-12;      ///< square micrometre

// --- Time / frequency ---------------------------------------------------------
inline constexpr double s = 1.0;          ///< second
inline constexpr double ms = 1e-3;        ///< millisecond
inline constexpr double us = 1e-6;        ///< microsecond
inline constexpr double ns = 1e-9;        ///< nanosecond
inline constexpr double ps = 1e-12;       ///< picosecond
inline constexpr double Hz = 1.0;         ///< hertz
inline constexpr double kHz = 1e3;        ///< kilohertz
inline constexpr double MHz = 1e6;        ///< megahertz
inline constexpr double GHz = 1e9;        ///< gigahertz

// --- Electrical ----------------------------------------------------------------
inline constexpr double ohm = 1.0;        ///< ohm
inline constexpr double kohm = 1e3;       ///< kiloohm
inline constexpr double F = 1.0;          ///< farad
inline constexpr double pF = 1e-12;       ///< picofarad
inline constexpr double fF = 1e-15;       ///< femtofarad

// --- Physical constants ----------------------------------------------------------
/// Vacuum permittivity [F/m].
inline constexpr double eps0 = 8.854187817e-12;
/// Resistivity of bulk copper at room temperature [ohm * m].
inline constexpr double rho_copper = 2.2e-8;
/// Resistivity of aluminum interconnect at room temperature [ohm * m].
inline constexpr double rho_aluminum = 3.3e-8;

}  // namespace iarank::util::units
