/// \file trace.hpp
/// \brief Span-based tracing with Chrome-trace-event (Perfetto) export —
///        one relaxed atomic load when disabled.
///
/// The DP, the staged builder and the sweep drivers are observed through
/// RAII spans:
///
/// \code
///   void dp_rank(...) {
///     TRACE_SPAN("dp_rank");          // nested spans nest in the export
///     ...
///   }
/// \endcode
///
/// Cost model (same discipline as util::FaultInjector): when tracing is
/// disabled — the default — constructing a span is a single relaxed
/// atomic load and a predictable branch; nothing is allocated, locked or
/// timestamped, so instrumented hot paths pay (near) zero. When enabled,
/// each span records a begin and an end event into a per-thread buffer
/// (one uncontended mutex acquisition per event; the mutex exists only so
/// export can run while pool workers are mid-span).
///
/// Export: `Trace::save_chrome_json` writes the Chrome trace-event JSON
/// array format (`{"traceEvents":[...]}`) that chrome://tracing and
/// Perfetto load directly. `Trace::summary()` folds the same events into
/// an aggregated call tree (count / total / self time per span path) —
/// the `rank_tool trace` report.
///
/// Span names must be string literals (or otherwise outlive the capture):
/// the buffer stores the pointer, never a copy.

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace iarank::util {

class Trace {
 public:
  /// One raw trace event. `begin` events open a span on their thread's
  /// stack; the matching end event closes it (strictly nested per thread,
  /// guaranteed by the RAII recorder).
  struct Event {
    const char* name = nullptr;  ///< static string; null for end events
    std::int64_t ts_ns = 0;      ///< steady-clock nanoseconds since enable()
    bool begin = false;
  };

  /// Aggregated call-tree node: every occurrence of a span name at the
  /// same stack path, merged across threads.
  struct SummaryNode {
    std::string name;
    std::int64_t count = 0;
    std::int64_t total_ns = 0;  ///< inclusive wall time
    std::int64_t self_ns = 0;   ///< total minus traced children
    std::vector<SummaryNode> children;  ///< ordered by first appearance
  };

  /// Hot-path gate; the only cost tracing adds while disabled.
  [[nodiscard]] static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Starts a fresh capture: clears every thread's buffer and re-zeroes
  /// the timebase. Idempotent while already enabled (re-clears).
  static void enable();

  /// Stops recording. Spans already open still record their end event so
  /// every begin stays matched. Buffers are kept for export.
  static void disable();

  /// Events recorded so far, grouped per thread (index = stable small
  /// thread id, assigned in first-use order). Thread-safe.
  [[nodiscard]] static std::vector<std::vector<Event>> snapshot();

  /// Chrome trace-event JSON: `{"traceEvents":[...]}`, one event per
  /// line, "B"/"E" phases, ts in microseconds, pid 1, tid = stable id.
  static void write_chrome_json(std::ostream& os);

  /// write_chrome_json through util::atomic_write_file.
  static void save_chrome_json(const std::string& path);

  /// The aggregated call tree (top-level spans as roots), merged across
  /// threads by span-name path.
  [[nodiscard]] static std::vector<SummaryNode> summary();

  /// Renders `summary()` as an indented table (name, count, total ms,
  /// self ms) — what `rank_tool trace` prints.
  [[nodiscard]] static std::string summary_report();

  /// Called by TraceSpan only, and only while a capture is (or was at
  /// span entry) enabled.
  static void record(const char* name, bool begin);

 private:
  static std::atomic<bool>& enabled_flag();
};

/// RAII span recorder. Decides at construction whether this span records
/// (tracing enabled at entry); the end event is then recorded even if
/// tracing is disabled mid-span, so begins and ends always match.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Trace::enabled()) [[unlikely]] {
      name_ = name;
      Trace::record(name, /*begin=*/true);
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) [[unlikely]] {
      Trace::record(name_, /*begin=*/false);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< null when this span does not record
};

}  // namespace iarank::util

// TRACE_SPAN("name"): opens a span covering the rest of the enclosing
// scope. Needs a unique variable name per line to allow several spans in
// one scope.
#define IARANK_TRACE_CONCAT2(a, b) a##b
#define IARANK_TRACE_CONCAT(a, b) IARANK_TRACE_CONCAT2(a, b)
#define TRACE_SPAN(name) \
  const ::iarank::util::TraceSpan IARANK_TRACE_CONCAT( \
      iarank_trace_span_, __LINE__)(name)
