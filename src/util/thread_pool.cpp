#include "src/util/thread_pool.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <memory>

#include "src/util/metrics.hpp"

namespace iarank::util {

namespace {

// Pool observability: depth of the shared queue, tasks executed, and the
// wall time of each executed task (a task here is one batch-drain helper,
// not one index). Durations and depths are scheduling-dependent; only
// the batch counter is deterministic.
Counter& kPoolTasks = MetricsRegistry::counter(
    "iarank_pool_tasks_total", "tasks executed by pool workers");
Counter& kPoolBatches = MetricsRegistry::counter(
    "iarank_pool_batches_total", "parallel_for batches dispatched");
Gauge& kPoolQueueDepth = MetricsRegistry::gauge(
    "iarank_pool_queue_depth", "tasks waiting in the shared pool queue");
Histogram& kPoolTaskSeconds = MetricsRegistry::histogram(
    "iarank_pool_task_seconds", Histogram::duration_bounds(),
    "wall time of executed pool tasks");

/// Shared state of one parallel_for batch. Helper tasks enqueued on the
/// pool and the calling thread all claim indices from the same counter.
/// The batch is complete when no index is claimable and none is running —
/// helpers that start late (or never) find the counter exhausted and
/// return immediately, so the caller never depends on a helper actually
/// running. Kept alive by shared_ptr until the last late helper fires.
struct Batch {
  std::size_t n = 0;
  std::size_t grain = 1;  ///< indices claimed per counter bump
  std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  std::mutex mutex;
  std::condition_variable done;
  std::size_t running = 0;  ///< claimed blocks still executing (guarded)
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();

  void drain() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t first =
          next.fetch_add(grain, std::memory_order_relaxed);
      if (first >= n) return;
      const std::size_t last = std::min(first + grain, n);
      {
        const std::scoped_lock lock(mutex);
        ++running;
      }
      std::exception_ptr thrown;
      std::size_t thrown_index = 0;
      for (std::size_t i = first; i < last; ++i) {
        if (failed.load(std::memory_order_relaxed)) break;
        try {
          fn(i);
        } catch (...) {
          thrown = std::current_exception();
          thrown_index = i;
          break;  // rest of this block counts as skipped
        }
      }
      {
        const std::scoped_lock lock(mutex);
        --running;
        if (thrown) {
          failed.store(true, std::memory_order_relaxed);
          if (thrown_index < error_index) {
            error_index = thrown_index;
            error = thrown;
          }
        }
      }
      done.notify_all();
    }
  }

  /// Caller must hold `mutex`.
  [[nodiscard]] bool complete() const {
    return running == 0 &&
           (failed.load(std::memory_order_relaxed) ||
            next.load(std::memory_order_relaxed) >= n);
  }
};

}  // namespace

ThreadPool::ThreadPool(unsigned workers) : creator_pid_(::getpid()) {
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      kPoolQueueDepth.set(static_cast<std::int64_t>(queue_.size()));
    }
    kPoolTasks.inc();
    const ScopedTimer timer(nullptr, &kPoolTaskSeconds);
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, unsigned parallelism,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(n, parallelism, 1, fn);
}

void ThreadPool::parallel_for(std::size_t n, unsigned parallelism,
                              std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  if (::getpid() != creator_pid_) {
    // Forked child: the worker threads did not survive fork, and mutex_ may
    // have been held by one of them at fork time. Run inline without ever
    // touching the pool's shared state.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const unsigned capacity = worker_count() + 1;  // workers + calling thread
  unsigned p = parallelism == 0 ? capacity : std::min(parallelism, capacity);
  const std::size_t blocks = (n + grain - 1) / grain;
  p = static_cast<unsigned>(std::min<std::size_t>(p, blocks));
  if (p <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->grain = grain;
  batch->fn = fn;
  kPoolBatches.inc();
  {
    const std::scoped_lock lock(mutex_);
    for (unsigned h = 0; h + 1 < p; ++h) {
      queue_.emplace_back([batch] { batch->drain(); });
    }
    kPoolQueueDepth.set(static_cast<std::int64_t>(queue_.size()));
  }
  work_ready_.notify_all();

  batch->drain();  // the calling thread always participates
  {
    std::unique_lock lock(batch->mutex);
    batch->done.wait(lock, [&batch] { return batch->complete(); });
    if (batch->error) std::rethrow_exception(batch->error);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()) - 1);
  return pool;
}

}  // namespace iarank::util
