#include "src/util/lease_queue.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/util/atomic_file.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"
#include "src/util/metrics.hpp"
#include "src/util/strings.hpp"

namespace iarank::util {

namespace {

// Lease lifecycle observability (per process — each explore worker exports
// its own registry snapshot, so these read as per-worker in the run's
// metrics directory).
Counter& kLeasesClaimed = MetricsRegistry::counter(
    "iarank_explore_leases_claimed_total", "work-queue chunk leases claimed");
Counter& kLeasesExpired = MetricsRegistry::counter(
    "iarank_explore_leases_expired_total",
    "expired leases reclaimed from dead or stalled workers");
Counter& kLeasesStolen = MetricsRegistry::counter(
    "iarank_explore_leases_stolen_total",
    "lease ranges split by work-stealing");

const FaultSite kSiteAcquire{"util.lease.acquire"};
const FaultSite kSiteRenew{"util.lease.renew"};

/// Monotonic milliseconds; CLOCK_MONOTONIC is system-wide on Linux, so
/// heartbeats stamped by different processes are comparable.
std::int64_t now_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1000000;
}

/// Blocking flock on <dir>/queue.lock, released by destruction (or by the
/// kernel when the holder dies). The lockfile is never unlinked, so no
/// inode-identity loop is needed (unlike the server's socket lock).
class DirLock {
 public:
  explicit DirLock(const std::string& dir) {
    const std::string path = dir + "/queue.lock";
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0600);
    require_io(fd_ >= 0, "LeaseQueue: cannot open lockfile '" + path +
                             "': " + std::strerror(errno));
    int rc;
    do {
      rc = ::flock(fd_, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw Error("LeaseQueue: flock('" + path +
                      "') failed: " + std::strerror(err),
                  ErrorCategory::kIo);
    }
  }
  ~DirLock() {
    if (fd_ >= 0) ::close(fd_);  // closing releases the flock
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

 private:
  int fd_ = -1;
};

/// Parsed view of one chunk file. A freshly renamed lease that its claimer
/// died before rewriting still has todo-shaped content (3 fields);
/// `stamped` distinguishes the two shapes.
struct ChunkFile {
  LeaseChunk chunk;
  bool stamped = false;        ///< 6-field lease content
  std::string worker;          ///< empty unless stamped
  std::int64_t heartbeat_ms = 0;
  std::int64_t progress = 0;
};

bool parse_i64(std::string_view text, std::int64_t& out) {
  errno = 0;
  char* end = nullptr;
  const std::string copy(text);
  const long long v = std::strtoll(copy.c_str(), &end, 10);
  if (errno != 0 || end != copy.c_str() + copy.size() || copy.empty()) {
    return false;
  }
  out = v;
  return true;
}

bool parse_chunk_file(const std::string& path, ChunkFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::istringstream tokens(buf.str());
  std::vector<std::string> fields;
  std::string field;
  while (tokens >> field) fields.push_back(field);
  if (fields.size() != 3 && fields.size() != 6) return false;
  std::int64_t attempts = 0;
  if (!parse_i64(fields[0], out.chunk.lo) ||
      !parse_i64(fields[1], out.chunk.hi) || !parse_i64(fields[2], attempts)) {
    return false;
  }
  out.chunk.attempts = static_cast<int>(attempts);
  out.stamped = fields.size() == 6;
  if (out.stamped) {
    out.worker = fields[3];
    if (!parse_i64(fields[4], out.heartbeat_ms) ||
        !parse_i64(fields[5], out.progress)) {
      return false;
    }
  } else {
    out.heartbeat_ms = 0;
    out.progress = out.chunk.lo;
  }
  return true;
}

std::string todo_content(std::int64_t lo, std::int64_t hi, int attempts) {
  std::ostringstream os;
  os << lo << " " << hi << " " << attempts << "\n";
  return os.str();
}

std::string lease_content(const ChunkFile& f) {
  std::ostringstream os;
  os << f.chunk.lo << " " << f.chunk.hi << " " << f.chunk.attempts << " "
     << f.worker << " " << f.heartbeat_ms << " " << f.progress << "\n";
  return os.str();
}

/// Chunk ids (== lo bounds) of every file named `<prefix><id>` in `dir`,
/// sorted ascending for deterministic claim order.
std::vector<std::int64_t> list_ids(const std::string& dir,
                                   std::string_view prefix) {
  std::vector<std::int64_t> ids;
  DIR* d = ::opendir(dir.c_str());
  require_io(d != nullptr, "LeaseQueue: cannot list '" + dir +
                               "': " + std::strerror(errno));
  while (const dirent* entry = ::readdir(d)) {
    const std::string_view name(entry->d_name);
    if (!starts_with(name, prefix)) continue;
    std::int64_t id = 0;
    if (parse_i64(name.substr(prefix.size()), id)) ids.push_back(id);
  }
  ::closedir(d);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

LeaseQueue::LeaseQueue(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw Error("LeaseQueue: cannot create '" + dir_ +
                    "': " + std::strerror(errno),
                ErrorCategory::kIo);
  }
  const DirLock lock(dir_);  // creates the lockfile eagerly
}

void LeaseQueue::clear() {
  const DirLock lock(dir_);
  for (const std::int64_t id : list_ids(dir_, "todo-")) {
    (void)::unlink((dir_ + "/todo-" + std::to_string(id)).c_str());
  }
  for (const std::int64_t id : list_ids(dir_, "lease-")) {
    (void)::unlink((dir_ + "/lease-" + std::to_string(id)).c_str());
  }
}

void LeaseQueue::enqueue(std::int64_t lo, std::int64_t hi, int attempts) {
  if (lo >= hi) return;
  const DirLock lock(dir_);
  atomic_write_file(dir_ + "/todo-" + std::to_string(lo),
                    todo_content(lo, hi, attempts));
}

std::optional<LeaseChunk> LeaseQueue::claim(const std::string& worker) {
  maybe_inject(kSiteAcquire);
  const DirLock lock(dir_);
  const std::vector<std::int64_t> todos = list_ids(dir_, "todo-");
  if (todos.empty()) return std::nullopt;
  const std::int64_t id = todos.front();
  const std::string todo_path = dir_ + "/todo-" + std::to_string(id);
  const std::string lease_path = dir_ + "/lease-" + std::to_string(id);

  ChunkFile f;
  require_io(parse_chunk_file(todo_path, f) && !f.stamped,
             "LeaseQueue: unreadable chunk file '" + todo_path + "'");
  require_io(::rename(todo_path.c_str(), lease_path.c_str()) == 0,
             "LeaseQueue: claim rename failed for '" + todo_path +
                 "': " + std::strerror(errno));
  f.stamped = true;
  f.worker = worker;
  f.heartbeat_ms = now_ms();
  f.progress = f.chunk.lo;
  atomic_write_file(lease_path, lease_content(f));
  kLeasesClaimed.inc();
  return f.chunk;
}

std::optional<std::int64_t> LeaseQueue::renew(const LeaseChunk& chunk,
                                              const std::string& worker,
                                              std::int64_t progress) {
  maybe_inject(kSiteRenew);
  const DirLock lock(dir_);
  const std::string path = dir_ + "/lease-" + std::to_string(chunk.lo);
  ChunkFile f;
  if (!parse_chunk_file(path, f) || !f.stamped || f.worker != worker) {
    return std::nullopt;  // reclaimed (and possibly re-owned) — abandon
  }
  f.heartbeat_ms = now_ms();
  f.progress = std::min(std::max(progress, f.chunk.lo), f.chunk.hi);
  atomic_write_file(path, lease_content(f));
  return f.chunk.hi;
}

void LeaseQueue::complete(const LeaseChunk& chunk, const std::string& worker) {
  const DirLock lock(dir_);
  const std::string path = dir_ + "/lease-" + std::to_string(chunk.lo);
  ChunkFile f;
  if (!parse_chunk_file(path, f) || !f.stamped || f.worker != worker) {
    return;  // reclaimed from under us; the new owner's copy wins
  }
  (void)::unlink(path.c_str());
}

bool LeaseQueue::steal(const std::string& thief) {
  const DirLock lock(dir_);
  ChunkFile best;
  std::int64_t best_remaining = 0;
  for (const std::int64_t id : list_ids(dir_, "lease-")) {
    const std::string path = dir_ + "/lease-" + std::to_string(id);
    ChunkFile f;
    if (!parse_chunk_file(path, f) || !f.stamped || f.worker == thief) {
      continue;  // torn claims are reclaim's job, not steal's
    }
    const std::int64_t remaining = f.chunk.hi - f.progress;
    if (remaining > best_remaining) {
      best_remaining = remaining;
      best = f;
    }
  }
  if (best_remaining < 2 * options_.min_steal_points) return false;

  const std::int64_t mid = best.progress + best_remaining / 2;
  // Order matters for crash-consistency: shrink the victim before the new
  // todo exists and a coordinator crash in between would lose [mid, hi)
  // until the victim's lease expired — writing the todo first only risks a
  // transient overlap, which journal dedup absorbs.
  atomic_write_file(dir_ + "/todo-" + std::to_string(mid),
                    todo_content(mid, best.chunk.hi, best.chunk.attempts));
  best.chunk.hi = mid;
  atomic_write_file(dir_ + "/lease-" + std::to_string(best.chunk.lo),
                    lease_content(best));
  kLeasesStolen.inc();
  return true;
}

std::vector<LeaseQueue::Reclaimed> LeaseQueue::reclaim_expired() {
  const DirLock lock(dir_);
  std::vector<Reclaimed> out;
  const std::int64_t now = now_ms();
  const std::int64_t ttl_ms =
      static_cast<std::int64_t>(options_.lease_ttl_seconds * 1000.0);
  for (const std::int64_t id : list_ids(dir_, "lease-")) {
    const std::string path = dir_ + "/lease-" + std::to_string(id);
    ChunkFile f;
    if (!parse_chunk_file(path, f)) continue;
    const bool torn_claim = !f.stamped;
    // A heartbeat in the future means CLOCK_MONOTONIC restarted under the
    // lease (reboot mid-run): its worker is gone, and waiting for `now` to
    // catch up could stall for the machine's whole previous uptime.
    const bool from_before_reboot = f.heartbeat_ms > now;
    if (!torn_claim && !from_before_reboot && now - f.heartbeat_ms <= ttl_ms) {
      continue;
    }

    Reclaimed r;
    r.worker = f.worker;
    r.taken_lo = f.chunk.lo;
    r.chunk.lo = f.progress;
    r.chunk.hi = f.chunk.hi;
    r.chunk.attempts = f.chunk.attempts + 1;
    if (r.chunk.lo < r.chunk.hi) {
      // Requeue before unlinking: a crash in between leaves an overlap
      // (requeued todo + dead lease), which a later reclaim collapses and
      // journal dedup absorbs — never a lost range.
      atomic_write_file(
          dir_ + "/todo-" + std::to_string(r.chunk.lo),
          todo_content(r.chunk.lo, r.chunk.hi, r.chunk.attempts));
    }
    (void)::unlink(path.c_str());
    kLeasesExpired.inc();
    out.push_back(std::move(r));
  }
  return out;
}

bool LeaseQueue::idle() {
  const DirLock lock(dir_);
  return list_ids(dir_, "todo-").empty() && list_ids(dir_, "lease-").empty();
}

LeaseQueue::Snapshot LeaseQueue::snapshot() {
  const DirLock lock(dir_);
  Snapshot out;
  for (const std::int64_t id : list_ids(dir_, "todo-")) {
    ChunkFile f;
    if (parse_chunk_file(dir_ + "/todo-" + std::to_string(id), f)) {
      out.todos.push_back(f.chunk);
    }
  }
  for (const std::int64_t id : list_ids(dir_, "lease-")) {
    ChunkFile f;
    if (!parse_chunk_file(dir_ + "/lease-" + std::to_string(id), f)) continue;
    LeaseView view;
    view.chunk = f.chunk;
    view.worker = f.worker;  // "" for a torn claim
    view.heartbeat_ms = f.heartbeat_ms;
    view.progress = f.progress;
    out.leases.push_back(std::move(view));
  }
  return out;
}

std::size_t LeaseQueue::todo_count() {
  const DirLock lock(dir_);
  return list_ids(dir_, "todo-").size();
}

}  // namespace iarank::util
