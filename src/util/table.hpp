/// \file table.hpp
/// \brief Plain-text and CSV table rendering for benches and examples.
///
/// The paper's evaluation is a set of tables; every bench binary uses
/// TextTable to print its reproduction in a stable, diff-friendly format.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace iarank::util {

/// Column-aligned plain-text table with an optional title. All cells are
/// strings; numeric helpers format with a fixed precision so bench output
/// is reproducible.
class TextTable {
 public:
  explicit TextTable(std::string title = {});

  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; its size must match the header (if one is set) or
  /// the first row otherwise.
  void add_row(std::vector<std::string> row);

  /// Formats a double with `precision` digits after the decimal point.
  [[nodiscard]] static std::string num(double value, int precision = 6);

  /// Formats a double in scientific notation with `precision` digits.
  [[nodiscard]] static std::string sci(double value, int precision = 2);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders the table (title, header, separator, rows) to `os`.
  void print(std::ostream& os) const;

  /// Renders as CSV (header first when present), suitable for plotting.
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace iarank::util
