/// \file error.hpp
/// \brief Error type and precondition checks for the iarank library.

#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace iarank::util {

/// Exception thrown for all iarank domain errors (bad parameters,
/// inconsistent models, malformed input files).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// Throws util::Error with a message that includes the failing call site
/// when `condition` is false. Use for validating user-supplied parameters.
inline void require(bool condition, std::string_view message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw Error(std::string(message) + " [" + loc.file_name() + ":" +
                std::to_string(loc.line()) + "]");
  }
}

}  // namespace iarank::util
