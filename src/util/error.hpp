/// \file error.hpp
/// \brief Error type, error categories and precondition checks.
///
/// Every iarank failure carries a category so callers can act on the
/// *kind* of failure without parsing messages: the CLI maps categories to
/// exit codes (user error vs internal), and the fault-tolerant sweep
/// drivers map a caught Error to a per-point util::Status.

#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace iarank::util {

/// Coarse failure taxonomy.
enum class ErrorCategory {
  kBadInput,    ///< invalid user-supplied parameter, option or file content
  kInfeasible,  ///< a well-posed problem with no solution in bounds
  kInternal,    ///< broken invariant, injected fault, or engine defect
  kIo,          ///< file system failure (open/write/rename/fsync)
};

[[nodiscard]] constexpr const char* to_string(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kBadInput: return "bad-input";
    case ErrorCategory::kInfeasible: return "infeasible";
    case ErrorCategory::kInternal: return "internal";
    case ErrorCategory::kIo: return "io";
  }
  return "unknown";
}

/// Exception thrown for all iarank domain errors (bad parameters,
/// inconsistent models, malformed input files, IO failures).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg,
                 ErrorCategory category = ErrorCategory::kBadInput)
      : std::runtime_error(what_arg), category_(category) {}

  [[nodiscard]] ErrorCategory category() const { return category_; }

 private:
  ErrorCategory category_;
};

/// Throws util::Error with a message that includes the failing call site
/// when `condition` is false. Use for validating user-supplied parameters.
inline void require(bool condition, std::string_view message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw Error(std::string(message) + " [" + loc.file_name() + ":" +
                std::to_string(loc.line()) + "]");
  }
}

/// require() for IO failures: same call-site message, category kIo.
inline void require_io(bool condition, std::string_view message,
                       std::source_location loc =
                           std::source_location::current()) {
  if (!condition) {
    throw Error(std::string(message) + " [" + loc.file_name() + ":" +
                    std::to_string(loc.line()) + "]",
                ErrorCategory::kIo);
  }
}

}  // namespace iarank::util
