#include "src/util/numeric.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace iarank::util {

bool almost_equal(double a, double b, double rel_tol, double abs_tol) {
  return std::fabs(a - b) <=
         abs_tol + rel_tol * std::max(std::fabs(a), std::fabs(b));
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  require(count >= 1, "linspace: count must be >= 1");
  std::vector<double> out;
  out.reserve(count);
  if (count == 1) {
    out.push_back(lo);
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  out.back() = hi;  // avoid accumulated rounding on the final endpoint
  return out;
}

double brent_root(const std::function<double(double)>& f, double lo, double hi,
                  double tol, int max_iter) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  require(fa * fb < 0.0, "brent_root: interval does not bracket a root");

  if (std::fabs(fa) < std::fabs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  double d = b - a;
  bool used_bisection = true;

  for (int iter = 0; iter < max_iter; ++iter) {
    if (std::fabs(b - a) < tol || fb == 0.0) return b;

    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant step.
      s = b - fb * (b - a) / (fb - fa);
    }

    const double mid = (3.0 * a + b) / 4.0;
    const bool out_of_range = (s < std::min(mid, b)) || (s > std::max(mid, b));
    const bool step_too_small =
        used_bisection ? std::fabs(s - b) >= std::fabs(b - c) / 2.0
                       : std::fabs(s - b) >= std::fabs(c - d) / 2.0;
    if (out_of_range || step_too_small) {
      s = (a + b) / 2.0;
      used_bisection = true;
    } else {
      used_bisection = false;
    }

    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::fabs(fa) < std::fabs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return b;
}

namespace {

double simpson(double a, double b, double fa, double fm, double fb) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double b,
                double fa, double fm, double fb, double whole, double tol,
                int depth) {
  const double m = (a + b) / 2.0;
  const double lm = (a + m) / 2.0;
  const double rm = (m + b) / 2.0;
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, m, fa, flm, fm);
  const double right = simpson(m, b, fm, frm, fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1) +
         adaptive(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double lo, double hi,
                 double tol) {
  if (lo == hi) return 0.0;
  const double fa = f(lo);
  const double fb = f(hi);
  const double fm = f((lo + hi) / 2.0);
  const double whole = simpson(lo, hi, fa, fm, fb);
  return adaptive(f, lo, hi, fa, fm, fb, whole, tol, 48);
}

double golden_min(const std::function<double(double)>& f, double lo, double hi,
                  double tol) {
  require(lo <= hi, "golden_min: lo must be <= hi");
  constexpr double inv_phi = 0.6180339887498949;  // 1/phi
  double a = lo;
  double b = hi;
  double c = b - (b - a) * inv_phi;
  double d = a + (b - a) * inv_phi;
  double fc = f(c);
  double fd = f(d);
  while (std::fabs(b - a) > tol * (1.0 + std::fabs(a) + std::fabs(b))) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * inv_phi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * inv_phi;
      fd = f(d);
    }
  }
  return (a + b) / 2.0;
}

}  // namespace iarank::util
