#include "src/util/strings.hpp"

#include <charconv>

#include "src/util/error.hpp"

namespace iarank::util {

namespace {
constexpr std::string_view kWhitespace = " \t\r\n";
}

std::string_view trim(std::string_view text) {
  const auto first = text.find_first_not_of(kWhitespace);
  if (first == std::string_view::npos) return {};
  const auto last = text.find_last_not_of(kWhitespace);
  return text.substr(first, last - first + 1);
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(trim(text.substr(start)));
      break;
    }
    out.emplace_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

double parse_double(std::string_view text) {
  const std::string_view trimmed = trim(text);
  double value = 0.0;
  const auto* begin = trimmed.data();
  const auto* end = trimmed.data() + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  require(ec == std::errc{} && ptr == end,
          "parse_double: invalid number '" + std::string(trimmed) + "'");
  return value;
}

long long parse_int(std::string_view text) {
  const std::string_view trimmed = trim(text);
  long long value = 0;
  const auto* begin = trimmed.data();
  const auto* end = trimmed.data() + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  require(ec == std::errc{} && ptr == end,
          "parse_int: invalid integer '" + std::string(trimmed) + "'");
  require(value >= 0, "parse_int: expected a non-negative integer");
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

namespace {

std::string format_with(double value, std::chars_format format, int precision) {
  // 64 bytes covers every fixed/scientific/general spelling up to the
  // precisions used here; fixed spellings of huge magnitudes need more,
  // so retry with a buffer sized for DBL_MAX in %f form.
  char small[64];
  auto [ptr, ec] = std::to_chars(small, small + sizeof(small), value, format,
                                 precision);
  if (ec == std::errc{}) return std::string(small, ptr);
  char big[384];
  auto [ptr2, ec2] =
      std::to_chars(big, big + sizeof(big), value, format, precision);
  require(ec2 == std::errc{}, "format_double: to_chars failed");
  return std::string(big, ptr2);
}

}  // namespace

std::string format_double_fixed(double value, int precision) {
  return format_with(value, std::chars_format::fixed, precision);
}

std::string format_double_sci(double value, int precision) {
  return format_with(value, std::chars_format::scientific, precision);
}

std::string format_double_general(double value, int precision) {
  // %g treats precision 0 as 1, to_chars does not; match printf.
  return format_with(value, std::chars_format::general,
                     precision < 1 ? 1 : precision);
}

std::string format_double_shortest(double value) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  require(ec == std::errc{}, "format_double: to_chars failed");
  return std::string(buf, ptr);
}

}  // namespace iarank::util
