#include "src/util/strings.hpp"

#include <charconv>

#include "src/util/error.hpp"

namespace iarank::util {

namespace {
constexpr std::string_view kWhitespace = " \t\r\n";
}

std::string_view trim(std::string_view text) {
  const auto first = text.find_first_not_of(kWhitespace);
  if (first == std::string_view::npos) return {};
  const auto last = text.find_last_not_of(kWhitespace);
  return text.substr(first, last - first + 1);
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(trim(text.substr(start)));
      break;
    }
    out.emplace_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

double parse_double(std::string_view text) {
  const std::string_view trimmed = trim(text);
  double value = 0.0;
  const auto* begin = trimmed.data();
  const auto* end = trimmed.data() + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  require(ec == std::errc{} && ptr == end,
          "parse_double: invalid number '" + std::string(trimmed) + "'");
  return value;
}

long long parse_int(std::string_view text) {
  const std::string_view trimmed = trim(text);
  long long value = 0;
  const auto* begin = trimmed.data();
  const auto* end = trimmed.data() + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  require(ec == std::errc{} && ptr == end,
          "parse_int: invalid integer '" + std::string(trimmed) + "'");
  require(value >= 0, "parse_int: expected a non-negative integer");
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace iarank::util
