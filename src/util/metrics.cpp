#include "src/util/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <locale>
#include <memory>
#include <ostream>
#include <sstream>

#include "src/util/alloc_count.hpp"
#include "src/util/atomic_file.hpp"
#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iarank::util {

namespace {

/// Relaxed fetch-add for atomic<double> via CAS (portable across
/// standard-library ages; uncontended in practice).
void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string format_double(double v) {
  // to_chars, not snprintf: the export spelling must not depend on the
  // process locale (a daemon may run under LC_NUMERIC=de_DE).
  return format_double_general(v, 9);
}

/// JSON string-escapes a metric name. Labeled names (the info-metric
/// idiom, e.g. iarank_build_info{git="v1"}) embed double quotes, which
/// must not leak raw into a JSON key.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  require(std::is_sorted(bounds_.begin(), bounds_.end()),
          "Histogram: bucket bounds must be ascending");
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_max(max_, v);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

double Histogram::quantile(double q) const {
  const auto counts = bucket_counts();
  std::int64_t total = 0;
  for (const std::int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::int64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = i < bounds_.size() ? bounds_[i] : max();
    const double frac =
        counts[i] > 0
            ? (target - static_cast<double>(before)) /
                  static_cast<double>(counts[i])
            : 0.0;
    return std::min(lo + frac * (hi - lo), max());
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::duration_bounds() {
  // Two buckets per decade, 1 us .. ~100 s.
  std::vector<double> bounds;
  double lo = 1e-6;
  for (int decade = 0; decade < 8; ++decade) {
    bounds.push_back(lo);
    bounds.push_back(lo * 3.2);
    lo *= 10.0;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry;  // leaked on purpose
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        std::string_view help,
                                                        Kind kind) {
  const std::scoped_lock lock(mutex_);
  for (const auto& e : entries_) {
    if (e->name == name) {
      require(e->kind == kind,
              "MetricsRegistry: '" + std::string(name) +
                  "' re-registered as a different metric kind");
      if (e->help.empty() && !help.empty()) e->help = std::string(help);
      return *e;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  Entry& e = instance().find_or_create(name, help, Kind::kCounter);
  return e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  Entry& e = instance().find_or_create(name, help, Kind::kGauge);
  return e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      std::string_view help) {
  Entry& e = instance().find_or_create(name, help, Kind::kHistogram);
  const std::scoped_lock lock(instance().mutex_);
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *e.histogram;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  sync_alloc_counter();  // before taking mutex_: registration locks too
  // Machine-readable export: pin the classic locale so integer insertion
  // never picks up thousands grouping from a locale-imbued stream.
  os.imbue(std::locale::classic());
  const std::scoped_lock lock(mutex_);
  for (const auto& entry : entries_) {
    const Entry& e = *entry;
    // Labeled metrics (the info-metric idiom, e.g. iarank_build_info)
    // embed `{label="v",...}` in the registered name; HELP/TYPE lines
    // must carry the bare family name, samples keep the labels.
    const std::string family = e.name.substr(0, e.name.find('{'));
    if (!e.help.empty()) os << "# HELP " << family << " " << e.help << "\n";
    switch (e.kind) {
      case Kind::kCounter:
        os << "# TYPE " << family << " counter\n";
        os << e.name << " " << e.counter.value() << "\n";
        break;
      case Kind::kGauge:
        os << "# TYPE " << family << " gauge\n";
        os << e.name << " " << e.gauge.value() << "\n";
        break;
      case Kind::kHistogram: {
        os << "# TYPE " << family << " histogram\n";
        const auto counts = e.histogram->bucket_counts();
        const auto& bounds = e.histogram->bounds();
        std::int64_t cumulative = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cumulative += counts[i];
          os << e.name << "_bucket{le=\"" << format_double(bounds[i])
             << "\"} " << cumulative << "\n";
        }
        cumulative += counts.back();
        os << e.name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        os << e.name << "_sum " << format_double(e.histogram->sum()) << "\n";
        // _count comes from the same bucket snapshot as +Inf, not from
        // the separately updated count_ atomic: a scrape concurrent with
        // observe() must never export _count != the +Inf bucket (the
        // exposition format requires them equal).
        os << e.name << "_count " << cumulative << "\n";
        break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  sync_alloc_counter();  // before taking mutex_: registration locks too
  os.imbue(std::locale::classic());
  const std::scoped_lock lock(mutex_);
  os << "{\n";
  bool first = true;
  for (const auto& entry : entries_) {
    const Entry& e = *entry;
    if (!first) os << ",\n";
    first = false;
    os << "  \"" << json_escape(e.name) << "\": ";
    switch (e.kind) {
      case Kind::kCounter:
        os << e.counter.value();
        break;
      case Kind::kGauge:
        os << e.gauge.value();
        break;
      case Kind::kHistogram: {
        const auto counts = e.histogram->bucket_counts();
        const auto& bounds = e.histogram->bounds();
        os << "{\"count\": " << e.histogram->count()
           << ", \"sum\": " << format_double(e.histogram->sum())
           << ", \"max\": " << format_double(e.histogram->max())
           << ", \"p50\": " << format_double(e.histogram->quantile(0.5))
           << ", \"p95\": " << format_double(e.histogram->quantile(0.95))
           << ", \"buckets\": [";
        for (std::size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) os << ", ";
          os << "{\"le\": "
             << (i < bounds.size() ? format_double(bounds[i]) : "\"+Inf\"")
             << ", \"count\": " << counts[i] << "}";
        }
        os << "]}";
        break;
      }
    }
  }
  os << "\n}\n";
}

void MetricsRegistry::save(const std::string& path) const {
  std::ostringstream os;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    write_json(os);
  } else {
    write_prometheus(os);
  }
  atomic_write_file(path, os.str());
}

std::map<std::string, std::int64_t> MetricsRegistry::snapshot_values() const {
  sync_alloc_counter();  // refresh iarank_alloc_total before snapshotting
  const std::scoped_lock lock(mutex_);
  std::map<std::string, std::int64_t> out;
  for (const auto& entry : entries_) {
    const Entry& e = *entry;
    switch (e.kind) {
      case Kind::kCounter:
        out[e.name] = e.counter.value();
        break;
      case Kind::kGauge:
        out[e.name] = e.gauge.value();
        break;
      case Kind::kHistogram:
        out[e.name + "_count"] = e.histogram->count();
        break;
    }
  }
  return out;
}

void MetricsRegistry::reset_all() {
  const std::scoped_lock lock(mutex_);
  for (const auto& entry : entries_) {
    Entry& e = *entry;
    switch (e.kind) {
      case Kind::kCounter:
        e.counter.reset();
        break;
      case Kind::kGauge:
        e.gauge.reset();
        break;
      case Kind::kHistogram:
        e.histogram->reset();
        break;
    }
  }
}

TimingSummary summarize_timings(std::vector<double> samples) {
  TimingSummary out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const auto rank = [&](double q) {
    const auto n = static_cast<double>(samples.size());
    auto i = static_cast<std::size_t>(q * n);
    return samples[std::min(i, samples.size() - 1)];
  };
  out.p50 = rank(0.5);
  out.p95 = rank(0.95);
  out.max = samples.back();
  return out;
}

ScopedTimer::ScopedTimer(double* sink, Histogram* histogram)
    : sink_(sink),
      histogram_(histogram),
      start_(std::chrono::steady_clock::now()) {}

double ScopedTimer::seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

ScopedTimer::~ScopedTimer() {
  const double elapsed = seconds();
  if (sink_ != nullptr) *sink_ += elapsed;
  if (histogram_ != nullptr) histogram_->observe(elapsed);
}

}  // namespace iarank::util
