#include "src/util/atomic_file.hpp"

#include <cerrno>
#include <cstring>

#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"

#if defined(_WIN32)
#include <cstdio>
#include <fstream>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace iarank::util {

namespace {

// Injection point covering the publish step (rename + the fsyncs around
// it): a long-lived server must never leave `<path>.tmp.<pid>` files
// accumulating when publication fails.
const FaultSite kSiteRename{"util.atomic_file.rename"};

[[noreturn]] void fail(const std::string& op, const std::string& path,
                       int err) {
  throw Error("atomic_write_file: " + op + " '" + path +
                  "' failed: " + std::strerror(err),
              ErrorCategory::kIo);
}

}  // namespace

#if defined(_WIN32)

// Portability fallback: plain write + rename. No durability barrier, but
// still never exposes a partially written target.
void atomic_write_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) fail("open", tmp, errno);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      const int err = errno;
      out.close();
      std::remove(tmp.c_str());
      fail("write", tmp, err);
    }
  }
  try {
    maybe_inject(kSiteRename);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    fail("rename", tmp, err);
  }
}

#else

void atomic_write_file(const std::string& path, std::string_view content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open", tmp, errno);

  const char* data = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ::ssize_t wrote = ::write(fd, data, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write", tmp, err);
    }
    data += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync", tmp, err);
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail("close", tmp, err);
  }

  // The injected throw models a failing rename: every exit from here on
  // must unlink the tmp file, or a long-lived process slowly litters its
  // output directories.
  try {
    maybe_inject(kSiteRename);
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail("rename", tmp, err);
  }

  // Persist the rename: fsync the containing directory. Failure here is
  // non-fatal on filesystems that forbid directory fsync (the rename
  // itself already happened).
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

#endif

}  // namespace iarank::util
