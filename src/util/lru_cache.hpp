/// \file lru_cache.hpp
/// \brief Small bounded least-recently-used cache for the staged
///        instance builder.
///
/// Keyed on comparable value types (the builder uses tuples of the
/// RankOptions fields a stage depends on). Not thread-safe by itself —
/// the builder serializes access; stage recomputation is microseconds
/// next to the rank DP it feeds, so coarse locking costs nothing.

#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <utility>

namespace iarank::util {

template <typename Key, typename Value>
class LruCache {
 public:
  /// `capacity` = maximum retained entries; must be >= 1.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value for `key`, or computes it via `compute()`
  /// (a nullary returning Value), inserts and returns it. Eviction drops
  /// the least recently used entry. `hit` reports which path was taken.
  template <typename Compute>
  const Value& get_or_compute(const Key& key, Compute&& compute, bool* hit) {
    if (const auto it = index_.find(key); it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      if (hit) *hit = true;
      return it->second->second;
    }
    if (hit) *hit = false;
    order_.emplace_front(key, compute());
    index_.emplace(key, order_.begin());
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
    return order_.front().second;
  }

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear() {
    order_.clear();
    index_.clear();
  }

 private:
  using Entry = std::pair<Key, Value>;
  std::size_t capacity_;
  std::list<Entry> order_;  ///< most recently used first
  std::map<Key, typename std::list<Entry>::iterator> index_;
};

}  // namespace iarank::util
