#include "src/util/alloc_count.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/util/metrics.hpp"

namespace iarank::util {

namespace {

#if defined(IARANK_ALLOC_COUNTER)
/// Constant-initialized: usable before any static constructor runs, so
/// allocations made during static init are counted too.
constinit std::atomic<std::int64_t> g_alloc_total{0};
#endif

}  // namespace

bool alloc_counter_enabled() {
#if defined(IARANK_ALLOC_COUNTER)
  return true;
#else
  return false;
#endif
}

std::int64_t alloc_total() {
#if defined(IARANK_ALLOC_COUNTER)
  return g_alloc_total.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

void sync_alloc_counter() {
#if defined(IARANK_ALLOC_COUNTER)
  // Lazily registered (not at namespace scope): registering allocates, and
  // this TU's statics may construct before the registry's.
  static Gauge& gauge = MetricsRegistry::gauge(
      "iarank_alloc_total",
      "global operator-new calls since process start (IARANK_COUNT_ALLOCS)");
  gauge.set(alloc_total());
#endif
}

}  // namespace iarank::util

#if defined(IARANK_ALLOC_COUNTER)

namespace {

void* counted_alloc(std::size_t size) {
  iarank::util::g_alloc_total.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  for (;;) {
    if (void* p = std::malloc(size)) return p;
    if (const std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc();
    }
  }
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  iarank::util::g_alloc_total.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (align < sizeof(void*)) align = sizeof(void*);
  for (;;) {
    void* p = nullptr;
    if (::posix_memalign(&p, align, size) == 0) return p;
    if (const std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc();
    }
  }
}

}  // namespace

// Global replacements: every form forwards to the two counted allocators
// above and frees with std::free, so new/delete pairing stays consistent
// across the whole process (including allocations sanitizer runtimes see
// through their malloc interceptors).
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return counted_alloc_aligned(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return counted_alloc_aligned(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // IARANK_ALLOC_COUNTER
