/// \file config.hpp
/// \brief Minimal `key = value` configuration reader.
///
/// Technology overrides and experiment setups can be loaded from simple
/// text files: one `key = value` pair per line, `#` comments, blank lines
/// ignored. No external parser dependency.

#pragma once

#include <map>
#include <string>
#include <string_view>

namespace iarank::util {

/// Parsed configuration: ordered map from key to raw string value.
class Config {
 public:
  Config() = default;

  /// Parses configuration text. Throws util::Error on malformed lines and
  /// on duplicate keys.
  [[nodiscard]] static Config parse(std::string_view text);

  /// Loads and parses a file. Throws util::Error when unreadable.
  [[nodiscard]] static Config load(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Inserts or replaces one key. Programmatic overlay for callers that
  /// merge request-level overrides onto a loaded base configuration (the
  /// rank server does); parse()'s duplicate-key rejection is unaffected.
  void set(const std::string& key, std::string value);

  /// Raw string accessor; throws util::Error for a missing key.
  [[nodiscard]] const std::string& get(const std::string& key) const;

  /// Typed accessors with defaults for missing keys.
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long long get_int(const std::string& key) const;
  [[nodiscard]] long long get_int(const std::string& key, long long fallback) const;

  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace iarank::util
