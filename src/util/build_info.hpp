/// \file build_info.hpp
/// \brief Build and process metadata: git describe, compiler, sanitizer
///        flags (baked in at configure time) plus process start/uptime.
///
/// Exposed two ways: as Prometheus gauges (`iarank_build_info{...} 1`,
/// `iarank_process_start_time_seconds`, `iarank_process_uptime_seconds`)
/// and as the JSON object `/healthz` serves. The build_info gauge follows
/// the Prometheus "info metric" convention — the value is always 1 and
/// the labels carry the metadata, so dashboards can join on it.

#pragma once

#include "src/util/json.hpp"

#include <string>

namespace iarank::util {

struct BuildInfo {
  std::string git;       ///< `git describe --always --dirty --tags`
  std::string compiler;  ///< compiler id + version
  std::string sanitize;  ///< IARANK_SANITIZE value, or "none"
};

[[nodiscard]] const BuildInfo& build_info();

/// Unix-epoch seconds at process start (stamped at static init).
[[nodiscard]] double process_start_time_seconds();

/// Monotonic seconds since process start.
[[nodiscard]] double process_uptime_seconds();

/// Registers (and re-sets — idempotent, survives reset_all) the
/// build-info and start-time gauges and refreshes uptime.
void register_build_metrics();

/// Refreshes the uptime gauge; exporters call this just before writing.
void touch_uptime();

/// {"compiler":...,"git":...,"sanitize":...,"start_time":...,
///  "uptime_seconds":...} — the /healthz payload body.
[[nodiscard]] Json build_info_json();

}  // namespace iarank::util
