#include "src/util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iarank::util {

namespace {

constexpr int kMaxDepth = 64;  ///< nesting cap: malformed input must not
                               ///< overflow the parser's stack

[[noreturn]] void parse_fail(std::size_t offset, const std::string& what) {
  throw Error("json: " + what + " at offset " + std::to_string(offset));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    skip_ws();
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) parse_fail(pos_, "trailing characters");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) parse_fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      parse_fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) parse_fail(pos_, "nesting too deep");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) parse_fail(pos_, "invalid literal");
        return Json();
      case 't':
        if (!consume_literal("true")) parse_fail(pos_, "invalid literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) parse_fail(pos_, "invalid literal");
        return Json(false);
      case '"':
        return Json(parse_string());
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(out));
    }
    while (true) {
      skip_ws();
      out.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Json(std::move(out));
      if (c != ',') parse_fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(out));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') parse_fail(pos_, "expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      out[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Json(std::move(out));
      if (c != ',') parse_fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) parse_fail(pos_, "truncated \\u escape");
    std::uint32_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, v, 16);
    if (ec != std::errc{} || ptr != text_.data() + pos_ + 4) {
      parse_fail(pos_, "invalid \\u escape");
    }
    pos_ += 4;
    return v;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) parse_fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        parse_fail(pos_ - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) parse_fail(pos_, "truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: the low half must follow as another \u.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const std::uint32_t lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) {
                parse_fail(pos_ - 4, "invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              parse_fail(pos_, "unpaired high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            parse_fail(pos_ - 4, "unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          parse_fail(pos_ - 1, "invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") parse_fail(start, "invalid number");
    // "-0" must stay a double: the integer path would drop the sign bit,
    // breaking the bitwise round-trip (dump(-0.0) == "-0").
    if (token == "-0") is_double = true;
    if (!is_double) {
      std::int64_t iv = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), iv);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return Json(iv);
      }
      // Out-of-range integer: fall through to double.
    }
    double dv = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), dv);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      parse_fail(start, "invalid number");
    }
    return Json(dv);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_fail(const char* wanted, Json::Type got) {
  const char* name = "unknown";
  switch (got) {
    case Json::Type::kNull: name = "null"; break;
    case Json::Type::kBool: name = "bool"; break;
    case Json::Type::kNumber: name = "number"; break;
    case Json::Type::kString: name = "string"; break;
    case Json::Type::kArray: name = "array"; break;
    case Json::Type::kObject: name = "object"; break;
  }
  throw Error(std::string("json: expected ") + wanted + ", got " + name);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).run(); }

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      if (is_int_) {
        out += std::to_string(int_);
      } else {
        require(std::isfinite(num_),
                "json: cannot serialize a non-finite number");
        out += format_double_shortest(num_);
      }
      return;
    case Type::kString:
      append_escaped(out, str_);
      return;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj_) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, key);
        out += ':';
        value.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_fail("bool", type_);
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) type_fail("number", type_);
  return is_int_ ? static_cast<double>(int_) : num_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kNumber) type_fail("number", type_);
  if (is_int_) return int_;
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (std::floor(num_) == num_ && std::fabs(num_) <= kExact) {
    return static_cast<std::int64_t>(num_);
  }
  throw Error("json: number is not an exact integer");
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_fail("string", type_);
  return str_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_fail("array", type_);
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_fail("object", type_);
  return obj_;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && obj_.contains(key);
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) type_fail("object", type_);
  const auto it = obj_.find(key);
  if (it == obj_.end()) throw Error("json: missing key '" + key + "'");
  return it->second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) type_fail("object", type_);
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_fail("object", type_);
  return obj_[key];
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_fail("array", type_);
  arr_.push_back(std::move(v));
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) {
    // Integral numbers compare across representations (1 == 1.0).
    if (a.type_ == Json::Type::kNumber && b.type_ == Json::Type::kNumber) {
      return a.as_double() == b.as_double();
    }
    return false;
  }
  switch (a.type_) {
    case Json::Type::kNull: return true;
    case Json::Type::kBool: return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      if (a.is_int_ != b.is_int_) return a.as_double() == b.as_double();
      return a.is_int_ ? a.int_ == b.int_ : a.num_ == b.num_;
    case Json::Type::kString: return a.str_ == b.str_;
    case Json::Type::kArray: return a.arr_ == b.arr_;
    case Json::Type::kObject: return a.obj_ == b.obj_;
  }
  return false;
}

}  // namespace iarank::util
