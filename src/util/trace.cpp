#include "src/util/trace.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "src/util/atomic_file.hpp"
#include "src/util/strings.hpp"

namespace iarank::util {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Per-thread event buffer. Owned jointly by the registry (so events
/// survive thread exit — pool workers may outlive a capture, test threads
/// may not) and by the thread_local handle below. `mutex` serializes the
/// owner thread's appends against a concurrent export; it is uncontended
/// in steady state.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Trace::Event> events;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  ///< tid = index
  SteadyClock::time_point epoch = SteadyClock::now();
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static destruction
  return *r;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    const std::scoped_lock lock(r.mutex);
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now() - registry().epoch)
      .count();
}

/// Builds the aggregated tree for one thread's event stream on top of
/// `roots`, merging by span-name path.
void fold_events(const std::vector<Trace::Event>& events,
                 std::vector<Trace::SummaryNode>& roots) {
  struct Frame {
    Trace::SummaryNode* node;
    std::int64_t begin_ns;
  };
  // Paths are resolved against the shared output tree; `stack` mirrors the
  // currently open spans. Node pointers stay valid because children are
  // only appended below the current path while its ancestors are open.
  std::vector<Frame> stack;
  auto find_or_add = [](std::vector<Trace::SummaryNode>& siblings,
                        const char* name) -> Trace::SummaryNode* {
    for (Trace::SummaryNode& n : siblings) {
      if (n.name == name) return &n;
    }
    siblings.push_back({name, 0, 0, 0, {}});
    return &siblings.back();
  };
  for (const Trace::Event& e : events) {
    if (e.begin) {
      std::vector<Trace::SummaryNode>& siblings =
          stack.empty() ? roots : stack.back().node->children;
      Trace::SummaryNode* node = find_or_add(siblings, e.name);
      ++node->count;
      stack.push_back({node, e.ts_ns});
    } else {
      if (stack.empty()) continue;  // end without begin: disabled mid-capture
      Frame frame = stack.back();
      stack.pop_back();
      frame.node->total_ns += e.ts_ns - frame.begin_ns;
    }
  }
  // A begin without an end (export while a span is open) contributes its
  // count but no time; that is the honest reading of an open span.
}

void fill_self_times(std::vector<Trace::SummaryNode>& nodes) {
  for (Trace::SummaryNode& n : nodes) {
    std::int64_t children_ns = 0;
    for (const Trace::SummaryNode& c : n.children) children_ns += c.total_ns;
    n.self_ns = n.total_ns - children_ns;
    fill_self_times(n.children);
  }
}

void render_summary(const std::vector<Trace::SummaryNode>& nodes, int depth,
                    std::ostringstream& os) {
  const auto pad_left = [](std::string s, std::size_t width) {
    if (s.size() < width) s.insert(0, width - s.size(), ' ');
    return s;
  };
  for (const Trace::SummaryNode& n : nodes) {
    std::string label(static_cast<std::size_t>(depth) * 2, ' ');
    label += n.name;
    if (label.size() < 40) label.append(40 - label.size(), ' ');
    os << "  " << label << " "
       << pad_left(std::to_string(n.count), 8) << " "
       << pad_left(format_double_fixed(
                       static_cast<double>(n.total_ns) / 1e6, 3), 12)
       << " "
       << pad_left(format_double_fixed(
                       static_cast<double>(n.self_ns) / 1e6, 3), 12)
       << "\n";
    render_summary(n.children, depth + 1, os);
  }
}

}  // namespace

std::atomic<bool>& Trace::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void Trace::enable() {
  Registry& r = registry();
  const std::scoped_lock lock(r.mutex);
  for (const auto& buffer : r.buffers) {
    const std::scoped_lock buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  r.epoch = SteadyClock::now();
  enabled_flag().store(true, std::memory_order_relaxed);
}

void Trace::disable() { enabled_flag().store(false, std::memory_order_relaxed); }

void Trace::record(const char* name, bool begin) {
  const std::int64_t ts = now_ns();
  ThreadBuffer& buffer = thread_buffer();
  const std::scoped_lock lock(buffer.mutex);
  buffer.events.push_back({name, ts, begin});
}

std::vector<std::vector<Trace::Event>> Trace::snapshot() {
  Registry& r = registry();
  const std::scoped_lock lock(r.mutex);
  std::vector<std::vector<Event>> out;
  out.reserve(r.buffers.size());
  for (const auto& buffer : r.buffers) {
    const std::scoped_lock buffer_lock(buffer->mutex);
    out.push_back(buffer->events);
  }
  return out;
}

void Trace::write_chrome_json(std::ostream& os) {
  const auto threads = snapshot();
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t tid = 0; tid < threads.size(); ++tid) {
    // Per-thread stack of open span names, so end events can repeat the
    // name (Perfetto tolerates nameless "E" events; named ones are easier
    // to validate and to read raw).
    std::vector<const char*> open;
    for (const Event& e : threads[tid]) {
      const char* name = e.name;
      if (e.begin) {
        open.push_back(name);
      } else {
        if (open.empty()) continue;  // unmatched end: span began pre-enable
        name = open.back();
        open.pop_back();
      }
      if (!first) os << ",\n";
      first = false;
      // Built by hand with to_chars-backed formatting: snprintf "%f"
      // would emit a comma decimal under LC_NUMERIC=de_DE — invalid JSON.
      os << "{\"name\":\"" << name << "\",\"ph\":\"" << (e.begin ? "B" : "E")
         << "\",\"ts\":"
         << format_double_fixed(static_cast<double>(e.ts_ns) / 1e3, 3)
         << ",\"pid\":1,\"tid\":" << tid << "}";
    }
    // Close spans still open at export time so every B has a matching E.
    const double now_us = static_cast<double>(now_ns()) / 1e3;
    while (!open.empty()) {
      if (!first) os << ",\n";
      first = false;
      os << "{\"name\":\"" << open.back() << "\",\"ph\":\"E\",\"ts\":"
         << format_double_fixed(now_us, 3) << ",\"pid\":1,\"tid\":" << tid
         << "}";
      open.pop_back();
    }
  }
  os << "\n]}\n";
}

void Trace::save_chrome_json(const std::string& path) {
  std::ostringstream os;
  write_chrome_json(os);
  atomic_write_file(path, os.str());
}

std::vector<Trace::SummaryNode> Trace::summary() {
  std::vector<SummaryNode> roots;
  for (const auto& events : snapshot()) fold_events(events, roots);
  fill_self_times(roots);
  return roots;
}

std::string Trace::summary_report() {
  std::ostringstream os;
  char header[160];
  std::snprintf(header, sizeof(header), "  %-40s %8s %12s %12s\n", "span",
                "count", "total ms", "self ms");
  os << header;
  render_summary(summary(), 0, os);
  return os.str();
}

}  // namespace iarank::util
