#include "src/util/subprocess.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>

#include "src/util/error.hpp"

namespace iarank::util {

namespace {

ChildExit from_status(pid_t pid, int status) {
  ChildExit out;
  out.pid = pid;
  if (WIFEXITED(status)) {
    out.exited = true;
    out.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.signaled = true;
    out.term_signal = WTERMSIG(status);
  }
  return out;
}

}  // namespace

pid_t spawn_child(const std::function<int()>& body) {
  // The child inherits stdio buffers; flush so pending parent output is
  // not replayed from the child's copy.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw Error("spawn_child: fork failed: " + std::string(std::strerror(errno)),
                ErrorCategory::kInternal);
  }
  if (pid == 0) {
    int code = 125;
    try {
      code = body();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "child %d: %s\n", static_cast<int>(::getpid()),
                   e.what());
    } catch (...) {
      std::fprintf(stderr, "child %d: unknown exception\n",
                   static_cast<int>(::getpid()));
    }
    std::fflush(stdout);
    std::fflush(stderr);
    ::_exit(code);
  }
  return pid;
}

std::optional<ChildExit> try_wait_any() {
  int status = 0;
  const pid_t pid = ::waitpid(-1, &status, WNOHANG);
  if (pid <= 0) return std::nullopt;  // 0 = running, -1/ECHILD = none
  return from_status(pid, status);
}

ChildExit wait_child(pid_t pid) {
  int status = 0;
  pid_t got;
  do {
    got = ::waitpid(pid, &status, 0);
  } while (got < 0 && errno == EINTR);
  if (got != pid) {
    throw Error("wait_child: waitpid failed: " +
                    std::string(std::strerror(errno)),
                ErrorCategory::kInternal);
  }
  return from_status(pid, status);
}

}  // namespace iarank::util
