/// \file bounded_queue.hpp
/// \brief Bounded multi-producer/multi-consumer queue with reject-on-full
///        semantics — the rank server's backpressure primitive.
///
/// Producers never block: try_push returns kFull when the queue is at
/// capacity, and the caller turns that into a typed `overloaded` protocol
/// error instead of queueing unbounded work. Consumers block in pop()
/// until an item arrives or the queue is closed AND drained — close() is
/// the graceful-shutdown signal, and items enqueued before the close are
/// still delivered (SIGTERM drains in-flight requests, it does not drop
/// them).
///
/// Implementation: mutex + condvar over a ring-ish deque. Throughput
/// needs here are thousands of requests per second against a multi-
/// millisecond service time, so lock-free slots (polymer's
/// queue-mpmc-bounded idiom) would buy nothing measurable; this form is
/// trivially correct under TSan.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace iarank::util {

template <typename T>
class BoundedQueue {
 public:
  enum class PushResult {
    kOk,      ///< enqueued
    kFull,    ///< at capacity — caller applies backpressure
    kClosed,  ///< shutting down — no new work accepted
  };

  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking enqueue; never waits for space.
  [[nodiscard]] PushResult try_push(T item) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until an item is available or the queue is closed and empty
  /// (then returns nullopt — the consumer's exit signal).
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    return out;
  }

  /// Stops accepting pushes and wakes every blocked consumer. Items
  /// already queued are still popped (drain semantics). Idempotent.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace iarank::util
