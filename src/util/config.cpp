#include "src/util/config.hpp"

#include <fstream>
#include <sstream>

#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"
#include "src/util/strings.hpp"

namespace iarank::util {

namespace {
const FaultSite kSiteParse{"util.config.parse"};
}  // namespace

Config Config::parse(std::string_view text) {
  maybe_inject(kSiteParse);
  Config cfg;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    ++line_no;
    auto nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = trim(text.substr(start, nl - start));
    start = nl + 1;

    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    require(eq != std::string_view::npos,
            "Config: missing '=' on line " + std::to_string(line_no));
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    require(!key.empty(), "Config: empty key on line " + std::to_string(line_no));
    require(!cfg.values_.contains(key), "Config: duplicate key '" + key +
                                            "' on line " + std::to_string(line_no));
    cfg.values_.emplace(key, value);
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "Config: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool Config::has(const std::string& key) const { return values_.contains(key); }

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

const std::string& Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  require(it != values_.end(), "Config: missing key '" + key + "'");
  return it->second;
}

double Config::get_double(const std::string& key) const {
  return parse_double(get(key));
}

double Config::get_double(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

long long Config::get_int(const std::string& key) const {
  return parse_int(get(key));
}

long long Config::get_int(const std::string& key, long long fallback) const {
  return has(key) ? get_int(key) : fallback;
}

}  // namespace iarank::util
