#include "src/util/fault_injector.hpp"

#include "src/util/error.hpp"

namespace iarank::util {

FaultSite::FaultSite(const char* name) : name_(name) {
  // Static-initialization time: single-threaded by the C++ startup model.
  FaultInjector::mutable_sites().push_back(this);
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

std::vector<const FaultSite*>& FaultInjector::mutable_sites() {
  static std::vector<const FaultSite*> registry;
  return registry;
}

const std::vector<const FaultSite*>& FaultInjector::sites() {
  return mutable_sites();
}

std::atomic<bool>& FaultInjector::enabled_flag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

void FaultInjector::arm(std::string_view site, std::int64_t nth) {
  require(nth >= 1, "FaultInjector::arm: nth must be >= 1");
  {
    const std::scoped_lock lock(mutex_);
    hit_counts_.clear();
    armed_site_ = std::string(site);
    armed_nth_ = nth;
    counting_ = false;
    fired_ = false;
  }
  enabled_flag().store(true, std::memory_order_relaxed);
}

void FaultInjector::start_counting() {
  {
    const std::scoped_lock lock(mutex_);
    hit_counts_.clear();
    armed_site_.clear();
    armed_nth_ = 0;
    counting_ = true;
    fired_ = false;
  }
  enabled_flag().store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  enabled_flag().store(false, std::memory_order_relaxed);
  const std::scoped_lock lock(mutex_);
  armed_site_.clear();
  armed_nth_ = 0;
  counting_ = false;
}

bool FaultInjector::fired() const {
  const std::scoped_lock lock(mutex_);
  return fired_;
}

std::int64_t FaultInjector::hits(std::string_view site) const {
  const std::scoped_lock lock(mutex_);
  const auto it = hit_counts_.find(site);
  return it == hit_counts_.end() ? 0 : it->second;
}

void FaultInjector::on_hit(const FaultSite& site) {
  std::int64_t count = 0;
  bool throw_now = false;
  {
    const std::scoped_lock lock(mutex_);
    count = ++hit_counts_[site.name()];
    if (!counting_ && !fired_ && armed_site_ == site.name() &&
        count == armed_nth_) {
      fired_ = true;
      throw_now = true;
    }
  }
  if (throw_now) {
    throw Error("injected fault at " + std::string(site.name()) + " (hit " +
                    std::to_string(count) + ")",
                ErrorCategory::kInternal);
  }
}

}  // namespace iarank::util
