#include "src/util/journal.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/util/atomic_file.hpp"
#include "src/util/digest.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"
#include "src/util/metrics.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace iarank::util {

namespace {

constexpr std::string_view kMagic = "iarank-journal";
constexpr int kVersion = 1;

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::string escape(std::string_view payload) {
  std::string out;
  out.reserve(payload.size());
  for (const char c : payload) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

bool unescape(std::string_view text, std::string& out) {
  out.clear();
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (++i >= text.size()) return false;
    switch (text[i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: return false;
    }
  }
  return true;
}

std::string header_line(std::uint64_t key) {
  std::ostringstream os;
  os << kMagic << " " << kVersion << " " << hex64(key) << "\n";
  return os.str();
}

/// `r <crc8hex> <index> <escaped-payload>`; CRC over "<index> <escaped>".
std::string record_line(std::int64_t index, std::string_view payload) {
  const std::string escaped = escape(payload);
  std::ostringstream body;
  body << index << " " << escaped;
  std::ostringstream os;
  os << "r " << std::hex << crc32(body.str()) << std::dec << " " << body.str()
     << "\n";
  return os.str();
}

/// Parses one record line (no trailing newline). Returns false on any
/// malformation or CRC mismatch.
bool parse_record(std::string_view line, std::int64_t& index,
                  std::string& payload) {
  if (line.size() < 2 || line[0] != 'r' || line[1] != ' ') return false;
  const std::size_t crc_end = line.find(' ', 2);
  if (crc_end == std::string_view::npos) return false;
  const std::string_view crc_text = line.substr(2, crc_end - 2);
  const std::string_view body = line.substr(crc_end + 1);

  std::uint32_t crc = 0;
  for (const char c : crc_text) {
    crc <<= 4;
    if (c >= '0' && c <= '9') crc |= static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') crc |= static_cast<std::uint32_t>(c - 'a' + 10);
    else return false;
  }
  if (crc_text.empty() || crc_text.size() > 8) return false;
  if (crc32(body) != crc) return false;

  const std::size_t index_end = body.find(' ');
  if (index_end == std::string_view::npos) return false;
  errno = 0;
  char* end = nullptr;
  const std::string index_text(body.substr(0, index_end));
  const long long parsed = std::strtoll(index_text.c_str(), &end, 10);
  if (errno != 0 || end != index_text.c_str() + index_text.size()) return false;
  index = parsed;
  return unescape(body.substr(index_end + 1), payload);
}

// Journal observability. Written/recovered record counts are exact; the
// salvage/restart counters tally recovery events across every journal the
// process opens.
Counter& kJournalRecordsWritten = MetricsRegistry::counter(
    "iarank_checkpoint_records_written_total",
    "checkpoint records appended to journals");
Counter& kJournalRecordsRecovered = MetricsRegistry::counter(
    "iarank_checkpoint_records_recovered_total",
    "intact checkpoint records salvaged on journal open");
Counter& kJournalTornTails = MetricsRegistry::counter(
    "iarank_checkpoint_torn_tails_total",
    "journals whose torn/corrupt tail was dropped and compacted");
Counter& kJournalRestarts = MetricsRegistry::counter(
    "iarank_checkpoint_restarts_total",
    "journals discarded on open (key mismatch or corrupt header)");
Counter& kJournalBytesAppended = MetricsRegistry::counter(
    "iarank_checkpoint_bytes_appended_total",
    "bytes appended to checkpoint journals");

// Merge-side reads of foreign journals (rank_tool explore).
const FaultSite kSiteScan{"util.journal.scan"};

}  // namespace

CheckpointJournal::Scan CheckpointJournal::scan(const std::string& path,
                                                std::uint64_t key) {
  maybe_inject(kSiteScan);
  Scan out;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return out;
  out.exists = true;
  std::ostringstream buf;
  buf << in.rdbuf();
  require_io(!in.bad(), "CheckpointJournal: cannot read '" + path + "'");
  const std::string content = buf.str();

  std::size_t start = 0;
  bool first = true;
  while (start < content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string::npos) {
      // Unterminated final line: either torn by a crash or mid-append by a
      // live writer. Either way the intact prefix is the usable view.
      if (out.key_matches) out.torn_tail = true;
      break;
    }
    const std::string_view line(content.data() + start, nl - start);
    start = nl + 1;
    if (first) {
      first = false;
      const std::string expected = header_line(key);
      out.key_matches =
          line == std::string_view(expected).substr(0, expected.size() - 1);
      if (!out.key_matches) break;
      continue;
    }
    std::int64_t index = 0;
    std::string payload;
    if (!parse_record(line, index, payload)) {
      out.torn_tail = true;
      break;
    }
    out.entries[index] = std::move(payload);
  }
  return out;
}

CheckpointJournal::CheckpointJournal(std::string path, std::uint64_t key)
    : CheckpointJournal(std::move(path), key, Options{}) {}

CheckpointJournal::CheckpointJournal(std::string path, std::uint64_t key,
                                     Options options)
    : path_(std::move(path)), key_(key), options_(options) {
  bool needs_rewrite = false;
  bool have_file = false;

  std::ifstream in(path_, std::ios::binary);
  if (in.good()) {
    have_file = true;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    in.close();

    // Only lines terminated by '\n' are candidates: a record whose final
    // newline was torn off must not be appended onto, even if its bytes
    // happen to CRC clean.
    std::size_t start = 0;
    bool first = true;
    bool header_ok = false;
    while (start < content.size()) {
      const std::size_t nl = content.find('\n', start);
      if (nl == std::string::npos) {
        salvaged_tail_ = !first && header_ok;
        needs_rewrite = true;
        break;
      }
      const std::string_view line(content.data() + start, nl - start);
      start = nl + 1;
      if (first) {
        first = false;
        const std::string expected = header_line(key_);
        header_ok = line == std::string_view(expected).substr(
                                0, expected.size() - 1);
        if (!header_ok) {
          // Wrong key, wrong version, or corrupt header: not resumable.
          restarted_ = true;
          needs_rewrite = true;
          entries_.clear();
          break;
        }
        continue;
      }
      std::int64_t index = 0;
      std::string payload;
      if (!parse_record(line, index, payload)) {
        // Torn or corrupted record: keep the valid prefix, drop the rest
        // (append-only implies everything after is younger).
        salvaged_tail_ = true;
        needs_rewrite = true;
        break;
      }
      entries_[index] = std::move(payload);
    }
    if (first) {
      // Empty file: not even a header.
      restarted_ = have_file;
      needs_rewrite = true;
    }
  }

  if (!have_file || needs_rewrite) {
    std::string content = header_line(key_);
    for (const auto& [index, payload] : entries_) {
      content += record_line(index, payload);
    }
    atomic_write_file(path_, content);
  }

  kJournalRecordsRecovered.inc(static_cast<std::int64_t>(entries_.size()));
  if (salvaged_tail_) kJournalTornTails.inc();
  if (restarted_) kJournalRestarts.inc();

  open_for_append();
}

void CheckpointJournal::open_for_append() {
#if !defined(_WIN32)
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  require_io(fd_ >= 0, "CheckpointJournal: cannot open '" + path_ +
                           "' for append: " + std::strerror(errno));
#endif
}

CheckpointJournal::~CheckpointJournal() {
#if !defined(_WIN32)
  if (fd_ >= 0) ::close(fd_);
#endif
}

void CheckpointJournal::append(std::int64_t index, std::string_view payload) {
  const std::string line = record_line(index, payload);
  const std::scoped_lock lock(mutex_);
#if !defined(_WIN32)
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ::ssize_t wrote = ::write(fd_, data, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw Error("CheckpointJournal: append to '" + path_ +
                      "' failed: " + std::strerror(errno),
                  ErrorCategory::kIo);
    }
    data += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  if (options_.fsync_each_append) (void)::fsync(fd_);
#else
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  out.flush();
  require_io(out.good(), "CheckpointJournal: append to '" + path_ + "' failed");
#endif
  entries_[index] = std::string(payload);
  bytes_appended_ += static_cast<std::int64_t>(line.size());
  kJournalRecordsWritten.inc();
  kJournalBytesAppended.inc(static_cast<std::int64_t>(line.size()));
}

}  // namespace iarank::util
