/// \file lease_queue.hpp
/// \brief File-based leased work queue for multi-process exploration.
///
/// A queue lives in a directory shared by one coordinator and N worker
/// processes (same host; the files are tiny and every mutation happens
/// under an flock). State is the set of chunk files:
///
///   queue.lock    flock'd (blocking, per operation) — serializes every
///                 mutation below. The kernel releases it when a holder
///                 dies, so a SIGKILL mid-operation never wedges the
///                 queue.
///   todo-<lo>     an unclaimed chunk of grid indices [lo, hi):
///                 "<lo> <hi> <attempts>"
///   lease-<lo>    a claimed chunk:
///                 "<lo> <hi> <attempts> <worker> <heartbeat_ms> <progress>"
///
/// Chunk ranges are disjoint by construction (enqueue, claim, steal and
/// reclaim preserve this), so `lo` doubles as the chunk id. Claiming is
/// rename(todo-X, lease-X) followed by an atomic content rewrite; a
/// worker killed between the two leaves a 3-field lease file, which
/// reclaim treats as already expired. Leases are renewed on a heartbeat
/// carrying the worker's progress (the next index it will evaluate);
/// reclaim requeues only [progress, hi) since everything before progress
/// is already journaled. Stealing splits the remaining range of the
/// largest live foreign lease so stragglers don't dominate the tail of a
/// run.
///
/// Crash-safety: every file appears via atomic_write_file or rename, so
/// readers never observe a half-written chunk file; the lock makes each
/// operation atomic against other processes.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace iarank::util {

/// One chunk of work: grid indices [lo, hi).
struct LeaseChunk {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  int attempts = 0;  ///< times this range has been (re)queued after a claim
};

class LeaseQueue {
 public:
  struct Options {
    /// A lease whose heartbeat is older than this is reclaimable.
    double lease_ttl_seconds = 10.0;
    /// Never steal fewer than this many points (and never leave the victim
    /// with fewer): chunks below 2*min_steal_points are not split.
    std::int64_t min_steal_points = 16;
  };

  /// Opens the queue rooted at `dir`, creating the directory and lockfile
  /// when absent. Throws util::Error (kIo) on failure.
  LeaseQueue(std::string dir, Options options);

  LeaseQueue(const LeaseQueue&) = delete;
  LeaseQueue& operator=(const LeaseQueue&) = delete;

  /// Adds an unclaimed chunk [lo, hi). No-op when lo >= hi.
  void enqueue(std::int64_t lo, std::int64_t hi, int attempts);

  /// Deletes every todo and lease file. The coordinator calls this once at
  /// startup: it owns the queue lifecycle, and chunk files surviving a dead
  /// previous coordinator describe work it is about to re-derive from the
  /// journals anyway (any orphaned worker still holding one of those leases
  /// merely journals duplicates, which merge dedup absorbs).
  void clear();

  /// Claims the lowest unclaimed chunk for `worker`, stamping a fresh
  /// heartbeat with progress = lo. Returns nullopt when no todo chunk
  /// exists (which does not mean the queue is idle — see idle()).
  /// Fault site: `util.lease.acquire`.
  [[nodiscard]] std::optional<LeaseChunk> claim(const std::string& worker);

  /// Renews the heartbeat of `chunk` held by `worker`, recording that all
  /// indices below `progress` are journaled. Returns the chunk's current
  /// upper bound — a steal may have shrunk it below chunk.hi, in which
  /// case the caller must stop early. Returns nullopt when the lease is
  /// gone or owned by someone else (reclaimed after a stall): the caller
  /// must abandon the chunk without completing it.
  /// Fault site: `util.lease.renew`.
  [[nodiscard]] std::optional<std::int64_t> renew(const LeaseChunk& chunk,
                                                  const std::string& worker,
                                                  std::int64_t progress);

  /// Releases a finished chunk (deletes the lease). A missing or
  /// foreign-owned lease is ignored: the chunk was reclaimed, and the
  /// new owner's results will dedup against ours at merge.
  void complete(const LeaseChunk& chunk, const std::string& worker);

  /// Splits the largest live foreign lease's remaining range, enqueueing
  /// its upper half as a new todo chunk. Returns true when a chunk was
  /// created (the thief should then claim()).
  bool steal(const std::string& thief);

  /// Description of one reclaimed lease, for the coordinator's
  /// suspect-point scan.
  struct Reclaimed {
    LeaseChunk chunk;        ///< the requeued range [progress, hi)
    std::string worker;      ///< last owner ("" for a torn claim)
    std::int64_t taken_lo = 0;  ///< original lower bound of the dead lease
  };

  /// Coordinator only: requeues every expired lease (stale heartbeat, or
  /// a torn 3-field claim) as todo with attempts+1, dropping the already
  /// journaled prefix [taken_lo, progress). Fully-progressed leases are
  /// simply deleted.
  std::vector<Reclaimed> reclaim_expired();

  /// True when no todo and no lease files exist: every enqueued index has
  /// been completed (or its worker finished and released the chunk).
  [[nodiscard]] bool idle();

  /// One live lease as seen by snapshot(): the chunk plus the owner's
  /// heartbeat and journaled-progress stamp (a torn 3-field claim reads
  /// as an empty worker with progress == lo).
  struct LeaseView {
    LeaseChunk chunk;
    std::string worker;
    std::int64_t heartbeat_ms = 0;
    std::int64_t progress = 0;
  };

  /// Read-only view of the whole queue under one lock acquisition:
  /// unclaimed chunks plus every live lease. The coordinator's status
  /// surface polls this; it never mutates queue state.
  struct Snapshot {
    std::vector<LeaseChunk> todos;
    std::vector<LeaseView> leases;
  };
  [[nodiscard]] Snapshot snapshot();

  /// Number of unclaimed chunks (diagnostic).
  [[nodiscard]] std::size_t todo_count();

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  Options options_;
};

}  // namespace iarank::util
