/// \file numeric.hpp
/// \brief Small numeric toolkit: root finding, quadrature, comparisons,
///        and grid generation. No external dependencies.

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace iarank::util {

/// Returns true when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
[[nodiscard]] bool almost_equal(double a, double b, double rel_tol = 1e-9,
                                double abs_tol = 1e-12);

/// `count` evenly spaced samples over [lo, hi], inclusive of both endpoints.
/// count == 1 yields {lo}. Throws util::Error for count == 0.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

/// Finds a root of `f` in the bracketing interval [lo, hi] using Brent's
/// method. Requires f(lo) and f(hi) to have opposite signs (or either to be
/// zero). Throws util::Error when the bracket is invalid.
[[nodiscard]] double brent_root(const std::function<double(double)>& f, double lo,
                                double hi, double tol = 1e-12,
                                int max_iter = 200);

/// Adaptive Simpson quadrature of `f` over [lo, hi] to absolute tolerance
/// `tol`. Intended for the smooth Davis WLD densities; not a general-purpose
/// oscillatory integrator.
[[nodiscard]] double integrate(const std::function<double(double)>& f, double lo,
                               double hi, double tol = 1e-10);

/// Golden-section minimization of a unimodal function over [lo, hi].
/// Returns the minimizing abscissa.
[[nodiscard]] double golden_min(const std::function<double(double)>& f, double lo,
                                double hi, double tol = 1e-10);

}  // namespace iarank::util
