/// \file digest.hpp
/// \brief Streaming FNV-1a fingerprints and CRC-32, for checkpoint keys
///        and journal record guards.
///
/// The checkpoint journal (util/journal.hpp) keys a file to the exact
/// work it was written for: the sweep driver digests (design, WLD,
/// options, parameter, grid) and refuses to resume from a journal whose
/// key disagrees. Doubles are fed as their IEEE-754 bit patterns, so the
/// digest is exactly as strict as bitwise equality — the same standard
/// the resumed results themselves are held to. CRC-32 (reflected
/// 0xEDB88320, the zlib polynomial) guards individual journal records
/// against torn or corrupted lines.

#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace iarank::util {

/// Streaming 64-bit FNV-1a.
class Digest {
 public:
  Digest& bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
    return *this;
  }

  Digest& u64(std::uint64_t v) {
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
    return bytes(buf, sizeof buf);
  }

  Digest& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }

  /// Bit-pattern feed: distinguishes -0.0 from 0.0 and every NaN payload,
  /// matching the bitwise-identity contract of resumed sweeps.
  Digest& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

  Digest& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  Digest& boolean(bool v) { return u64(v ? 1 : 0); }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  ///< FNV offset basis
};

/// CRC-32 of `data` (reflected polynomial 0xEDB88320, init/final 0xFFFFFFFF
/// — the common zlib/PNG parameterization). Table built on first use.
[[nodiscard]] inline std::uint32_t crc32(std::string_view data) {
  static const auto table = [] {
    struct Table { std::uint32_t entry[256]; };
    Table t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t.entry[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table.entry[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace iarank::util
