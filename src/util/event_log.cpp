#include "src/util/event_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "src/util/atomic_file.hpp"
#include "src/util/error.hpp"
#include "src/util/metrics.hpp"

namespace iarank::util {

namespace {

Counter& kEventsEmitted = MetricsRegistry::counter(
    "iarank_events_total", "Structured events recorded by util::EventLog");
Counter& kFlightDumps =
    MetricsRegistry::counter("iarank_flight_recorder_dumps_total",
                             "Flight-recorder ring dumps written");

std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// One thread's pending JSONL lines for the file sink. shared_ptr-owned
/// jointly by the thread_local handle and the registry, so neither a
/// thread exiting nor a late flush dangles.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<std::string> lines;
};

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ::ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Upper bound on the armed dump path so the signal-safe path buffers
/// (which a handler reads without locking or allocating) are fixed-size.
constexpr std::size_t kMaxDumpPath = 3584;

}  // namespace

const char* severity_name(Severity sev) {
  switch (sev) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "info";
}

struct EventLog::Impl {
  std::mutex mutex;  ///< buffer registry, sink fd, dump paths
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;

  int sink_fd = -1;
  std::string sink_path;
  std::atomic<bool> sink_open{false};

  std::atomic<bool> ring_armed{false};
  std::string ring_path;
  // NUL-terminated copies for dump_flight_recorder_signal_safe: written
  // under `mutex` before the release-store to ring_armed, read by the
  // handler after an acquire-load, never reallocated.
  char sig_tmp_path[kMaxDumpPath + 64] = {0};
  char sig_final_path[kMaxDumpPath + 64] = {0};

  /// Seqlocked ring slot: seq is odd while a writer is mid-copy, and
  /// bumps on every rewrite, so readers can detect (and skip) torn text.
  struct RingSlot {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint32_t> length{0};
    char text[kSlotBytes];
  };
  std::atomic<std::uint64_t> ring_head{0};  ///< total events ring-recorded
  RingSlot slots[kRingSlots];
  /// The first kPinnedSlots events ever recorded (written once, at the
  /// same time as their ring copy): a dump taken after the ring wrapped
  /// still opens with the run's lifecycle context.
  RingSlot pinned[kPinnedSlots];

  static void write_slot(RingSlot& slot, const char* text,
                         std::size_t length) {
    slot.seq.fetch_add(1, std::memory_order_acq_rel);  // odd: write begins
    std::memcpy(slot.text, text, length);
    slot.length.store(static_cast<std::uint32_t>(length),
                      std::memory_order_relaxed);
    slot.seq.fetch_add(1, std::memory_order_release);  // even: stable
  }

  /// Seqlock-checked copy of one slot into `local` (>= kSlotBytes).
  /// Returns 0 when the slot is empty or a writer is mid-copy.
  static std::uint32_t read_slot(const RingSlot& slot, char* local) {
    const std::uint32_t seq_before = slot.seq.load(std::memory_order_acquire);
    if ((seq_before & 1u) != 0) return 0;  // writer mid-copy
    const std::uint32_t length = slot.length.load(std::memory_order_relaxed);
    if (length == 0 || length > kSlotBytes) return 0;
    std::memcpy(local, slot.text, length);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_before) return 0;
    return length;
  }

  std::shared_ptr<ThreadBuffer> thread_buffer() {
    thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
      auto fresh = std::make_shared<ThreadBuffer>();
      const std::scoped_lock lock(mutex);
      buffers.push_back(fresh);
      return fresh;
    }();
    return buffer;
  }
};

EventLog::EventLog() : impl_(new Impl) {}

EventLog& EventLog::instance() {
  static EventLog* log = new EventLog;  // leaked on purpose
  return *log;
}

void EventLog::open(const std::string& path) {
  Impl& impl = *impl_;
  const std::scoped_lock lock(impl.mutex);
  require(impl.sink_fd < 0,
          "EventLog: a log sink is already open (" + impl.sink_path + ")");
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  require_io(fd >= 0, "EventLog: cannot open '" + path +
                          "': " + std::strerror(errno));
  // Drop lines buffered by threads after the previous close(): they
  // belong to the old sink, not this one.
  for (const auto& buffer : impl.buffers) {
    const std::scoped_lock buffer_lock(buffer->mutex);
    buffer->lines.clear();
  }
  impl.sink_fd = fd;
  impl.sink_path = path;
  impl.sink_open.store(true, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void EventLog::close() {
  flush();
  Impl& impl = *impl_;
  const std::scoped_lock lock(impl.mutex);
  if (impl.sink_fd < 0) return;
  impl.sink_open.store(false, std::memory_order_relaxed);
  ::close(impl.sink_fd);
  impl.sink_fd = -1;
  impl.sink_path.clear();
  enabled_.store(impl.ring_armed.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

void EventLog::arm_flight_recorder(const std::string& path) {
  require(path.size() <= kMaxDumpPath,
          "EventLog: flight-recorder path too long");
  Impl& impl = *impl_;
  const std::scoped_lock lock(impl.mutex);
  impl.ring_path = path;
  const std::string tmp = path + ".sig.tmp";
  std::snprintf(impl.sig_tmp_path, sizeof impl.sig_tmp_path, "%s",
                tmp.c_str());
  std::snprintf(impl.sig_final_path, sizeof impl.sig_final_path, "%s",
                path.c_str());
  impl.ring_armed.store(true, std::memory_order_release);
  enabled_.store(true, std::memory_order_relaxed);
}

void EventLog::disarm_flight_recorder() {
  Impl& impl = *impl_;
  const std::scoped_lock lock(impl.mutex);
  impl.ring_armed.store(false, std::memory_order_release);
  impl.ring_path.clear();
  enabled_.store(impl.sink_open.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

bool EventLog::flight_recorder_armed() const {
  return impl_->ring_armed.load(std::memory_order_relaxed);
}

std::string EventLog::flight_recorder_path() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->ring_path;
}

void EventLog::emit(Severity sev, std::string_view type, Json fields) {
  if (!enabled()) return;
  Json line;
  line["ts_ms"] = wall_ms();
  line["sev"] = severity_name(sev);
  line["type"] = std::string(type);
  if (!fields.is_null()) line["fields"] = std::move(fields);
  std::string text = line.dump();
  kEventsEmitted.inc();

  Impl& impl = *impl_;
  if (impl.ring_armed.load(std::memory_order_relaxed)) {
    std::string stub;
    const std::string* ring_text = &text;
    if (text.size() > kSlotBytes) {
      // A truncated JSON line would poison the dump; record a valid stub
      // instead (the file sink still gets the full line).
      Json short_line;
      short_line["ts_ms"] = wall_ms();
      short_line["sev"] = severity_name(sev);
      short_line["type"] = std::string(type.substr(0, 64));
      short_line["truncated"] = true;
      stub = short_line.dump();
      ring_text = &stub;
    }
    const std::uint64_t index =
        impl.ring_head.fetch_add(1, std::memory_order_relaxed);
    Impl::write_slot(impl.slots[index % kRingSlots], ring_text->data(),
                     ring_text->size());
    if (index < kPinnedSlots) {
      Impl::write_slot(impl.pinned[index], ring_text->data(),
                       ring_text->size());
    }
  }
  if (impl.sink_open.load(std::memory_order_relaxed)) {
    const auto buffer = impl.thread_buffer();
    const std::scoped_lock lock(buffer->mutex);
    buffer->lines.push_back(std::move(text));
  }
}

void EventLog::flush() {
  Impl& impl = *impl_;
  const std::scoped_lock lock(impl.mutex);
  if (impl.sink_fd < 0) return;
  std::string out;
  for (const auto& buffer : impl.buffers) {
    std::vector<std::string> lines;
    {
      const std::scoped_lock buffer_lock(buffer->mutex);
      lines.swap(buffer->lines);
    }
    for (const std::string& line : lines) {
      out += line;
      out += '\n';
    }
  }
  if (!out.empty()) {
    require_io(write_all(impl.sink_fd, out.data(), out.size()),
               "EventLog: write to '" + impl.sink_path + "' failed");
  }
}

std::vector<std::string> EventLog::ring_snapshot() const {
  Impl& impl = *impl_;
  std::vector<std::string> out;
  const std::uint64_t head = impl.ring_head.load(std::memory_order_acquire);
  const std::uint64_t count = head < kRingSlots ? head : kRingSlots;
  const std::uint64_t start = head - count;
  char local[kSlotBytes];
  // Pinned prefix: events the ring window no longer covers.
  const std::uint64_t pinned =
      start < kPinnedSlots ? start : std::uint64_t{kPinnedSlots};
  for (std::uint64_t i = 0; i < pinned; ++i) {
    const std::uint32_t length = Impl::read_slot(impl.pinned[i], local);
    if (length > 0) out.emplace_back(local, length);
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t length =
        Impl::read_slot(impl.slots[(start + i) % kRingSlots], local);
    if (length > 0) out.emplace_back(local, length);
  }
  return out;
}

void EventLog::dump_flight_recorder() const {
  Impl& impl = *impl_;
  if (!impl.ring_armed.load(std::memory_order_acquire)) return;
  std::string path;
  {
    const std::scoped_lock lock(impl.mutex);
    path = impl.ring_path;
  }
  std::string out;
  for (const std::string& line : ring_snapshot()) {
    out += line;
    out += '\n';
  }
  atomic_write_file(path, out);
  kFlightDumps.inc();
}

void EventLog::dump_flight_recorder_signal_safe() const noexcept {
  // Async-signal-safe: open/write/fsync/close/rename only, fixed-size
  // stack buffers, paths precomputed at arm time, relaxed atomics.
  Impl& impl = *impl_;
  if (!impl.ring_armed.load(std::memory_order_acquire)) return;
  const int fd = ::open(impl.sig_tmp_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  char local[kSlotBytes + 1];
  const std::uint64_t head = impl.ring_head.load(std::memory_order_acquire);
  const std::uint64_t count = head < kRingSlots ? head : kRingSlots;
  const std::uint64_t start = head - count;
  const std::uint64_t pinned =
      start < kPinnedSlots ? start : std::uint64_t{kPinnedSlots};
  for (std::uint64_t i = 0; i < pinned + count; ++i) {
    const Impl::RingSlot& slot =
        i < pinned ? impl.pinned[i]
                   : impl.slots[(start + (i - pinned)) % kRingSlots];
    const std::uint32_t length = Impl::read_slot(slot, local);
    if (length == 0) continue;
    local[length] = '\n';
    if (!write_all(fd, local, length + 1)) break;
  }
  ::fsync(fd);
  ::close(fd);
  if (::rename(impl.sig_tmp_path, impl.sig_final_path) == 0) {
    kFlightDumps.inc();
  }
}

}  // namespace iarank::util
