/// \file pool.hpp
/// \brief Monotonic bump allocator with reset-not-free semantics, plus a
///        trivially-copyable vector (`PoolVec`) built on top of it.
///
/// The DP kernel's per-solve state — arena lanes, frontier lanes, wake
/// lists, the search heap — is short-lived, identically shaped solve to
/// solve, and hot. A `MonotonicPool` serves it from a chain of retained
/// chunks: allocation is a pointer bump, `reset()` rewinds to the first
/// chunk without returning memory to the heap, and after one warm-up
/// solve the high-water chunk covers every later solve, so steady-state
/// heap traffic is zero (the `IARANK_COUNT_ALLOCS` hook is the referee;
/// DESIGN.md Section 10.6).
///
/// Accounting: bytes handed out since the last reset (`bytes_used`), the
/// lifetime high-water of that figure (`high_water_bytes`), chunks
/// currently retained (`chunk_count`) and chunks ever heap-allocated
/// (`chunks_allocated`) back the `iarank_pool_*` gauges.
///
/// Not thread-safe: one pool per kernel, one kernel per thread.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace iarank::util {

class MonotonicPool {
 public:
  /// `chunk_bytes` is the size of the first chunk; later chunks double
  /// until they cover the request (oversized requests get a dedicated
  /// chunk of exactly the aligned request size).
  explicit MonotonicPool(std::size_t chunk_bytes = std::size_t{1} << 16)
      : default_chunk_bytes_(chunk_bytes < kMinChunk ? kMinChunk
                                                     : chunk_bytes) {}

  MonotonicPool(const MonotonicPool&) = delete;
  MonotonicPool& operator=(const MonotonicPool&) = delete;

  ~MonotonicPool() { release(); }

  /// Bump-allocates `bytes` aligned to `align` (a power of two; alignment
  /// is applied to the absolute address, so requests beyond
  /// alignof(std::max_align_t) are honored too). Never returns nullptr
  /// for bytes == 0 (a one-past pointer into the current chunk is handed
  /// out instead).
  void* allocate(std::size_t bytes, std::size_t align) {
    Chunk* c = current_;
    if (c != nullptr) {
      if (void* p = try_bump(c, bytes, align)) return p;
      // Reuse an already-retained successor before touching the heap:
      // after reset() the chain still holds last round's chunks.
      while (c->next != nullptr) {
        c = c->next;
        c->used = 0;
        current_ = c;
        if (void* p = try_bump(c, bytes, align)) return p;
      }
    }
    return allocate_slow(bytes, align);
  }

  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to the first chunk. Retains every chunk for reuse — the
  /// whole point: a kernel that resets between solves stops allocating
  /// once its first solve has established the high-water footprint.
  void reset() {
    current_ = head_;
    if (current_ != nullptr) current_->used = 0;
    bytes_used_ = 0;
  }

  /// Returns every chunk to the heap (destructor behaviour).
  void release() {
    Chunk* c = head_;
    while (c != nullptr) {
      Chunk* next = c->next;
      std::free(c);
      c = next;
    }
    head_ = current_ = nullptr;
    bytes_used_ = 0;
  }

  /// Bytes handed out since the last reset (excludes alignment padding).
  [[nodiscard]] std::int64_t bytes_used() const {
    return static_cast<std::int64_t>(bytes_used_);
  }
  /// Lifetime maximum of bytes_used().
  [[nodiscard]] std::int64_t high_water_bytes() const {
    return static_cast<std::int64_t>(high_water_bytes_);
  }
  /// Chunks currently retained.
  [[nodiscard]] std::int64_t chunk_count() const {
    return static_cast<std::int64_t>(chunk_count_);
  }
  /// Chunks ever requested from the heap (monotone; flat once warm).
  [[nodiscard]] std::int64_t chunks_allocated() const {
    return static_cast<std::int64_t>(chunks_allocated_);
  }
  /// Total capacity of the retained chunks.
  [[nodiscard]] std::int64_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk* c = head_; c != nullptr; c = c->next) {
      total += c->capacity;
    }
    return static_cast<std::int64_t>(total);
  }

 private:
  struct Chunk {
    Chunk* next = nullptr;
    std::size_t capacity = 0;
    std::size_t used = 0;
    [[nodiscard]] std::byte* data() {
      return reinterpret_cast<std::byte*>(this) + kHeaderBytes;
    }
  };
  // Chunk payloads start at a maximally-aligned offset past the header.
  static constexpr std::size_t kHeaderBytes =
      (sizeof(Chunk) + alignof(std::max_align_t) - 1) /
      alignof(std::max_align_t) * alignof(std::max_align_t);
  static constexpr std::size_t kMinChunk = 1024;

  static std::size_t align_up(std::size_t n, std::size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  /// Bump within `c` if the aligned request fits; nullptr otherwise.
  /// The offset is chosen so the absolute address is aligned (the chunk
  /// payload itself is only guaranteed max_align_t alignment).
  void* try_bump(Chunk* c, std::size_t bytes, std::size_t align) {
    const auto base = reinterpret_cast<std::uintptr_t>(c->data());
    const std::size_t aligned =
        static_cast<std::size_t>(align_up(base + c->used, align) - base);
    if (aligned + bytes > c->capacity) return nullptr;
    c->used = aligned + bytes;
    bytes_used_ += bytes;
    if (bytes_used_ > high_water_bytes_) high_water_bytes_ = bytes_used_;
    return c->data() + aligned;
  }

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Doubling growth, floored at the default and at the request itself
    // (+ worst-case alignment slack); an oversized request simply gets a
    // chunk of its own size.
    std::size_t want = default_chunk_bytes_;
    if (current_ != nullptr && current_->capacity * 2 > want) {
      want = current_->capacity * 2;
    }
    const std::size_t need = bytes + align;
    if (need > want) want = need;

    void* raw = std::malloc(kHeaderBytes + want);
    if (raw == nullptr) throw std::bad_alloc();
    auto* chunk = new (raw) Chunk{};
    chunk->capacity = want;
    ++chunk_count_;
    ++chunks_allocated_;

    if (current_ != nullptr) {
      current_->next = chunk;
    } else {
      head_ = chunk;
    }
    current_ = chunk;

    // capacity >= bytes + align, so the aligned bump always fits.
    return try_bump(chunk, bytes, align);
  }

  const std::size_t default_chunk_bytes_;
  Chunk* head_ = nullptr;
  Chunk* current_ = nullptr;
  std::size_t bytes_used_ = 0;
  std::size_t high_water_bytes_ = 0;
  std::size_t chunk_count_ = 0;
  std::size_t chunks_allocated_ = 0;
};

/// Vector of trivially-copyable elements backed by a MonotonicPool. Grow
/// allocates a fresh block and memcpys; the old block is abandoned to the
/// pool until the next reset — acceptable for per-solve scratch whose
/// capacity is reserved up front. Invalidated by the pool's reset();
/// callers re-reserve each solve.
template <typename T>
class PoolVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  PoolVec() = default;
  explicit PoolVec(MonotonicPool* pool) : pool_(pool) {}

  void attach(MonotonicPool* pool) {
    pool_ = pool;
    data_ = nullptr;
    size_ = cap_ = 0;
  }

  void reserve(std::size_t n) {
    if (n <= cap_) return;
    T* fresh = pool_->allocate_array<T>(n);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    cap_ = n;
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow();
    data_[size_++] = v;
  }

  void resize(std::size_t n) {
    if (n > cap_) reserve(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = T{};
    size_ = n;
  }

  void clear() { size_ = 0; }
  void pop_back() { --size_; }

  /// Sets the size without initializing elements. Caller guarantees
  /// `n <= capacity` (reserve first) and writes the elements itself —
  /// the lane-loop idiom of the DP kernel.
  void set_size(std::size_t n) { size_ = n; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  void grow() { reserve(cap_ == 0 ? 8 : cap_ * 2); }

  MonotonicPool* pool_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace iarank::util
