/// \file strings.hpp
/// \brief Tiny string toolkit (trim/split/parse) used by the config parser
///        and the WLD file readers.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iarank::util {

/// Removes leading and trailing whitespace (space, tab, CR, LF).
[[nodiscard]] std::string_view trim(std::string_view text);

/// Splits `text` on `delimiter`, trimming each piece. Empty pieces are kept
/// so that "a,,b" yields {"a", "", "b"}.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delimiter);

/// Parses a double, throwing util::Error (with the offending text in the
/// message) on failure or trailing garbage.
[[nodiscard]] double parse_double(std::string_view text);

/// Parses a non-negative integer, throwing util::Error on failure.
[[nodiscard]] long long parse_int(std::string_view text);

/// True when `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace iarank::util
