/// \file strings.hpp
/// \brief Tiny string toolkit (trim/split/parse) used by the config parser
///        and the WLD file readers.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iarank::util {

/// Removes leading and trailing whitespace (space, tab, CR, LF).
[[nodiscard]] std::string_view trim(std::string_view text);

/// Splits `text` on `delimiter`, trimming each piece. Empty pieces are kept
/// so that "a,,b" yields {"a", "", "b"}.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delimiter);

/// Parses a double, throwing util::Error (with the offending text in the
/// message) on failure or trailing garbage.
[[nodiscard]] double parse_double(std::string_view text);

/// Parses a non-negative integer, throwing util::Error on failure.
[[nodiscard]] long long parse_int(std::string_view text);

/// True when `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Locale-independent double formatting built on std::to_chars. The
/// printf family ("%f", "%g") and ostream insertion both honour
/// LC_NUMERIC / the global C++ locale, so a long-lived process started
/// under a comma-decimal locale would emit "0,5" into CSV, JSON and
/// Prometheus exports. These always produce the C-locale spelling.
///
/// format_double_fixed:    printf "%.*f" equivalent
/// format_double_sci:      printf "%.*e" equivalent
/// format_double_general:  printf "%.*g" equivalent
/// format_double_shortest: shortest spelling that parses back bitwise
///                         identical (to_chars round-trip guarantee)
[[nodiscard]] std::string format_double_fixed(double value, int precision);
[[nodiscard]] std::string format_double_sci(double value, int precision);
[[nodiscard]] std::string format_double_general(double value, int precision);
[[nodiscard]] std::string format_double_shortest(double value);

}  // namespace iarank::util
