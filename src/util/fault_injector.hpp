/// \file fault_injector.hpp
/// \brief Deterministic fault injection with named, statically registered
///        sites — zero-cost when disabled.
///
/// Failure paths deserve the same rigor as success paths: `rank_tool
/// faultcheck` sweeps one-shot failures across every registered site and
/// asserts each one surfaces as an isolated per-point status — never a
/// crash, hang, or corrupted builder cache. A site is declared once per
/// translation unit:
///
/// \code
///   static const util::FaultSite kSiteDp{"core.dp_rank"};
///   ...
///   util::maybe_inject(kSiteDp);  // throws util::Error(kInternal) when armed
/// \endcode
///
/// Cost model: when no fault is armed, maybe_inject is a single relaxed
/// atomic bool load and a predictable branch — nothing is counted, locked
/// or allocated, so production runs pay (near) zero. When armed (or in
/// counting mode), every hit is tallied under a mutex and the armed
/// site's nth hit throws `util::Error("injected fault at <site> ...",
/// ErrorCategory::kInternal)`.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace iarank::util {

/// One named injection point. Construct only as a namespace-scope static
/// (registration happens in the constructor, before main).
class FaultSite {
 public:
  explicit FaultSite(const char* name);
  [[nodiscard]] const char* name() const { return name_; }

 private:
  const char* name_;
};

class FaultInjector {
 public:
  /// The process-wide injector.
  static FaultInjector& instance();

  /// Every registered site, in registration order.
  [[nodiscard]] static const std::vector<const FaultSite*>& sites();

  /// Hot-path gate, checked by maybe_inject before anything else.
  [[nodiscard]] static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Arms a one-shot fault: the `nth` hit (1-based) of `site` throws.
  /// Resets all hit counters.
  void arm(std::string_view site, std::int64_t nth);

  /// Counting mode: tally hits per site without ever throwing. Used by
  /// faultcheck to learn how often each site fires in a workload.
  void start_counting();

  /// Disables injection and counting; counters survive until the next
  /// arm/start_counting so callers can read them.
  void disarm();

  /// True when the armed fault has thrown.
  [[nodiscard]] bool fired() const;

  /// Hits of `site` since the last arm/start_counting.
  [[nodiscard]] std::int64_t hits(std::string_view site) const;

  /// Called by maybe_inject when enabled; may throw the injected Error.
  void on_hit(const FaultSite& site);

 private:
  FaultInjector() = default;
  static std::atomic<bool>& enabled_flag();
  friend class FaultSite;
  static std::vector<const FaultSite*>& mutable_sites();

  mutable std::mutex mutex_;
  std::map<std::string, std::int64_t, std::less<>> hit_counts_;
  std::string armed_site_;
  std::int64_t armed_nth_ = 0;
  bool counting_ = false;
  bool fired_ = false;
};

/// The per-site hook. Zero-cost when injection is disabled.
inline void maybe_inject(const FaultSite& site) {
  if (!FaultInjector::enabled()) [[likely]] return;
  FaultInjector::instance().on_hit(site);
}

}  // namespace iarank::util
