/// \file event_log.hpp
/// \brief Process-wide structured event sink: JSONL file log plus a
///        bounded in-memory "flight recorder" ring.
///
/// The event log is the request-scoped complement to util::Trace (spans)
/// and util::MetricsRegistry (aggregates): discrete, timestamped,
/// structured records of what the process did — a slow request with its
/// stage breakdown, a backpressure trip, a worker claiming a chunk. Two
/// sinks share one `emit()` call:
///
///  - a JSONL file sink (`open()`): events buffer per thread (one mutex
///    push each, no global lock on the hot path) and `flush()` drains
///    them to an O_APPEND fd. Lines within a thread stay FIFO; across
///    threads the file order is arbitrary — consumers sort by `ts_ms`.
///  - a flight recorder (`arm_flight_recorder()`): a fixed ring of
///    preallocated slots holding the most recent events, plus a pinned
///    prefix of the first kPinnedSlots events (a long run's lifecycle
///    context survives the ring wrapping), dumped to a precomputed path
///    on demand (`dump_flight_recorder()`, via util::atomic_write_file)
///    or from a fatal-signal handler
///    (`dump_flight_recorder_signal_safe()`, raw syscalls only — the
///    paths are precomputed at arm time because a handler may not
///    allocate). Slots are seqlocked so a dump taken concurrently with
///    writers never emits a torn line.
///
/// Cost model mirrors util::Trace: `enabled()` is one relaxed atomic
/// load, and every call site gates on it, so a binary that never opens
/// a log or arms the recorder pays (almost) nothing.
///
/// Event line schema (one JSON object per line; keys serialize sorted):
///
///   {"fields":{...},"sev":"info","ts_ms":1717171717000,"type":"..."}
///
/// `ts_ms` is wall-clock milliseconds, `sev` one of debug|info|warn|
/// error, `type` a dotted event name (e.g. "request.slow"), `fields`
/// an optional object of event-specific data. tests/validate_events.py
/// checks this schema.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/json.hpp"

namespace iarank::util {

enum class Severity { kDebug, kInfo, kWarn, kError };

[[nodiscard]] const char* severity_name(Severity sev);

class EventLog {
 public:
  /// The process-wide instance (leaked on purpose: signal handlers and
  /// exit paths must never race its destruction).
  static EventLog& instance();

  /// Opens the JSONL file sink (O_APPEND, created 0644) and enables the
  /// log. Throws util::Error if a sink is already open or on I/O error.
  void open(const std::string& path);

  /// Flushes the per-thread buffers and closes the file sink. No-op when
  /// no sink is open.
  void close();

  /// Arms the flight recorder: subsequent events are (also) recorded in
  /// the in-memory ring, and the dump paths are precomputed so the
  /// signal-safe dump needs no allocation. Re-arming re-points the dump.
  void arm_flight_recorder(const std::string& path);
  void disarm_flight_recorder();
  [[nodiscard]] bool flight_recorder_armed() const;
  [[nodiscard]] std::string flight_recorder_path() const;

  /// True when a file sink is open or the flight recorder is armed. One
  /// relaxed atomic load — every emit call site gates on this.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one event (no-op unless enabled). Lines longer than
  /// kSlotBytes are replaced in the ring by a short `"truncated":true`
  /// stub so the dump stays valid JSONL; the file sink keeps the full
  /// line.
  void emit(Severity sev, std::string_view type, Json fields = Json());

  /// Drains every thread's buffered lines to the file sink.
  void flush();

  /// Dumps the ring (oldest first) atomically to the armed path. Normal
  /// code paths only — allocates. No-op when not armed.
  void dump_flight_recorder() const;

  /// Async-signal-safe dump: raw open/write/fsync/rename on the paths
  /// precomputed at arm time. Best effort; never throws or allocates.
  void dump_flight_recorder_signal_safe() const noexcept;

  /// The recorder contents, oldest first (tests and the normal-path
  /// dump): the pinned prefix (events that fell out of the ring), then
  /// the ring window.
  [[nodiscard]] std::vector<std::string> ring_snapshot() const;

  static constexpr std::size_t kRingSlots = 256;
  static constexpr std::size_t kSlotBytes = 768;
  /// The first events of a run are pinned outside the ring: a wrapped
  /// dump still carries the tool/sweep lifecycle context (who ran, with
  /// what arguments) that the newest kRingSlots events have evicted.
  static constexpr std::size_t kPinnedSlots = 16;

 private:
  EventLog();

  struct Impl;
  Impl* impl_;  ///< leaked with the singleton
  std::atomic<bool> enabled_{false};
};

}  // namespace iarank::util
