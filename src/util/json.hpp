/// \file json.hpp
/// \brief Minimal, locale-independent JSON value type (parse + serialize).
///
/// The rank server's wire protocol and the bench snapshots need JSON that
/// behaves identically regardless of the process locale and round-trips
/// doubles bitwise. Numbers are parsed with std::from_chars and written
/// with std::to_chars (shortest round-trip spelling), so
/// `Json::parse(v.dump())` reproduces every finite double exactly — the
/// property the server's bitwise-determinism contract rests on.
///
/// Scope: full JSON values (null, bool, number, string with \uXXXX
/// escapes incl. surrogate pairs, array, object). Objects are ordered
/// maps, so `dump()` is deterministic: equal values serialize to equal
/// bytes. Number syntax is the std::from_chars superset of JSON's (e.g.
/// leading zeros parse); nothing we emit uses the difference.
///
/// Errors: parse() and the checked accessors throw util::Error
/// (kBadInput). dump() throws util::Error (kInternal) on non-finite
/// numbers — JSON has no spelling for them, and silently emitting null
/// would corrupt the protocol.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace iarank::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;  ///< null
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(std::int64_t v) : type_(Type::kNumber), int_(v), is_int_(true) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(std::string_view s) : Json(std::string(s)) {}
  Json(const char* s) : Json(std::string(s)) {}
  Json(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  /// Parses one JSON document (trailing garbage rejected). Throws
  /// util::Error(kBadInput) with a byte offset on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  /// Compact, deterministic serialization (no whitespace, object keys in
  /// map order, doubles in shortest round-trip form).
  [[nodiscard]] std::string dump() const;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  // Checked accessors; throw util::Error(kBadInput) on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Requires an integral number representable in int64 (either parsed
  /// without fraction/exponent, or a double with zero fraction inside
  /// the exactly-representable range).
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  // Object helpers.
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Member lookup; throws util::Error(kBadInput) when missing or when
  /// this value is not an object.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Member lookup; nullptr when missing (still throws on non-objects).
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Insert-or-assign on an object (null values become empty objects
  /// first, matching the common builder idiom `j["k"] = v`).
  Json& operator[](const std::string& key);

  /// Append to an array (null values become empty arrays first).
  void push_back(Json v);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;  ///< number stored in int_ (exact), not num_
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace iarank::util
