/// \file stopwatch.hpp
/// \brief Minimal wall-clock stopwatch for the profiling hooks.
///
/// Wraps std::chrono::steady_clock; used by the sweep engine, the staged
/// instance builder and the DP to report per-stage wall time. Timing
/// fields are observability only — they never influence results.

#pragma once

#include <chrono>

namespace iarank::util {

/// Starts running on construction; `seconds()` reads without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace iarank::util
