/// \file rng.hpp
/// \brief Deterministic, portable random-number plumbing.
///
/// The differential self-check harness (core/selfcheck) prints seeds as
/// bug repros, so the stream behind a seed must be bit-identical across
/// compilers, standard libraries and platforms. `std::mt19937_64` gives
/// that for the raw engine, but the `std::uniform_*_distribution` adapters
/// are implementation-defined — the same seed yields different scenarios
/// under libstdc++ and libc++. This header therefore implements both the
/// generator (xoshiro256++, seeded through splitmix64) and the
/// distributions from scratch.
///
/// `fork(stream)` derives statistically independent substreams from one
/// master seed, so a scenario sampler can hand each component (WLD, stack,
/// options) its own stream and stay reproducible even when one component
/// changes how many variates it draws.

#pragma once

#include <cstdint>

namespace iarank::util {

/// xoshiro256++ by Blackman & Vigna (public domain reference
/// implementation), state-seeded with splitmix64 as its authors recommend.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  /// Next raw 64-bit word.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi; returns lo when equal.
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in the inclusive range [lo, hi]. Modulo reduction:
  /// the bias is < span / 2^64 — irrelevant for test sampling — and the
  /// mapping is fully deterministic and portable.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// True with probability `p` (clamped to [0, 1]).
  bool chance(double p) { return uniform01() < p; }

  /// Picks an index in [0, count) — convenience for array choices.
  std::size_t pick(std::size_t count) {
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(count) - 1));
  }

  /// Derives an independent generator for substream `stream`: the child is
  /// seeded from a splitmix64 hash of (master state, stream), so children
  /// with different stream ids never correlate and the parent's own
  /// sequence is not consumed.
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    std::uint64_t x = state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL);
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64(x);
    return child;
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace iarank::util
