#include "src/util/build_info.hpp"

#include <chrono>

#include "src/util/metrics.hpp"

// Baked in by src/util/CMakeLists.txt at configure time; the fallbacks
// keep non-CMake compiles (tooling, IDE indexers) working.
#ifndef IARANK_GIT_DESCRIBE
#define IARANK_GIT_DESCRIBE "unknown"
#endif
#ifndef IARANK_COMPILER
#define IARANK_COMPILER "unknown"
#endif
#ifndef IARANK_SANITIZE_FLAGS
#define IARANK_SANITIZE_FLAGS "none"
#endif

namespace iarank::util {

namespace {

struct StartStamp {
  std::chrono::system_clock::time_point wall;
  std::chrono::steady_clock::time_point mono;
};

const StartStamp& start_stamp() {
  static const StartStamp* stamp = new StartStamp{
      std::chrono::system_clock::now(), std::chrono::steady_clock::now()};
  return *stamp;
}

// Force the stamp as early as static initialization reaches this TU, so
// "uptime" means process lifetime, not time-since-first-scrape.
const StartStamp& kEarlyStamp = start_stamp();

std::string escape_label(const std::string& value) {
  std::string out;
  for (const char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

const std::string& build_info_metric_name() {
  static const std::string* name = [] {
    const BuildInfo& info = build_info();
    return new std::string("iarank_build_info{git=\"" +
                           escape_label(info.git) + "\",compiler=\"" +
                           escape_label(info.compiler) + "\",sanitize=\"" +
                           escape_label(info.sanitize) + "\"}");
  }();
  return *name;
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo* info = new BuildInfo{
      IARANK_GIT_DESCRIBE, IARANK_COMPILER, IARANK_SANITIZE_FLAGS};
  return *info;
}

double process_start_time_seconds() {
  return std::chrono::duration<double>(start_stamp().wall.time_since_epoch())
      .count();
}

double process_uptime_seconds() {
  (void)kEarlyStamp;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_stamp().mono)
      .count();
}

void register_build_metrics() {
  MetricsRegistry::gauge(
      build_info_metric_name(),
      "Build metadata; value is always 1, the labels carry the info")
      .set(1);
  MetricsRegistry::gauge("iarank_process_start_time_seconds",
                         "Unix time the process started")
      .set(static_cast<std::int64_t>(process_start_time_seconds()));
  touch_uptime();
}

void touch_uptime() {
  MetricsRegistry::gauge("iarank_process_uptime_seconds",
                         "Seconds since process start, refreshed per export")
      .set(static_cast<std::int64_t>(process_uptime_seconds()));
}

Json build_info_json() {
  const BuildInfo& info = build_info();
  Json out;
  out["git"] = info.git;
  out["compiler"] = info.compiler;
  out["sanitize"] = info.sanitize;
  out["start_time"] = process_start_time_seconds();
  out["uptime_seconds"] = process_uptime_seconds();
  return out;
}

}  // namespace iarank::util
