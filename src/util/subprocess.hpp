/// \file subprocess.hpp
/// \brief fork()-based child process helpers for the explore coordinator.
///
/// The coordinator shards work across real processes (not threads) so a
/// crashing or SIGKILLed worker cannot take the run down. Children run a
/// C++ callable in the forked image and _exit() with its return value —
/// there is no exec, so a child shares the parent's code but must not
/// return into the parent's stack (gtest main, atexit handlers, static
/// destructors are all skipped by _exit).
///
/// Fork-ordering discipline: fork before creating threads. A child forked
/// after ThreadPool::shared() exists inherits a threadless pool;
/// parallel_for detects this by pid and runs inline (see thread_pool.hpp),
/// but any *other* lock held by a non-forked thread at fork time is
/// undefined — so the coordinator forks all workers before doing any
/// threaded work of its own.

#pragma once

#include <sys/types.h>

#include <functional>
#include <optional>

namespace iarank::util {

/// Terminal state of a waited-for child.
struct ChildExit {
  pid_t pid = -1;
  bool exited = false;     ///< normal _exit; exit_code valid
  int exit_code = -1;
  bool signaled = false;   ///< killed by a signal; term_signal valid
  int term_signal = 0;

  [[nodiscard]] bool ok() const { return exited && exit_code == 0; }
};

/// Forks and runs `body` in the child, flushing stdio first so buffered
/// output is not emitted twice. The child calls _exit(body()); an
/// exception escaping `body` becomes exit code 125. Throws util::Error
/// (kInternal) when fork fails.
[[nodiscard]] pid_t spawn_child(const std::function<int()>& body);

/// Non-blocking reap of any child. Returns nullopt when no child has
/// exited (or none exist).
[[nodiscard]] std::optional<ChildExit> try_wait_any();

/// Blocking wait for one specific child.
[[nodiscard]] ChildExit wait_child(pid_t pid);

}  // namespace iarank::util
