/// \file status.hpp
/// \brief Per-item outcome carried by the fault-tolerant batch drivers.
///
/// The sweep engine, the optimizer, the annealer and the sensitivity
/// analysis evaluate many independent points; a throwing point must not
/// discard the rest of the grid. Each point therefore carries a Status:
/// kOk for a normal result, otherwise the failure category plus message.
/// Failed points render as `n/a (<reason>)` in tables and CSV.

#pragma once

#include <exception>
#include <string>

#include "src/util/error.hpp"

namespace iarank::util {

/// Outcome categories of one evaluated point. Mirrors ErrorCategory with
/// an explicit success state and a timeout bucket for cancelled work.
enum class StatusCode {
  kOk,
  kBadInput,   ///< the point's parameters were invalid
  kInfeasible, ///< no solution exists for the point
  kInternal,   ///< engine invariant broke (or a fault was injected)
  kTimedOut,   ///< the point was cancelled before completing
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kBadInput: return "bad-input";
    case StatusCode::kInfeasible: return "infeasible";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kTimedOut: return "timed-out";
  }
  return "unknown";
}

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  [[nodiscard]] bool ok() const { return code == StatusCode::kOk; }

  [[nodiscard]] static Status make_ok() { return {}; }

  [[nodiscard]] static Status failure(StatusCode code, std::string message) {
    return {code, std::move(message)};
  }

  /// Maps a caught exception to a Status: util::Error categories carry
  /// over; anything else is an internal failure.
  [[nodiscard]] static Status from_exception(const std::exception& e) {
    if (const auto* err = dynamic_cast<const Error*>(&e)) {
      switch (err->category()) {
        case ErrorCategory::kBadInput:
          return failure(StatusCode::kBadInput, err->what());
        case ErrorCategory::kInfeasible:
          return failure(StatusCode::kInfeasible, err->what());
        case ErrorCategory::kIo:
        case ErrorCategory::kInternal:
          return failure(StatusCode::kInternal, err->what());
      }
    }
    return failure(StatusCode::kInternal, e.what());
  }

  /// `n/a (<category>: <message>)` label for tables and CSV cells. The
  /// message is flattened (commas and newlines replaced) so the label is
  /// safe inside one CSV field.
  [[nodiscard]] std::string label() const {
    if (ok()) return "ok";
    std::string flat = message;
    for (char& c : flat) {
      if (c == ',' || c == '\n' || c == '\r') c = ';';
    }
    std::string out = "n/a (";
    out += to_string(code);
    if (!flat.empty()) {
      out += ": ";
      out += flat;
    }
    out += ")";
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code == b.code && a.message == b.message;
  }
};

}  // namespace iarank::util
