#include "src/util/table.hpp"

#include <algorithm>
#include <ostream>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iarank::util {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) {
  require(rows_.empty(), "TextTable: set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  const std::size_t expected =
      !header_.empty() ? header_.size()
                       : (!rows_.empty() ? rows_.front().size() : row.size());
  require(row.size() == expected, "TextTable: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  // snprintf honours LC_NUMERIC; table/CSV cells must not change spelling
  // when the embedding process runs under a comma-decimal locale.
  return format_double_fixed(value, precision);
}

std::string TextTable::sci(double value, int precision) {
  return format_double_sci(value, precision);
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << row[i];
      os << std::string(widths[i] - row[i].size(), ' ');
    }
    os << " |\n";
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    os << "|";
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << "|";
    os << "\n";
  }
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  table.print(os);
  return os;
}

}  // namespace iarank::util
