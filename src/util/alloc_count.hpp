/// \file alloc_count.hpp
/// \brief Process-wide operator-new counter exported as iarank_alloc_total.
///
/// Built behind the IARANK_COUNT_ALLOCS cmake option (ON by default, which
/// defines IARANK_ALLOC_COUNTER for every target linking iarank_util).
/// When enabled, alloc_count.cpp replaces the global operator new/delete
/// family with malloc-backed versions that bump one constant-initialized
/// relaxed atomic — safe from the first static initializer onward, and one
/// relaxed fetch_add per allocation when enabled.
///
/// The raw count is mirrored into a registry gauge (`iarank_alloc_total`)
/// lazily at export time via sync_alloc_counter(), called by
/// MetricsRegistry::save()/snapshot_values(): the hot path never touches
/// the registry, and the metrics.cpp call is what drags this translation
/// unit out of the static archive so the replacement operators actually
/// link in.
///
/// This is the allocation regression guard ROADMAP item 2 asks for: the
/// steady-state test pins the warm-sweep allocation delta, so a kernel
/// change that starts allocating per point fails loudly.

#pragma once

#include <cstdint>

namespace iarank::util {

/// True when the build replaces operator new (IARANK_COUNT_ALLOCS=ON).
[[nodiscard]] bool alloc_counter_enabled();

/// Allocations since process start (0 when the counter is disabled).
[[nodiscard]] std::int64_t alloc_total();

/// Copies alloc_total() into the `iarank_alloc_total` registry gauge.
/// No-op when disabled (the gauge is then never registered, keeping the
/// export schema honest about what was measured).
void sync_alloc_counter();

}  // namespace iarank::util
