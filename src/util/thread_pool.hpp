/// \file thread_pool.hpp
/// \brief Persistent worker pool shared by every parallel driver.
///
/// The sweep engine, the architecture optimizer, the annealer restarts and
/// the sensitivity analysis all fan independent rank evaluations out over
/// the same process-wide pool instead of spawning raw std::threads per
/// call. Guarantees:
///
///  * deterministic result ordering — parallel_for hands each task its
///    index, so callers write results[i] and ordering never depends on
///    scheduling;
///  * exception propagation — the lowest-index failure among executed
///    tasks is rethrown on the calling thread;
///  * no nested deadlock — the calling thread always participates in its
///    own batch, so a batch completes even when every worker is busy (or
///    the pool has zero workers on a single-core host).

#pragma once

#include <sys/types.h>

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iarank::util {

class ThreadPool {
 public:
  /// Spawns `workers` persistent threads (0 is allowed: every batch then
  /// runs inline on the calling thread).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(0) .. fn(n-1) with at most `parallelism` tasks in flight
  /// (0 = workers + the calling thread). Blocks until every index ran.
  /// Indices are claimed from a shared counter, so ordering of *writes*
  /// is up to the caller (index into a presized vector for deterministic
  /// output). If any invocation throws, the exception of the lowest
  /// executed failing index is rethrown after the batch drains; remaining
  /// unclaimed indices are skipped.
  void parallel_for(std::size_t n, unsigned parallelism,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: indices are claimed in blocks of `grain` from the
  /// shared counter, cutting per-index atomic traffic when fn is cheap
  /// (e.g. the instance builder's per-bunch plan loop). Semantics match
  /// the single-index overload — fn(i) runs exactly once per executed
  /// index, the lowest executed failing index is rethrown, and the
  /// calling thread participates — except that a failure also skips the
  /// remaining indices of its own block. grain == 0 behaves as 1.
  void parallel_for(std::size_t n, unsigned parallelism, std::size_t grain,
                    const std::function<void(std::size_t)>& fn);

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// The process-wide pool, sized to the hardware concurrency. Created on
  /// first use; lives until process exit.
  static ThreadPool& shared();

 private:
  void worker_loop();

  /// fork() does not duplicate worker threads, so a child that inherits a
  /// pool created by its parent must never enqueue work on it (the queue
  /// would grow unbounded and the inherited mutex may be mid-acquire).
  /// parallel_for detects this by pid and runs inline in the child.
  const pid_t creator_pid_;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  bool stopping_ = false;
};

}  // namespace iarank::util
