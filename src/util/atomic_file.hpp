/// \file atomic_file.hpp
/// \brief Crash-safe whole-file writes: write-temp, fsync, rename.
///
/// Every artefact rank_tool produces (CSV exports, reports, checkpoint
/// journal headers) goes through atomic_write_file, so a crash — or a
/// SIGKILL mid-write — can never leave a truncated or interleaved file
/// behind: readers observe either the previous content or the complete
/// new content, never a prefix.

#pragma once

#include <string>
#include <string_view>

namespace iarank::util {

/// Writes `content` to `path` atomically: the bytes land in a temporary
/// sibling file (`<path>.tmp.<pid>`), are fsync'd to stable storage, and
/// the temporary is renamed over `path` (POSIX rename atomicity). The
/// containing directory is fsync'd afterwards so the rename itself
/// survives a power cut. Throws util::Error (category kIo) on any
/// failure; the temporary is removed on the error path.
void atomic_write_file(const std::string& path, std::string_view content);

}  // namespace iarank::util
