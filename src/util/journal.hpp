/// \file journal.hpp
/// \brief Append-only, CRC-guarded checkpoint journal for resumable runs.
///
/// A journal binds a file to one unit of work via a 64-bit key (the
/// caller digests whatever defines the work — see util/digest.hpp). Each
/// completed item appends one CRC-32-guarded record `(index, payload)`;
/// after a crash or SIGKILL, reopening the journal recovers every intact
/// record and the run resumes with only the missing items.
///
/// Crash-safety model:
///  * the header (and any compaction) is written through
///    util::atomic_write_file, so the file is never observed half-made;
///  * appends go to an O_APPEND descriptor and are flushed per record; a
///    record is durable once appended (fsync per record when requested);
///  * a torn tail — the partial line of an append cut short by a crash —
///    fails its CRC; on reopen the valid prefix is kept and the file is
///    compacted (atomically) before new appends, so garbage never
///    concatenates with fresh records.
///
/// A key mismatch (the file belongs to different work) restarts the
/// journal: the stale file is atomically replaced by a fresh header and
/// `restarted()` reports it, so drivers can tell the user their
/// checkpoint was not resumable rather than silently mixing results.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace iarank::util {

class CheckpointJournal {
 public:
  struct Options {
    /// fsync after every append. Right for short grids (a Table 4 sweep);
    /// off for high-frequency journals (a 100k-seed selfcheck), where the
    /// CRC guard alone bounds the loss to the records after the last
    /// flush the kernel wrote out.
    bool fsync_each_append = true;
  };

  /// Result of a read-only scan of a journal file (see scan()).
  struct Scan {
    std::map<std::int64_t, std::string> entries;  ///< intact records
    bool exists = false;        ///< the file could be opened at all
    bool key_matches = false;   ///< header present and bound to `key`
    bool torn_tail = false;     ///< a trailing torn/corrupt record was dropped
  };

  /// Reads every intact record of `path` without mutating the file: no
  /// compaction, no header rewrite, no append descriptor. This is the
  /// merge-side view of a journal another process may still be appending
  /// to (or died while appending to) — a torn tail is reported, not
  /// repaired. A missing file or key mismatch yields empty entries with
  /// the corresponding flags cleared. Throws util::Error (kIo) only for
  /// read failures on an openable file (and via the `util.journal.scan`
  /// fault site under injection).
  [[nodiscard]] static Scan scan(const std::string& path, std::uint64_t key);

  /// Opens or creates `path` for the work keyed `key`. Loads every intact
  /// record from a previous run with the same key into `entries()`.
  /// Throws util::Error (kIo) when the file cannot be created or written.
  CheckpointJournal(std::string path, std::uint64_t key, Options options);
  CheckpointJournal(std::string path, std::uint64_t key);
  ~CheckpointJournal();

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Records recovered on open (empty for a fresh or restarted journal).
  [[nodiscard]] const std::map<std::int64_t, std::string>& entries() const {
    return entries_;
  }

  /// True when an existing file was discarded (wrong key or corrupt
  /// header) instead of resumed.
  [[nodiscard]] bool restarted() const { return restarted_; }

  /// True when a resumed file had a torn/corrupt tail that was dropped.
  [[nodiscard]] bool salvaged_tail() const { return salvaged_tail_; }

  /// Appends one record. `payload` may contain any bytes (newlines and
  /// backslashes are escaped). Thread-safe; durable per Options.
  void append(std::int64_t index, std::string_view payload);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t key() const { return key_; }

  /// Bytes appended by this process (journal overhead accounting).
  [[nodiscard]] std::int64_t bytes_appended() const { return bytes_appended_; }

 private:
  void open_for_append();

  std::string path_;
  std::uint64_t key_ = 0;
  Options options_;
  std::map<std::int64_t, std::string> entries_;
  bool restarted_ = false;
  bool salvaged_tail_ = false;
  std::int64_t bytes_appended_ = 0;

  std::mutex mutex_;
  int fd_ = -1;  ///< POSIX append descriptor (-1 on fallback platforms)
};

}  // namespace iarank::util
