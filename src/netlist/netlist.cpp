#include "src/netlist/netlist.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace iarank::netlist {

Netlist::Netlist(std::int32_t gate_count, std::vector<Net> nets)
    : gate_count_(gate_count), nets_(std::move(nets)) {
  iarank::util::require(gate_count_ >= 1, "Netlist: gate_count must be >= 1");
  for (const Net& net : nets_) {
    iarank::util::require(net.pins.size() >= 2, "Netlist: net needs >= 2 pins");
    for (const std::int32_t pin : net.pins) {
      iarank::util::require(pin >= 0 && pin < gate_count_,
                            "Netlist: pin out of range");
    }
  }
}

std::int64_t Netlist::pin_count() const {
  std::int64_t pins = 0;
  for (const Net& net : nets_) pins += static_cast<std::int64_t>(net.pins.size());
  return pins;
}

double Netlist::average_degree() const {
  if (nets_.empty()) return 0.0;
  return static_cast<double>(pin_count()) / static_cast<double>(nets_.size());
}

std::vector<RentPoint> rent_characteristic(const Netlist& netlist) {
  std::vector<RentPoint> points;
  const std::int64_t n = netlist.gate_count();
  for (std::int64_t size = 4; size < n; size *= 4) {
    const std::int64_t blocks = n / size;
    if (blocks < 2) break;
    std::vector<std::int64_t> crossings(static_cast<std::size_t>(blocks), 0);
    for (const Net& net : netlist.nets()) {
      // Count this net once per block it crosses into/out of.
      std::int64_t first_block = net.pins.front() / size;
      bool multi = false;
      for (const std::int32_t pin : net.pins) {
        if (pin / size != first_block) {
          multi = true;
          break;
        }
      }
      if (!multi) continue;
      // Mark every block touched by the net.
      std::vector<std::int64_t> touched;
      for (const std::int32_t pin : net.pins) {
        const std::int64_t b = pin / size;
        if (std::find(touched.begin(), touched.end(), b) == touched.end()) {
          touched.push_back(b);
        }
      }
      for (const std::int64_t b : touched) {
        ++crossings[static_cast<std::size_t>(b)];
      }
    }
    double total = 0.0;
    for (const std::int64_t c : crossings) total += static_cast<double>(c);
    points.push_back({size, total / static_cast<double>(blocks)});
  }
  return points;
}

RentFit fit_rent(const std::vector<RentPoint>& points) {
  iarank::util::require(points.size() >= 2, "fit_rent: need >= 2 points");
  // Least squares on log T = log k + p log n.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const double count = static_cast<double>(points.size());
  for (const RentPoint& pt : points) {
    iarank::util::require(pt.block_gates > 0 && pt.avg_terminals > 0.0,
                          "fit_rent: non-positive point");
    const double x = std::log(static_cast<double>(pt.block_gates));
    const double y = std::log(pt.avg_terminals);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  RentFit fit;
  fit.exponent = (count * sxy - sx * sy) / (count * sxx - sx * sx);
  fit.coefficient = std::exp((sy - fit.exponent * sx) / count);
  return fit;
}

}  // namespace iarank::netlist
