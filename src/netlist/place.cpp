#include "src/netlist/place.hpp"

#include <algorithm>
#include <limits>

#include "src/util/error.hpp"

namespace iarank::netlist {

Position z_order_position(std::int32_t gate_id) {
  iarank::util::require(gate_id >= 0, "z_order_position: negative id");
  Position pos;
  auto id = static_cast<std::uint32_t>(gate_id);
  for (int bit = 0; id != 0; ++bit) {
    pos.x |= static_cast<std::int32_t>((id & 1u) << bit);
    id >>= 1u;
    pos.y |= static_cast<std::int32_t>((id & 1u) << bit);
    id >>= 1u;
  }
  return pos;
}

double net_length(const Net& net) {
  iarank::util::require(!net.pins.empty(), "net_length: empty net");
  std::int32_t min_x = std::numeric_limits<std::int32_t>::max();
  std::int32_t max_x = std::numeric_limits<std::int32_t>::min();
  std::int32_t min_y = min_x;
  std::int32_t max_y = max_x;
  for (const std::int32_t pin : net.pins) {
    const Position p = z_order_position(pin);
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  return static_cast<double>((max_x - min_x) + (max_y - min_y));
}

wld::Wld extract_wld(const Netlist& netlist) {
  std::vector<wld::WireGroup> groups;
  groups.reserve(netlist.net_count());
  for (const Net& net : netlist.nets()) {
    const double length = net_length(net);
    if (length >= 1.0) groups.push_back({length, 1});
  }
  return wld::Wld(std::move(groups));
}

}  // namespace iarank::netlist
