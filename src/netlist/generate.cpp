#include "src/netlist/generate.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <random>

#include "src/util/error.hpp"

namespace iarank::netlist {

void GeneratorParams::validate() const {
  iarank::util::require(levels >= 1 && levels <= 12,
                        "GeneratorParams: levels must be in [1, 12]");
  iarank::util::require(rent_p > 0.0 && rent_p < 1.0,
                        "GeneratorParams: rent_p must be in (0, 1)");
  iarank::util::require(rent_k > 0.0, "GeneratorParams: rent_k must be > 0");
  iarank::util::require(two_pin_fraction >= 0.0 && two_pin_fraction <= 1.0,
                        "GeneratorParams: two_pin_fraction must be in [0, 1]");
}

namespace {

/// Open terminal stubs of a block: gate ids that still want connections.
using Stubs = std::vector<std::int32_t>;

}  // namespace

Netlist generate_netlist(const GeneratorParams& params) {
  params.validate();
  std::mt19937_64 rng(params.seed);

  const std::int64_t n_total = params.gate_count();
  iarank::util::require(n_total <= (std::int64_t{1} << 24),
                        "generate_netlist: too many gates");

  // Level 0: each gate exposes ~rent_k stubs (rounded stochastically so
  // the average matches a fractional k).
  std::vector<Stubs> blocks(static_cast<std::size_t>(n_total));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const auto k_floor = static_cast<int>(std::floor(params.rent_k));
  const double k_frac = params.rent_k - static_cast<double>(k_floor);
  for (std::int64_t g = 0; g < n_total; ++g) {
    const int stubs = k_floor + (unit(rng) < k_frac ? 1 : 0);
    blocks[static_cast<std::size_t>(g)].assign(
        static_cast<std::size_t>(std::max(1, stubs)),
        static_cast<std::int32_t>(g));
  }

  std::vector<Net> nets;
  std::int64_t block_gates = 1;

  for (int level = 1; level <= params.levels; ++level) {
    block_gates *= 4;
    std::vector<Stubs> merged(blocks.size() / 4);
    for (std::size_t b = 0; b < merged.size(); ++b) {
      // Collect the four children's stubs, tagged by child for diversity.
      std::array<Stubs*, 4> children{&blocks[4 * b], &blocks[4 * b + 1],
                                     &blocks[4 * b + 2], &blocks[4 * b + 3]};
      std::int64_t have = 0;
      for (const Stubs* c : children) {
        have += static_cast<std::int64_t>(c->size());
      }
      const double want =
          params.rent_k * std::pow(static_cast<double>(block_gates),
                                   params.rent_p);
      std::int64_t to_absorb =
          have - static_cast<std::int64_t>(std::llround(want));

      // Absorb stubs into internal nets. Each net takes one stub from
      // each of `pins` distinct children (guaranteeing the net crosses
      // child boundaries, as a merge-level net should).
      for (Stubs* c : children) {
        std::shuffle(c->begin(), c->end(), rng);
      }
      while (to_absorb >= 2) {
        const int pins =
            (unit(rng) < params.two_pin_fraction || to_absorb < 3)
                ? 2
                : (unit(rng) < 0.5 ? 3 : 4);
        // Pick `pins` children with non-empty stub lists.
        std::array<int, 4> order{0, 1, 2, 3};
        std::shuffle(order.begin(), order.end(), rng);
        Net net;
        for (const int ci : order) {
          if (static_cast<int>(net.pins.size()) == pins) break;
          Stubs& c = *children[static_cast<std::size_t>(ci)];
          if (!c.empty()) {
            net.pins.push_back(c.back());
            c.pop_back();
          }
        }
        if (net.pins.size() < 2) {
          // Children exhausted unevenly; take from any non-empty child.
          for (Stubs* c : children) {
            while (net.pins.size() < 2 && !c->empty()) {
              net.pins.push_back(c->back());
              c->pop_back();
            }
          }
        }
        if (net.pins.size() < 2) break;  // nothing left to absorb
        to_absorb -= static_cast<std::int64_t>(net.pins.size());
        nets.push_back(std::move(net));
      }

      // Surviving stubs become the merged block's terminals.
      Stubs& up = merged[b];
      for (Stubs* c : children) {
        up.insert(up.end(), c->begin(), c->end());
        c->clear();
        c->shrink_to_fit();
      }
    }
    blocks = std::move(merged);
  }

  // Top-level leftovers would be primary I/O; the paper's WLD covers
  // gate-to-gate wires only, so they are dropped.
  return Netlist(static_cast<std::int32_t>(n_total), std::move(nets));
}

}  // namespace iarank::netlist
