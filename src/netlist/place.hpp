/// \file place.hpp
/// \brief Hierarchical (Z-order) placement and wire-length extraction.
///
/// The generator's block hierarchy maps directly onto the sqrt(N) x
/// sqrt(N) gate array: the four children of a block occupy its four
/// quadrants, i.e. gate id -> position is the Morton (Z-order) decoding
/// of the id. This is the placement implied by the recursive Rent
/// construction, and the one under which the Davis derivation's
/// occupancy argument applies. Net lengths are extracted as Manhattan
/// distance (2-pin nets) or half-perimeter wirelength (multi-pin nets),
/// in gate pitches — ready to feed core::compute_rank.

#pragma once

#include <cstdint>
#include <utility>

#include "src/netlist/netlist.hpp"
#include "src/wld/wld.hpp"

namespace iarank::netlist {

/// Grid position of a gate [gate pitches].
struct Position {
  std::int32_t x = 0;
  std::int32_t y = 0;
};

/// Morton decoding: gate id -> (x, y) on the 2^levels x 2^levels grid.
/// Throws util::Error when id is negative.
[[nodiscard]] Position z_order_position(std::int32_t gate_id);

/// Net length under the given placement: Manhattan distance for 2-pin
/// nets, half-perimeter wirelength for multi-pin nets [gate pitches].
[[nodiscard]] double net_length(const Net& net);

/// Extracts the placed WLD of a netlist (zero-length nets — all pins on
/// one gate site — are dropped, as are nets shorter than 1 pitch).
[[nodiscard]] wld::Wld extract_wld(const Netlist& netlist);

}  // namespace iarank::netlist
