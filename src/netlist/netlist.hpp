/// \file netlist.hpp
/// \brief Gate-level netlist container with Rent-statistics estimation.
///
/// The paper takes its WLD from the *a priori* Davis model (reference
/// [4]), which is itself derived from Rent's rule on a placed gate array.
/// This substrate closes the loop: a synthetic netlist with a prescribed
/// Rent exponent (netlist/generate), placed on the same sqrt(N) x sqrt(N)
/// array (netlist/place), yields an *extracted* WLD whose agreement with
/// the Davis closed form is checked in tests and bench_netlist_wld — and
/// which can drive rank computations directly, making the metric
/// design-dependent in the literal sense.

#pragma once

#include <cstdint>
#include <vector>

namespace iarank::netlist {

/// A multi-pin net: the gates it connects (no direction, no weights).
struct Net {
  std::vector<std::int32_t> pins;  ///< gate ids, distinct
};

/// An immutable-after-build netlist over gates 0..gate_count-1.
class Netlist {
 public:
  Netlist(std::int32_t gate_count, std::vector<Net> nets);

  [[nodiscard]] std::int32_t gate_count() const { return gate_count_; }
  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }
  [[nodiscard]] std::size_t net_count() const { return nets_.size(); }

  /// Total pin count over all nets.
  [[nodiscard]] std::int64_t pin_count() const;

  /// Average pins per net.
  [[nodiscard]] double average_degree() const;

 private:
  std::int32_t gate_count_ = 0;
  std::vector<Net> nets_;
};

/// One point of the Rent characteristic: blocks of `block_gates` gates
/// expose on average `avg_terminals` external net crossings.
struct RentPoint {
  std::int64_t block_gates = 0;
  double avg_terminals = 0.0;
};

/// Least-squares fit T = k n^p over the given points (log-log).
struct RentFit {
  double exponent = 0.0;     ///< p
  double coefficient = 0.0;  ///< k
};

/// Measures the Rent characteristic of a netlist under a given placement
/// hierarchy: gates are assumed placed in Z-order (netlist/place), so the
/// contiguous id range [b*size, (b+1)*size) is a physical block. For each
/// power-of-4 block size, counts nets crossing the block boundary.
[[nodiscard]] std::vector<RentPoint> rent_characteristic(const Netlist& netlist);

/// Fits the Rent parameters; throws util::Error with fewer than 2 points.
[[nodiscard]] RentFit fit_rent(const std::vector<RentPoint>& points);

}  // namespace iarank::netlist
