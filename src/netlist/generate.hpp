/// \file generate.hpp
/// \brief Rent-driven synthetic netlist generation.
///
/// Bottom-up construction (after Stroobandt's gnl-style generators): the
/// N = 4^L gates start as singleton blocks, each exposing k terminal
/// stubs; at every level four sibling blocks merge, and Rent's rule says
/// the merged block of n gates exposes T = k n^p terminals — so the merge
/// must *absorb* the surplus 4 k (n/4)^p - k n^p stubs by wiring them
/// into nets internal to the new block (pins drawn from distinct
/// siblings). Gate ids are assigned so every level-l block is the
/// contiguous id range of 4^l gates, which is also its physical quadrant
/// under the Z-order placement (netlist/place).

#pragma once

#include <cstdint>

#include "src/netlist/netlist.hpp"

namespace iarank::netlist {

/// Generation parameters.
struct GeneratorParams {
  int levels = 6;            ///< N = 4^levels gates
  double rent_p = 0.6;       ///< target Rent exponent
  double rent_k = 4.0;       ///< terminals of a single gate
  double two_pin_fraction = 0.75;  ///< fraction of 2-pin nets; rest 3-4 pin
  std::uint64_t seed = 1;

  [[nodiscard]] std::int64_t gate_count() const {
    std::int64_t n = 1;
    for (int i = 0; i < levels; ++i) n *= 4;
    return n;
  }

  /// Throws util::Error on out-of-range values.
  void validate() const;
};

/// Generates the netlist; deterministic per seed.
[[nodiscard]] Netlist generate_netlist(const GeneratorParams& params);

}  // namespace iarank::netlist
