/// \file iarank.hpp
/// \brief Umbrella header for the iarank library.
///
/// iarank reproduces "A Novel Metric for Interconnect Architecture
/// Performance" (Dasgupta, Kahng, Muddu — DATE 2003): the *rank* of an
/// interconnect architecture with respect to a wire length distribution,
/// computed by optimal assignment of wires to layer-pairs with repeater
/// insertion under a repeater-area budget and via blockage.
///
/// Quick start:
/// \code
///   using namespace iarank;
///   const core::DesignSpec design = core::baseline_design("130nm");
///   const core::RankOptions options;  // Table 2 baseline
///   const core::RankResult r = core::compute_rank(design, options);
///   std::cout << "normalized rank: " << r.normalized << "\n";
/// \endcode

#pragma once

// Utilities
#include "src/util/atomic_file.hpp"
#include "src/util/config.hpp"
#include "src/util/digest.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"
#include "src/util/journal.hpp"
#include "src/util/numeric.hpp"
#include "src/util/status.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

// Technology substrate
#include "src/tech/architecture.hpp"
#include "src/tech/device.hpp"
#include "src/tech/die.hpp"
#include "src/tech/layer.hpp"
#include "src/tech/material.hpp"
#include "src/tech/node.hpp"
#include "src/tech/noise.hpp"
#include "src/tech/rc.hpp"
#include "src/tech/scaling.hpp"
#include "src/tech/io.hpp"
#include "src/tech/tuning.hpp"
#include "src/tech/via.hpp"

// Wire length distributions
#include "src/wld/coarsen.hpp"
#include "src/wld/davis.hpp"
#include "src/wld/discrete.hpp"
#include "src/wld/io.hpp"
#include "src/wld/synthetic.hpp"
#include "src/wld/wld.hpp"

// Synthetic netlists and placement
#include "src/netlist/generate.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/place.hpp"

// Delay models
#include "src/delay/ladder.hpp"
#include "src/delay/model.hpp"
#include "src/delay/stack.hpp"
#include "src/delay/target.hpp"

// The rank metric
#include "src/core/anneal.hpp"
#include "src/core/brute_force.hpp"
#include "src/core/checkpoint.hpp"
#include "src/core/config_run.hpp"
#include "src/core/dp_rank.hpp"
#include "src/core/faultcheck.hpp"
#include "src/core/engine.hpp"
#include "src/core/figure2.hpp"
#include "src/core/free_pack.hpp"
#include "src/core/greedy_rank.hpp"
#include "src/core/instance.hpp"
#include "src/core/optimizer.hpp"
#include "src/core/options.hpp"
#include "src/core/paper_algorithms.hpp"
#include "src/core/paper_setup.hpp"
#include "src/core/rank_result.hpp"
#include "src/core/report.hpp"
#include "src/core/reference_dp.hpp"
#include "src/core/sensitivity.hpp"
#include "src/core/sweep.hpp"
#include "src/core/verify.hpp"
