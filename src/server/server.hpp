/// \file server.hpp
/// \brief The rank daemon: a Unix/TCP listener dispatching framed JSON
///        requests onto a bounded worker pool.
///
/// Threading model (v1, thread-per-connection):
///
///   acceptor thread ── poll(listen fd, wake pipe) ──> connection threads
///   connection thread ── read frame ──> cheap requests (ping/metrics)
///                                        answered inline; rank/sweep
///                                        enqueued as jobs
///   worker threads   ── pop job ──> RankService::handle ──> fulfil
///                                   promise; the connection thread
///                                   writes the response frame
///
/// Backpressure: the job queue is a util::BoundedQueue. When it is full
/// the connection thread answers immediately with the typed `overloaded`
/// error instead of queueing unbounded work — the client's signal to back
/// off. Queue capacity bounds memory; worker count bounds CPU.
///
/// Failure isolation: a request that fails produces an error response
/// (RankService never throws); a connection whose stream breaks —
/// malformed frame, oversized frame, EPIPE mid-write — is closed without
/// touching its neighbours or the daemon.
///
/// Shutdown (SIGTERM semantics): stop() stops accepting, closes the
/// queue (already-queued jobs still run — drain, not drop), lets workers
/// finish, shuts down connection reads so blocked readers wake, and joins
/// every thread. In-flight requests get their responses before the
/// process exits 0.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/server/protocol.hpp"
#include "src/server/service.hpp"
#include "src/util/bounded_queue.hpp"

namespace iarank::server {

struct ServerOptions {
  Address address;                ///< where to listen
  unsigned workers = 4;           ///< rank/sweep executor threads
  std::size_t queue_capacity = 64;  ///< pending jobs before `overloaded`
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

class Server {
 public:
  /// Binds and listens (throws util::Error(kIo) on bind failure; a stale
  /// unix socket file with no listener behind it is replaced), starts the
  /// worker pool and the acceptor. The service must outlive the server.
  Server(RankService& service, ServerOptions options);

  /// stop() + join everything.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound address — for TCP with port 0, the kernel-assigned port.
  [[nodiscard]] const Address& address() const { return address_; }

  /// Graceful shutdown: drain queued jobs, answer in-flight requests,
  /// join all threads. Idempotent; called by the destructor.
  void stop();

  /// Blocks until stop() is called (the serve CLI parks its main thread
  /// here while the signal handler decides when to stop).
  void wait();

 private:
  struct Job;
  struct Connection;

  void accept_loop();
  void connection_loop(Connection& conn);
  void worker_loop();
  void reap_finished_connections();

  RankService& service_;
  ServerOptions options_;
  Address address_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   ///< acceptor poll() wake-up pipe
  int wake_write_fd_ = -1;

  std::unique_ptr<util::BoundedQueue<Job>> queue_;
  std::vector<std::thread> workers_;
  std::thread acceptor_;

  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;
  std::condition_variable stopped_;
  bool stop_done_ = false;
};

}  // namespace iarank::server
