/// \file server.hpp
/// \brief The rank daemon: an epoll event loop dispatching framed JSON
///        requests onto a bounded worker pool, with request batching and
///        a plain-HTTP metrics endpoint.
///
/// Threading model (v2, event loop):
///
///   io thread     ── epoll(listen fds, wake pipe, connections) ──
///                    nonblocking reads/writes with per-connection
///                    partial-frame state; cheap requests (ping/metrics/
///                    malformed) answered inline; rank/sweep staged as
///                    batches on a util::BoundedQueue
///   worker threads ── pop batch ──> RankService::handle once ──> fan the
///                    response out to every request coalesced onto the
///                    batch, then wake the io thread to write
///
/// Batching: queued `rank` requests whose canonical JSON is identical
/// (same config+override key) coalesce onto one open batch — one staged
/// InstanceBuilder build and one DP answer them all. Because responses
/// are a pure function of the parsed request, a batched response is
/// bitwise-identical to the unbatched one (property-tested). A batch
/// stays open for attachment until its worker finishes computing, so
/// near-simultaneous duplicates coalesce even mid-execution.
///
/// Ordering: one connection's responses are written strictly in request
/// order (a FIFO of pending response slots per connection), so clients
/// may pipeline. A connection with too many in-flight requests stops
/// being read until responses drain — per-connection backpressure on top
/// of the queue's `overloaded` rejection.
///
/// HTTP: when enabled, a second listener speaks plain HTTP on the same
/// event loop: `GET /metrics` returns the Prometheus text exposition
/// (correct Content-Type, cumulative `le` buckets with `+Inf`),
/// `GET /metrics.json` the JSON export, `GET /healthz` a liveness probe
/// carrying the build-info JSON. Real scrapers attach here without
/// speaking the framed protocol.
///
/// Debug surfaces (same listener): `GET /debug/requests` returns the
/// recent-request ring (request_id, stage timings, batch coalescing) as
/// JSON, `GET /debug/slow` the ring of requests over the `--slow-ms`
/// threshold, and `GET /debug/trace?ms=N` enables util::Trace for a
/// bounded window and answers with the Chrome-trace JSON capture (one
/// capture at a time; concurrent requests get 409).
///
/// Failure isolation: a request that fails produces an error response
/// (RankService never throws); a connection whose stream breaks —
/// malformed frame, oversized frame, EPIPE mid-write, HTTP garbage — is
/// closed without touching its neighbours or the daemon.
///
/// Shutdown (SIGTERM semantics): stop() stops accepting and reading,
/// closes the queue (already-queued batches still run — drain, not
/// drop), joins workers, flushes every pending response through the
/// event loop, and joins it. In-flight requests get their responses
/// before the process exits 0.
///
/// Unix-socket startup is guarded by an flock'd lockfile next to the
/// socket path: the probe-then-unlink-then-bind sequence for stale
/// socket files runs under the lock, so two daemons racing startup can
/// never unlink each other's live socket (the TOCTOU fix).

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/server/context.hpp"
#include "src/server/protocol.hpp"
#include "src/server/service.hpp"
#include "src/util/bounded_queue.hpp"

namespace iarank::server {

struct ServerOptions {
  Address address;                ///< where the framed protocol listens
  unsigned workers = 4;           ///< rank/sweep executor threads
  std::size_t queue_capacity = 64;  ///< pending batches before `overloaded`
  std::size_t max_frame_bytes = kMaxFrameBytes;

  /// Per-connection cap on requests awaiting responses; beyond it the
  /// connection is not read until responses drain (pipelining bound).
  std::size_t max_pipelined = 128;

  /// >= 0 enables the plain-HTTP listener on http_host:http_port
  /// (0 = kernel-assigned). -1 disables it.
  int http_port = -1;
  std::string http_host = "127.0.0.1";

  /// Requests slower than this land in the /debug/slow ring (and the
  /// event log as `request.slow`); <= 0 disables slow capture.
  double slow_ms = 100.0;
};

class Server {
 public:
  /// Binds and listens (throws util::Error(kIo) on bind failure; a stale
  /// unix socket file with no listener behind it is replaced under the
  /// startup lockfile), starts the worker pool and the event loop. The
  /// service must outlive the server.
  Server(RankService& service, ServerOptions options);

  /// stop() + join everything.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound address — for TCP with port 0, the kernel-assigned port.
  [[nodiscard]] const Address& address() const { return address_; }

  /// The bound HTTP address; meaningful only when http_enabled().
  [[nodiscard]] const Address& http_address() const { return http_address_; }
  [[nodiscard]] bool http_enabled() const { return http_listen_fd_ >= 0; }

  /// Graceful shutdown: drain queued batches, answer in-flight requests,
  /// join all threads. Idempotent; called by the destructor.
  void stop();

  /// Blocks until stop() is called (the serve CLI parks its main thread
  /// here while the signal handler decides when to stop).
  void wait();

  /// The /debug/requests + /debug/slow rings (tests poke at thresholds).
  [[nodiscard]] RequestLog& request_log() { return request_log_; }

 private:
  /// One response awaiting its place on the wire. Slots are filled by
  /// the io thread (inline requests) or by workers via the completion
  /// queue; only the io thread reads them.
  struct Slot {
    std::string bytes;        ///< response payload (framed/HTTP at flush)
    bool ready = false;
    bool close_after = false;  ///< stream is done after this response
    /// Trace context of the framed request this slot answers (null for
    /// HTTP and poisoned-stream slots). Recorded into request_log_ when
    /// the response is staged on the wire.
    std::shared_ptr<RequestContext> context;
  };

  /// Per-connection state, owned and mutated by the io thread only.
  struct Connection {
    int fd = -1;
    bool http = false;
    bool read_closed = false;       ///< EOF seen or stream poisoned
    bool close_after_flush = false;
    std::uint32_t armed_events = 0;  ///< current epoll interest set
    std::string in;                 ///< unparsed inbound bytes
    std::size_t in_off = 0;
    std::string out;                ///< outbound bytes not yet written
    std::size_t out_off = 0;
    std::deque<std::shared_ptr<Slot>> pending;  ///< responses, FIFO
  };

  /// One unit of executor work: the canonical request text plus every
  /// (connection, slot) waiting on its response. `targets` is guarded by
  /// batch_mutex_ while the batch is open for attachment.
  struct Batch {
    std::string text;  ///< canonical request payload handed to the service
    std::string key;   ///< coalescing key; empty = never coalesced
    std::vector<std::pair<std::shared_ptr<Connection>, std::shared_ptr<Slot>>>
        targets;
    /// The first target's context: the request whose execution answers
    /// the batch. The worker fills its stage timings.
    std::shared_ptr<RequestContext> context;
    std::chrono::steady_clock::time_point enqueued{};  ///< queue-wait origin
  };

  struct Completion {
    std::shared_ptr<Connection> conn;
    std::shared_ptr<Slot> slot;
  };

  void io_loop();
  void worker_loop();
  void wake();

  void on_accept(int listen_fd, bool http);
  void on_readable(const std::shared_ptr<Connection>& conn);
  void process_input(const std::shared_ptr<Connection>& conn);
  void process_http_input(const std::shared_ptr<Connection>& conn);
  void dispatch_framed(const std::shared_ptr<Connection>& conn,
                       std::string payload);
  void finish_batch(const std::shared_ptr<Batch>& batch,
                    const std::string& response);
  void apply_completions();

  /// Completes an in-flight /debug/trace capture once its deadline (or a
  /// forced finish at shutdown) arrives. io thread only.
  void maybe_finish_trace_capture(bool force);

  /// Alternates flush / parse-buffered-input until neither makes
  /// progress. Needed because progress can be gated in both directions:
  /// flushing drains `pending` below the pipelining cap, which re-opens
  /// parsing of bytes already sitting in `in` — bytes a level-triggered
  /// epoll will never signal again.
  void pump(const std::shared_ptr<Connection>& conn);
  void flush_connection(Connection& conn);
  void update_interest(Connection& conn);
  void close_connection(Connection& conn);
  [[nodiscard]] bool wants_read(const Connection& conn) const;

  RankService& service_;
  ServerOptions options_;
  Address address_;
  Address http_address_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int http_listen_fd_ = -1;
  int lock_fd_ = -1;        ///< flock'd <socket>.lock (unix only)
  int wake_read_fd_ = -1;   ///< event-loop wake-up pipe
  int wake_write_fd_ = -1;

  std::unique_ptr<util::BoundedQueue<std::shared_ptr<Batch>>> queue_;
  std::vector<std::thread> workers_;
  std::thread io_thread_;

  /// io thread's connection table (fd -> state). Never touched by
  /// workers; they hold shared_ptrs via batches/completions only.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  std::mutex batch_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Batch>> open_batches_;

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  RequestLog request_log_;
  std::atomic<std::uint64_t> next_request_id_{0};

  /// One bounded on-demand trace capture at a time (io thread only).
  struct TraceCapture {
    bool active = false;
    std::shared_ptr<Connection> conn;
    std::shared_ptr<Slot> slot;
    std::chrono::steady_clock::time_point deadline{};
  };
  TraceCapture trace_capture_;
  std::chrono::steady_clock::time_point last_overload_dump_{};

  std::atomic<bool> stopping_{false};
  std::atomic<bool> drain_done_{false};  ///< workers joined; final flush
  std::mutex stop_mutex_;
  std::condition_variable stopped_;
  bool stop_done_ = false;
};

}  // namespace iarank::server
