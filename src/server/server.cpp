#include "src/server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <future>

#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/metrics.hpp"

namespace iarank::server {

namespace {

// The transport layer answers some requests without reaching
// RankService::handle (queue full, shutdown, oversized frame); it keeps
// the same books so requests_total == ok + failed always holds.
util::Counter& kRequestsTotal =
    util::MetricsRegistry::counter("iarank_server_requests_total");
util::Counter& kRequestsFailed =
    util::MetricsRegistry::counter("iarank_server_requests_failed_total");
util::Counter& kOverloaded = util::MetricsRegistry::counter(
    "iarank_server_overloaded_total",
    "requests rejected because the job queue was full");
util::Gauge& kQueueDepth = util::MetricsRegistry::gauge(
    "iarank_server_queue_depth", "jobs waiting for a worker");
util::Counter& kConnections = util::MetricsRegistry::counter(
    "iarank_server_connections_total", "connections accepted");

/// Extracts the request type without failing: a payload that is not a
/// JSON object (or has no string `type`) classifies as "" and is answered
/// inline — RankService::handle produces the malformed/bad-input response
/// cheaply.
std::string classify(const std::string& payload) {
  try {
    const util::Json parsed = util::Json::parse(payload);
    if (parsed.is_object()) {
      const util::Json* type = parsed.find("type");
      if (type != nullptr && type->is_string()) return type->as_string();
    }
  } catch (...) {
  }
  return std::string();
}

bool is_executor_request(const std::string& type) {
  return type == "rank" || type == "sweep" || type == "sleep";
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

int bind_unix(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  util::require_io(path.size() < sizeof(sa.sun_path),
                   "serve: unix socket path too long: " + path);
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  util::require_io(fd >= 0, "serve: socket() failed");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) return fd;

  if (errno == EADDRINUSE) {
    // A socket file with a live listener behind it is a real conflict; a
    // stale file left by a crashed daemon is safe to replace. Probing
    // with connect() tells them apart.
    Address probe;
    probe.kind = Address::Kind::kUnix;
    probe.path = path;
    bool live = true;
    try {
      int probe_fd = connect_to(probe);
      ::close(probe_fd);
    } catch (const util::Error&) {
      live = false;
    }
    if (!live) {
      ::unlink(path.c_str());
      if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) {
        return fd;
      }
    } else {
      ::close(fd);
      throw util::Error("serve: '" + path + "' already has a listener",
                        util::ErrorCategory::kIo);
    }
  }
  const int err = errno;
  ::close(fd);
  throw util::Error(
      "serve: cannot bind '" + path + "': " + std::strerror(err),
      util::ErrorCategory::kIo);
}

int bind_tcp(const std::string& host, int& port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  util::require_io(::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) == 1,
                   "serve: invalid IPv4 address '" + host + "'");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  util::require_io(fd >= 0, "serve: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    const int err = errno;
    ::close(fd);
    throw util::Error("serve: cannot bind tcp:" + host + ":" +
                          std::to_string(port) + ": " + std::strerror(err),
                      util::ErrorCategory::kIo);
  }
  if (port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      port = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  return fd;
}

}  // namespace

struct Server::Job {
  std::string text;
  std::promise<std::string> response;
};

struct Server::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};
};

Server::Server(RankService& service, ServerOptions options)
    : service_(service), options_(std::move(options)), address_(options_.address) {
  // A client vanishing mid-response must surface as a per-connection
  // write error, not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  if (address_.kind == Address::Kind::kUnix) {
    listen_fd_ = bind_unix(address_.path);
  } else {
    listen_fd_ = bind_tcp(address_.host, address_.port);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    close_fd(listen_fd_);
    throw util::Error(
        std::string("serve: listen() failed: ") + std::strerror(err),
        util::ErrorCategory::kIo);
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    close_fd(listen_fd_);
    throw util::Error("serve: pipe() failed", util::ErrorCategory::kIo);
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  queue_ = std::make_unique<util::BoundedQueue<Job>>(options_.queue_capacity);
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() {
  stop();
  close_fd(listen_fd_);
  close_fd(wake_read_fd_);
  close_fd(wake_write_fd_);
  if (address_.kind == Address::Kind::kUnix) {
    ::unlink(address_.path.c_str());
  }
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    // Another caller is (or was) tearing down; wait for it to finish.
    std::unique_lock lock(stop_mutex_);
    stopped_.wait(lock, [&] { return stop_done_; });
    return;
  }

  // 1. Stop accepting: wake the poll(), join the acceptor.
  if (wake_write_fd_ >= 0) {
    const char byte = 'x';
    ::ssize_t n;
    do {
      n = ::write(wake_write_fd_, &byte, 1);
    } while (n < 0 && errno == EINTR);
  }
  if (acceptor_.joinable()) acceptor_.join();

  // 2. Drain: no new jobs, queued jobs still run, workers exit when the
  //    queue is empty.
  queue_->close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }

  // 3. Every promise is now fulfilled; connection threads blocked on a
  //    response have it. Wake the ones blocked in read_frame (SHUT_RD
  //    delivers EOF; pending writes on the socket still complete).
  {
    const std::scoped_lock lock(connections_mutex_);
    for (const auto& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
    }
  }
  {
    const std::scoped_lock lock(connections_mutex_);
    for (auto& conn : connections_) {
      if (conn->thread.joinable()) conn->thread.join();
      close_fd(conn->fd);
    }
    connections_.clear();
  }

  {
    const std::scoped_lock lock(stop_mutex_);
    stop_done_ = true;
  }
  stopped_.notify_all();
}

void Server::wait() {
  std::unique_lock lock(stop_mutex_);
  stopped_.wait(lock, [&] { return stop_done_; });
}

void Server::reap_finished_connections() {
  const std::scoped_lock lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      close_fd((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_fd_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, 250);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    reap_finished_connections();
    if (fds[1].revents != 0) break;  // stop() knocked
    if ((fds[0].revents & POLLIN) == 0) continue;

    int client_fd;
    do {
      client_fd = ::accept(listen_fd_, nullptr, nullptr);
    } while (client_fd < 0 && errno == EINTR);
    if (client_fd < 0) continue;

    kConnections.inc();
    auto conn = std::make_unique<Connection>();
    conn->fd = client_fd;
    Connection& ref = *conn;
    {
      const std::scoped_lock lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    ref.thread = std::thread([this, &ref] { connection_loop(ref); });
  }
}

void Server::connection_loop(Connection& conn) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    FrameResult frame = read_frame(conn.fd, options_.max_frame_bytes);
    if (frame.state == FrameResult::State::kEof) break;
    if (frame.state == FrameResult::State::kError) break;
    if (frame.state == FrameResult::State::kOversized) {
      // The stream is desynchronized past this header; report and close.
      kRequestsTotal.inc();
      kRequestsFailed.inc();
      (void)write_frame(conn.fd,
                        RankService::error_response("malformed", frame.message));
      break;
    }

    std::string response;
    const std::string type = classify(frame.payload);
    if (!is_executor_request(type)) {
      // ping/metrics/malformed: cheap, answered on this thread.
      response = service_.handle(frame.payload);
    } else {
      Job job;
      job.text = std::move(frame.payload);
      std::future<std::string> pending = job.response.get_future();
      const auto pushed = queue_->try_push(std::move(job));
      kQueueDepth.set(static_cast<std::int64_t>(queue_->size()));
      switch (pushed) {
        case util::BoundedQueue<Server::Job>::PushResult::kOk:
          response = pending.get();
          break;
        case util::BoundedQueue<Server::Job>::PushResult::kFull:
          kRequestsTotal.inc();
          kRequestsFailed.inc();
          kOverloaded.inc();
          response = RankService::error_response(
              "overloaded", "job queue full; retry with backoff");
          break;
        case util::BoundedQueue<Server::Job>::PushResult::kClosed:
          kRequestsTotal.inc();
          kRequestsFailed.inc();
          response = RankService::error_response(
              "shutting-down", "server is draining; reconnect later");
          break;
      }
    }

    const util::Status wrote = write_frame(conn.fd, response);
    if (!wrote.ok()) break;  // client gone mid-write (EPIPE and friends)
  }
  conn.done.store(true, std::memory_order_release);
}

void Server::worker_loop() {
  while (true) {
    std::optional<Job> job = queue_->pop();
    if (!job.has_value()) return;  // closed and drained
    kQueueDepth.set(static_cast<std::int64_t>(queue_->size()));
    job->response.set_value(service_.handle(job->text));
  }
}

}  // namespace iarank::server
