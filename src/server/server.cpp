#include "src/server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <sstream>
#include <utility>

#include "src/util/build_info.hpp"
#include "src/util/error.hpp"
#include "src/util/event_log.hpp"
#include "src/util/json.hpp"
#include "src/util/metrics.hpp"
#include "src/util/strings.hpp"
#include "src/util/trace.hpp"

namespace iarank::server {

namespace {

// The transport layer answers some requests without reaching
// RankService::handle (queue full, shutdown, oversized frame) and fans
// one handled batch out to several requests; it keeps the same books so
// requests_total == ok + failed always holds.
util::Counter& kRequestsTotal =
    util::MetricsRegistry::counter("iarank_server_requests_total");
util::Counter& kRequestsOk =
    util::MetricsRegistry::counter("iarank_server_requests_ok_total");
util::Counter& kRequestsFailed =
    util::MetricsRegistry::counter("iarank_server_requests_failed_total");
util::Counter& kOverloaded = util::MetricsRegistry::counter(
    "iarank_server_overloaded_total",
    "requests rejected because the job queue was full");
util::Gauge& kQueueDepth = util::MetricsRegistry::gauge(
    "iarank_server_queue_depth", "batches waiting for a worker");
util::Counter& kConnections = util::MetricsRegistry::counter(
    "iarank_server_connections_total", "connections accepted");
util::Counter& kBatches = util::MetricsRegistry::counter(
    "iarank_server_batches_total",
    "executor batches run (one service call each)");
util::Counter& kBatchedRequests = util::MetricsRegistry::counter(
    "iarank_server_batched_requests_total",
    "requests answered by coalescing onto an open batch");
util::Counter& kHttpRequests = util::MetricsRegistry::counter(
    "iarank_server_http_requests_total", "plain-HTTP requests answered");
util::Histogram& kQueueWaitSeconds = util::MetricsRegistry::histogram(
    "iarank_server_queue_wait_seconds", util::Histogram::duration_bounds(),
    "batch wait from enqueue to worker pop");

/// Backpressure bounds of one connection's buffers: past these the
/// connection is not read until the peer drains responses.
constexpr std::size_t kOutHighWater = 4u << 20;
constexpr std::size_t kMaxHttpHeaderBytes = 16u << 10;

/// One parse per request: the type routes it, and the canonical dump —
/// deterministic key order, shortest number spellings — is both the
/// batching key and the payload handed to the service (two requests with
/// equal canonical form are semantically identical, so their responses
/// are byte-identical).
struct Classified {
  std::string type;       ///< "" when unparseable / not an object / no type
  std::string canonical;  ///< set iff type is
  bool traced = false;    ///< top-level `trace` field present
};

Classified classify(const std::string& payload) {
  Classified out;
  try {
    const util::Json parsed = util::Json::parse(payload);
    if (parsed.is_object()) {
      const util::Json* type = parsed.find("type");
      if (type != nullptr && type->is_string()) {
        out.type = type->as_string();
        out.canonical = parsed.dump();
        out.traced = parsed.find("trace") != nullptr;
      }
    }
  } catch (...) {
  }
  return out;
}

bool is_executor_request(const std::string& type) {
  return type == "rank" || type == "sweep" || type == "sleep";
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

bool make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Acquires the flock'd lockfile that serializes every probe/unlink/bind
/// on `path`. Two daemons racing startup used to be able to unlink each
/// other's freshly bound socket between the liveness probe and the bind
/// (TOCTOU); under the lock the whole sequence is atomic, and the lock is
/// held for the daemon's lifetime. The stat/fstat identity loop guards
/// the lockfile itself: a lock on an inode a previous holder already
/// unlinked protects nothing, so reopen until the locked inode is the one
/// on disk.
int acquire_socket_lock(const std::string& path) {
  const std::string lock_path = path + ".lock";
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                          0600);
    util::require_io(fd >= 0,
                     "serve: cannot open lockfile '" + lock_path + "'");
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      ::close(fd);
      throw util::Error("serve: '" + path +
                            "' is locked by another server (lockfile " +
                            lock_path + ")",
                        util::ErrorCategory::kIo);
    }
    struct stat on_disk {};
    struct stat held {};
    if (::stat(lock_path.c_str(), &on_disk) == 0 &&
        ::fstat(fd, &held) == 0 && on_disk.st_ino == held.st_ino &&
        on_disk.st_dev == held.st_dev) {
      return fd;
    }
    ::close(fd);
  }
  throw util::Error("serve: cannot stabilize lockfile '" + lock_path + "'",
                    util::ErrorCategory::kIo);
}

struct UnixBind {
  int fd = -1;
  int lock_fd = -1;
};

UnixBind bind_unix(const std::string& path) {
  UnixBind out;
  out.lock_fd = acquire_socket_lock(path);
  try {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    util::require_io(path.size() < sizeof(sa.sun_path),
                     "serve: unix socket path too long: " + path);
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    util::require_io(fd >= 0, "serve: socket() failed");
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) {
      out.fd = fd;
      return out;
    }

    if (errno == EADDRINUSE) {
      // A socket file with a live listener behind it is a real conflict;
      // a stale file left by a crashed daemon is safe to replace. Probing
      // with connect() tells them apart, and the lockfile held above
      // makes probe-then-unlink-then-bind atomic against other starters.
      Address probe;
      probe.kind = Address::Kind::kUnix;
      probe.path = path;
      bool live = true;
      try {
        int probe_fd = connect_to(probe);
        ::close(probe_fd);
      } catch (const util::Error&) {
        live = false;
      }
      if (!live) {
        ::unlink(path.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) {
          out.fd = fd;
          return out;
        }
      } else {
        ::close(fd);
        throw util::Error("serve: '" + path + "' already has a listener",
                          util::ErrorCategory::kIo);
      }
    }
    const int err = errno;
    ::close(fd);
    throw util::Error(
        "serve: cannot bind '" + path + "': " + std::strerror(err),
        util::ErrorCategory::kIo);
  } catch (...) {
    ::close(out.lock_fd);  // releases the flock
    throw;
  }
}

int bind_tcp(const std::string& host, int& port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  util::require_io(::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) == 1,
                   "serve: invalid IPv4 address '" + host + "'");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  util::require_io(fd >= 0, "serve: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    const int err = errno;
    ::close(fd);
    throw util::Error("serve: cannot bind tcp:" + host + ":" +
                          std::to_string(port) + ": " + std::strerror(err),
                      util::ErrorCategory::kIo);
  }
  if (port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      port = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  return fd;
}

std::string http_response(int status, const char* reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + std::string(content_type) +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Server::Server(RankService& service, ServerOptions options)
    : service_(service), options_(std::move(options)),
      address_(options_.address) {
  // A client vanishing mid-response must surface as a per-connection
  // write error, not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  request_log_.set_slow_threshold_ms(options_.slow_ms);
  util::register_build_metrics();

  if (address_.kind == Address::Kind::kUnix) {
    const UnixBind bound = bind_unix(address_.path);
    listen_fd_ = bound.fd;
    lock_fd_ = bound.lock_fd;
  } else {
    listen_fd_ = bind_tcp(address_.host, address_.port);
  }

  try {
    util::require_io(::listen(listen_fd_, 128) == 0,
                     std::string("serve: listen() failed: ") +
                         std::strerror(errno));
    util::require_io(make_nonblocking(listen_fd_),
                     "serve: cannot make listener nonblocking");

    if (options_.http_port >= 0) {
      http_address_.kind = Address::Kind::kTcp;
      http_address_.host = options_.http_host;
      http_address_.port = options_.http_port;
      http_listen_fd_ = bind_tcp(http_address_.host, http_address_.port);
      util::require_io(::listen(http_listen_fd_, 128) == 0,
                       "serve: listen() on http port failed");
      util::require_io(make_nonblocking(http_listen_fd_),
                       "serve: cannot make http listener nonblocking");
    }

    int pipe_fds[2];
    util::require_io(::pipe(pipe_fds) == 0, "serve: pipe() failed");
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
    util::require_io(make_nonblocking(wake_read_fd_),
                     "serve: cannot make wake pipe nonblocking");

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    util::require_io(epoll_fd_ >= 0, "serve: epoll_create1() failed");
    const auto watch = [&](int fd) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      util::require_io(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                       "serve: epoll_ctl(ADD) failed");
    };
    watch(listen_fd_);
    if (http_listen_fd_ >= 0) watch(http_listen_fd_);
    watch(wake_read_fd_);

    queue_ = std::make_unique<util::BoundedQueue<std::shared_ptr<Batch>>>(
        options_.queue_capacity);
    workers_.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    io_thread_ = std::thread([this] { io_loop(); });
  } catch (...) {
    close_fd(epoll_fd_);
    close_fd(wake_read_fd_);
    close_fd(wake_write_fd_);
    close_fd(listen_fd_);
    close_fd(http_listen_fd_);
    if (address_.kind == Address::Kind::kUnix) {
      ::unlink(address_.path.c_str());
      if (lock_fd_ >= 0) ::unlink((address_.path + ".lock").c_str());
    }
    close_fd(lock_fd_);
    throw;
  }
}

Server::~Server() {
  stop();
  close_fd(epoll_fd_);
  close_fd(wake_read_fd_);
  close_fd(wake_write_fd_);
  close_fd(listen_fd_);
  close_fd(http_listen_fd_);
  if (address_.kind == Address::Kind::kUnix) {
    // Unlink the socket, then the lockfile, both while still holding the
    // flock — a starter racing this shutdown sees either the live socket
    // or a clean slate, never a half-removed pair.
    ::unlink(address_.path.c_str());
    if (lock_fd_ >= 0) ::unlink((address_.path + ".lock").c_str());
  }
  close_fd(lock_fd_);
}

void Server::wake() {
  if (wake_write_fd_ < 0) return;
  const char byte = 'x';
  ::ssize_t n;
  do {
    n = ::write(wake_write_fd_, &byte, 1);
  } while (n < 0 && errno == EINTR);
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    // Another caller is (or was) tearing down; wait for it to finish.
    std::unique_lock lock(stop_mutex_);
    stopped_.wait(lock, [&] { return stop_done_; });
    return;
  }

  // 1. The io thread sees stopping_: closes the listeners and stops
  //    reading (no new requests).
  wake();

  // 2. Drain: no new batches, queued batches still run, workers exit
  //    when the queue is empty. Every accepted request now has (or will
  //    get) a completed response slot.
  queue_->close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }

  // 3. Final flush: the io thread applies the remaining completions,
  //    writes every pending response, and exits.
  drain_done_.store(true, std::memory_order_release);
  wake();
  if (io_thread_.joinable()) io_thread_.join();

  {
    const std::scoped_lock lock(stop_mutex_);
    stop_done_ = true;
  }
  stopped_.notify_all();
}

void Server::wait() {
  std::unique_lock lock(stop_mutex_);
  stopped_.wait(lock, [&] { return stop_done_; });
}

bool Server::wants_read(const Connection& conn) const {
  return !conn.read_closed &&
         conn.pending.size() < options_.max_pipelined &&
         conn.out.size() - conn.out_off < kOutHighWater &&
         !stopping_.load(std::memory_order_relaxed);
}

void Server::io_loop() {
  bool listeners_closed = false;
  bool deadline_set = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  std::vector<epoll_event> events(64);

  while (true) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && !listeners_closed) {
      listeners_closed = true;
      close_fd(listen_fd_);       // epoll interest dies with the fd
      close_fd(http_listen_fd_);
      // Stop consuming input; pending responses still flush. Copy the
      // handles: flushing an idle connection closes and erases it.
      std::vector<std::shared_ptr<Connection>> conns;
      conns.reserve(connections_.size());
      for (const auto& [fd, conn] : connections_) conns.push_back(conn);
      for (const auto& conn : conns) {
        conn->read_closed = true;
        if (conn->fd >= 0) flush_connection(*conn);
      }
    }

    apply_completions();
    maybe_finish_trace_capture(/*force=*/stopping);

    if (stopping) {
      bool completions_pending;
      {
        const std::scoped_lock lock(completion_mutex_);
        completions_pending = !completions_.empty();
      }
      if (drain_done_.load(std::memory_order_acquire) &&
          !completions_pending) {
        if (!deadline_set) {
          deadline_set = true;
          drain_deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(5);
        }
        bool busy = false;
        for (const auto& [fd, conn] : connections_) {
          if (!conn->pending.empty() || conn->out_off < conn->out.size()) {
            busy = true;
            break;
          }
        }
        // Done when every response reached the wire; the deadline guards
        // against a peer that stopped reading mid-drain.
        if (!busy || std::chrono::steady_clock::now() > drain_deadline) break;
      }
    }

    int timeout_ms = stopping ? 20 : 250;
    if (trace_capture_.active) {
      // Wake at (or just past) the capture deadline even if the loop is
      // otherwise idle, so the response is not delayed a full tick.
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              trace_capture_.deadline - std::chrono::steady_clock::now())
              .count();
      timeout_ms = static_cast<int>(
          std::clamp<long long>(remaining + 1, 1, timeout_ms));
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == wake_read_fd_) {
        char buf[256];
        while (::read(wake_read_fd_, buf, sizeof buf) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_ && listen_fd_ >= 0) {
        on_accept(listen_fd_, /*http=*/false);
        continue;
      }
      if (fd == http_listen_fd_ && http_listen_fd_ >= 0) {
        on_accept(http_listen_fd_, /*http=*/true);
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this round
      const std::shared_ptr<Connection> conn = it->second;
      if ((ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        on_readable(conn);
      }
      if (conn->fd >= 0 && (ev & EPOLLOUT) != 0) {
        flush_connection(*conn);
      }
    }
  }

  for (auto& [fd, conn] : connections_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  connections_.clear();
}

void Server::on_accept(int listen_fd, bool http) {
  while (true) {
    int fd;
    do {
      fd = ::accept(listen_fd, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return;  // EAGAIN and transient errors alike: next wakeup
    if (!make_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    if (address_.kind == Address::Kind::kTcp || http) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    kConnections.inc();
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->http = http;
    conn->armed_events = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(conn));
  }
}

void Server::on_readable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  while (conn->fd >= 0 && wants_read(*conn)) {
    const ::ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<std::size_t>(n));
      process_input(conn);
      continue;
    }
    if (n == 0) {
      conn->read_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    // ECONNRESET and friends: nothing further to deliver on this stream.
    conn->read_closed = true;
    conn->pending.clear();
    conn->out.clear();
    conn->out_off = 0;
    break;
  }
  if (conn->fd >= 0) pump(conn);
}

void Server::pump(const std::shared_ptr<Connection>& conn) {
  while (true) {
    flush_connection(*conn);
    if (conn->fd < 0) return;
    const std::size_t before = conn->in.size() - conn->in_off;
    if (before == 0) return;
    process_input(conn);
    if (conn->fd < 0) return;
    if (conn->in.size() - conn->in_off == before) return;
  }
}

void Server::process_input(const std::shared_ptr<Connection>& conn) {
  if (conn->http) {
    process_http_input(conn);
    return;
  }
  while (!conn->read_closed &&
         conn->pending.size() < options_.max_pipelined) {
    const std::size_t avail = conn->in.size() - conn->in_off;
    if (avail < 4) break;
    const auto* h =
        reinterpret_cast<const unsigned char*>(conn->in.data() + conn->in_off);
    const std::uint32_t len = (static_cast<std::uint32_t>(h[0]) << 24) |
                              (static_cast<std::uint32_t>(h[1]) << 16) |
                              (static_cast<std::uint32_t>(h[2]) << 8) |
                              static_cast<std::uint32_t>(h[3]);
    if (len > options_.max_frame_bytes) {
      // The stream is desynchronized past this header; report and close.
      kRequestsTotal.inc();
      kRequestsFailed.inc();
      auto slot = std::make_shared<Slot>();
      slot->bytes = RankService::error_response(
          "malformed", "frame of " + std::to_string(len) +
                           " bytes exceeds the limit of " +
                           std::to_string(options_.max_frame_bytes));
      slot->ready = true;
      slot->close_after = true;
      conn->pending.push_back(std::move(slot));
      conn->read_closed = true;
      break;
    }
    if (avail < 4 + static_cast<std::size_t>(len)) break;  // partial frame
    std::string payload = conn->in.substr(conn->in_off + 4, len);
    conn->in_off += 4 + static_cast<std::size_t>(len);
    dispatch_framed(conn, std::move(payload));
  }
  if (conn->in_off == conn->in.size()) {
    conn->in.clear();
    conn->in_off = 0;
  } else if (conn->in_off > (64u << 10)) {
    conn->in.erase(0, conn->in_off);
    conn->in_off = 0;
  }
}

void Server::process_http_input(const std::shared_ptr<Connection>& conn) {
  if (conn->read_closed || !conn->pending.empty()) return;
  const std::string_view buf(conn->in.data() + conn->in_off,
                             conn->in.size() - conn->in_off);
  const auto head_end = buf.find("\r\n\r\n");
  const auto respond = [&](std::string bytes) {
    auto slot = std::make_shared<Slot>();
    slot->bytes = std::move(bytes);
    slot->ready = true;
    slot->close_after = true;
    conn->pending.push_back(std::move(slot));
    conn->read_closed = true;
  };
  if (head_end == std::string_view::npos) {
    if (buf.size() > kMaxHttpHeaderBytes) {
      kHttpRequests.inc();
      respond(http_response(400, "Bad Request", "text/plain; charset=utf-8",
                            "request header too large\n"));
    }
    return;  // wait for the rest of the header
  }

  kHttpRequests.inc();
  const std::string_view line = buf.substr(0, buf.find("\r\n"));
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string_view::npos
                       ? std::string_view::npos
                       : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      line.substr(sp2 + 1).substr(0, 5) != "HTTP/") {
    respond(http_response(400, "Bad Request", "text/plain; charset=utf-8",
                          "malformed request line\n"));
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view query;
  const auto qpos = target.find('?');
  if (qpos != std::string_view::npos) {
    query = target.substr(qpos + 1);
    target = target.substr(0, qpos);
  }
  if (method != "GET") {
    respond(http_response(405, "Method Not Allowed",
                          "text/plain; charset=utf-8",
                          "only GET is supported\n"));
    return;
  }
  if (target == "/metrics") {
    util::touch_uptime();
    std::ostringstream body;
    util::MetricsRegistry::instance().write_prometheus(body);
    respond(http_response(200, "OK",
                          "text/plain; version=0.0.4; charset=utf-8",
                          body.str()));
  } else if (target == "/metrics.json") {
    util::touch_uptime();
    std::ostringstream body;
    util::MetricsRegistry::instance().write_json(body);
    respond(http_response(200, "OK", "application/json", body.str()));
  } else if (target == "/healthz") {
    // "200 OK" is the liveness signal; the body carries the build-info
    // and uptime so a probe doubles as a version check.
    util::Json out = util::build_info_json();
    out["status"] = "ok";
    respond(http_response(200, "OK", "application/json",
                          out.dump() + "\n"));
  } else if (target == "/debug/requests") {
    respond(http_response(200, "OK", "application/json",
                          request_log_.recent_json().dump() + "\n"));
  } else if (target == "/debug/slow") {
    respond(http_response(200, "OK", "application/json",
                          request_log_.slow_json().dump() + "\n"));
  } else if (target == "/debug/trace") {
    if (trace_capture_.active) {
      respond(http_response(409, "Conflict", "text/plain; charset=utf-8",
                            "a trace capture is already running\n"));
      return;
    }
    // ?ms=N bounds the capture window (default 250ms, clamped to 10s).
    std::int64_t window_ms = 250;
    const auto ms_pos = query.find("ms=");
    if (ms_pos != std::string_view::npos &&
        (ms_pos == 0 || query[ms_pos - 1] == '&')) {
      std::string_view value = query.substr(ms_pos + 3);
      value = value.substr(0, value.find('&'));
      try {
        window_ms = util::parse_int(std::string(value));
      } catch (...) {
        respond(http_response(400, "Bad Request",
                              "text/plain; charset=utf-8",
                              "ms must be an integer\n"));
        return;
      }
    }
    window_ms = std::clamp<std::int64_t>(window_ms, 1, 10000);
    // The response slot is staged now but stays un-ready until the
    // deadline; the connection just waits (it is not read meanwhile).
    auto slot = std::make_shared<Slot>();
    slot->close_after = true;
    conn->pending.push_back(slot);
    conn->read_closed = true;
    util::Trace::enable();
    trace_capture_.active = true;
    trace_capture_.conn = conn;
    trace_capture_.slot = std::move(slot);
    trace_capture_.deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(window_ms);
    return;  // no respond(): maybe_finish_trace_capture fills the slot
  } else {
    respond(http_response(404, "Not Found", "text/plain; charset=utf-8",
                          "not found\n"));
  }
}

void Server::maybe_finish_trace_capture(bool force) {
  if (!trace_capture_.active) return;
  if (!force &&
      std::chrono::steady_clock::now() < trace_capture_.deadline) {
    return;
  }
  util::Trace::disable();
  std::ostringstream body;
  util::Trace::write_chrome_json(body);
  trace_capture_.slot->bytes =
      http_response(200, "OK", "application/json", body.str());
  trace_capture_.slot->ready = true;
  const std::shared_ptr<Connection> conn = std::move(trace_capture_.conn);
  trace_capture_ = TraceCapture{};
  if (conn != nullptr && conn->fd >= 0) pump(conn);
}

void Server::dispatch_framed(const std::shared_ptr<Connection>& conn,
                             std::string payload) {
  auto slot = std::make_shared<Slot>();
  conn->pending.push_back(slot);

  const Classified request = classify(payload);

  // Every framed request gets an id and a context; whether the id ever
  // reaches the client depends solely on the request's `trace` field.
  auto context = std::make_shared<RequestContext>();
  context->request_id = next_request_id_.fetch_add(1,
                                                   std::memory_order_relaxed) +
                        1;
  context->accepted = std::chrono::steady_clock::now();
  context->trace_requested = request.traced;
  slot->context = context;

  if (!is_executor_request(request.type)) {
    // ping/metrics/malformed: cheap, answered on the io thread.
    slot->bytes = service_.handle(payload, context.get());
    slot->ready = true;
    return;
  }

  // Only `rank` batches: its responses depend on nothing but the
  // canonical request, and one DP is the unit worth deduplicating. A
  // traced request never coalesces — its response carries its own unique
  // request_id, so sharing bytes with a neighbour would be wrong both
  // ways.
  const bool coalescible = request.type == "rank" && !request.traced;
  if (coalescible) {
    const std::scoped_lock lock(batch_mutex_);
    const auto it = open_batches_.find(request.canonical);
    if (it != open_batches_.end()) {
      it->second->targets.emplace_back(conn, slot);
      return;  // answered when the open batch completes
    }
  }

  auto batch = std::make_shared<Batch>();
  batch->text = request.canonical;
  batch->key = coalescible ? request.canonical : std::string();
  batch->targets.emplace_back(conn, slot);
  batch->context = context;
  batch->enqueued = std::chrono::steady_clock::now();
  if (coalescible) {
    const std::scoped_lock lock(batch_mutex_);
    open_batches_.emplace(batch->key, batch);
  }

  const auto pushed = queue_->try_push(batch);
  kQueueDepth.set(static_cast<std::int64_t>(queue_->size()));
  if (pushed ==
      util::BoundedQueue<std::shared_ptr<Batch>>::PushResult::kOk) {
    return;
  }
  // Rejected before any worker saw it: retract the batch and answer every
  // target (only ours — attachment happens on this thread) inline.
  if (coalescible) {
    const std::scoped_lock lock(batch_mutex_);
    open_batches_.erase(batch->key);
  }
  const bool full =
      pushed == util::BoundedQueue<std::shared_ptr<Batch>>::PushResult::kFull;
  const std::string response =
      full ? RankService::error_response(
                 "overloaded", "job queue full; retry with backoff")
           : RankService::error_response(
                 "shutting-down", "server is draining; reconnect later");
  for (const auto& [target_conn, target_slot] : batch->targets) {
    (void)target_conn;
    kRequestsTotal.inc();
    kRequestsFailed.inc();
    if (full) kOverloaded.inc();
    if (target_slot->context != nullptr) {
      target_slot->context->type = request.type;
      target_slot->context->ok = false;
      target_slot->context->status = full ? "overloaded" : "shutting-down";
    }
    target_slot->bytes = response;
    target_slot->ready = true;
  }
  util::EventLog& events = util::EventLog::instance();
  if (full && events.enabled()) {
    util::Json fields;
    fields["request_id"] = static_cast<std::int64_t>(context->request_id);
    fields["type"] = request.type;
    fields["queue_capacity"] =
        static_cast<std::int64_t>(options_.queue_capacity);
    events.emit(util::Severity::kWarn, "server.overloaded",
                std::move(fields));
    // A backpressure trip is exactly the moment the flight recorder is
    // for; dump it, rate-limited so a rejection storm costs one file
    // write per second, not one per request.
    const auto now = std::chrono::steady_clock::now();
    if (events.flight_recorder_armed() &&
        now - last_overload_dump_ >= std::chrono::seconds(1)) {
      last_overload_dump_ = now;
      events.dump_flight_recorder();
    }
  }
}

void Server::finish_batch(const std::shared_ptr<Batch>& batch,
                          const std::string& response) {
  std::vector<std::pair<std::shared_ptr<Connection>, std::shared_ptr<Slot>>>
      targets;
  {
    const std::scoped_lock lock(batch_mutex_);
    if (!batch->key.empty()) open_batches_.erase(batch->key);
    targets = std::move(batch->targets);
  }
  kBatches.inc();
  const bool ok = RankService::response_ok(response);
  if (targets.size() > 1) {
    // The service counted the batch once; the coalesced requests settle
    // their books here so requests_total == ok + failed stays exact.
    const auto extra = static_cast<std::int64_t>(targets.size() - 1);
    kBatchedRequests.inc(extra);
    kRequestsTotal.inc(extra);
    if (ok) {
      kRequestsOk.inc(extra);
    } else {
      kRequestsFailed.inc(extra);
    }
  }
  // Trace-context bookkeeping: the primary context (the one whose
  // execution answered the batch) records which request_ids coalesced
  // onto it; each extra context records that it was answered by the
  // primary. Safe without batch_mutex_: targets were moved out above, so
  // no further attachment can happen, and the completion queue's mutex
  // orders these writes before the io thread reads them.
  const std::shared_ptr<RequestContext>& primary = batch->context;
  if (primary != nullptr) {
    primary->batch_size = targets.size();
    for (auto& [conn, slot] : targets) {
      (void)conn;
      const std::shared_ptr<RequestContext>& ctx = slot->context;
      if (ctx == nullptr || ctx == primary) continue;
      primary->coalesced_ids.push_back(ctx->request_id);
      ctx->coalesced = true;
      ctx->batch_size = targets.size();
      ctx->type = primary->type;
      ctx->ok = ok;
      ctx->status = ok ? "ok" : primary->status;
    }
    util::EventLog& events = util::EventLog::instance();
    if (targets.size() > 1 && events.enabled()) {
      util::Json ids(util::Json::Array{});
      for (const std::uint64_t id : primary->coalesced_ids) {
        ids.push_back(static_cast<std::int64_t>(id));
      }
      util::Json fields;
      fields["request_id"] = static_cast<std::int64_t>(primary->request_id);
      fields["batch_size"] = static_cast<std::int64_t>(targets.size());
      fields["coalesced_ids"] = std::move(ids);
      events.emit(util::Severity::kDebug, "batch.coalesced",
                  std::move(fields));
    }
  }
  {
    const std::scoped_lock lock(completion_mutex_);
    for (auto& [conn, slot] : targets) {
      slot->bytes = response;
      completions_.push_back({std::move(conn), std::move(slot)});
    }
  }
  wake();
}

void Server::apply_completions() {
  std::vector<Completion> ready;
  {
    const std::scoped_lock lock(completion_mutex_);
    ready.swap(completions_);
  }
  for (Completion& c : ready) {
    c.slot->ready = true;
    if (c.conn->fd < 0) continue;  // client vanished before the answer
    pump(c.conn);
  }
}

void Server::flush_connection(Connection& conn) {
  while (!conn.pending.empty() && conn.pending.front()->ready) {
    Slot& slot = *conn.pending.front();
    if (conn.http) {
      conn.out += slot.bytes;
    } else if (slot.bytes.size() > kMaxFrameBytes) {
      append_frame(conn.out, RankService::error_response(
                                 "internal", "response exceeds frame limit"));
    } else {
      append_frame(conn.out, slot.bytes);
    }
    if (slot.context != nullptr) {
      // The response just reached the wire buffer: close the end-to-end
      // clock and record. io thread only, after the completion queue's
      // mutex ordered any worker-side writes.
      slot.context->total_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        slot.context->accepted)
              .count();
      request_log_.record(*slot.context);
      slot.context.reset();
    }
    const bool close_after = slot.close_after;
    conn.pending.pop_front();
    if (close_after) {
      conn.close_after_flush = true;
      conn.read_closed = true;
      conn.pending.clear();
      break;
    }
  }

  while (conn.out_off < conn.out.size()) {
    const ::ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                               conn.out.size() - conn.out_off,
#if defined(MSG_NOSIGNAL)
                               MSG_NOSIGNAL
#else
                               0
#endif
    );
    if (n >= 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // EPOLLOUT resumes
    close_connection(conn);  // client gone mid-write (EPIPE and friends)
    return;
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.close_after_flush ||
        (conn.read_closed && conn.pending.empty())) {
      close_connection(conn);
      return;
    }
  } else if (conn.out_off > (1u << 20)) {
    conn.out.erase(0, conn.out_off);
    conn.out_off = 0;
  }
  update_interest(conn);
}

void Server::update_interest(Connection& conn) {
  if (conn.fd < 0) return;
  std::uint32_t ev = 0;
  if (wants_read(conn)) ev |= EPOLLIN;
  if (conn.out_off < conn.out.size()) ev |= EPOLLOUT;
  if (ev == conn.armed_events) return;
  epoll_event e{};
  e.events = ev;
  e.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &e);
  conn.armed_events = ev;
}

void Server::close_connection(Connection& conn) {
  if (conn.fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  const int fd = conn.fd;
  conn.fd = -1;
  ::close(fd);
  connections_.erase(fd);  // `conn` may now be held only by batch targets
}

void Server::worker_loop() {
  while (true) {
    std::optional<std::shared_ptr<Batch>> batch = queue_->pop();
    if (!batch.has_value()) return;  // closed and drained
    kQueueDepth.set(static_cast<std::int64_t>(queue_->size()));
    RequestContext* context = (*batch)->context.get();
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      (*batch)->enqueued)
            .count();
    kQueueWaitSeconds.observe(waited);
    if (context != nullptr) context->queue_seconds = waited;
    std::string response;
    try {
      response = service_.handle((*batch)->text, context);
    } catch (const std::exception& e) {
      // handle() never throws by contract; this is belt and braces.
      response = RankService::error_response("internal", e.what());
    }
    finish_batch(*batch, response);
  }
}

}  // namespace iarank::server
