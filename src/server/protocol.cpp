#include "src/server/protocol.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iarank::server {

namespace {

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

/// Reads exactly `len` bytes, retrying EINTR. Returns the byte count
/// actually read (< len only on EOF or error; errno holds the cause when
/// the return is negative... we fold both into the pair below).
struct ReadExact {
  std::size_t got = 0;
  bool eof = false;
  int err = 0;
};

ReadExact read_exact(int fd, char* buf, std::size_t len) {
  ReadExact r;
  while (r.got < len) {
    const ::ssize_t n = ::read(fd, buf + r.got, len - r.got);
    if (n > 0) {
      r.got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      r.eof = true;
      return r;
    }
    if (errno == EINTR) continue;
    r.err = errno;
    return r;
  }
  return r;
}

}  // namespace

FrameResult read_frame(int fd, std::size_t max_bytes) {
  FrameResult out;
  unsigned char header[4];
  const ReadExact h = read_exact(fd, reinterpret_cast<char*>(header), 4);
  if (h.got == 0 && h.eof) {
    out.state = FrameResult::State::kEof;
    return out;
  }
  if (h.got < 4) {
    out.state = FrameResult::State::kError;
    out.message = h.err != 0
                      ? std::string("read failed: ") + std::strerror(h.err)
                      : std::string("stream ended inside a frame header");
    return out;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(header[0]) << 24) |
                            (static_cast<std::uint32_t>(header[1]) << 16) |
                            (static_cast<std::uint32_t>(header[2]) << 8) |
                            static_cast<std::uint32_t>(header[3]);
  if (len > max_bytes) {
    out.state = FrameResult::State::kOversized;
    out.message = "frame of " + std::to_string(len) +
                  " bytes exceeds the limit of " + std::to_string(max_bytes);
    return out;
  }
  out.payload.resize(len);
  if (len > 0) {
    const ReadExact b = read_exact(fd, out.payload.data(), len);
    if (b.got < len) {
      out.state = FrameResult::State::kError;
      out.message = b.err != 0
                        ? std::string("read failed: ") + std::strerror(b.err)
                        : std::string("stream ended inside a frame payload");
      return out;
    }
  }
  out.state = FrameResult::State::kOk;
  return out;
}

void append_frame(std::string& out, std::string_view payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  out.reserve(out.size() + payload.size() + 4);
  out += static_cast<char>((len >> 24) & 0xFF);
  out += static_cast<char>((len >> 16) & 0xFF);
  out += static_cast<char>((len >> 8) & 0xFF);
  out += static_cast<char>(len & 0xFF);
  out += payload;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  util::require_io(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "fcntl(O_NONBLOCK) failed");
}

util::Status write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return util::Status::failure(util::StatusCode::kInternal,
                                 "frame payload too large");
  }
  std::string buf;
  append_frame(buf, payload);

  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ::ssize_t n =
        ::send(fd, buf.data() + sent, buf.size() - sent, kSendFlags);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    // EPIPE here is the routine "client disconnected mid-write" case a
    // long-lived server must absorb (SIGPIPE is suppressed above).
    return util::Status::failure(
        util::StatusCode::kInternal,
        std::string("write failed: ") + std::strerror(errno));
  }
  return util::Status::make_ok();
}

Address parse_address(const std::string& text) {
  Address out;
  if (util::starts_with(text, "unix:")) {
    out.kind = Address::Kind::kUnix;
    out.path = text.substr(5);
    util::require(!out.path.empty(), "address: empty unix socket path");
    return out;
  }
  std::string rest = text;
  bool forced_tcp = false;
  if (util::starts_with(text, "tcp:")) {
    forced_tcp = true;
    rest = text.substr(4);
  }
  if (!forced_tcp && rest.find('/') != std::string::npos) {
    out.kind = Address::Kind::kUnix;
    out.path = rest;
    return out;
  }
  const auto colon = rest.rfind(':');
  util::require(colon != std::string::npos && colon + 1 < rest.size(),
                "address: expected unix:<path>, tcp:<host>:<port> or "
                "<host>:<port>, got '" + text + "'");
  out.kind = Address::Kind::kTcp;
  out.host = rest.substr(0, colon);
  // Numeric IPv4 only (no resolver dependency); the loopback name is the
  // one spelling worth special-casing.
  if (out.host.empty() || out.host == "localhost") out.host = "127.0.0.1";
  const long long port = util::parse_int(rest.substr(colon + 1));
  util::require(port >= 0 && port <= 65535,
                "address: port out of range in '" + text + "'");
  out.port = static_cast<int>(port);
  return out;
}

std::string to_string(const Address& address) {
  if (address.kind == Address::Kind::kUnix) return "unix:" + address.path;
  return "tcp:" + address.host + ":" + std::to_string(address.port);
}

namespace {

/// Connects `fd` to `sa` within `timeout_seconds` (0 = block forever):
/// nonblocking connect, poll for writability, read SO_ERROR, restore
/// blocking mode. Throws util::Error(kIo), closing nothing — the caller
/// owns the fd either way.
void connect_with_deadline(int fd, const sockaddr* sa, socklen_t len,
                           const Address& address, double timeout_seconds) {
  if (timeout_seconds <= 0.0) {
    int rc;
    do {
      rc = ::connect(fd, sa, len);
    } while (rc != 0 && errno == EINTR);
    util::require_io(rc == 0, "connect: cannot reach '" + to_string(address) +
                                  "': " + std::strerror(errno));
    return;
  }

  set_nonblocking(fd);
  int rc;
  do {
    rc = ::connect(fd, sa, len);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    util::require_io(errno == EINPROGRESS,
                     "connect: cannot reach '" + to_string(address) +
                         "': " + std::strerror(errno));
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout_ms =
        static_cast<int>(std::min(timeout_seconds * 1000.0, 2147483.0 * 1000));
    int polled;
    do {
      polled = ::poll(&pfd, 1, timeout_ms);
    } while (polled < 0 && errno == EINTR);
    util::require_io(polled >= 0,
                     std::string("connect: poll failed: ") + std::strerror(errno));
    util::require_io(polled > 0, "connect: cannot reach '" +
                                     to_string(address) + "': timed out after " +
                                     std::to_string(timeout_seconds) + "s");
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    util::require_io(
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) == 0,
        "connect: getsockopt(SO_ERROR) failed");
    util::require_io(so_error == 0, "connect: cannot reach '" +
                                        to_string(address) +
                                        "': " + std::strerror(so_error));
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  util::require_io(
      flags >= 0 && ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) == 0,
      "connect: cannot restore blocking mode");
}

/// Arms per-operation read/write deadlines. A read blocked past the
/// deadline fails with EAGAIN, which read_frame reports as a kError — the
/// accepts-then-stalls server becomes a bounded-time failure.
void arm_io_deadlines(int fd, double timeout_seconds) {
  if (timeout_seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  util::require_io(
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0 &&
          ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0,
      "connect: cannot set socket timeouts");
}

}  // namespace

int connect_to(const Address& address, const ClientOptions& options) {
  int fd = -1;
  try {
    if (address.kind == Address::Kind::kUnix) {
      sockaddr_un sa{};
      sa.sun_family = AF_UNIX;
      util::require_io(address.path.size() < sizeof(sa.sun_path),
                       "connect: unix socket path too long");
      std::memcpy(sa.sun_path, address.path.c_str(), address.path.size() + 1);
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      util::require_io(fd >= 0, "connect: socket() failed");
      connect_with_deadline(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa),
                            address, options.timeout_seconds);
    } else {
      sockaddr_in sa{};
      sa.sin_family = AF_INET;
      sa.sin_port = htons(static_cast<std::uint16_t>(address.port));
      util::require_io(
          ::inet_pton(AF_INET, address.host.c_str(), &sa.sin_addr) == 1,
          "connect: invalid IPv4 address '" + address.host + "'");
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      util::require_io(fd >= 0, "connect: socket() failed");
      connect_with_deadline(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa),
                            address, options.timeout_seconds);
    }
    arm_io_deadlines(fd, options.timeout_seconds);
  } catch (...) {
    if (fd >= 0) ::close(fd);
    throw;
  }
  return fd;
}

int connect_to(const Address& address) {
  return connect_to(address, ClientOptions{});
}

std::string round_trip(int fd, std::string_view request) {
  const util::Status wrote = write_frame(fd, request);
  if (!wrote.ok()) {
    throw util::Error("request: " + wrote.message, util::ErrorCategory::kIo);
  }
  FrameResult reply = read_frame(fd);
  switch (reply.state) {
    case FrameResult::State::kOk:
      return std::move(reply.payload);
    case FrameResult::State::kEof:
      throw util::Error("request: server closed the connection",
                        util::ErrorCategory::kIo);
    case FrameResult::State::kOversized:
    case FrameResult::State::kError:
      throw util::Error("request: " + reply.message,
                        util::ErrorCategory::kIo);
  }
  throw util::Error("request: unreachable", util::ErrorCategory::kInternal);
}

std::string request_with_retry(const Address& address,
                               std::string_view request,
                               const ClientOptions& options) {
  double delay = std::max(options.backoff_seconds, 0.0);
  for (int attempt = 0;; ++attempt) {
    try {
      const int fd = connect_to(address, options);
      std::string response;
      try {
        response = round_trip(fd, request);
      } catch (...) {
        ::close(fd);
        throw;
      }
      ::close(fd);
      return response;
    } catch (const util::Error& e) {
      // Only transport failures are worth a fresh connection; a response
      // the server sent (even an error response) returned above.
      if (e.category() != util::ErrorCategory::kIo ||
          attempt >= options.retries) {
        throw;
      }
    }
    if (delay > 0.0) {
      ::usleep(static_cast<useconds_t>(std::min(delay, 30.0) * 1e6));
    }
    delay = delay > 0.0 ? delay * 2.0 : 0.0;
  }
}

}  // namespace iarank::server
