/// \file protocol.hpp
/// \brief Wire protocol of the rank server: length-prefixed JSON frames
///        over a Unix or TCP stream socket.
///
/// Framing: a 4-byte big-endian unsigned payload length, then that many
/// bytes of UTF-8 JSON. A frame longer than the receiver's limit is a
/// protocol violation — the receiver reports it and closes the stream
/// (the byte stream is desynchronized; recovery is a reconnect).
///
/// All socket I/O here retries EINTR and never raises SIGPIPE: writes go
/// through send(MSG_NOSIGNAL) where available, and the server process
/// additionally ignores SIGPIPE — a client vanishing mid-response must
/// surface as a per-connection error status, not kill the daemon.
///
/// Request/response JSON schemas are documented in DESIGN.md Section 11;
/// this layer moves opaque payload strings only.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.hpp"

namespace iarank::server {

/// Hard cap on one frame's payload. Guards the daemon against a garbage
/// length prefix allocating gigabytes.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

/// Outcome of reading one frame.
struct FrameResult {
  enum class State {
    kOk,         ///< payload holds one complete frame
    kEof,        ///< orderly stream end at a frame boundary
    kError,      ///< read failed or the stream ended mid-frame
    kOversized,  ///< declared length exceeds the limit; stream desynced
  };
  State state = State::kError;
  std::string payload;
  std::string message;  ///< human-readable detail for kError/kOversized
};

/// Reads one length-prefixed frame, retrying EINTR. Blocks until a full
/// frame, EOF, or an error.
[[nodiscard]] FrameResult read_frame(int fd,
                                     std::size_t max_bytes = kMaxFrameBytes);

/// Writes one frame, retrying EINTR and short writes. Returns kOk, or an
/// kInternal status naming the errno (EPIPE when the peer is gone).
[[nodiscard]] util::Status write_frame(int fd, std::string_view payload);

/// Appends the 4-byte big-endian header plus the payload to `out` — the
/// staging step shared by the blocking writer above and the server's
/// nonblocking per-connection write buffers.
void append_frame(std::string& out, std::string_view payload);

/// Sets O_NONBLOCK on `fd`. Throws util::Error(kIo) on failure.
void set_nonblocking(int fd);

/// A parsed server address.
struct Address {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;             ///< kUnix: socket path
  std::string host = "127.0.0.1";  ///< kTcp
  int port = 0;                 ///< kTcp
};

/// Parses "unix:<path>", "tcp:<host>:<port>", a bare "<host>:<port>", or
/// a bare path containing '/'. Throws util::Error(kBadInput) otherwise.
[[nodiscard]] Address parse_address(const std::string& text);

/// Renders an Address back to its canonical "unix:..."/"tcp:..." form.
[[nodiscard]] std::string to_string(const Address& address);

/// Client-side resilience knobs. A daemon that accepted the connection
/// and then stalled (wedged worker, paused process) must surface as a
/// bounded-time kIo failure, not hang the client forever.
struct ClientOptions {
  /// Deadline for connect() and for each subsequent socket read/write
  /// (SO_RCVTIMEO/SO_SNDTIMEO). 0 disables all deadlines (block forever).
  double timeout_seconds = 0.0;

  /// Additional attempts after the first on a transport (kIo) failure —
  /// ECONNREFUSED, a timed-out read, a mid-frame EOF. Each attempt opens a
  /// fresh connection. Request/response errors are never retried.
  int retries = 0;

  /// Delay before the first retry; doubles per subsequent retry.
  double backoff_seconds = 0.05;
};

/// Connects a blocking stream socket to `address`, retrying EINTR.
/// Throws util::Error(kIo) on failure. Caller owns the fd.
[[nodiscard]] int connect_to(const Address& address);

/// Same with a connect deadline (nonblocking connect + poll), leaving the
/// fd blocking with SO_RCVTIMEO/SO_SNDTIMEO armed per `options`.
[[nodiscard]] int connect_to(const Address& address,
                             const ClientOptions& options);

/// One request/response round trip over an already connected fd. Throws
/// util::Error(kIo) on transport failure (including a response frame the
/// peer never sent, and a read deadline expiring on a connect_to fd armed
/// with timeouts).
[[nodiscard]] std::string round_trip(int fd, std::string_view request);

/// Full client call: connect, one round trip, close — retried per
/// `options` with exponential backoff on kIo failures. The rank protocol's
/// requests are read-only computations, so re-sending after a torn
/// connection is safe. Throws the final attempt's error when the budget is
/// exhausted.
[[nodiscard]] std::string request_with_retry(const Address& address,
                                             std::string_view request,
                                             const ClientOptions& options);

}  // namespace iarank::server
