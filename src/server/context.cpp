#include "src/server/context.hpp"

#include <algorithm>

#include "src/util/event_log.hpp"

namespace iarank::server {

util::Json RequestContext::to_json() const {
  const double known = parse_seconds + queue_seconds + build_seconds +
                       dp_seconds + format_seconds;
  util::Json ms;
  ms["parse"] = parse_seconds * 1e3;
  ms["queue"] = queue_seconds * 1e3;
  ms["build"] = build_seconds * 1e3;
  ms["dp"] = dp_seconds * 1e3;
  ms["format"] = format_seconds * 1e3;
  ms["write"] = std::max(0.0, total_seconds - known) * 1e3;
  ms["total"] = total_seconds * 1e3;

  util::Json ids(util::Json::Array{});
  for (const std::uint64_t id : coalesced_ids) {
    ids.push_back(static_cast<std::int64_t>(id));
  }

  util::Json out;
  out["request_id"] = static_cast<std::int64_t>(request_id);
  out["type"] = type;
  out["ok"] = ok;
  out["status"] = status;
  out["batch_size"] = static_cast<std::int64_t>(batch_size);
  out["coalesced"] = coalesced;
  out["coalesced_ids"] = std::move(ids);
  out["ms"] = std::move(ms);
  return out;
}

RequestLog::RequestLog(std::size_t recent_capacity, std::size_t slow_capacity)
    : recent_capacity_(recent_capacity), slow_capacity_(slow_capacity) {}

void RequestLog::set_slow_threshold_ms(double ms) {
  const std::scoped_lock lock(mutex_);
  slow_threshold_ms_ = ms;
}

double RequestLog::slow_threshold_ms() const {
  const std::scoped_lock lock(mutex_);
  return slow_threshold_ms_;
}

void RequestLog::record(const RequestContext& context) {
  bool slow = false;
  {
    const std::scoped_lock lock(mutex_);
    ++recorded_;
    recent_.push_back(context);
    while (recent_.size() > recent_capacity_) recent_.pop_front();
    slow = slow_threshold_ms_ > 0.0 &&
           context.total_seconds * 1e3 >= slow_threshold_ms_;
    if (slow) {
      slow_.push_back(context);
      while (slow_.size() > slow_capacity_) slow_.pop_front();
    }
  }
  util::EventLog& events = util::EventLog::instance();
  if (events.enabled()) {
    events.emit(slow ? util::Severity::kInfo : util::Severity::kDebug,
                slow ? "request.slow" : "request", context.to_json());
  }
}

util::Json RequestLog::recent_json() const {
  const std::scoped_lock lock(mutex_);
  util::Json requests(util::Json::Array{});
  for (const RequestContext& context : recent_) {
    requests.push_back(context.to_json());
  }
  util::Json out;
  out["count"] = static_cast<std::int64_t>(recorded_);
  out["requests"] = std::move(requests);
  return out;
}

util::Json RequestLog::slow_json() const {
  const std::scoped_lock lock(mutex_);
  util::Json requests(util::Json::Array{});
  for (const RequestContext& context : slow_) {
    requests.push_back(context.to_json());
  }
  util::Json out;
  out["count"] = static_cast<std::int64_t>(requests.as_array().size());
  out["slow_threshold_ms"] = slow_threshold_ms_;
  out["requests"] = std::move(requests);
  return out;
}

}  // namespace iarank::server
