#include "src/server/service.hpp"

#include <chrono>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "src/core/dp_rank.hpp"
#include "src/core/sweep.hpp"
#include "src/server/context.hpp"
#include "src/util/build_info.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/metrics.hpp"
#include "src/util/strings.hpp"
#include "src/util/trace.hpp"

namespace iarank::server {

namespace {

util::Counter& kRequestsTotal = util::MetricsRegistry::counter(
    "iarank_server_requests_total", "requests received (any outcome)");
util::Counter& kRequestsOk = util::MetricsRegistry::counter(
    "iarank_server_requests_ok_total", "requests answered with ok:true");
util::Counter& kRequestsFailed = util::MetricsRegistry::counter(
    "iarank_server_requests_failed_total",
    "requests answered with an error response");
util::Counter& kMalformed = util::MetricsRegistry::counter(
    "iarank_server_malformed_total",
    "request payloads that were not valid JSON");
util::Histogram& kRequestSeconds = util::MetricsRegistry::histogram(
    "iarank_server_request_seconds", util::Histogram::duration_bounds(),
    "request service time (parse to response bytes)");

/// The RankOptions-level config keys a request may override — exactly the
/// set core::apply_rank_options reads. Design/WLD keys are absent on
/// purpose: the shared builder is bound to one design for its lifetime.
const std::set<std::string>& override_keys() {
  static const std::set<std::string> keys = {
      "ild_permittivity", "miller_factor", "clock_hz", "repeater_fraction",
      "cap_model",        "target_model",  "max_noise_ratio",
      "charge_drivers",   "bunch_size",    "bin_window",
      "refine_boundary",  "vias_per_wire", "vias_per_repeater"};
  return keys;
}

/// Renders one override value as config text. Numbers use the locale-
/// independent shortest round-trip spelling, so the value that reaches
/// util::parse_double is bit-identical to the JSON number sent.
std::string override_value_to_config(const std::string& key,
                                     const util::Json& value) {
  switch (value.type()) {
    case util::Json::Type::kString:
      return value.as_string();
    case util::Json::Type::kNumber:
      return util::format_double_shortest(value.as_double());
    case util::Json::Type::kBool:
      return value.as_bool() ? "1" : "0";
    default:
      throw util::Error("override '" + key +
                            "': value must be a number, string or bool",
                        util::ErrorCategory::kBadInput);
  }
}

/// Protocol error code for an ErrorCategory ("malformed"/"overloaded" are
/// assigned by the callers that detect those conditions).
const char* code_for(util::ErrorCategory category) {
  switch (category) {
    case util::ErrorCategory::kBadInput: return "bad-input";
    case util::ErrorCategory::kInfeasible: return "infeasible";
    case util::ErrorCategory::kIo: return "io";
    case util::ErrorCategory::kInternal: return "internal";
  }
  return "internal";
}

/// The deterministic subset of a RankResult: counts and model outputs,
/// never timings — concurrent clients must receive identical bytes.
util::Json rank_result_to_json(const core::RankResult& result) {
  util::Json out;
  out["rank"] = result.rank;
  out["normalized"] = result.normalized;
  out["all_assigned"] = result.all_assigned;
  out["prefix_bunches"] = result.prefix_bunches;
  out["refined_wires"] = result.refined_wires;
  out["repeater_count"] = result.repeater_count;
  out["repeater_area_m2"] = result.repeater_area_used;
  out["total_wires"] = result.total_wires;
  return out;
}

}  // namespace

RankService::RankService(core::RunSpec spec, const wld::Wld& wld_in_pitches,
                         ServiceOptions options)
    : spec_(std::move(spec)),
      builder_(spec_.design, wld_in_pitches),
      options_(options) {
  // Every service-backed export (framed metrics requests, the HTTP
  // listener) should carry the build-info and start-time gauges.
  util::register_build_metrics();
}

std::string RankService::error_response(std::string_view code,
                                        std::string_view message) {
  util::Json error;
  error["code"] = code;
  error["message"] = message;
  util::Json out;
  out["ok"] = false;
  out["error"] = std::move(error);
  return out.dump();
}

bool RankService::response_ok(std::string_view response) {
  try {
    const util::Json parsed = util::Json::parse(response);
    const util::Json* ok = parsed.find("ok");
    return ok != nullptr && ok->as_bool();
  } catch (...) {
    return false;
  }
}

std::string RankService::handle(std::string_view request_text) {
  return handle(request_text, nullptr);
}

std::string RankService::handle(std::string_view request_text,
                                RequestContext* context) {
  TRACE_SPAN("server.request");
  kRequestsTotal.inc();
  const util::ScopedTimer timer(nullptr, &kRequestSeconds);

  // Records the outcome into the context and — only for requests that
  // opted in with a `trace` field — re-renders the response with the
  // server-assigned request_id. The re-render is paid by traced requests
  // alone; default responses are returned untouched, byte for byte.
  const auto finalize = [&](std::string response, bool ok,
                            std::string_view status) {
    if (context != nullptr) {
      context->ok = ok;
      context->status = std::string(status);
      if (context->trace_requested && context->request_id != 0) {
        util::Json parsed = util::Json::parse(response);
        parsed["request_id"] = static_cast<std::int64_t>(context->request_id);
        response = parsed.dump();
      }
    }
    return response;
  };

  util::Json request;
  try {
    const util::ScopedTimer parse_timer(
        context != nullptr ? &context->parse_seconds : nullptr);
    request = util::Json::parse(request_text);
  } catch (const std::exception& e) {
    kMalformed.inc();
    kRequestsFailed.inc();
    return finalize(error_response("malformed", e.what()), false, "malformed");
  }

  try {
    util::require(request.is_object(), "request must be a JSON object");
    const std::string& type = request.at("type").as_string();
    if (context != nullptr) {
      context->type = type;
      context->trace_requested =
          context->trace_requested || request.contains("trace");
    }
    if (type == "metrics") {
      // Count the scrape as completed before rendering, so the export it
      // returns satisfies requests_total == ok + failed instead of showing
      // itself as perpetually in flight.
      kRequestsOk.inc();
      return finalize(handle_parsed(type, request, context), true, "ok");
    }
    std::string response = handle_parsed(type, request, context);
    kRequestsOk.inc();
    return finalize(std::move(response), true, "ok");
  } catch (const util::Error& e) {
    kRequestsFailed.inc();
    const char* code = code_for(e.category());
    return finalize(error_response(code, e.what()), false, code);
  } catch (const std::exception& e) {
    kRequestsFailed.inc();
    return finalize(error_response("internal", e.what()), false, "internal");
  }
}

std::string RankService::handle_parsed(const std::string& type,
                                       const util::Json& request,
                                       RequestContext* context) {
  if (type == "ping") {
    util::Json out;
    out["ok"] = true;
    out["type"] = "pong";
    return out.dump();
  }

  if (type == "metrics") {
    util::touch_uptime();
    std::ostringstream body;
    util::MetricsRegistry::instance().write_prometheus(body);
    util::Json out;
    out["ok"] = true;
    out["type"] = "metrics";
    out["format"] = "prometheus";
    out["body"] = body.str();
    return out.dump();
  }

  if (type == "sleep" && options_.enable_test_endpoints) {
    const std::int64_t ms = request.at("ms").as_int();
    util::require(ms >= 0 && ms <= 60000, "sleep: ms out of range");
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    util::Json out;
    out["ok"] = true;
    out["type"] = "slept";
    out["ms"] = ms;
    return out.dump();
  }

  if (type == "rank") {
    const core::RankOptions options = options_with_overrides(request);
    // Reused per worker thread (instance, result, and the thread-local
    // DP kernel inside dp_rank_into): a warm repeat request allocates
    // nothing in the build/solve stages.
    thread_local core::Instance inst;
    {
      const util::ScopedTimer build_timer(
          context != nullptr ? &context->build_seconds : nullptr);
      builder_.build_into(options, inst);
    }
    core::DpOptions dp;
    dp.refine_boundary = options.refine_boundary;
    thread_local core::RankResult result;
    {
      const util::ScopedTimer dp_timer(
          context != nullptr ? &context->dp_seconds : nullptr);
      core::dp_rank_into(inst, dp, result);
    }
    const util::ScopedTimer format_timer(
        context != nullptr ? &context->format_seconds : nullptr);
    util::Json out = rank_result_to_json(result);
    out["ok"] = true;
    out["type"] = "rank";
    return out.dump();
  }

  if (type == "sweep") {
    const core::RankOptions base = options_with_overrides(request);
    const core::SweepParameter parameter =
        core::sweep_parameter_from_string(request.at("parameter").as_string());
    const double lo = request.at("lo").as_double();
    const double hi = request.at("hi").as_double();
    const std::int64_t steps = request.at("steps").as_int();
    util::require(steps >= 1 && steps <= options_.max_sweep_steps,
                  "sweep: steps must be in [1, " +
                      std::to_string(options_.max_sweep_steps) + "]");
    // Grid by index (not repeated addition), matching the Table 4 grids'
    // construction, so every entry is host-independent.
    std::vector<double> values;
    values.reserve(static_cast<std::size_t>(steps));
    for (std::int64_t i = 0; i < steps; ++i) {
      values.push_back(steps == 1 ? lo
                                  : lo + (hi - lo) * static_cast<double>(i) /
                                             static_cast<double>(steps - 1));
    }

    core::SweepRunOptions run;
    run.threads = options_.sweep_threads;
    const core::SweepResult sweep =
        core::sweep_parameter(builder_, base, parameter, values, run);

    util::Json points(util::Json::Array{});
    for (const core::SweepPoint& point : sweep.points) {
      util::Json entry;
      entry["value"] = point.value;
      entry["status"] = util::to_string(point.status.code);
      if (point.status.ok()) {
        entry["rank"] = point.result.rank;
        entry["normalized"] = point.result.normalized;
      } else {
        entry["message"] = point.status.message;
      }
      points.push_back(std::move(entry));
    }
    util::Json out;
    out["ok"] = true;
    out["type"] = "sweep";
    out["parameter"] = core::to_string(parameter);
    out["points"] = std::move(points);
    return out.dump();
  }

  throw util::Error("unknown request type '" + type + "'",
                    util::ErrorCategory::kBadInput);
}

core::RankOptions RankService::options_with_overrides(
    const util::Json& request) const {
  core::RankOptions options = spec_.options;
  const util::Json* overrides = request.find("overrides");
  if (overrides == nullptr) return options;
  util::require(overrides->is_object(), "overrides must be a JSON object");

  util::Config overlay;
  for (const auto& [key, value] : overrides->as_object()) {
    if (override_keys().count(key) == 0) {
      throw util::Error(
          "override '" + key +
              "' is not a per-request option (design and WLD are fixed "
              "for the served scenario)",
          util::ErrorCategory::kBadInput);
    }
    overlay.set(key, override_value_to_config(key, value));
  }
  core::apply_rank_options(overlay, options);
  options.validate();
  return options;
}

}  // namespace iarank::server
