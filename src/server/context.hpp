/// \file context.hpp
/// \brief Request-scoped trace context and the in-memory request log
///        behind the /debug endpoints.
///
/// Every framed request the daemon accepts gets a RequestContext: a
/// server-assigned `request_id` plus the stage timing breakdown
/// (parse / queue-wait / build / dp / format / write) filled in as the
/// request moves io thread -> worker -> io thread. The id is echoed in
/// the response **only when the client supplied a top-level `trace`
/// field** — default responses carry no id (and no timings), so the
/// byte-determinism contract of service.hpp is untouched. Requests with
/// a `trace` field are also never coalesced onto a batch: each needs a
/// unique id in its response, and two responses differing only in
/// request_id could not share bytes.
///
/// RequestLog keeps two bounded rings of completed contexts — the most
/// recent N requests (`GET /debug/requests`) and the last N requests
/// slower than the `--slow-ms` threshold (`GET /debug/slow`) — and
/// forwards slow requests to util::EventLog as `request.slow` events.
/// Recording is one mutex push per request, off the response hot path
/// (the io thread records at write-stage time, after the response bytes
/// are already staged).

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/json.hpp"

namespace iarank::server {

struct RequestContext {
  std::uint64_t request_id = 0;
  bool trace_requested = false;  ///< client sent a top-level `trace` field

  std::string type;    ///< request type once parsed ("rank", "sweep", ...)
  std::string status;  ///< "ok" or the protocol error code
  bool ok = false;

  // Stage seconds. `write` is derived at render time as the residual of
  // total minus the instrumented stages (wire staging + epoll writes are
  // not separately clocked).
  double parse_seconds = 0.0;
  double queue_seconds = 0.0;
  double build_seconds = 0.0;
  double dp_seconds = 0.0;
  double format_seconds = 0.0;
  double total_seconds = 0.0;  ///< accepted -> response staged on the wire

  std::size_t batch_size = 1;  ///< requests answered by the same execution
  bool coalesced = false;      ///< answered by another request's execution
  std::vector<std::uint64_t> coalesced_ids;  ///< executing request only

  std::chrono::steady_clock::time_point accepted{};

  /// {"batch_size":...,"coalesced":...,"coalesced_ids":[...],
  ///  "ms":{"build":...,"dp":...,"format":...,"parse":...,"queue":...,
  ///        "total":...,"write":...},
  ///  "ok":...,"request_id":...,"status":...,"type":...}
  [[nodiscard]] util::Json to_json() const;
};

class RequestLog {
 public:
  explicit RequestLog(std::size_t recent_capacity = 64,
                      std::size_t slow_capacity = 32);

  /// <= 0 disables slow capture.
  void set_slow_threshold_ms(double ms);
  [[nodiscard]] double slow_threshold_ms() const;

  /// Records a completed request: recent ring always, slow ring (plus a
  /// `request.slow` event-log entry) when total time exceeds the
  /// threshold. Thread-safe.
  void record(const RequestContext& context);

  /// {"count":N,"requests":[...oldest first...]}
  [[nodiscard]] util::Json recent_json() const;
  /// {"count":N,"slow_threshold_ms":...,"requests":[...oldest first...]}
  [[nodiscard]] util::Json slow_json() const;

 private:
  mutable std::mutex mutex_;
  std::size_t recent_capacity_;
  std::size_t slow_capacity_;
  double slow_threshold_ms_ = 0.0;
  std::uint64_t recorded_ = 0;  ///< lifetime total, monotonic
  std::deque<RequestContext> recent_;
  std::deque<RequestContext> slow_;
};

}  // namespace iarank::server
