/// \file service.hpp
/// \brief Socket-free core of the rank server: one JSON request in, one
///        JSON response out, against a shared staged InstanceBuilder.
///
/// The service owns the process-long state that makes a daemon worth
/// running: the InstanceBuilder bound to the served design + WLD, whose
/// per-stage LRU caches turn repeated requests for the same scenario into
/// cache hits, and the metric counters the /metrics endpoint exports.
/// Sweep requests fan out over the process-wide util::ThreadPool.
///
/// Request schema (one JSON object per frame):
///
///   {"type":"ping"}
///   {"type":"rank","overrides":{"ild_permittivity":3.0, ...}}
///   {"type":"sweep","parameter":"K","lo":3.9,"hi":1.8,"steps":22,
///    "overrides":{...}}
///   {"type":"metrics"}
///
/// `overrides` accepts the RankOptions-level config keys (the Table 4
/// parameters and modelling options of src/core/config_run.hpp); design-
/// level keys (node, gates, arch.*, wld.*) are rejected with bad-input —
/// the builder is bound to one design for its lifetime. Values may be
/// JSON numbers or strings; strings go through the same locale-
/// independent parser as config files.
///
/// Response schema:
///
///   {"ok":true,"type":"pong"}
///   {"ok":true,"type":"rank","rank":...,"normalized":...,
///    "all_assigned":...,"prefix_bunches":...,"refined_wires":...,
///    "repeater_count":...,"repeater_area_m2":...,"total_wires":...}
///   {"ok":true,"type":"sweep","parameter":"K","points":[
///      {"value":...,"status":"ok","rank":...,"normalized":...}, ...]}
///   {"ok":true,"type":"metrics","format":"prometheus","body":"..."}
///   {"ok":false,"error":{"code":"malformed|bad-input|infeasible|
///                         internal|io|overloaded|shutting-down",
///                        "message":"..."}}
///
/// Responses deliberately carry no timings: N clients issuing the same
/// request must receive byte-identical responses (the server's
/// determinism contract, tested in tests/test_server.cpp).
///
/// Trace opt-in: a request may carry a top-level `"trace"` field (any
/// value). Through the daemon, such a request is never batch-coalesced
/// and its response additionally carries `"request_id":<n>`, the
/// server-assigned id /debug/requests reports. Requests without `trace`
/// never see an id — opting in is the only way to perturb response
/// bytes, and it perturbs only your own.
///
/// handle() never throws and never terminates the process — every
/// failure, including malformed JSON, becomes an error response. That is
/// the per-request isolation half of the daemon's failure model; the
/// per-connection half lives in server.cpp.

#pragma once

#include <string>
#include <string_view>

#include "src/core/config_run.hpp"
#include "src/core/instance_builder.hpp"
#include "src/util/json.hpp"

namespace iarank::server {

struct RequestContext;

struct ServiceOptions {
  /// Parallelism of one sweep request's grid (the shared pool bounds
  /// global concurrency; results are thread-count independent).
  unsigned sweep_threads = 4;

  /// Upper bound on one sweep request's grid size, so a single request
  /// cannot monopolize the daemon.
  std::int64_t max_sweep_steps = 4096;

  /// Accepts {"type":"sleep","ms":N} requests — a load-test hook for
  /// deterministically occupying workers. Off outside tests/bench.
  bool enable_test_endpoints = false;
};

class RankService {
 public:
  /// Binds the service to the served scenario. The builder is constructed
  /// once here and shared by every request.
  RankService(core::RunSpec spec, const wld::Wld& wld_in_pitches,
              ServiceOptions options = {});

  /// Handles one request payload; always returns a response payload.
  /// Thread-safe: workers call this concurrently.
  [[nodiscard]] std::string handle(std::string_view request_text);

  /// Context-carrying overload: fills the stage timings (parse/build/dp/
  /// format), type and outcome into `*context`, and — only when the
  /// client supplied a top-level `trace` field (context->trace_requested)
  /// — echoes the server-assigned request_id into the response. With a
  /// null context, identical to handle(request_text): responses stay
  /// byte-deterministic.
  [[nodiscard]] std::string handle(std::string_view request_text,
                                   RequestContext* context);

  /// Builds the canonical error response ({"ok":false,...}). `code` is a
  /// protocol error code string; exposed so the transport layer emits
  /// the same shape for queue-full ("overloaded") and framing
  /// ("malformed") failures.
  [[nodiscard]] static std::string error_response(std::string_view code,
                                                  std::string_view message);

  /// True when `response` is a response payload with top-level ok:true.
  /// The transport layer uses this to settle the ok/failed books for
  /// requests it answers by fanning out one batched response.
  [[nodiscard]] static bool response_ok(std::string_view response);

  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  [[nodiscard]] const core::RunSpec& spec() const { return spec_; }

 private:
  [[nodiscard]] std::string handle_parsed(const std::string& type,
                                          const util::Json& request,
                                          RequestContext* context);

  /// Served baseline options + the request's `overrides` object (validated;
  /// unknown keys rejected with bad-input).
  [[nodiscard]] core::RankOptions options_with_overrides(
      const util::Json& request) const;

  core::RunSpec spec_;
  core::InstanceBuilder builder_;
  ServiceOptions options_;
};

}  // namespace iarank::server
