/// \file stack.hpp
/// \brief Per-layer-pair electrical view of an architecture.
///
/// Binds a tech::Architecture to an electrical environment (conductor,
/// ILD permittivity, Miller factor) and exposes, for each layer-pair, the
/// extracted RC values, the optimal repeater size s_opt,j (paper Eq. 4)
/// and a ready-to-use WireDelayModel. This is the object the rank engines
/// consult for all delay and repeater questions.

#pragma once

#include <cstddef>
#include <vector>

#include "src/delay/model.hpp"
#include "src/tech/architecture.hpp"
#include "src/tech/rc.hpp"

namespace iarank::delay {

/// Electrical summary of one layer-pair.
struct PairElectricals {
  tech::RcValues rc;     ///< extracted r̄, c̄
  double s_opt = 0.0;    ///< optimal repeater size [min-inverter multiples]
  WireDelayModel model;  ///< delay calculator for wires on this pair
};

/// Immutable stack of per-pair electricals, ordered like the architecture
/// (index 0 = topmost pair).
class ElectricalStack {
 public:
  /// Extracts RC and builds delay models for every pair. Throws
  /// util::Error on invalid parameters.
  ElectricalStack(const tech::Architecture& arch, const tech::RcParams& rc,
                  SwitchingConstants sw = {});

  [[nodiscard]] std::size_t size() const { return pairs_.size(); }

  /// Electricals of pair `index` (0 = topmost). Throws when out of range.
  [[nodiscard]] const PairElectricals& pair(std::size_t index) const;

  [[nodiscard]] const std::vector<PairElectricals>& pairs() const {
    return pairs_;
  }

 private:
  std::vector<PairElectricals> pairs_;
};

}  // namespace iarank::delay
