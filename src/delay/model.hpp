/// \file model.hpp
/// \brief Repeated-wire delay model (paper Eq. 2-4, after Otten-Brayton
///        "Planning for Performance", DAC 1998).
///
/// A wire of length l driven through eta equal stages (eta - 1 repeaters,
/// all of size s in min-inverter multiples) has delay
///
///   D(l, eta, s) = b r_o (c_o + c_p) eta
///                + b (cbar r_o / s + rbar c_o s) l
///                + a rbar cbar l^2 / eta
///
/// with switching constants a = 0.4, b = 0.7. This is the algebraically
/// consistent form D = eta * tau(l/eta); the paper's Eq. 3 final line
/// prints l^2/eta^2, which contradicts its own D = eta*tau derivation —
/// see EXPERIMENTS.md. The delay-minimizing repeater size
/// s_opt = sqrt(cbar r_o / (c_o rbar)) (paper Eq. 4) is independent of l
/// and eta, so one repeater type per layer-pair suffices (paper Sec. 4.1).

#pragma once

#include <cstdint>
#include <optional>

namespace iarank::delay {

/// Switching-model constants of the repeater (paper footnote 5).
struct SwitchingConstants {
  double a = 0.4;  ///< quadratic (distributed-RC) coefficient
  double b = 0.7;  ///< linear (lumped) coefficient

  /// Throws util::Error unless both are positive.
  void validate() const;
};

/// Per-unit-length electrical parameters of the wire's layer-pair.
struct LineParams {
  double resistance = 0.0;   ///< rbar [ohm/m]
  double capacitance = 0.0;  ///< cbar [F/m]

  /// Throws util::Error unless both are positive.
  void validate() const;
};

/// Min-inverter driver/repeater parameters (see tech::DeviceParams).
struct DriverParams {
  double r_o = 0.0;  ///< output resistance [ohm]
  double c_o = 0.0;  ///< input capacitance [F]
  double c_p = 0.0;  ///< parasitic capacitance [F]

  /// Throws util::Error unless r_o, c_o > 0 and c_p >= 0.
  void validate() const;
};

/// Stages + size solution for one wire.
struct RepeaterSolution {
  std::int64_t stages = 1;  ///< eta (repeaters = stages - 1)
  double size = 1.0;        ///< repeater size [min-inverter multiples]
  double delay = 0.0;       ///< resulting wire delay [s]

  [[nodiscard]] std::int64_t repeater_count() const { return stages - 1; }
};

/// Delay calculator for wires on one layer-pair.
class WireDelayModel {
 public:
  /// Validates all parameter structs; throws util::Error on failure.
  WireDelayModel(LineParams line, DriverParams driver,
                 SwitchingConstants sw = {});

  [[nodiscard]] const LineParams& line() const { return line_; }
  [[nodiscard]] const DriverParams& driver() const { return driver_; }
  [[nodiscard]] const SwitchingConstants& switching() const { return sw_; }

  /// Delay-minimizing repeater size s_opt (Eq. 4) [min-inverter multiples].
  [[nodiscard]] double optimal_repeater_size() const;

  /// D(l, eta, s) per the header formula. Throws for l < 0, eta < 1, s <= 0.
  [[nodiscard]] double delay(double length, std::int64_t stages,
                             double size) const;

  /// D(l, eta, s_opt).
  [[nodiscard]] double delay_opt_size(double length, std::int64_t stages) const;

  /// Integer stage count minimizing D(l, ., s_opt); always >= 1.
  [[nodiscard]] std::int64_t optimal_stage_count(double length) const;

  /// Minimum achievable delay of a length-l wire on this pair (optimal
  /// size and integer stage count).
  [[nodiscard]] double min_achievable_delay(double length) const;

  /// Smallest stage count eta (>= 1, <= max_stages when given) such that
  /// D(l, eta, s_opt) <= target; nullopt when the target is unattainable.
  /// Fewest stages == least repeater area, which is what the rank DP wants.
  [[nodiscard]] std::optional<RepeaterSolution> stages_to_meet(
      double length, double target,
      std::optional<std::int64_t> max_stages = std::nullopt) const;

  /// Bakoglu's closed-form (continuous) optimal stage count
  /// l * sqrt(a rbar cbar / (b r_o (c_o + c_p))) — for cross-checks.
  [[nodiscard]] double continuous_optimal_stages(double length) const;

 private:
  LineParams line_;
  DriverParams driver_;
  SwitchingConstants sw_;
  double s_opt_ = 0.0;

  /// Coefficients of D = A*eta + B(l)*l + C(l)/eta at s_opt.
  [[nodiscard]] double coeff_a() const;
  [[nodiscard]] double coeff_b(double size) const;
  [[nodiscard]] double coeff_c(double length) const;
};

}  // namespace iarank::delay
