/// \file ladder.hpp
/// \brief Discretized RC-ladder simulation of a driven wire segment.
///
/// The paper's delay model (Eq. 2-3) is a closed form with fitted
/// switching constants a = 0.4, b = 0.7 (50%-crossing coefficients for the
/// distributed and lumped terms). This module provides the ground truth
/// those constants approximate: a pi-ladder discretization of the
/// distributed RC line, with
///
///  * an exact Elmore delay (first moment) by prefix sums — which must
///    converge to the closed form evaluated at (a, b) = (0.5, 1.0); and
///  * a backward-Euler transient simulation returning the true 50%
///    crossing time of a step input through the driver resistance —
///    against which the (0.4, 0.7) closed form is validated in tests and
///    in bench_delay_validation.
///
/// This is a substrate for validation and experiments, not used inside
/// the rank engines (they use the closed form, as the paper does).

#pragma once

#include <cstdint>
#include <vector>

#include "src/delay/model.hpp"

namespace iarank::delay {

/// One driver + distributed line + lumped load.
struct LadderSpec {
  double driver_resistance = 0.0;   ///< R_tr [ohm]
  double driver_parasitic = 0.0;    ///< parasitic cap at the driver output [F]
  double load_capacitance = 0.0;    ///< C_L at the far end [F]
  double resistance_per_m = 0.0;    ///< rbar [ohm/m]
  double capacitance_per_m = 0.0;   ///< cbar [F/m]
  double length = 0.0;              ///< wire length [m]
  int sections = 200;               ///< pi-sections in the discretization

  /// Throws util::Error on non-physical values.
  void validate() const;
};

/// RC ladder with `sections` pi-sections.
class RcLadder {
 public:
  /// Builds node resistances/capacitances; throws via LadderSpec::validate.
  explicit RcLadder(const LadderSpec& spec);

  [[nodiscard]] const LadderSpec& spec() const { return spec_; }

  /// Exact Elmore delay (first moment of the far-end impulse response).
  [[nodiscard]] double elmore_delay() const;

  /// 50% step-response crossing time at the far end, by backward-Euler
  /// integration of the ladder ODE (Thomas tridiagonal solves). The time
  /// step adapts to the Elmore estimate; accuracy ~0.1%.
  [[nodiscard]] double transient_delay50() const;

 private:
  LadderSpec spec_;
  std::vector<double> res_;  ///< series resistance entering node i
  std::vector<double> cap_;  ///< capacitance at node i
};

/// True (simulated) delay of a repeated wire: `stages` equal segments,
/// each driven by a size-`size` repeater (resistance r_o/size, input cap
/// size*c_o, parasitic size*c_p), summed over stages. Mirrors the
/// construction behind WireDelayModel::delay for cross-validation.
[[nodiscard]] double simulate_repeated_wire(const WireDelayModel& model,
                                            double length, std::int64_t stages,
                                            double size, int sections = 200);

}  // namespace iarank::delay
