#include "src/delay/stack.hpp"

#include "src/util/error.hpp"

namespace iarank::delay {

ElectricalStack::ElectricalStack(const tech::Architecture& arch,
                                 const tech::RcParams& rc,
                                 SwitchingConstants sw) {
  pairs_.reserve(arch.pair_count());
  const tech::DeviceParams& dev = arch.node().device;
  const DriverParams driver{dev.r_o, dev.c_o, dev.c_p};
  for (const tech::LayerPair& lp : arch.pairs()) {
    const tech::RcValues values = tech::extract_rc(lp.geometry, rc);
    WireDelayModel model({values.resistance, values.capacitance}, driver, sw);
    pairs_.push_back({values, model.optimal_repeater_size(), model});
  }
}

const PairElectricals& ElectricalStack::pair(std::size_t index) const {
  iarank::util::require(index < pairs_.size(),
                        "ElectricalStack: pair index out of range");
  return pairs_[index];
}

}  // namespace iarank::delay
