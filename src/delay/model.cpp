#include "src/delay/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/error.hpp"

namespace iarank::delay {

void SwitchingConstants::validate() const {
  iarank::util::require(a > 0.0 && b > 0.0,
                        "SwitchingConstants: a and b must be > 0");
}

void LineParams::validate() const {
  iarank::util::require(resistance > 0.0, "LineParams: resistance must be > 0");
  iarank::util::require(capacitance > 0.0,
                        "LineParams: capacitance must be > 0");
}

void DriverParams::validate() const {
  iarank::util::require(r_o > 0.0, "DriverParams: r_o must be > 0");
  iarank::util::require(c_o > 0.0, "DriverParams: c_o must be > 0");
  iarank::util::require(c_p >= 0.0, "DriverParams: c_p must be >= 0");
}

WireDelayModel::WireDelayModel(LineParams line, DriverParams driver,
                               SwitchingConstants sw)
    : line_(line), driver_(driver), sw_(sw) {
  line_.validate();
  driver_.validate();
  sw_.validate();
  s_opt_ = std::sqrt(line_.capacitance * driver_.r_o /
                     (driver_.c_o * line_.resistance));
}

double WireDelayModel::optimal_repeater_size() const { return s_opt_; }

double WireDelayModel::coeff_a() const {
  return sw_.b * driver_.r_o * (driver_.c_o + driver_.c_p);
}

double WireDelayModel::coeff_b(double size) const {
  return sw_.b * (line_.capacitance * driver_.r_o / size +
                  line_.resistance * driver_.c_o * size);
}

double WireDelayModel::coeff_c(double length) const {
  return sw_.a * line_.resistance * line_.capacitance * length * length;
}

double WireDelayModel::delay(double length, std::int64_t stages,
                             double size) const {
  iarank::util::require(length >= 0.0, "WireDelayModel: length must be >= 0");
  iarank::util::require(stages >= 1, "WireDelayModel: stages must be >= 1");
  iarank::util::require(size > 0.0, "WireDelayModel: size must be > 0");
  const double eta = static_cast<double>(stages);
  return coeff_a() * eta + coeff_b(size) * length + coeff_c(length) / eta;
}

double WireDelayModel::delay_opt_size(double length,
                                      std::int64_t stages) const {
  return delay(length, stages, s_opt_);
}

std::int64_t WireDelayModel::optimal_stage_count(double length) const {
  iarank::util::require(length >= 0.0, "WireDelayModel: length must be >= 0");
  const double continuous = continuous_optimal_stages(length);
  if (continuous <= 1.0) return 1;
  // D(eta) = A eta + B l + C/eta is convex in eta: the best integer is
  // floor or ceil of the continuous optimum.
  const auto lo = static_cast<std::int64_t>(std::floor(continuous));
  const auto hi = lo + 1;
  return delay_opt_size(length, lo) <= delay_opt_size(length, hi) ? lo : hi;
}

double WireDelayModel::min_achievable_delay(double length) const {
  return delay_opt_size(length, optimal_stage_count(length));
}

double WireDelayModel::continuous_optimal_stages(double length) const {
  return length * std::sqrt(sw_.a * line_.resistance * line_.capacitance /
                            (sw_.b * driver_.r_o *
                             (driver_.c_o + driver_.c_p)));
}

std::optional<RepeaterSolution> WireDelayModel::stages_to_meet(
    double length, double target,
    std::optional<std::int64_t> max_stages) const {
  iarank::util::require(length >= 0.0, "WireDelayModel: length must be >= 0");
  iarank::util::require(target >= 0.0, "WireDelayModel: target must be >= 0");
  if (max_stages) {
    iarank::util::require(*max_stages >= 1,
                          "WireDelayModel: max_stages must be >= 1");
  }

  // D(eta) <= target  <=>  A eta^2 - (target - B l) eta + C <= 0.
  const double a = coeff_a();
  const double slack = target - coeff_b(s_opt_) * length;
  const double c = coeff_c(length);
  if (slack <= 0.0) return std::nullopt;

  const double disc = slack * slack - 4.0 * a * c;
  if (disc < 0.0) return std::nullopt;  // even the continuous optimum misses

  const double sqrt_disc = std::sqrt(disc);
  const double eta_lo = (slack - sqrt_disc) / (2.0 * a);
  const double eta_hi = (slack + sqrt_disc) / (2.0 * a);

  std::int64_t stages =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(
                                    eta_lo - 1e-12)));
  const auto ceiling =
      max_stages.value_or(std::numeric_limits<std::int64_t>::max());
  if (stages > ceiling) return std::nullopt;
  if (static_cast<double>(stages) > eta_hi + 1e-12) return std::nullopt;

  RepeaterSolution sol;
  sol.stages = stages;
  sol.size = s_opt_;
  sol.delay = delay_opt_size(length, stages);
  // Guard against floating-point edge cases at the interval endpoints.
  if (sol.delay > target * (1.0 + 1e-12)) {
    if (stages + 1 > ceiling) return std::nullopt;
    sol.stages = stages + 1;
    sol.delay = delay_opt_size(length, sol.stages);
    if (sol.delay > target * (1.0 + 1e-12)) return std::nullopt;
  }
  return sol;
}

}  // namespace iarank::delay
