#include "src/delay/ladder.hpp"

#include <cmath>
#include <vector>

#include "src/util/error.hpp"

namespace iarank::delay {

void LadderSpec::validate() const {
  iarank::util::require(driver_resistance > 0.0,
                        "LadderSpec: driver_resistance must be > 0");
  iarank::util::require(driver_parasitic >= 0.0,
                        "LadderSpec: driver_parasitic must be >= 0");
  iarank::util::require(load_capacitance >= 0.0,
                        "LadderSpec: load_capacitance must be >= 0");
  iarank::util::require(resistance_per_m > 0.0 && capacitance_per_m > 0.0,
                        "LadderSpec: line RC must be > 0");
  iarank::util::require(length > 0.0, "LadderSpec: length must be > 0");
  iarank::util::require(sections >= 1, "LadderSpec: sections must be >= 1");
}

RcLadder::RcLadder(const LadderSpec& spec) : spec_(spec) {
  spec_.validate();
  const auto n = static_cast<std::size_t>(spec_.sections);
  const double r_sec =
      spec_.resistance_per_m * spec_.length / static_cast<double>(n);
  const double c_sec =
      spec_.capacitance_per_m * spec_.length / static_cast<double>(n);

  // Node 0 is the driver output (parasitic cap); nodes 1..n are section
  // ends along the line; the load hangs on node n.
  res_.resize(n + 1);
  cap_.resize(n + 1);
  res_[0] = spec_.driver_resistance;
  cap_[0] = spec_.driver_parasitic;
  for (std::size_t i = 1; i <= n; ++i) {
    res_[i] = r_sec;
    cap_[i] = c_sec;
  }
  cap_[n] += spec_.load_capacitance;
}

double RcLadder::elmore_delay() const {
  // Chain topology: shared resistance of node i with the far end is the
  // path resistance from the source to node i.
  double delay = 0.0;
  double path_resistance = 0.0;
  for (std::size_t i = 0; i < res_.size(); ++i) {
    path_resistance += res_[i];
    delay += path_resistance * cap_[i];
  }
  return delay;
}

double RcLadder::transient_delay50() const {
  const std::size_t n = res_.size();
  const double elmore = elmore_delay();
  const double dt = elmore / 400.0;
  const std::size_t max_steps = 100000;

  // Conductances: g[i] connects node i-1 (or the source for i = 0) to i.
  std::vector<double> g(n);
  for (std::size_t i = 0; i < n; ++i) g[i] = 1.0 / res_[i];

  std::vector<double> v(n, 0.0);
  std::vector<double> diag(n);
  std::vector<double> lower(n, 0.0);
  std::vector<double> upper(n, 0.0);
  std::vector<double> rhs(n);
  std::vector<double> scratch_c(n);
  std::vector<double> scratch_d(n);

  double prev_out = 0.0;
  double t = 0.0;
  for (std::size_t step = 0; step < max_steps; ++step) {
    // Assemble (C/dt + G) v_new = C/dt v_old + source.
    for (std::size_t i = 0; i < n; ++i) {
      diag[i] = cap_[i] / dt + g[i] + (i + 1 < n ? g[i + 1] : 0.0);
      if (i + 1 < n) upper[i] = -g[i + 1];
      if (i > 0) lower[i] = -g[i];
      rhs[i] = cap_[i] / dt * v[i];
    }
    rhs[0] += g[0];  // unit step through the driver resistance

    // Thomas algorithm.
    scratch_c[0] = upper[0] / diag[0];
    scratch_d[0] = rhs[0] / diag[0];
    for (std::size_t i = 1; i < n; ++i) {
      const double m = diag[i] - lower[i] * scratch_c[i - 1];
      scratch_c[i] = (i + 1 < n) ? upper[i] / m : 0.0;
      scratch_d[i] = (rhs[i] - lower[i] * scratch_d[i - 1]) / m;
    }
    v[n - 1] = scratch_d[n - 1];
    for (std::size_t i = n - 1; i-- > 0;) {
      v[i] = scratch_d[i] - scratch_c[i] * v[i + 1];
    }

    t += dt;
    const double out = v[n - 1];
    if (out >= 0.5) {
      // Linear interpolation inside the crossing step.
      const double frac = (0.5 - prev_out) / (out - prev_out);
      return t - dt + frac * dt;
    }
    prev_out = out;
  }
  throw iarank::util::Error("RcLadder: 50% crossing not reached");
}

double simulate_repeated_wire(const WireDelayModel& model, double length,
                              std::int64_t stages, double size, int sections) {
  iarank::util::require(length > 0.0 && stages >= 1 && size > 0.0,
                        "simulate_repeated_wire: invalid arguments");
  LadderSpec spec;
  spec.driver_resistance = model.driver().r_o / size;
  spec.driver_parasitic = model.driver().c_p * size;
  spec.load_capacitance = model.driver().c_o * size;
  spec.resistance_per_m = model.line().resistance;
  spec.capacitance_per_m = model.line().capacitance;
  spec.length = length / static_cast<double>(stages);
  spec.sections = sections;
  const RcLadder ladder(spec);
  return static_cast<double>(stages) * ladder.transient_delay50();
}

}  // namespace iarank::delay
