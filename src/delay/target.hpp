/// \file target.hpp
/// \brief Per-wire target delay models.
///
/// The paper (Section 4.1) sets the target delay of wire i to
/// d_i = (l_i / l_max) * (1 / f_c) — linear in length, so longer wires get
/// a larger share of the clock period. Section 6 notes this is pessimistic
/// for short wires (actual repeated-wire delay is closer to linear with a
/// constant offset) and announces a study of alternatives; we implement the
/// paper's linear model plus three alternatives as that extension.

#pragma once

#include <string>

namespace iarank::delay {

/// Shape of the target-delay curve d(l).
enum class TargetModel {
  kLinear,     ///< d = (l/l_max) / f_c — the paper's model
  kSqrt,       ///< d = sqrt(l/l_max) / f_c — gentler on short wires
  kQuadratic,  ///< d = (l/l_max)^2 / f_c — tracks unrepeated RC delay
  kUniform,    ///< d = 1 / f_c — every wire gets a full cycle
};

[[nodiscard]] std::string to_string(TargetModel model);

/// Computes per-wire target delays from the clock frequency and the
/// longest wire length (both fixed per rank computation).
class TargetDelay {
 public:
  /// `clock_frequency` [Hz], `max_length` [m]. Throws util::Error on
  /// non-positive arguments.
  TargetDelay(TargetModel model, double clock_frequency, double max_length);

  [[nodiscard]] TargetModel model() const { return model_; }
  [[nodiscard]] double clock_frequency() const { return clock_; }
  [[nodiscard]] double max_length() const { return max_length_; }

  /// Target delay d(l) [s] for a wire of length l [m]. Lengths above
  /// max_length are clamped (their target is the full period fraction of
  /// the longest wire). Throws util::Error for negative lengths.
  [[nodiscard]] double target(double length) const;

 private:
  TargetModel model_;
  double clock_ = 0.0;
  double max_length_ = 0.0;
};

}  // namespace iarank::delay
