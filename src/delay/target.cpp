#include "src/delay/target.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace iarank::delay {

std::string to_string(TargetModel model) {
  switch (model) {
    case TargetModel::kLinear:
      return "linear";
    case TargetModel::kSqrt:
      return "sqrt";
    case TargetModel::kQuadratic:
      return "quadratic";
    case TargetModel::kUniform:
      return "uniform";
  }
  return "unknown";
}

TargetDelay::TargetDelay(TargetModel model, double clock_frequency,
                         double max_length)
    : model_(model), clock_(clock_frequency), max_length_(max_length) {
  iarank::util::require(clock_ > 0.0, "TargetDelay: clock must be > 0");
  iarank::util::require(max_length_ > 0.0, "TargetDelay: max_length must be > 0");
}

double TargetDelay::target(double length) const {
  iarank::util::require(length >= 0.0, "TargetDelay: length must be >= 0");
  const double period = 1.0 / clock_;
  const double ratio = std::min(length / max_length_, 1.0);
  switch (model_) {
    case TargetModel::kLinear:
      return ratio * period;
    case TargetModel::kSqrt:
      return std::sqrt(ratio) * period;
    case TargetModel::kQuadratic:
      return ratio * ratio * period;
    case TargetModel::kUniform:
      return period;
  }
  throw iarank::util::Error("TargetDelay: unknown model");
}

}  // namespace iarank::delay
