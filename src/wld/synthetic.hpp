/// \file synthetic.hpp
/// \brief Synthetic wire length distributions for tests, examples and
///        the Figure-2 counterexample.
///
/// These generators produce deterministic histograms (no sampling noise)
/// unless a seed-based sampler is requested explicitly; deterministic
/// inputs keep rank results reproducible across runs.

#pragma once

#include <cstdint>

#include "src/wld/wld.hpp"

namespace iarank::wld {

/// `count` wires all of length `length` [pitches].
[[nodiscard]] Wld uniform_length(double length, std::int64_t count);

/// `total` wires spread evenly over `groups` lengths equally spaced in
/// [min_length, max_length] (remainder goes to the shortest group).
[[nodiscard]] Wld uniform_spread(double min_length, double max_length,
                                 std::int64_t groups, std::int64_t total);

/// Geometrically decaying counts: group g (longest first) has
/// round(first_count * decay^g) wires at length max_length * shrink^g,
/// stopping when the count reaches zero or `max_groups` groups exist.
[[nodiscard]] Wld geometric(double max_length, std::int64_t first_count,
                            double decay, double shrink,
                            std::int64_t max_groups);

/// Power-law histogram over integer lengths 1..max_length:
/// count(l) = round(scale * l^(-exponent)); zero-count lengths dropped.
[[nodiscard]] Wld power_law(std::int64_t max_length, double scale,
                            double exponent);

/// Random lengths from an exponential distribution with the given mean,
/// clamped to [1, max_length], rounded to integers. Deterministic for a
/// fixed seed.
[[nodiscard]] Wld sampled_exponential(std::int64_t wires, double mean_length,
                                      double max_length, std::uint64_t seed);

}  // namespace iarank::wld
