#include "src/wld/coarsen.hpp"

#include <functional>

#include "src/util/error.hpp"

namespace iarank::wld {

std::vector<WireGroup> bunch(const Wld& wld, std::int64_t bunch_size) {
  iarank::util::require(bunch_size >= 1, "bunch: bunch_size must be >= 1");
  std::vector<WireGroup> bunches;
  bunches.reserve(static_cast<std::size_t>(bunch_count(wld, bunch_size)));
  for (const WireGroup& g : wld.groups()) {
    std::int64_t remaining = g.count;
    while (remaining > 0) {
      const std::int64_t take = std::min(remaining, bunch_size);
      bunches.push_back({g.length, take});
      remaining -= take;
    }
  }
  return bunches;
}

std::int64_t bunch_count(const Wld& wld, std::int64_t bunch_size) {
  iarank::util::require(bunch_size >= 1, "bunch_count: bunch_size must be >= 1");
  std::int64_t total = 0;
  for (const WireGroup& g : wld.groups()) {
    total += (g.count + bunch_size - 1) / bunch_size;
  }
  return total;
}

namespace {

Wld bin_with_predicate(
    const Wld& wld,
    const std::function<bool(double first_length, double length)>& in_bin) {
  std::vector<WireGroup> out;
  const auto& groups = wld.groups();
  std::size_t i = 0;
  while (i < groups.size()) {
    const double first_length = groups[i].length;
    double weighted_length = 0.0;
    std::int64_t count = 0;
    std::size_t j = i;
    while (j < groups.size() && in_bin(first_length, groups[j].length)) {
      weighted_length += groups[j].length * static_cast<double>(groups[j].count);
      count += groups[j].count;
      ++j;
    }
    out.push_back({weighted_length / static_cast<double>(count), count});
    i = j;
  }
  return Wld(std::move(out));
}

}  // namespace

Wld bin_absolute(const Wld& wld, double window) {
  iarank::util::require(window >= 0.0, "bin_absolute: window must be >= 0");
  return bin_with_predicate(wld, [window](double first, double len) {
    return first - len <= window;
  });
}

Wld bin_relative(const Wld& wld, double relative_width) {
  iarank::util::require(relative_width >= 0.0,
                        "bin_relative: relative_width must be >= 0");
  return bin_with_predicate(wld, [relative_width](double first, double len) {
    return first - len <= relative_width * first;
  });
}

}  // namespace iarank::wld
