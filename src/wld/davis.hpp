/// \file davis.hpp
/// \brief Davis-De-Meindl stochastic wire length distribution.
///
/// Implements the closed-form a-priori WLD of J. A. Davis, V. K. De and
/// J. D. Meindl, "A Stochastic Wire-Length Distribution for Gigascale
/// Integration (GSI) - Part I", IEEE T-ED 45(3), 1998 — reference [4] of
/// the paper and the WLD used in its experiments (Rent parameter p = 0.6).
///
/// The interconnect density (expected wires per unit length, lengths in
/// gate pitches, N gates on a square array):
///
///   region I  (1 <= l < sqrt(N)):
///       i(l) = (alpha k / 2) * Gamma * (l^3/3 - 2 sqrt(N) l^2 + 2 N l) * l^(2p-4)
///   region II (sqrt(N) <= l <= 2 sqrt(N)):
///       i(l) = (alpha k / 6) * Gamma * (2 sqrt(N) - l)^3 * l^(2p-4)
///
/// Gamma normalizes the total wire count to the Rent-rule total
/// T = alpha k N (1 - N^(p-1)); we compute it by numerical quadrature,
/// which makes the normalization exact by construction.

#pragma once

#include <cstdint>

#include "src/wld/wld.hpp"

namespace iarank::wld {

/// Inputs of the Davis model.
struct DavisParams {
  std::int64_t gate_count = 0;  ///< N (gates on a sqrt(N) x sqrt(N) array)
  double rent_p = 0.6;          ///< Rent exponent (paper uses 0.6)
  double rent_k = 4.0;          ///< Rent coefficient
  double avg_fanout = 3.0;      ///< average fanout f.o.; alpha = fo/(fo+1)

  /// Fraction alpha = fo / (fo + 1) of the Davis derivation.
  [[nodiscard]] double alpha() const { return avg_fanout / (avg_fanout + 1.0); }

  /// Longest possible length 2 sqrt(N) [gate pitches].
  [[nodiscard]] double max_length() const;

  /// Rent-rule total interconnect count T = alpha k N (1 - N^(p-1)).
  [[nodiscard]] double total_interconnects() const;

  /// Throws util::Error on invalid values (N < 4, p outside (0,1), ...).
  void validate() const;
};

/// Evaluator and generator for the Davis WLD.
class DavisModel {
 public:
  /// Validates and pre-computes the normalization constant Gamma.
  explicit DavisModel(const DavisParams& params);

  [[nodiscard]] const DavisParams& params() const { return params_; }

  /// Normalization constant Gamma (wires, not pairs).
  [[nodiscard]] double gamma() const { return gamma_; }

  /// Un-normalized density shape (the bracketed polynomial x l^(2p-4),
  /// including the 1/2 and 1/6 region prefactors but not alpha k Gamma).
  [[nodiscard]] double raw_shape(double length) const;

  /// Normalized density i(l): expected wires per unit length at `length`
  /// [gate pitches]. Zero outside [1, 2 sqrt(N)].
  [[nodiscard]] double density(double length) const;

  /// Expected number of wires with length in [lo, hi].
  [[nodiscard]] double expected_count(double lo, double hi) const;

  /// Generates the histogram at integer gate-pitch lengths 1..2 sqrt(N).
  /// Counts are rounded with running-remainder correction so the total
  /// matches total_interconnects() to within 1 wire.
  [[nodiscard]] Wld generate() const;

  /// Monte-Carlo variant: samples `wires` lengths from the (integerized)
  /// density. Models the run-to-run variation a real design's WLD shows
  /// around the closed-form expectation; deterministic per seed.
  [[nodiscard]] Wld sample(std::int64_t wires, std::uint64_t seed) const;

 private:
  DavisParams params_;
  double sqrt_n_ = 0.0;
  double gamma_ = 0.0;
};

}  // namespace iarank::wld
