/// \file discrete.hpp
/// \brief Exact discrete gate-pair enumeration on a square array.
///
/// The Davis closed form is derived from the count of gate pairs at each
/// Manhattan distance on a sqrt(N) x sqrt(N) placement. This module
/// computes that count exactly — by brute force (O(n^4), tiny arrays) and
/// by displacement summation (O(l) per distance, any array) — so tests can
/// validate the continuous model against ground truth.

#pragma once

#include <cstdint>
#include <vector>

namespace iarank::wld {

/// Number of *unordered* gate pairs at each Manhattan distance
/// l = 1 .. 2(n-1) on an n x n array, computed by brute force over all
/// position pairs. Index 0 of the result corresponds to l = 1.
/// O(n^4); intended for n <= ~32 in tests.
[[nodiscard]] std::vector<std::int64_t> pair_counts_brute_force(int n);

/// Unordered gate pairs at Manhattan distance l on an n x n array,
/// computed exactly by summing over displacement vectors in O(l).
/// Matches pair_counts_brute_force for all valid l; returns 0 outside
/// 1 <= l <= 2(n-1).
[[nodiscard]] std::int64_t pair_count_exact(int n, int l);

}  // namespace iarank::wld
