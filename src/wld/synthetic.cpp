#include "src/wld/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "src/util/error.hpp"
#include "src/util/numeric.hpp"

namespace iarank::wld {

Wld uniform_length(double length, std::int64_t count) {
  iarank::util::require(count >= 1, "uniform_length: count must be >= 1");
  return Wld({{length, count}});
}

Wld uniform_spread(double min_length, double max_length, std::int64_t groups,
                   std::int64_t total) {
  iarank::util::require(groups >= 1, "uniform_spread: groups must be >= 1");
  iarank::util::require(total >= groups,
                        "uniform_spread: need at least one wire per group");
  iarank::util::require(min_length > 0.0 && max_length >= min_length,
                        "uniform_spread: invalid length range");
  const auto lengths = iarank::util::linspace(
      min_length, max_length, static_cast<std::size_t>(groups));
  const std::int64_t per_group = total / groups;
  std::int64_t remainder = total - per_group * groups;

  std::vector<WireGroup> out;
  out.reserve(lengths.size());
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    std::int64_t count = per_group;
    if (i == 0) count += remainder;  // lengths[0] is the shortest
    out.push_back({lengths[i], count});
  }
  return Wld(std::move(out));
}

Wld geometric(double max_length, std::int64_t first_count, double decay,
              double shrink, std::int64_t max_groups) {
  iarank::util::require(max_length > 0.0, "geometric: max_length must be > 0");
  iarank::util::require(first_count >= 1, "geometric: first_count must be >= 1");
  iarank::util::require(decay > 0.0, "geometric: decay must be > 0");
  iarank::util::require(shrink > 0.0 && shrink < 1.0,
                        "geometric: shrink must be in (0, 1)");
  iarank::util::require(max_groups >= 1, "geometric: max_groups must be >= 1");

  std::vector<WireGroup> out;
  double length = max_length;
  double count = static_cast<double>(first_count);
  for (std::int64_t g = 0; g < max_groups; ++g) {
    const auto rounded = static_cast<std::int64_t>(std::llround(count));
    if (rounded < 1 || length < 1e-12) break;
    out.push_back({length, rounded});
    length *= shrink;
    count *= decay;
  }
  return Wld(std::move(out));
}

Wld power_law(std::int64_t max_length, double scale, double exponent) {
  iarank::util::require(max_length >= 1, "power_law: max_length must be >= 1");
  iarank::util::require(scale > 0.0, "power_law: scale must be > 0");
  std::vector<WireGroup> out;
  for (std::int64_t l = 1; l <= max_length; ++l) {
    const double expected =
        scale * std::pow(static_cast<double>(l), -exponent);
    const auto count = static_cast<std::int64_t>(std::llround(expected));
    if (count > 0) out.push_back({static_cast<double>(l), count});
  }
  return Wld(std::move(out));
}

Wld sampled_exponential(std::int64_t wires, double mean_length,
                        double max_length, std::uint64_t seed) {
  iarank::util::require(wires >= 1, "sampled_exponential: wires must be >= 1");
  iarank::util::require(mean_length > 0.0 && max_length >= 1.0,
                        "sampled_exponential: invalid lengths");
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> dist(1.0 / mean_length);
  std::vector<double> lengths;
  lengths.reserve(static_cast<std::size_t>(wires));
  for (std::int64_t i = 0; i < wires; ++i) {
    const double raw = std::clamp(dist(rng), 1.0, max_length);
    lengths.push_back(std::round(raw));
  }
  return Wld::from_lengths(lengths);
}

}  // namespace iarank::wld
