/// \file coarsen.hpp
/// \brief WLD coarsening: bunching (paper Section 5.1) and binning
///        (paper footnote 7).
///
/// Rank computation cost grows steeply with the number of assignment units,
/// so the paper assigns *bunches* of identical-length wires instead of
/// single wires. The error in the computed rank is bounded by the largest
/// bunch size. Binning is an orthogonal reduction that replaces a group of
/// nearby lengths with a single wire length at their (count-weighted) mean.

#pragma once

#include <cstdint>
#include <vector>

#include "src/wld/wld.hpp"

namespace iarank::wld {

/// Splits every length-group into bunches of at most `bunch_size` wires.
/// A group of 100 wires with bunch_size 40 yields bunches of 40, 40, 20
/// (the paper's example). Result is ordered longest-first; each element's
/// count is in [1, bunch_size]. Throws util::Error for bunch_size < 1.
[[nodiscard]] std::vector<WireGroup> bunch(const Wld& wld,
                                           std::int64_t bunch_size);

/// Number of bunches `bunch` would produce, without materializing them
/// (ceil(count / bunch_size) per group).
[[nodiscard]] std::int64_t bunch_count(const Wld& wld, std::int64_t bunch_size);

/// Binning with an absolute length window: scanning longest-first, groups
/// whose length is within `window` [pitches] of the first group in the
/// current bin are merged into one group at the count-weighted mean
/// length. The paper's example (lengths 5996..6000, counts 3,2,2,1,1 ->
/// one group of 9 at length 5998) corresponds to window >= 4.
/// Total wire count is preserved exactly. Throws for window < 0.
[[nodiscard]] Wld bin_absolute(const Wld& wld, double window);

/// Binning with a relative window: a group joins the current bin while
/// (first_length - length) <= relative_width * first_length.
/// Throws for relative_width < 0.
[[nodiscard]] Wld bin_relative(const Wld& wld, double relative_width);

}  // namespace iarank::wld
