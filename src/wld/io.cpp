#include "src/wld/io.hpp"

#include <fstream>
#include <sstream>

#include "src/util/atomic_file.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"
#include "src/util/strings.hpp"

namespace iarank::wld {

namespace {
const iarank::util::FaultSite kSiteRead{"wld.io.read"};
}  // namespace

void write_wld(std::ostream& os, const Wld& wld) {
  os << "# iarank WLD: " << wld.total_wires() << " wires, "
     << wld.group_count() << " groups\n";
  os << "# length_in_gate_pitches count\n";
  for (const WireGroup& g : wld.groups()) {
    os << g.length << " " << g.count << "\n";
  }
}

void save_wld(const std::string& path, const Wld& wld) {
  std::ostringstream buffer;
  write_wld(buffer, wld);
  iarank::util::atomic_write_file(path, buffer.str());
}

Wld read_wld(std::istream& is) {
  iarank::util::maybe_inject(kSiteRead);
  std::vector<WireGroup> groups;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = iarank::util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;

    const std::string at_line = "read_wld: line " + std::to_string(line_no);
    std::istringstream fields{std::string(trimmed)};
    std::string length_token;
    std::string count_token;
    std::string extra;
    fields >> length_token >> count_token;
    iarank::util::require(!fields.fail(),
                          at_line + ": expected '<length> <count>', got '" +
                              std::string(trimmed) + "'");
    iarank::util::require(!(fields >> extra),
                          at_line + ": trailing token '" + extra + "'");

    double length = 0.0;
    std::int64_t count = 0;
    try {
      length = iarank::util::parse_double(length_token);
      count = iarank::util::parse_int(count_token);
    } catch (const iarank::util::Error& e) {
      throw iarank::util::Error(at_line + ": " + e.what());
    }
    iarank::util::require(length > 0.0,
                          at_line + ": length must be > 0, got " +
                              length_token);
    iarank::util::require(count >= 0,
                          at_line + ": count must be >= 0, got " + count_token);
    groups.push_back({length, count});
  }
  return Wld(std::move(groups));
}

Wld load_wld(const std::string& path) {
  std::ifstream in(path);
  iarank::util::require(in.good(), "load_wld: cannot open '" + path + "'");
  return read_wld(in);
}

}  // namespace iarank::wld
