#include "src/wld/io.hpp"

#include <fstream>
#include <sstream>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iarank::wld {

void write_wld(std::ostream& os, const Wld& wld) {
  os << "# iarank WLD: " << wld.total_wires() << " wires, "
     << wld.group_count() << " groups\n";
  os << "# length_in_gate_pitches count\n";
  for (const WireGroup& g : wld.groups()) {
    os << g.length << " " << g.count << "\n";
  }
}

void save_wld(const std::string& path, const Wld& wld) {
  std::ofstream out(path);
  iarank::util::require(out.good(), "save_wld: cannot open '" + path + "'");
  write_wld(out, wld);
}

Wld read_wld(std::istream& is) {
  std::vector<WireGroup> groups;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = iarank::util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    double length = 0.0;
    std::int64_t count = 0;
    fields >> length >> count;
    iarank::util::require(!fields.fail(),
                          "read_wld: malformed line " + std::to_string(line_no));
    groups.push_back({length, count});
  }
  return Wld(std::move(groups));
}

Wld load_wld(const std::string& path) {
  std::ifstream in(path);
  iarank::util::require(in.good(), "load_wld: cannot open '" + path + "'");
  return read_wld(in);
}

}  // namespace iarank::wld
