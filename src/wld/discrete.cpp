#include "src/wld/discrete.hpp"

#include <cstdlib>

#include "src/util/error.hpp"

namespace iarank::wld {

std::vector<std::int64_t> pair_counts_brute_force(int n) {
  iarank::util::require(n >= 1 && n <= 64,
                        "pair_counts_brute_force: n must be in [1, 64]");
  const int max_l = 2 * (n - 1);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(
                                       max_l > 0 ? max_l : 0),
                                   0);
  for (int x1 = 0; x1 < n; ++x1) {
    for (int y1 = 0; y1 < n; ++y1) {
      for (int x2 = 0; x2 < n; ++x2) {
        for (int y2 = 0; y2 < n; ++y2) {
          const int l = std::abs(x1 - x2) + std::abs(y1 - y2);
          if (l >= 1) ++counts[static_cast<std::size_t>(l - 1)];
        }
      }
    }
  }
  for (std::int64_t& c : counts) c /= 2;  // ordered -> unordered
  return counts;
}

std::int64_t pair_count_exact(int n, int l) {
  iarank::util::require(n >= 1, "pair_count_exact: n must be >= 1");
  if (l < 1 || l > 2 * (n - 1)) return 0;
  std::int64_t ordered = 0;
  for (int dx = 0; dx <= l; ++dx) {
    const int dy = l - dx;
    if (dx > n - 1 || dy > n - 1) continue;
    const std::int64_t positions = static_cast<std::int64_t>(n - dx) *
                                   static_cast<std::int64_t>(n - dy);
    const std::int64_t sign_variants = (dx > 0 && dy > 0) ? 4 : 2;
    ordered += sign_variants * positions;
  }
  return ordered / 2;
}

}  // namespace iarank::wld
