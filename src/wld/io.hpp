/// \file io.hpp
/// \brief Plain-text WLD serialization.
///
/// Format: one "length count" pair per line (whitespace-separated),
/// `#` comments and blank lines ignored. Lengths are gate pitches.

#pragma once

#include <iosfwd>
#include <string>

#include "src/wld/wld.hpp"

namespace iarank::wld {

/// Writes `wld` (longest group first) with a descriptive header comment.
void write_wld(std::ostream& os, const Wld& wld);

/// Writes to a file; throws util::Error when the file cannot be opened.
void save_wld(const std::string& path, const Wld& wld);

/// Parses a WLD from a stream; throws util::Error on malformed lines.
[[nodiscard]] Wld read_wld(std::istream& is);

/// Loads from a file; throws util::Error when unreadable.
[[nodiscard]] Wld load_wld(const std::string& path);

}  // namespace iarank::wld
