/// \file wld.hpp
/// \brief Wire length distribution (WLD) container.
///
/// A WLD is a histogram: groups of wires sharing one length, kept sorted by
/// non-increasing length. The paper's Definition 1 ranks wires by that
/// order: wire rank 1 is the longest. Lengths are in *gate pitches*
/// (dimensionless); conversion to metres happens where the die model is
/// known (core::RankEngine).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iarank::wld {

/// A maximal set of wires sharing one length.
struct WireGroup {
  double length = 0.0;      ///< wire length [gate pitches]
  std::int64_t count = 0;   ///< number of wires of this length
};

/// Summary statistics of a WLD (see Wld::stats()).
struct WldStats {
  std::int64_t total_wires = 0;
  double total_length = 0.0;   ///< sum of all wire lengths [pitches]
  double mean_length = 0.0;    ///< [pitches]
  double max_length = 0.0;     ///< [pitches]
  double min_length = 0.0;     ///< [pitches]
  double median_length = 0.0;  ///< [pitches]
};

/// Immutable-after-construction histogram of wire lengths.
///
/// Invariants: every group has positive length and count; groups are
/// strictly decreasing in length (equal lengths are merged).
class Wld {
 public:
  Wld() = default;

  /// Builds from arbitrary groups: merges equal lengths, drops zero-count
  /// groups, sorts by non-increasing length. Throws util::Error on
  /// non-positive lengths or negative counts.
  explicit Wld(std::vector<WireGroup> groups);

  /// Builds from an explicit list of individual wire lengths.
  [[nodiscard]] static Wld from_lengths(const std::vector<double>& lengths);

  /// Groups, longest first.
  [[nodiscard]] const std::vector<WireGroup>& groups() const { return groups_; }

  [[nodiscard]] bool empty() const { return groups_.empty(); }
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
  [[nodiscard]] std::int64_t total_wires() const { return total_wires_; }

  /// Longest wire length (l_max in the paper); throws util::Error if empty.
  [[nodiscard]] double max_length() const;

  /// Summary statistics; throws util::Error if empty.
  [[nodiscard]] WldStats stats() const;

  /// Number of wires with length strictly greater than `length`.
  [[nodiscard]] std::int64_t count_longer_than(double length) const;

  /// Length of the wire at 1-based rank `rank` (rank 1 = longest).
  /// Throws util::Error when rank is out of [1, total_wires()].
  [[nodiscard]] double length_at_rank(std::int64_t rank) const;

  /// Returns a new WLD scaled by `factor` in length (counts unchanged).
  [[nodiscard]] Wld scaled(double factor) const;

  /// Returns a new WLD with every count multiplied by `factor` (>= 1).
  [[nodiscard]] Wld replicated(std::int64_t factor) const;

  /// Returns the sub-distribution of wires with length in [lo, hi].
  [[nodiscard]] Wld sliced(double lo, double hi) const;

  /// Merges two distributions (equal lengths combine).
  [[nodiscard]] static Wld merged(const Wld& a, const Wld& b);

  /// One-line summary for logs.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<WireGroup> groups_;
  std::int64_t total_wires_ = 0;
};

}  // namespace iarank::wld
