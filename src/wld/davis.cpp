#include "src/wld/davis.hpp"

#include <cmath>
#include <random>

#include "src/util/error.hpp"
#include "src/util/numeric.hpp"

namespace iarank::wld {

void DavisParams::validate() const {
  iarank::util::require(gate_count >= 4, "DavisParams: gate_count must be >= 4");
  iarank::util::require(rent_p > 0.0 && rent_p < 1.0,
                        "DavisParams: rent_p must be in (0, 1)");
  iarank::util::require(rent_k > 0.0, "DavisParams: rent_k must be > 0");
  iarank::util::require(avg_fanout > 0.0, "DavisParams: avg_fanout must be > 0");
}

double DavisParams::max_length() const {
  return 2.0 * std::sqrt(static_cast<double>(gate_count));
}

double DavisParams::total_interconnects() const {
  const double n = static_cast<double>(gate_count);
  return alpha() * rent_k * n * (1.0 - std::pow(n, rent_p - 1.0));
}

DavisModel::DavisModel(const DavisParams& params) : params_(params) {
  params_.validate();
  sqrt_n_ = std::sqrt(static_cast<double>(params_.gate_count));

  // Gamma makes the integral of alpha*k*Gamma*raw_shape equal the Rent
  // total. Integrate the two smooth regions separately (the l^(2p-4)
  // factor is steep near l = 1).
  auto shape = [this](double l) { return raw_shape(l); };
  const double raw_total = iarank::util::integrate(shape, 1.0, sqrt_n_, 1e-9) +
                           iarank::util::integrate(shape, sqrt_n_,
                                                   params_.max_length(), 1e-9);
  iarank::util::require(raw_total > 0.0,
                        "DavisModel: degenerate distribution shape");
  gamma_ = params_.total_interconnects() /
           (params_.alpha() * params_.rent_k * raw_total);
}

double DavisModel::raw_shape(double length) const {
  if (length < 1.0 || length > params_.max_length()) return 0.0;
  const double n = static_cast<double>(params_.gate_count);
  const double occupancy = std::pow(length, 2.0 * params_.rent_p - 4.0);
  if (length < sqrt_n_) {
    const double poly = length * length * length / 3.0 -
                        2.0 * sqrt_n_ * length * length + 2.0 * n * length;
    return 0.5 * poly * occupancy;
  }
  const double rem = 2.0 * sqrt_n_ - length;
  return rem * rem * rem / 6.0 * occupancy;
}

double DavisModel::density(double length) const {
  return params_.alpha() * params_.rent_k * gamma_ * raw_shape(length);
}

double DavisModel::expected_count(double lo, double hi) const {
  iarank::util::require(lo <= hi, "DavisModel: bad interval");
  const double a = std::max(lo, 1.0);
  const double b = std::min(hi, params_.max_length());
  if (a >= b) return 0.0;
  auto f = [this](double l) { return density(l); };
  // Split at the region boundary for quadrature accuracy.
  if (a < sqrt_n_ && b > sqrt_n_) {
    return iarank::util::integrate(f, a, sqrt_n_, 1e-9) +
           iarank::util::integrate(f, sqrt_n_, b, 1e-9);
  }
  return iarank::util::integrate(f, a, b, 1e-9);
}

Wld DavisModel::generate() const {
  const auto l_max = static_cast<std::int64_t>(std::floor(params_.max_length()));
  std::vector<WireGroup> groups;
  groups.reserve(static_cast<std::size_t>(l_max));

  // Integrate density over unit-length cells centred at integer lengths,
  // carrying the rounding remainder forward so the grand total is exact.
  double carry = 0.0;
  for (std::int64_t l = 1; l <= l_max; ++l) {
    const double lo = (l == 1) ? 1.0 : static_cast<double>(l) - 0.5;
    const double hi = (l == l_max) ? params_.max_length()
                                   : static_cast<double>(l) + 0.5;
    const double expected = expected_count(lo, hi) + carry;
    const auto count = static_cast<std::int64_t>(std::llround(expected));
    carry = expected - static_cast<double>(count);
    if (count > 0) groups.push_back({static_cast<double>(l), count});
  }
  return Wld(std::move(groups));
}

Wld DavisModel::sample(std::int64_t wires, std::uint64_t seed) const {
  iarank::util::require(wires >= 1, "DavisModel::sample: wires must be >= 1");

  // Tabulate per-integer-length weights once, then draw from the discrete
  // distribution.
  const auto l_max = static_cast<std::int64_t>(std::floor(params_.max_length()));
  std::vector<double> weights;
  weights.reserve(static_cast<std::size_t>(l_max));
  for (std::int64_t l = 1; l <= l_max; ++l) {
    const double lo = (l == 1) ? 1.0 : static_cast<double>(l) - 0.5;
    const double hi = (l == l_max) ? params_.max_length()
                                   : static_cast<double>(l) + 0.5;
    weights.push_back(std::max(0.0, expected_count(lo, hi)));
  }
  std::mt19937_64 rng(seed);
  std::discrete_distribution<std::int64_t> dist(weights.begin(), weights.end());

  std::vector<std::int64_t> counts(weights.size(), 0);
  for (std::int64_t i = 0; i < wires; ++i) {
    ++counts[static_cast<std::size_t>(dist(rng))];
  }
  std::vector<WireGroup> groups;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) {
      groups.push_back({static_cast<double>(i + 1), counts[i]});
    }
  }
  return Wld(std::move(groups));
}

}  // namespace iarank::wld
