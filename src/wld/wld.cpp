#include "src/wld/wld.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "src/util/error.hpp"

namespace iarank::wld {

Wld::Wld(std::vector<WireGroup> groups) {
  std::map<double, std::int64_t, std::greater<>> merged;
  for (const WireGroup& g : groups) {
    iarank::util::require(g.count >= 0, "Wld: group count must be >= 0");
    if (g.count == 0) continue;
    iarank::util::require(g.length > 0.0, "Wld: wire length must be > 0");
    merged[g.length] += g.count;
  }
  groups_.reserve(merged.size());
  for (const auto& [length, count] : merged) {
    groups_.push_back({length, count});
    total_wires_ += count;
  }
}

Wld Wld::from_lengths(const std::vector<double>& lengths) {
  std::vector<WireGroup> groups;
  groups.reserve(lengths.size());
  for (const double l : lengths) groups.push_back({l, 1});
  return Wld(std::move(groups));
}

double Wld::max_length() const {
  iarank::util::require(!groups_.empty(), "Wld: empty distribution");
  return groups_.front().length;
}

WldStats Wld::stats() const {
  iarank::util::require(!groups_.empty(), "Wld: empty distribution");
  WldStats s;
  s.total_wires = total_wires_;
  s.max_length = groups_.front().length;
  s.min_length = groups_.back().length;
  for (const WireGroup& g : groups_) {
    s.total_length += g.length * static_cast<double>(g.count);
  }
  s.mean_length = s.total_length / static_cast<double>(total_wires_);
  s.median_length = length_at_rank((total_wires_ + 1) / 2);
  return s;
}

std::int64_t Wld::count_longer_than(double length) const {
  std::int64_t count = 0;
  for (const WireGroup& g : groups_) {
    if (g.length <= length) break;
    count += g.count;
  }
  return count;
}

double Wld::length_at_rank(std::int64_t rank) const {
  iarank::util::require(rank >= 1 && rank <= total_wires_,
                        "Wld: rank out of range");
  std::int64_t seen = 0;
  for (const WireGroup& g : groups_) {
    seen += g.count;
    if (rank <= seen) return g.length;
  }
  throw iarank::util::Error("Wld: internal rank accounting error");
}

Wld Wld::scaled(double factor) const {
  iarank::util::require(factor > 0.0, "Wld: scale factor must be > 0");
  std::vector<WireGroup> scaled_groups = groups_;
  for (WireGroup& g : scaled_groups) g.length *= factor;
  return Wld(std::move(scaled_groups));
}

Wld Wld::replicated(std::int64_t factor) const {
  iarank::util::require(factor >= 1, "Wld: replication factor must be >= 1");
  std::vector<WireGroup> groups = groups_;
  for (WireGroup& g : groups) g.count *= factor;
  return Wld(std::move(groups));
}

Wld Wld::sliced(double lo, double hi) const {
  iarank::util::require(lo <= hi, "Wld: invalid slice bounds");
  std::vector<WireGroup> kept;
  for (const WireGroup& g : groups_) {
    if (g.length >= lo && g.length <= hi) kept.push_back(g);
  }
  return Wld(std::move(kept));
}

Wld Wld::merged(const Wld& a, const Wld& b) {
  std::vector<WireGroup> groups = a.groups_;
  groups.insert(groups.end(), b.groups_.begin(), b.groups_.end());
  return Wld(std::move(groups));
}

std::string Wld::describe() const {
  std::ostringstream os;
  os << "WLD: " << total_wires_ << " wires in " << groups_.size() << " groups";
  if (!groups_.empty()) {
    os << ", lengths [" << groups_.back().length << ", "
       << groups_.front().length << "] pitches";
  }
  return os.str();
}

}  // namespace iarank::wld
