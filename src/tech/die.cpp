#include "src/tech/die.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace iarank::tech {

void DieSpec::validate() const {
  iarank::util::require(gate_count > 0, "DieSpec: gate_count must be > 0");
  iarank::util::require(gate_pitch > 0.0, "DieSpec: gate_pitch must be > 0");
  iarank::util::require(repeater_fraction >= 0.0 && repeater_fraction < 1.0,
                        "DieSpec: repeater_fraction must be in [0, 1)");
}

DieModel::DieModel(const DieSpec& spec) : spec_(spec) {
  spec_.validate();
  const double n = static_cast<double>(spec_.gate_count);
  gate_area_ = spec_.gate_pitch * spec_.gate_pitch * n;
  die_area_ = gate_area_ / (1.0 - spec_.repeater_fraction);
  repeater_budget_ = spec_.repeater_fraction * die_area_;
  effective_pitch_ = std::sqrt(die_area_ / n);
}

}  // namespace iarank::tech
