/// \file noise.hpp
/// \brief Crosstalk noise estimation for a layer-pair cross-section.
///
/// The paper's introduction lists crosstalk noise among the factors an IA
/// evaluation should cover; its metric handles coupling only through the
/// Miller factor's effect on delay. This extension adds the noise view: a
/// charge-sharing estimate of the worst-case glitch a quiet victim sees
/// when both neighbours switch — V_noise / V_dd = C_couple / C_total on
/// the victim — which depends on the pair's geometry (notably spacing)
/// and is the quantity double-sided shielding (the paper's footnote 8)
/// drives to zero. core::RankOptions::max_noise_ratio turns it into an
/// assignment constraint: pairs that exceed the budget cannot carry
/// delay-critical (delay-met) wires.

#pragma once

#include "src/tech/rc.hpp"

namespace iarank::tech {

/// Worst-case charge-sharing noise ratio V_noise/V_dd for a victim with
/// both neighbours switching: full (unshielded) coupling over total
/// victim capacitance. In [0, 1); independent of the dielectric constant
/// (numerator and denominator scale together) but strongly dependent on
/// spacing and thickness.
[[nodiscard]] double coupling_noise_ratio(const LayerGeometry& geometry,
                                          const RcParams& params);

}  // namespace iarank::tech
