/// \file material.hpp
/// \brief Conductor and dielectric material models.
///
/// The paper sweeps ILD permittivity (its "K" experiment, Table 4) from the
/// SiO2 value 3.9 down to 1.8, approaching the air-gap limit; the conductor
/// determines wire sheet resistance. Both are first-class inputs here.

#pragma once

#include <string>

namespace iarank::tech {

/// Metal (or other conductor) used for interconnect wires.
struct Conductor {
  std::string name;
  /// Bulk resistivity [ohm * m]. Barrier/liner and surface-scattering
  /// derating can be folded into an effective value by the caller.
  double resistivity = 0.0;
};

/// Inter-layer / inter-wire dielectric.
struct Dielectric {
  std::string name;
  /// Relative permittivity (k). 3.9 for SiO2, ~2.7 for typical low-k.
  double permittivity = 0.0;
};

/// Copper with a mild effective-resistivity derating for barrier/liner.
[[nodiscard]] Conductor copper();

/// Aluminum (older nodes).
[[nodiscard]] Conductor aluminum();

/// Silicon dioxide, k = 3.9 — the paper's baseline dielectric.
[[nodiscard]] Dielectric silicon_dioxide();

/// Representative low-k dielectric (k = 2.7).
[[nodiscard]] Dielectric low_k();

/// Arbitrary dielectric with the given permittivity (used by the K sweep).
[[nodiscard]] Dielectric dielectric_with_k(double k);

}  // namespace iarank::tech
