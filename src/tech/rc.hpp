/// \file rc.hpp
/// \brief Per-unit-length RC extraction for a layer-pair cross-section.
///
/// The paper's delay model (Eq. 2-3) consumes resistance r̄_j and
/// capacitance c̄_j per unit length, "determined completely by the wire
/// width, spacing and thickness of a layer-pair" plus the ILD permittivity
/// (K sweep) and Miller coupling factor (M sweep) of Table 4.
///
/// Two capacitance models are provided:
///  * kParallelPlate — transparent area + sidewall plates; exact algebra is
///    easy to verify in unit tests.
///  * kSakuraiTamaru — the classic empirical fit (Sakurai & Tamaru, 1983)
///    with fringe terms; the default for experiments.
///
/// In both models the line is treated as sandwiched between two reference
/// planes at ILD height H (ground component counted twice) with two
/// same-layer neighbours at spacing S (coupling counted twice and scaled by
/// the Miller coupling factor).

#pragma once

#include "src/tech/layer.hpp"
#include "src/tech/material.hpp"

namespace iarank::tech {

/// Selectable capacitance model.
enum class CapacitanceModel { kParallelPlate, kSakuraiTamaru };

/// Electrical environment for RC extraction.
struct RcParams {
  Conductor conductor;            ///< wire metal
  double ild_permittivity = 3.9;  ///< K (paper Table 4 sweep; SiO2 = 3.9)
  double miller_factor = 2.0;     ///< MCF multiplying coupling capacitance
  CapacitanceModel model = CapacitanceModel::kSakuraiTamaru;

  /// Throws util::Error on non-physical values (k < 1, MCF < 0, rho <= 0).
  void validate() const;
};

/// Extracted per-unit-length values.
struct RcValues {
  double resistance = 0.0;    ///< r̄ [ohm/m]
  double capacitance = 0.0;   ///< c̄ = ground + MCF * coupling [F/m]
  double ground_cap = 0.0;    ///< ground (area + fringe) component [F/m]
  double coupling_cap = 0.0;  ///< lateral coupling before MCF scaling [F/m]
};

/// Extracts r̄ and c̄ for one layer-pair geometry under `params`.
/// Throws util::Error for invalid geometry or parameters.
[[nodiscard]] RcValues extract_rc(const LayerGeometry& geometry,
                                  const RcParams& params);

}  // namespace iarank::tech
