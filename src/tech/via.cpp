#include "src/tech/via.hpp"

#include "src/util/error.hpp"

namespace iarank::tech {

void ViaSpec::validate() const {
  iarank::util::require(vias_per_wire >= 0.0,
                        "ViaSpec: vias_per_wire must be >= 0");
  iarank::util::require(vias_per_repeater >= 0.0,
                        "ViaSpec: vias_per_repeater must be >= 0");
}

double via_blockage_area(const LayerGeometry& blocked_pair, const ViaSpec& spec,
                         double wires_above, double repeaters_above) {
  spec.validate();
  iarank::util::require(wires_above >= 0.0 && repeaters_above >= 0.0,
                        "via_blockage_area: counts must be >= 0");
  return (spec.vias_per_repeater * repeaters_above +
          spec.vias_per_wire * wires_above) *
         blocked_pair.via_area();
}

}  // namespace iarank::tech
