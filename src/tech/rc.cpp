#include "src/tech/rc.hpp"

#include <cmath>

#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace iarank::tech {

namespace units = iarank::util::units;

void RcParams::validate() const {
  iarank::util::require(conductor.resistivity > 0.0,
                        "RcParams: conductor resistivity must be > 0");
  iarank::util::require(ild_permittivity >= 1.0,
                        "RcParams: ILD permittivity must be >= 1");
  iarank::util::require(miller_factor >= 0.0,
                        "RcParams: Miller factor must be >= 0");
}

namespace {

/// Parallel-plate ground capacitance per metre of one face: eps * W / H.
double plate_ground(double eps, double w, double h) { return eps * w / h; }

/// Parallel-plate lateral coupling per metre to one neighbour: eps * T / S.
double plate_coupling(double eps, double t, double s) { return eps * t / s; }

/// Sakurai-Tamaru ground capacitance per metre of a line over one plane:
/// C/eps = 1.15 (W/H) + 2.80 (T/H)^0.222.
double sakurai_ground(double eps, double w, double t, double h) {
  return eps * (1.15 * (w / h) + 2.80 * std::pow(t / h, 0.222));
}

/// Sakurai-Tamaru coupling capacitance per metre to one neighbour:
/// C/eps = [0.03 (W/H) + 0.83 (T/H) - 0.07 (T/H)^0.222] (S/H)^-1.34.
double sakurai_coupling(double eps, double w, double t, double h, double s) {
  const double th = t / h;
  return eps * (0.03 * (w / h) + 0.83 * th - 0.07 * std::pow(th, 0.222)) *
         std::pow(s / h, -1.34);
}

}  // namespace

RcValues extract_rc(const LayerGeometry& geometry, const RcParams& params) {
  geometry.validate();
  params.validate();

  RcValues rc;
  rc.resistance =
      params.conductor.resistivity / (geometry.width * geometry.thickness);

  const double eps = units::eps0 * params.ild_permittivity;
  const double w = geometry.width;
  const double s = geometry.spacing;
  const double t = geometry.thickness;
  const double h = geometry.ild_height;

  switch (params.model) {
    case CapacitanceModel::kParallelPlate:
      rc.ground_cap = 2.0 * plate_ground(eps, w, h);
      rc.coupling_cap = 2.0 * plate_coupling(eps, t, s);
      break;
    case CapacitanceModel::kSakuraiTamaru:
      rc.ground_cap = 2.0 * sakurai_ground(eps, w, t, h);
      rc.coupling_cap = 2.0 * sakurai_coupling(eps, w, t, h, s);
      break;
  }
  rc.capacitance = rc.ground_cap + params.miller_factor * rc.coupling_cap;
  return rc;
}

}  // namespace iarank::tech
