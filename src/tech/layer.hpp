/// \file layer.hpp
/// \brief Layer-pair geometry: the unit of wiring resource in the paper.
///
/// The paper characterizes an interconnect architecture (IA) as a stack of
/// *layer-pairs*: two orthogonal routing layers with identical wire width,
/// spacing and thickness, separated from adjacent pairs by a fixed-height
/// inter-layer dielectric (paper Section 3, first assumption).

#pragma once

#include <string>

#include "src/util/error.hpp"

namespace iarank::tech {

/// Routing tier a layer-pair belongs to. The paper's architectures have
/// local (M1-class), semi-global (Mx-class) and global (Mt-class) tiers
/// with the geometries of Table 3.
enum class Tier { kLocal, kSemiGlobal, kGlobal };

/// Human-readable tier name ("local", "semi-global", "global").
[[nodiscard]] std::string to_string(Tier tier);

/// Physical cross-section of the wires of one layer-pair. All values in
/// metres. `ild_height` is the dielectric height between this pair and the
/// neighbouring conductors (used by the capacitance models).
struct LayerGeometry {
  double width = 0.0;       ///< wire width W_j [m]
  double spacing = 0.0;     ///< wire spacing S_j [m]
  double thickness = 0.0;   ///< wire thickness T_j [m]
  double ild_height = 0.0;  ///< inter-layer dielectric height H_j [m]
  double via_width = 0.0;   ///< width of vias landing on this pair [m]

  /// Routing pitch W + S [m] — multiplied by length to charge wiring area
  /// (paper Alg. 4 step 4: wire_area = l * (W_j + S_j)).
  [[nodiscard]] double pitch() const { return width + spacing; }

  /// Area of one via cut through this pair [m^2] (v_a in the paper).
  [[nodiscard]] double via_area() const { return via_width * via_width; }

  /// Throws util::Error unless all dimensions are strictly positive.
  void validate() const;
};

/// One layer-pair of an architecture: tier + geometry + a display name.
struct LayerPair {
  std::string name;  ///< e.g. "M7/M8 (global)"
  Tier tier = Tier::kLocal;
  LayerGeometry geometry;
};

}  // namespace iarank::tech
