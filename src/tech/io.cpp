#include "src/tech/io.hpp"

#include <fstream>
#include <sstream>

#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace iarank::tech {

namespace units = iarank::util::units;

namespace {

void write_tier(std::ostream& os, const std::string& prefix,
                const TierGeometry& tier) {
  os << prefix << ".width_um = " << tier.min_width / units::um << "\n";
  os << prefix << ".spacing_um = " << tier.min_spacing / units::um << "\n";
  os << prefix << ".thickness_um = " << tier.thickness / units::um << "\n";
  os << prefix << ".via_um = " << tier.via_width / units::um << "\n";
}

TierGeometry read_tier(const util::Config& config, const std::string& prefix) {
  TierGeometry tier;
  tier.min_width = config.get_double(prefix + ".width_um") * units::um;
  tier.min_spacing = config.get_double(prefix + ".spacing_um") * units::um;
  tier.thickness = config.get_double(prefix + ".thickness_um") * units::um;
  tier.via_width = config.get_double(prefix + ".via_um") * units::um;
  return tier;
}

}  // namespace

void write_node(std::ostream& os, const TechNode& node) {
  os << "# iarank technology node\n";
  os << "name = " << node.name << "\n";
  os << "feature_size_um = " << node.feature_size / units::um << "\n";
  write_tier(os, "local", node.local);
  write_tier(os, "semi_global", node.semi_global);
  write_tier(os, "global", node.global);
  os << "device.r_o_ohm = " << node.device.r_o << "\n";
  os << "device.c_o_f = " << node.device.c_o << "\n";
  os << "device.c_p_f = " << node.device.c_p << "\n";
  os << "device.min_inv_area_m2 = " << node.device.min_inv_area << "\n";
  os << "conductor = " << (node.conductor.name == "Al" ? "al" : "cu") << "\n";
  os << "total_metal_layers = " << node.total_metal_layers << "\n";
  os << "gate_pitch_factor = " << node.gate_pitch_factor << "\n";
  os << "max_clock_hz = " << node.max_clock << "\n";
}

void save_node(const std::string& path, const TechNode& node) {
  std::ofstream out(path);
  iarank::util::require(out.good(), "save_node: cannot open '" + path + "'");
  write_node(out, node);
}

TechNode node_from_config(const util::Config& config) {
  TechNode node;
  node.name = config.get("name");
  node.feature_size = config.get_double("feature_size_um") * units::um;
  node.local = read_tier(config, "local");
  node.semi_global = read_tier(config, "semi_global");
  node.global = read_tier(config, "global");
  node.device.r_o = config.get_double("device.r_o_ohm");
  node.device.c_o = config.get_double("device.c_o_f");
  node.device.c_p = config.get_double("device.c_p_f");
  node.device.min_inv_area = config.get_double("device.min_inv_area_m2");

  const std::string conductor = config.has("conductor")
                                    ? config.get("conductor")
                                    : std::string("cu");
  if (conductor == "cu") {
    node.conductor = copper();
  } else if (conductor == "al") {
    node.conductor = aluminum();
  } else {
    throw iarank::util::Error("node_from_config: unknown conductor '" +
                              conductor + "' (expected cu or al)");
  }

  node.total_metal_layers =
      static_cast<int>(config.get_int("total_metal_layers"));
  node.gate_pitch_factor = config.get_double("gate_pitch_factor", 12.6);
  node.max_clock = config.get_double("max_clock_hz", 1e9);
  node.validate();
  return node;
}

TechNode load_node(const std::string& path) {
  return node_from_config(util::Config::load(path));
}

}  // namespace iarank::tech
