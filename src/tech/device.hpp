/// \file device.hpp
/// \brief Device (driver / repeater cell) parameters per technology node.
///
/// The paper's delay model (its Eq. 2-3, from Otten-Brayton) needs the
/// output resistance r_o, input capacitance c_o and parasitic capacitance
/// c_p of a minimum-sized inverter, plus the silicon area such an inverter
/// occupies (repeater area is budgeted in min-inverter units, Eq. 5).
///
/// The paper does not print its device constants; the values in device.cpp
/// are representative of the respective nodes (FO4-consistent) and are
/// documented in EXPERIMENTS.md. All rank trends reported by the paper are
/// driven by ratios of these constants, not their absolute values.

#pragma once

namespace iarank::tech {

/// Electrical and area parameters of the minimum-sized inverter of a node.
struct DeviceParams {
  double r_o = 0.0;        ///< output resistance of min inverter [ohm]
  double c_o = 0.0;        ///< input capacitance of min inverter [F]
  double c_p = 0.0;        ///< parasitic (diffusion) capacitance [F]
  double min_inv_area = 0.0;  ///< silicon area of a min inverter [m^2]

  /// Throws util::Error unless all parameters are strictly positive.
  void validate() const;
};

}  // namespace iarank::tech
