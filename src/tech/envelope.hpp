/// \file envelope.hpp
/// \brief Documented validity envelopes for randomized scenario sampling.
///
/// The differential self-check harness (core/selfcheck) stress-tests the
/// rank engines on random technology stacks and RankOptions. "Random"
/// must still mean *valid*: every sampled point has to pass the library's
/// validators AND stay inside the physical regime the models were built
/// for (e.g. ILD permittivity of a real dielectric, clocks the node can
/// plausibly reach). This module is the single place those sampling
/// ranges are written down, next to the technology database they
/// describe; the rationale for each bound is documented in envelope.cpp.
///
/// These are *sampling* envelopes, deliberately tighter than what
/// validate() accepts — validators reject the nonsensical, envelopes
/// describe the meaningful.

#pragma once

#include "src/tech/node.hpp"

namespace iarank::tech {

/// Closed interval of valid values for one scalar knob.
struct Envelope {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] bool contains(double v) const { return v >= lo && v <= hi; }
};

/// Inclusive integer interval (layer-pair counts, coarsening sizes).
struct IntEnvelope {
  int lo = 0;
  int hi = 0;

  [[nodiscard]] bool contains(int v) const { return v >= lo && v <= hi; }
};

/// Validity envelopes for everything the scenario sampler draws: the
/// paper's four Table 4 knobs, the modelling options, and the
/// architecture shape. Node-dependent where the physics is (clock).
struct SamplingEnvelopes {
  Envelope ild_permittivity;     ///< K: air-gap low-k .. SiN-capped oxide
  Envelope miller_factor;        ///< M: shielded .. worst-case both-switch
  Envelope clock_frequency;      ///< C [Hz]: up to the node's ITRS max
  Envelope repeater_fraction;    ///< R: fraction of die area for repeaters
  Envelope ild_height_factor;    ///< dielectric gap aspect around unity
  Envelope pair_capacity_factor; ///< per-pair routing capacity x A_d
  Envelope max_noise_ratio;      ///< crosstalk budget knob
  IntEnvelope global_pairs;      ///< architecture stack shape...
  IntEnvelope semi_global_pairs;
  IntEnvelope local_pairs;
};

/// The envelopes for one technology node. Every returned interval is
/// non-empty and sits inside the corresponding validator's accepted set.
[[nodiscard]] SamplingEnvelopes sampling_envelopes(const TechNode& node);

}  // namespace iarank::tech
