/// \file io.hpp
/// \brief Technology-node serialization to/from the `key = value` config
///        format, so users can define custom nodes (or tweak the Table 3
///        ones) without recompiling.
///
/// All geometric keys are in micrometres, electrical keys in SI units.
/// See configs/*.tech in the repository for generated samples.

#pragma once

#include <iosfwd>
#include <string>

#include "src/tech/node.hpp"
#include "src/util/config.hpp"

namespace iarank::tech {

/// Serializes a node to config text (round-trips through node_from_config).
void write_node(std::ostream& os, const TechNode& node);

/// Writes to a file; throws util::Error when the file cannot be opened.
void save_node(const std::string& path, const TechNode& node);

/// Builds a node from parsed config. Required keys:
///   name, feature_size_um,
///   {local|semi_global|global}.{width|spacing|thickness|via}_um,
///   device.{r_o_ohm|c_o_f|c_p_f|min_inv_area_m2},
///   total_metal_layers
/// Optional (with defaults): conductor (cu|al), gate_pitch_factor,
/// max_clock_hz. Throws util::Error on missing/invalid keys.
[[nodiscard]] TechNode node_from_config(const util::Config& config);

/// Loads and parses a .tech file.
[[nodiscard]] TechNode load_node(const std::string& path);

}  // namespace iarank::tech
