#include "src/tech/architecture.hpp"

#include <sstream>

#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace iarank::tech {

namespace units = iarank::util::units;

void ArchitectureSpec::validate() const {
  iarank::util::require(global_pairs >= 0 && semi_global_pairs >= 0 &&
                            local_pairs >= 0,
                        "ArchitectureSpec: pair counts must be >= 0");
  iarank::util::require(total_pairs() >= 1,
                        "ArchitectureSpec: architecture needs >= 1 layer-pair");
  iarank::util::require(ild_height_factor > 0.0,
                        "ArchitectureSpec: ild_height_factor must be > 0");
}

namespace {

LayerGeometry make_geometry(const TierGeometry& tier, double ild_factor) {
  LayerGeometry g;
  g.width = tier.min_width;
  g.spacing = tier.min_spacing;
  g.thickness = tier.thickness;
  g.ild_height = ild_factor * tier.thickness;
  g.via_width = tier.via_width;
  g.validate();
  return g;
}

}  // namespace

Architecture Architecture::build(const TechNode& node,
                                 const ArchitectureSpec& spec) {
  node.validate();
  spec.validate();

  std::vector<LayerPair> pairs;
  pairs.reserve(static_cast<std::size_t>(spec.total_pairs()));

  for (int i = 0; i < spec.global_pairs; ++i) {
    pairs.push_back({"G" + std::to_string(i + 1) + " (global)", Tier::kGlobal,
                     make_geometry(node.global, spec.ild_height_factor)});
  }
  for (int i = 0; i < spec.semi_global_pairs; ++i) {
    pairs.push_back({"S" + std::to_string(i + 1) + " (semi-global)",
                     Tier::kSemiGlobal,
                     make_geometry(node.semi_global, spec.ild_height_factor)});
  }
  for (int i = 0; i < spec.local_pairs; ++i) {
    pairs.push_back({"L" + std::to_string(i + 1) + " (local)", Tier::kLocal,
                     make_geometry(node.local, spec.ild_height_factor)});
  }
  return Architecture(node, spec, std::move(pairs));
}

Architecture::Architecture(TechNode node, ArchitectureSpec spec,
                           std::vector<LayerPair> pairs)
    : node_(std::move(node)), spec_(spec), pairs_(std::move(pairs)) {}

const LayerPair& Architecture::pair(std::size_t index) const {
  iarank::util::require(index < pairs_.size(),
                        "Architecture: layer-pair index out of range");
  return pairs_[index];
}

std::string Architecture::describe() const {
  std::ostringstream os;
  os << node_.name << " architecture, " << pairs_.size()
     << " layer-pairs (top to bottom):\n";
  for (const LayerPair& p : pairs_) {
    os << "  " << p.name << "  W=" << p.geometry.width / units::um
       << "um S=" << p.geometry.spacing / units::um
       << "um T=" << p.geometry.thickness / units::um
       << "um H=" << p.geometry.ild_height / units::um
       << "um via=" << p.geometry.via_width / units::um << "um\n";
  }
  return os.str();
}

}  // namespace iarank::tech
