#include "src/tech/envelope.hpp"

#include "src/util/units.hpp"

namespace iarank::tech {

SamplingEnvelopes sampling_envelopes(const TechNode& node) {
  SamplingEnvelopes env;

  // K: 1.5 is an aggressive air-gap/porous low-k, 7.0 a nitride-capped
  // oxide stack; the paper sweeps 1..4 around the SiO2 baseline 3.9.
  env.ild_permittivity = {1.5, 7.0};

  // M: 0 models fully shielded neighbours, 3 the pessimistic
  // both-neighbours-switching-opposite bound the paper's Table 4 reaches.
  env.miller_factor = {0.0, 3.0};

  // C: from a deeply relaxed 50 MHz target up to the node's ITRS-2001
  // maximum MPU clock — beyond that the delay targets stop being
  // achievable by construction and every scenario degenerates to rank 0.
  env.clock_frequency = {50.0 * util::units::MHz, node.max_clock};

  // R: the paper sweeps 0..0.6; above ~0.8 of the die the "design" is
  // mostly repeaters and the area model loses meaning.
  env.repeater_fraction = {0.0, 0.8};

  // ILD gap between half and double the layer thickness (Table 3 prints
  // no heights; unit aspect is the baseline assumption).
  env.ild_height_factor = {0.5, 2.0};

  // Routing capacity per pair: 0.8 x A_d (congested, below the paper's
  // literal B_j = A_d) up to the physical 2 layers x A_d.
  env.pair_capacity_factor = {0.8, 2.0};

  // Noise budget: below ~0.3 practically every pair is disqualified and
  // the constraint stops discriminating; 1.0 disables it (paper regime).
  env.max_noise_ratio = {0.3, 1.0};

  // Stack shapes: bracket the paper's Table 2 baseline (1G+2S+1L — which
  // itself overshoots the printed metal-layer count; the paper treats the
  // stack shape as the design variable, not the layer budget) while
  // covering degenerate one-tier stacks. Semi-global depth grows with the
  // node's layer budget.
  const int max_pairs = node.total_metal_layers / 2;
  env.global_pairs = {1, 2};
  env.semi_global_pairs = {0, max_pairs > 3 ? 2 : 1};
  env.local_pairs = {0, 1};

  return env;
}

}  // namespace iarank::tech
