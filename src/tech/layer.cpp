#include "src/tech/layer.hpp"

namespace iarank::tech {

std::string to_string(Tier tier) {
  switch (tier) {
    case Tier::kLocal:
      return "local";
    case Tier::kSemiGlobal:
      return "semi-global";
    case Tier::kGlobal:
      return "global";
  }
  return "unknown";
}

void LayerGeometry::validate() const {
  iarank::util::require(width > 0.0, "LayerGeometry: width must be > 0");
  iarank::util::require(spacing > 0.0, "LayerGeometry: spacing must be > 0");
  iarank::util::require(thickness > 0.0, "LayerGeometry: thickness must be > 0");
  iarank::util::require(ild_height > 0.0, "LayerGeometry: ild_height must be > 0");
  iarank::util::require(via_width > 0.0, "LayerGeometry: via_width must be > 0");
}

}  // namespace iarank::tech
