/// \file die.hpp
/// \brief Die-area model: the paper's Eq. 6 and Section 5.2 sizing flow.
///
/// Die area due to gates is g^2 * N (gate pitch g, gate count N). The
/// repeater budget A_r is a fraction R of the *actual* die area A_d, and
/// the repeater area is added on top of the gate area:
///     A_r = R * A_d,   A_d = A_r + g^2 N   =>   A_d = g^2 N / (1 - R).
/// Gates are then redistributed evenly over A_d, giving the effective gate
/// pitch used to convert WLD lengths (in gate pitches) into metres.

#pragma once

#include <cstdint>

namespace iarank::tech {

/// Die sizing inputs: gate count, nominal gate pitch, repeater fraction R.
struct DieSpec {
  std::int64_t gate_count = 0;    ///< N
  double gate_pitch = 0.0;        ///< g [m] (ITRS: 12.6 x node)
  double repeater_fraction = 0.0; ///< R in [0, 1)

  /// Throws util::Error on invalid values.
  void validate() const;
};

/// Derived die quantities (all areas in m^2, lengths in m).
class DieModel {
 public:
  /// Builds the model; throws util::Error via DieSpec::validate().
  explicit DieModel(const DieSpec& spec);

  [[nodiscard]] const DieSpec& spec() const { return spec_; }

  /// g^2 * N — die area due to gates alone.
  [[nodiscard]] double gate_area() const { return gate_area_; }

  /// A_d — actual die area after repeater-area inflation (Eq. 6).
  [[nodiscard]] double die_area() const { return die_area_; }

  /// A_r = R * A_d — maximum total repeater area budget.
  [[nodiscard]] double repeater_area_budget() const { return repeater_budget_; }

  /// sqrt(A_d / N) — pitch after distributing gates evenly over A_d;
  /// multiplies WLD lengths (in gate pitches) to obtain metres.
  [[nodiscard]] double effective_gate_pitch() const { return effective_pitch_; }

 private:
  DieSpec spec_;
  double gate_area_ = 0.0;
  double die_area_ = 0.0;
  double repeater_budget_ = 0.0;
  double effective_pitch_ = 0.0;
};

}  // namespace iarank::tech
