#include "src/tech/scaling.hpp"

#include <sstream>

#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace iarank::tech {

namespace {

void scale_tier(TierGeometry& tier, double s) {
  tier.min_width *= s;
  tier.min_spacing *= s;
  tier.thickness *= s;
  tier.via_width *= s;
}

}  // namespace

TechNode scale_node(const TechNode& node, double target_feature_size,
                    DeviceScaling devices) {
  iarank::util::require(target_feature_size > 0.0,
                        "scale_node: target feature size must be > 0");
  iarank::util::require(target_feature_size <= node.feature_size,
                        "scale_node: projection must shrink the node");
  const double s = target_feature_size / node.feature_size;

  TechNode scaled = node;
  scaled.feature_size = target_feature_size;
  scale_tier(scaled.local, s);
  scale_tier(scaled.semi_global, s);
  scale_tier(scaled.global, s);

  // Device scaling policy: ideal constant-field, or frozen (wire-limited
  // pessimism — drive stops improving while the BEOL shrinks).
  if (devices == DeviceScaling::kIdeal) {
    scaled.device.c_o *= s;
    scaled.device.c_p *= s;
    scaled.device.min_inv_area *= s * s;
  }

  // ITRS trend: clock scales roughly inversely with the feature size.
  scaled.max_clock = node.max_clock / s;

  std::ostringstream name;
  name << static_cast<int>(target_feature_size / util::units::nm + 0.5)
       << "nm (scaled from " << node.name << ")";
  scaled.name = name.str();
  scaled.validate();
  return scaled;
}

}  // namespace iarank::tech
