/// \file tuning.hpp
/// \brief Per-tier wire geometry tuning: width/spacing/thickness
///        multipliers applied to a technology node.
///
/// The paper's related work ([1] Anand et al., [13] Venkatesan et al.)
/// optimizes interconnect geometric parameters per tier; its own
/// conclusion calls for co-optimizing geometry with materials and process.
/// This module provides the design-space handle: a TierTuning scales one
/// tier's drawn geometry (wider/fatter wires lower r̄ but cost pitch;
/// wider spacing lowers coupling but costs pitch), and applying a
/// NodeTuning yields a new, validated TechNode the rest of the library
/// consumes unchanged. Used by the annealing optimizer and the geometry
/// bench.

#pragma once

#include "src/tech/node.hpp"

namespace iarank::tech {

/// Multipliers for one tier's drawn geometry (1.0 = untouched).
struct TierTuning {
  double width = 1.0;
  double spacing = 1.0;
  double thickness = 1.0;

  /// Throws util::Error unless all multipliers are positive.
  void validate() const;

  [[nodiscard]] bool is_identity() const {
    return width == 1.0 && spacing == 1.0 && thickness == 1.0;
  }
};

/// Tuning for all three tiers of a node.
struct NodeTuning {
  TierTuning local;
  TierTuning semi_global;
  TierTuning global;

  void validate() const;
  [[nodiscard]] bool is_identity() const {
    return local.is_identity() && semi_global.is_identity() &&
           global.is_identity();
  }
};

/// Returns a copy of `node` with the tuning applied to each tier's width,
/// spacing and thickness (via sizes are left at the process minimum).
/// Throws util::Error if the tuned node fails validation.
[[nodiscard]] TechNode apply_tuning(const TechNode& node,
                                    const NodeTuning& tuning);

}  // namespace iarank::tech
