/// \file scaling.hpp
/// \brief Constant-field projection of a technology node to a future
///        feature size.
///
/// The paper's conclusion is a statement about *future* nodes ("it is not
/// possible to enable future MPU-class designs by material improvements
/// alone"); this utility lets the rank metric be evaluated there. The
/// projection is classic constant-field scaling of the BEOL: all drawn
/// geometries (widths, spacings, thicknesses, vias) shrink by the feature
/// ratio s < 1, so wire resistance per length grows as 1/s^2 while
/// capacitance per length is roughly constant — the "interconnect does
/// not scale" crisis the 2003 literature (paper refs [2], [6], [10])
/// revolves around. Devices follow ideal scaling: r_o constant (W/L
/// preserved), c_o and c_p shrink by s, cell area by s^2.

#pragma once

#include "src/tech/node.hpp"

namespace iarank::tech {

/// How devices track the BEOL shrink.
enum class DeviceScaling {
  /// Ideal constant-field devices: r_o constant, c_o/c_p shrink by s,
  /// cell area by s^2 — repeaters get cheaper as fast as wires worsen.
  kIdeal,
  /// Frozen devices: the pessimistic projection where transistor drive
  /// stops improving; only the wires (and via/cell geometry) shrink.
  kFrozen,
};

/// Projects `node` to `target_feature_size` (must be positive and no
/// larger than the source feature size — this is a shrink, not a
/// de-shrink). Throws util::Error otherwise.
[[nodiscard]] TechNode scale_node(const TechNode& node,
                                  double target_feature_size,
                                  DeviceScaling devices = DeviceScaling::kIdeal);

}  // namespace iarank::tech
