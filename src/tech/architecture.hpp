/// \file architecture.hpp
/// \brief The interconnect architecture (IA): an ordered stack of layer-pairs.
///
/// Following the paper, layer-pairs are indexed from the TOP of the stack:
/// pair 0 is the topmost (global tier, coarsest wires) and the last pair is
/// the bottommost (local tier, finest wires). Longer wires are assigned to
/// higher pairs (paper Section 3). The paper's Table 2 baseline is
/// 1 global + 2 semi-global + 1 local pair.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/tech/layer.hpp"
#include "src/tech/node.hpp"

namespace iarank::tech {

/// How many layer-pairs of each tier to build, plus the ILD height
/// assumption (Table 3 does not print ILD heights; we default to
/// ILD height = thickness, i.e. unit aspect dielectric gaps).
struct ArchitectureSpec {
  int global_pairs = 1;       ///< topmost pairs, Mt geometry
  int semi_global_pairs = 2;  ///< middle pairs, Mx geometry
  int local_pairs = 1;        ///< bottom pairs, M1 geometry
  double ild_height_factor = 1.0;  ///< ILD height = factor x layer thickness

  [[nodiscard]] int total_pairs() const {
    return global_pairs + semi_global_pairs + local_pairs;
  }

  /// Throws util::Error when counts are negative, the stack is empty, or
  /// the ILD factor is non-positive.
  void validate() const;
};

/// An immutable interconnect architecture built from a technology node.
class Architecture {
 public:
  /// Builds the layer-pair stack from the node's Table 3 tier geometries.
  /// Throws util::Error on invalid specs.
  [[nodiscard]] static Architecture build(const TechNode& node,
                                          const ArchitectureSpec& spec);

  /// Layer-pairs ordered top (index 0) to bottom (index pair_count()-1).
  [[nodiscard]] const std::vector<LayerPair>& pairs() const { return pairs_; }

  [[nodiscard]] std::size_t pair_count() const { return pairs_.size(); }

  /// 0-based access from the top; throws util::Error when out of range.
  [[nodiscard]] const LayerPair& pair(std::size_t index) const;

  [[nodiscard]] const TechNode& node() const { return node_; }
  [[nodiscard]] const ArchitectureSpec& spec() const { return spec_; }

  /// One-line-per-pair human-readable description.
  [[nodiscard]] std::string describe() const;

 private:
  Architecture(TechNode node, ArchitectureSpec spec,
               std::vector<LayerPair> pairs);

  TechNode node_;
  ArchitectureSpec spec_;
  std::vector<LayerPair> pairs_;
};

}  // namespace iarank::tech
