#include "src/tech/device.hpp"

#include "src/util/error.hpp"

namespace iarank::tech {

void DeviceParams::validate() const {
  iarank::util::require(r_o > 0.0, "DeviceParams: r_o must be > 0");
  iarank::util::require(c_o > 0.0, "DeviceParams: c_o must be > 0");
  iarank::util::require(c_p >= 0.0, "DeviceParams: c_p must be >= 0");
  iarank::util::require(min_inv_area > 0.0,
                        "DeviceParams: min_inv_area must be > 0");
}

}  // namespace iarank::tech
