/// \file node.hpp
/// \brief Technology-node database: the paper's Table 3 (TSMC-style
///        180/130/90 nm geometries) plus device parameters and ITRS-derived
///        constants (gate pitch = 12.6 x node, max MPU clock).

#pragma once

#include <string>
#include <vector>

#include "src/tech/device.hpp"
#include "src/tech/material.hpp"

namespace iarank::tech {

/// Raw per-tier geometry as printed in the paper's Table 3 (metres).
struct TierGeometry {
  double min_width = 0.0;    ///< minimum wire width
  double min_spacing = 0.0;  ///< minimum wire spacing
  double thickness = 0.0;    ///< wire thickness
  double via_width = 0.0;    ///< minimum via width for this tier
};

/// A process node: Table 3 geometries for the local (M1), semi-global (Mx)
/// and global (Mt) tiers, device parameters, conductor, and ITRS constants.
struct TechNode {
  std::string name;          ///< "180nm", "130nm", "90nm"
  double feature_size = 0.0; ///< drawn feature size [m]

  TierGeometry local;        ///< M1 row of Table 3 (via = V1)
  TierGeometry semi_global;  ///< Mx row of Table 3 (via = V_{x-1})
  TierGeometry global;       ///< Mt row of Table 3 (via = V_{t-1})

  DeviceParams device;       ///< min-inverter parameters
  Conductor conductor;       ///< wire conductor (Cu for these nodes)

  int total_metal_layers = 0;  ///< Table 3 footnote: 6 / 7 / 8 layers

  /// ITRS empirical constant: gate pitch = `gate_pitch_factor` x node
  /// (paper Section 5.2 uses 12.6).
  double gate_pitch_factor = 12.6;

  /// ITRS 2001 maximum MPU clock frequency for this node [Hz]
  /// (the paper quotes 1.7 GHz for 130 nm).
  double max_clock = 0.0;

  /// Gate pitch before repeater-area inflation [m].
  [[nodiscard]] double gate_pitch() const {
    return gate_pitch_factor * feature_size;
  }

  /// Throws util::Error if any field is missing or non-physical.
  void validate() const;
};

/// The three nodes of the paper's Table 3.
[[nodiscard]] TechNode node_180nm();
[[nodiscard]] TechNode node_130nm();
[[nodiscard]] TechNode node_90nm();

/// Lookup by name ("180nm" | "130nm" | "90nm"); throws util::Error otherwise.
[[nodiscard]] TechNode node_by_name(const std::string& name);

/// All known nodes, in descending feature size.
[[nodiscard]] std::vector<TechNode> all_nodes();

}  // namespace iarank::tech
