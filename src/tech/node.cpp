#include "src/tech/node.hpp"

#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace iarank::tech {

namespace units = iarank::util::units;

void TechNode::validate() const {
  iarank::util::require(feature_size > 0.0, "TechNode: feature_size must be > 0");
  for (const TierGeometry* tier : {&local, &semi_global, &global}) {
    iarank::util::require(tier->min_width > 0.0, "TechNode: width must be > 0");
    iarank::util::require(tier->min_spacing > 0.0,
                          "TechNode: spacing must be > 0");
    iarank::util::require(tier->thickness > 0.0,
                          "TechNode: thickness must be > 0");
    iarank::util::require(tier->via_width > 0.0,
                          "TechNode: via width must be > 0");
  }
  device.validate();
  iarank::util::require(conductor.resistivity > 0.0,
                        "TechNode: conductor resistivity must be > 0");
  iarank::util::require(total_metal_layers > 0,
                        "TechNode: total_metal_layers must be > 0");
  iarank::util::require(gate_pitch_factor > 0.0,
                        "TechNode: gate_pitch_factor must be > 0");
  iarank::util::require(max_clock > 0.0, "TechNode: max_clock must be > 0");
}

// Device parameters are representative of the node (FO4-consistent),
// not printed in the paper; see DESIGN.md section 3.6 and EXPERIMENTS.md.
// min_inv_area is taken as 100 x (feature size)^2, about 2/3 of a gate
// site at the ITRS gate pitch of 12.6 x node.

TechNode node_180nm() {
  TechNode n;
  n.name = "180nm";
  n.feature_size = 180 * units::nm;
  n.local = {0.230 * units::um, 0.230 * units::um, 0.483 * units::um,
             0.260 * units::um};
  n.semi_global = {0.280 * units::um, 0.280 * units::um, 0.588 * units::um,
                   0.260 * units::um};
  n.global = {0.440 * units::um, 0.460 * units::um, 0.960 * units::um,
              0.360 * units::um};
  n.device = {8.0 * units::kohm, 2.2 * units::fF, 2.2 * units::fF,
              100.0 * n.feature_size * n.feature_size};
  n.conductor = copper();
  n.total_metal_layers = 6;  // x = 2..5, t = 6
  n.max_clock = 1.25 * units::GHz;
  return n;
}

TechNode node_130nm() {
  TechNode n;
  n.name = "130nm";
  n.feature_size = 130 * units::nm;
  n.local = {0.160 * units::um, 0.180 * units::um, 0.336 * units::um,
             0.190 * units::um};
  n.semi_global = {0.200 * units::um, 0.210 * units::um, 0.340 * units::um,
                   0.260 * units::um};
  n.global = {0.440 * units::um, 0.460 * units::um, 1.020 * units::um,
              0.360 * units::um};
  n.device = {6.7 * units::kohm, 1.5 * units::fF, 1.5 * units::fF,
              100.0 * n.feature_size * n.feature_size};
  n.conductor = copper();
  n.total_metal_layers = 7;  // x = 2..6, t = 7
  n.max_clock = 1.7 * units::GHz;  // ITRS 2001 value quoted by the paper
  return n;
}

TechNode node_90nm() {
  TechNode n;
  n.name = "90nm";
  n.feature_size = 90 * units::nm;
  n.local = {0.120 * units::um, 0.120 * units::um, 0.260 * units::um,
             0.130 * units::um};
  n.semi_global = {0.140 * units::um, 0.140 * units::um, 0.300 * units::um,
                   0.130 * units::um};
  n.global = {0.420 * units::um, 0.420 * units::um, 0.880 * units::um,
              0.360 * units::um};
  n.device = {5.6 * units::kohm, 1.0 * units::fF, 1.0 * units::fF,
              100.0 * n.feature_size * n.feature_size};
  n.conductor = copper();
  n.total_metal_layers = 8;  // x = 2..7, t = 8
  n.max_clock = 4.0 * units::GHz;
  return n;
}

TechNode node_by_name(const std::string& name) {
  for (const TechNode& n : all_nodes()) {
    if (n.name == name) return n;
  }
  throw iarank::util::Error("node_by_name: unknown node '" + name +
                            "' (expected 180nm, 130nm or 90nm)");
}

std::vector<TechNode> all_nodes() {
  return {node_180nm(), node_130nm(), node_90nm()};
}

}  // namespace iarank::tech
