/// \file via.hpp
/// \brief Via-blockage model (paper footnote 1, Alg. 4 step 1, Alg. 5 step 2).
///
/// Wires routed on a layer-pair connect to gates on the substrate through
/// vias that pass through — and block area in — every layer-pair BELOW
/// their own. Repeaters inserted in upper-pair wires likewise punch vias
/// through all lower pairs. The paper charges, against pair q,
///     B_q = A_d - (z + v * i) * v_a
/// where i wires (v end-vias each) and z repeaters lie above pair q, and
/// v_a is the via area of the blocked pair. The corner via of each
/// L-shaped wire stays within its own pair and is folded into the wire
/// area (paper Section 3, assumption 2).

#pragma once

#include "src/tech/layer.hpp"

namespace iarank::tech {

/// Via accounting policy.
struct ViaSpec {
  /// End vias per wire that descend through lower pairs (v in the paper).
  /// Two ends per connection.
  double vias_per_wire = 2.0;

  /// Vias per repeater descending through lower pairs (the paper charges
  /// one via cut per repeater: Alg. 5 step 2).
  double vias_per_repeater = 1.0;

  /// Throws util::Error on negative counts.
  void validate() const;
};

/// Area blocked in `blocked_pair` by `wires_above` wires and
/// `repeaters_above` repeaters living on higher pairs.
[[nodiscard]] double via_blockage_area(const LayerGeometry& blocked_pair,
                                       const ViaSpec& spec, double wires_above,
                                       double repeaters_above);

}  // namespace iarank::tech
