#include "src/tech/noise.hpp"

namespace iarank::tech {

double coupling_noise_ratio(const LayerGeometry& geometry,
                            const RcParams& params) {
  // Use the raw (Miller-independent) components: worst-case noise has
  // both aggressors switching against a quiet victim, i.e. the full
  // lateral capacitance couples charge in.
  const RcValues rc = extract_rc(geometry, params);
  return rc.coupling_cap / (rc.coupling_cap + rc.ground_cap);
}

}  // namespace iarank::tech
