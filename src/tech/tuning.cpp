#include "src/tech/tuning.hpp"

#include "src/util/error.hpp"

namespace iarank::tech {

void TierTuning::validate() const {
  iarank::util::require(width > 0.0 && spacing > 0.0 && thickness > 0.0,
                        "TierTuning: multipliers must be > 0");
}

void NodeTuning::validate() const {
  local.validate();
  semi_global.validate();
  global.validate();
}

namespace {

void apply_tier(TierGeometry& tier, const TierTuning& tuning) {
  tier.min_width *= tuning.width;
  tier.min_spacing *= tuning.spacing;
  tier.thickness *= tuning.thickness;
}

}  // namespace

TechNode apply_tuning(const TechNode& node, const NodeTuning& tuning) {
  tuning.validate();
  TechNode tuned = node;
  apply_tier(tuned.local, tuning.local);
  apply_tier(tuned.semi_global, tuning.semi_global);
  apply_tier(tuned.global, tuning.global);
  if (!tuning.is_identity()) tuned.name += " (tuned)";
  tuned.validate();
  return tuned;
}

}  // namespace iarank::tech
