#include "src/tech/material.hpp"

#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace iarank::tech {

namespace units = iarank::util::units;

Conductor copper() { return {"Cu", units::rho_copper}; }

Conductor aluminum() { return {"Al", units::rho_aluminum}; }

Dielectric silicon_dioxide() { return {"SiO2", 3.9}; }

Dielectric low_k() { return {"low-k", 2.7}; }

Dielectric dielectric_with_k(double k) {
  iarank::util::require(k >= 1.0, "dielectric_with_k: permittivity must be >= 1");
  return {"custom", k};
}

}  // namespace iarank::tech
