/// \file anneal.hpp
/// \brief Simulated-annealing co-optimization of the interconnect
///        architecture under the rank metric.
///
/// Extends the exhaustive layer-allocation search (core/optimizer) with
/// the geometry dimension the paper's conclusion points at: the search
/// state is (layer-pair allocation, ILD aspect factor, per-tier wire
/// width/spacing multipliers), and the objective is the exact DP rank.
/// Wider wires lower resistance but cost routing pitch and repeater-size
/// area; the annealer trades these off per tier — the "co-optimization
/// across material, process and design characteristics" of Section 6.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/tech/tuning.hpp"

namespace iarank::core {

/// Search-space and schedule knobs.
struct AnnealOptions {
  int iterations = 250;
  double temperature_start = 0.05;  ///< in normalized-rank units
  double temperature_end = 1e-3;
  std::uint64_t seed = 1;

  int max_total_pairs = 6;
  int max_pairs_per_tier = 3;
  /// Discrete ladder for width/spacing multipliers.
  std::vector<double> multipliers = {0.8, 1.0, 1.25, 1.6, 2.0};
  /// Discrete ILD aspect factors.
  std::vector<double> ild_factors = {0.8, 1.0, 1.2};

  /// Independent chains started from seeds seed, seed+1, ... A chain is
  /// inherently sequential; restarts are the parallelism unit. The merged
  /// result is deterministic: chains are compared in restart order, ties
  /// keep the earlier chain.
  int restarts = 1;
  /// Chains run concurrently on the shared util::ThreadPool.
  unsigned threads = 1;

  /// Throws util::Error on empty ladders or bad schedule.
  void validate() const;
};

/// A point in the search space.
struct AnnealState {
  tech::ArchitectureSpec arch;
  tech::NodeTuning tuning;
};

/// Search outcome. With restarts > 1, `evaluations` counts all chains and
/// `best`/`best_result`/`trajectory` come from the winning chain.
struct AnnealResult {
  AnnealState best;
  RankResult best_result;
  int evaluations = 0;
  /// Best-so-far normalized rank after each iteration (for convergence
  /// plots / regression tests).
  std::vector<double> trajectory;

  /// Throwing evaluations, counted across all chains. A failed state
  /// scores worst-possible (it can never become `best`) and the chain
  /// moves on — one pathological candidate must not kill the search.
  int failed_evaluations = 0;
  std::string first_failure;  ///< message of the first failed evaluation
};

/// Runs the annealer from the Table 2 baseline state. The WLD is in gate
/// pitches (node-independent), so one distribution serves all candidate
/// geometries. Deterministic per seed.
[[nodiscard]] AnnealResult anneal_architecture(const tech::TechNode& node,
                                               std::int64_t gate_count,
                                               const RankOptions& options,
                                               const wld::Wld& wld_in_pitches,
                                               const AnnealOptions& anneal = {});

}  // namespace iarank::core
