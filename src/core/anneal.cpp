#include "src/core/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"

namespace iarank::core {

void AnnealOptions::validate() const {
  iarank::util::require(iterations >= 1, "AnnealOptions: iterations >= 1");
  iarank::util::require(
      temperature_start > 0.0 && temperature_end > 0.0 &&
          temperature_end <= temperature_start,
      "AnnealOptions: need temperature_start >= temperature_end > 0");
  iarank::util::require(max_total_pairs >= 1 && max_pairs_per_tier >= 1,
                        "AnnealOptions: pair bounds must be >= 1");
  iarank::util::require(!multipliers.empty() && !ild_factors.empty(),
                        "AnnealOptions: empty search ladders");
  iarank::util::require(restarts >= 1, "AnnealOptions: restarts must be >= 1");
  iarank::util::require(threads >= 1, "AnnealOptions: threads must be >= 1");
  for (const double m : multipliers) {
    iarank::util::require(m > 0.0, "AnnealOptions: multipliers must be > 0");
  }
  for (const double f : ild_factors) {
    iarank::util::require(f > 0.0, "AnnealOptions: ild_factors must be > 0");
  }
}

namespace {

/// Index-based encoding of the state so moves are uniform ladder steps.
struct Encoded {
  int global_pairs = 1;
  int semi_pairs = 2;
  int local_pairs = 1;
  std::size_t ild = 0;
  // Width/spacing multiplier indices per tier (local, semi, global).
  std::size_t width[3] = {0, 0, 0};
  std::size_t spacing[3] = {0, 0, 0};
};

AnnealState decode(const Encoded& e, const AnnealOptions& opt) {
  AnnealState s;
  s.arch.global_pairs = e.global_pairs;
  s.arch.semi_global_pairs = e.semi_pairs;
  s.arch.local_pairs = e.local_pairs;
  s.arch.ild_height_factor = opt.ild_factors[e.ild];
  tech::TierTuning* tiers[3] = {&s.tuning.local, &s.tuning.semi_global,
                                &s.tuning.global};
  for (int t = 0; t < 3; ++t) {
    tiers[t]->width = opt.multipliers[e.width[t]];
    tiers[t]->spacing = opt.multipliers[e.spacing[t]];
  }
  return s;
}

}  // namespace

namespace {

/// One annealing chain, exactly the pre-restart algorithm, from `seed`.
AnnealResult anneal_chain(const tech::TechNode& node, std::int64_t gate_count,
                          const RankOptions& options,
                          const wld::Wld& wld_in_pitches,
                          const AnnealOptions& anneal, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto rand_index = [&rng](std::size_t size) {
    return std::uniform_int_distribution<std::size_t>(0, size - 1)(rng);
  };
  auto rand_unit = [&rng]() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  };

  // Ladder index of 1.0, used as the starting point.
  std::size_t unity = 0;
  for (std::size_t i = 0; i < anneal.multipliers.size(); ++i) {
    if (anneal.multipliers[i] == 1.0) unity = i;
  }
  std::size_t base_ild = 0;
  for (std::size_t i = 0; i < anneal.ild_factors.size(); ++i) {
    if (anneal.ild_factors[i] == 1.0) base_ild = i;
  }

  Encoded current;
  current.ild = base_ild;
  for (int t = 0; t < 3; ++t) current.width[t] = current.spacing[t] = unity;

  AnnealResult result;
  auto evaluate = [&](const Encoded& e) -> double {
    const AnnealState state = decode(e, anneal);
    DesignSpec design;
    design.node = tech::apply_tuning(node, state.tuning);
    design.arch = state.arch;
    design.gate_count = gate_count;
    ++result.evaluations;
    RankResult r;
    try {
      r = compute_rank(design, options, wld_in_pitches);
    } catch (const std::exception& ex) {
      // A throwing state scores below every legitimate score, so it can
      // neither become `best` nor look attractive to the move rule; the
      // chain continues.
      ++result.failed_evaluations;
      if (result.first_failure.empty()) result.first_failure = ex.what();
      return -1.0;
    }
    const bool first_success =
        result.evaluations - result.failed_evaluations == 1;
    if (r.normalized > result.best_result.normalized || first_success) {
      result.best = state;
      result.best_result = r;
    }
    return r.all_assigned ? r.normalized : 0.0;
  };

  double current_score = evaluate(current);
  const double cooling =
      std::pow(anneal.temperature_end / anneal.temperature_start,
               1.0 / static_cast<double>(anneal.iterations));
  double temperature = anneal.temperature_start;

  for (int iter = 0; iter < anneal.iterations; ++iter) {
    Encoded next = current;
    // Pick a move: pair counts, ILD factor, or a tier multiplier step.
    const std::size_t move = rand_index(5);
    if (move == 0) {
      int* counts[3] = {&next.global_pairs, &next.semi_pairs,
                        &next.local_pairs};
      int& c = *counts[rand_index(3)];
      c += (rand_unit() < 0.5 && c > 0) ? -1 : 1;
      c = std::clamp(c, 0, anneal.max_pairs_per_tier);
      if (next.global_pairs + next.semi_pairs + next.local_pairs == 0 ||
          next.global_pairs + next.semi_pairs + next.local_pairs >
              anneal.max_total_pairs) {
        continue;  // out of bounds; skip the move
      }
    } else if (move == 1) {
      next.ild = rand_index(anneal.ild_factors.size());
    } else {
      const std::size_t tier = rand_index(3);
      std::size_t* slot = (move == 2) ? &next.width[tier] : &next.spacing[tier];
      if (move == 4) slot = (rand_unit() < 0.5) ? &next.width[tier]
                                                : &next.spacing[tier];
      const std::size_t ladder = anneal.multipliers.size();
      *slot = (*slot + 1 + rand_index(ladder - 1)) % ladder;  // any other rung
    }

    const double next_score = evaluate(next);
    const double delta = next_score - current_score;
    if (delta >= 0.0 || rand_unit() < std::exp(delta / temperature)) {
      current = next;
      current_score = next_score;
    }
    temperature *= cooling;
    result.trajectory.push_back(result.best_result.normalized);
  }
  return result;
}

}  // namespace

AnnealResult anneal_architecture(const tech::TechNode& node,
                                 std::int64_t gate_count,
                                 const RankOptions& options,
                                 const wld::Wld& wld_in_pitches,
                                 const AnnealOptions& anneal) {
  TRACE_SPAN("anneal_architecture");
  anneal.validate();
  if (anneal.restarts == 1) {
    return anneal_chain(node, gate_count, options, wld_in_pitches, anneal,
                        anneal.seed);
  }

  // Independent chains; the merge scans them in restart order, so the
  // outcome is identical for any thread count.
  std::vector<AnnealResult> runs(static_cast<std::size_t>(anneal.restarts));
  iarank::util::ThreadPool::shared().parallel_for(
      runs.size(), anneal.threads, [&](std::size_t i) {
        runs[i] = anneal_chain(node, gate_count, options, wld_in_pitches,
                               anneal, anneal.seed + i);
      });

  AnnealResult out = runs.front();
  for (std::size_t i = 1; i < runs.size(); ++i) {
    out.evaluations += runs[i].evaluations;
    out.failed_evaluations += runs[i].failed_evaluations;
    if (out.first_failure.empty()) {
      out.first_failure = runs[i].first_failure;
    }
    if (runs[i].best_result.normalized > out.best_result.normalized) {
      out.best = runs[i].best;
      out.best_result = runs[i].best_result;
      out.trajectory = runs[i].trajectory;
    }
  }
  return out;
}

}  // namespace iarank::core
