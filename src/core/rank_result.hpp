/// \file rank_result.hpp
/// \brief Result of a rank computation, with an optional assignment trace.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iarank::core {

/// Per-layer-pair utilization in the winning assignment (the textual
/// equivalent of the paper's Figure 1).
struct PairUsage {
  std::string pair_name;
  std::int64_t wires_meeting_delay = 0;  ///< delay-met wires on this pair
  std::int64_t wires_total = 0;          ///< all wires on this pair
  double wire_area = 0.0;                ///< wiring area consumed [m^2]
  double via_blockage = 0.0;             ///< blockage charged [m^2]
  std::int64_t repeaters = 0;            ///< repeaters driving this pair's wires
  double repeater_area = 0.0;            ///< their silicon area [m^2]
};

/// One row of the assignment certificate: `wires` wires of bunch `bunch`
/// placed on layer-pair `pair`, `meeting_delay` of them buffered to meet
/// their target. A bunch may appear in several rows (splitting).
struct BunchPlacement {
  std::size_t bunch = 0;
  std::size_t pair = 0;
  std::int64_t wires = 0;
  std::int64_t meeting_delay = 0;
};

/// Outcome of one rank evaluation.
struct RankResult {
  /// r(alpha): number of longest wires meeting their target delay in the
  /// best feasible assignment; 0 when the WLD cannot be assigned at all
  /// (paper Definition 3).
  std::int64_t rank = 0;

  /// rank / total wires (the paper's Table 4 reports this).
  double normalized = 0.0;

  /// False iff even delay-free assignment is infeasible (Definition 3).
  bool all_assigned = false;

  /// Bunches fully inside the delay-met prefix (coarsening granularity).
  std::int64_t prefix_bunches = 0;

  /// Wires added to the prefix by the boundary-refinement extension.
  std::int64_t refined_wires = 0;

  std::int64_t repeater_count = 0;     ///< repeaters used by the prefix
  double repeater_area_used = 0.0;     ///< [m^2], <= budget
  std::int64_t total_wires = 0;        ///< WLD size

  /// DP observability, filled by dp_rank: wall time, state-space size and
  /// search effort. Zero for other engines. Timing fields vary run to run;
  /// the count fields are deterministic and comparable across hosts.
  struct DpStats {
    double seconds = 0.0;          ///< wall time inside dp_rank
    double forward_seconds = 0.0;  ///< of which: the forward pass
    std::int64_t arena_nodes = 0;  ///< state elements created
    std::int64_t max_frontier = 0; ///< largest per-(pair,bunch) frontier
    std::int64_t heap_pops = 0;    ///< best-first candidates examined
    std::int64_t verify_calls = 0; ///< free-pack verifications run
  };
  DpStats dp;

  /// Per-pair trace of the winning assignment (top pair first). Filled by
  /// engines when trace reconstruction is requested.
  std::vector<PairUsage> usage;

  /// Full assignment certificate (bunch-by-bunch placements, bunch order).
  /// Filled by dp_rank when the trace is built; core::verify_placements
  /// re-checks it against the instance from first principles.
  std::vector<BunchPlacement> placements;
};

}  // namespace iarank::core
