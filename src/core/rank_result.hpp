/// \file rank_result.hpp
/// \brief Result of a rank computation, with an optional assignment trace.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/small_vec.hpp"

namespace iarank::core {

/// Per-layer-pair utilization in the winning assignment (the textual
/// equivalent of the paper's Figure 1).
struct PairUsage {
  std::string pair_name;
  std::int64_t wires_meeting_delay = 0;  ///< delay-met wires on this pair
  std::int64_t wires_total = 0;          ///< all wires on this pair
  double wire_area = 0.0;                ///< wiring area consumed [m^2]
  double via_blockage = 0.0;             ///< blockage charged [m^2]
  std::int64_t repeaters = 0;            ///< repeaters driving this pair's wires
  double repeater_area = 0.0;            ///< their silicon area [m^2]
};

/// One row of the assignment certificate: `wires` wires of bunch `bunch`
/// placed on layer-pair `pair`, `meeting_delay` of them buffered to meet
/// their target. A bunch may appear in several rows (splitting).
struct BunchPlacement {
  std::size_t bunch = 0;
  std::size_t pair = 0;
  std::int64_t wires = 0;
  std::int64_t meeting_delay = 0;
};

/// Compact description of the winning break candidate of a DP solve: the
/// prefix partition (first bunch of each pair's delay-met chunk), the
/// break pair and its chunk, and the boundary-refinement wire count. A
/// sweep feeds the previous point's witness into the next solve as a
/// warm-start lower bound (prune-only — results never depend on it).
struct DpWitness {
  /// size break_pair + 1; [j] = first bunch of pair j's chunk. Inline up
  /// to 24 pairs: witnesses are copied through the sweep warm-start slot
  /// on every point, and paper-scale stacks fit the buffer, keeping those
  /// copies off the heap (the steady-state zero-allocation contract).
  util::SmallVec<std::int64_t, 24> chunk_first;
  std::int64_t break_pair = -1;  ///< pair whose chunk ends the prefix
  std::int64_t first_bunch = 0;  ///< == chunk_first[break_pair]
  std::int64_t chunk_len = 0;    ///< delay-met bunches on the break pair
  std::int64_t w_extra = 0;      ///< refined wires of the first failing bunch

  [[nodiscard]] bool valid() const {
    return break_pair >= 0 &&
           chunk_first.size() == static_cast<std::size_t>(break_pair) + 1;
  }
};

/// Outcome of one rank evaluation.
struct RankResult {
  /// r(alpha): number of longest wires meeting their target delay in the
  /// best feasible assignment; 0 when the WLD cannot be assigned at all
  /// (paper Definition 3).
  std::int64_t rank = 0;

  /// rank / total wires (the paper's Table 4 reports this).
  double normalized = 0.0;

  /// False iff even delay-free assignment is infeasible (Definition 3).
  bool all_assigned = false;

  /// Bunches fully inside the delay-met prefix (coarsening granularity).
  std::int64_t prefix_bunches = 0;

  /// Wires added to the prefix by the boundary-refinement extension.
  std::int64_t refined_wires = 0;

  std::int64_t repeater_count = 0;     ///< repeaters used by the prefix
  double repeater_area_used = 0.0;     ///< [m^2], <= budget
  std::int64_t total_wires = 0;        ///< WLD size

  /// DP observability, filled by dp_rank: wall time, state-space size and
  /// search effort. Zero for other engines. Timing fields vary run to run;
  /// the count fields are deterministic and comparable across hosts.
  struct DpStats {
    double seconds = 0.0;          ///< wall time inside dp_rank
    double forward_seconds = 0.0;  ///< of which: the forward pass
    std::int64_t arena_nodes = 0;  ///< state elements created
    std::int64_t max_frontier = 0; ///< largest per-(pair,bunch) frontier
    std::int64_t heap_pops = 0;    ///< best-first candidates examined
    std::int64_t verify_calls = 0; ///< free-pack verifications run
    /// Heap pushes skipped because the entry's optimistic key could not
    /// beat the warm-start bound or the in-heap verified incumbent. The
    /// pruned entries are exactly those the search would never pop, so
    /// results are unchanged; with a warm start the count depends on
    /// which witness arrived, so it is NOT comparable across thread
    /// counts (unlike the fields above).
    std::int64_t pruned_entries = 0;
    std::int64_t frontier_dominated = 0;  ///< newcomers dropped as dominated
    std::int64_t frontier_erased = 0;     ///< incumbents erased by newcomers
    /// Bytes the solve drew from the kernel's monotonic pool (arena lanes,
    /// frontiers, wake lists, heap storage). Deterministic per instance;
    /// 0 for the scalar reference path, which allocates from the heap.
    std::int64_t arena_bytes = 0;
    bool warm_start_checked = false;  ///< a warm witness was offered
    bool warm_start_hit = false;      ///< ... and verified feasible here
  };
  DpStats dp;

  /// Winning break candidate, filled by dp_rank whenever all_assigned —
  /// independent of build_trace (it is the sweep warm-start payload).
  DpWitness witness;

  /// Per-pair trace of the winning assignment (top pair first). Filled by
  /// engines when trace reconstruction is requested.
  std::vector<PairUsage> usage;

  /// Full assignment certificate (bunch-by-bunch placements, bunch order).
  /// Filled by dp_rank when the trace is built; core::verify_placements
  /// re-checks it against the instance from first principles.
  std::vector<BunchPlacement> placements;
};

}  // namespace iarank::core
