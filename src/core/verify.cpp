#include "src/core/verify.hpp"

#include <sstream>
#include <vector>

namespace iarank::core {

namespace {

VerifyOutcome fail(const std::string& reason) { return {false, reason}; }

}  // namespace

VerifyOutcome verify_placements(const Instance& inst,
                                const RankResult& result) {
  if (!result.all_assigned) {
    // A Definition-3 result carries no certificate; rank must be 0.
    if (result.rank != 0) return fail("infeasible result with nonzero rank");
    return {true, ""};
  }
  if (result.placements.empty()) {
    return fail("no placement certificate (trace not built?)");
  }

  const std::size_t n = inst.bunch_count();
  const std::size_t m = inst.pair_count();
  const double tol = inst.pair_capacity() * 1e-6;

  std::vector<std::int64_t> placed(n, 0);
  std::vector<std::int64_t> meeting(n, 0);
  std::vector<std::size_t> min_pair(n, m);
  std::vector<std::size_t> max_pair(n, 0);
  std::vector<double> pair_wire_area(m, 0.0);
  std::vector<double> pair_wires(m, 0.0);
  std::vector<double> pair_repeaters(m, 0.0);
  double rep_area = 0.0;
  std::int64_t rep_count = 0;

  for (const BunchPlacement& p : result.placements) {
    if (p.bunch >= n || p.pair >= m) return fail("placement out of range");
    if (p.wires <= 0 || p.meeting_delay < 0 || p.meeting_delay > p.wires) {
      return fail("malformed placement row");
    }
    placed[p.bunch] += p.wires;
    meeting[p.bunch] += p.meeting_delay;
    min_pair[p.bunch] = std::min(min_pair[p.bunch], p.pair);
    max_pair[p.bunch] = std::max(max_pair[p.bunch], p.pair);
    pair_wire_area[p.pair] += inst.wire_area(p.bunch, p.pair, p.wires);
    pair_wires[p.pair] += static_cast<double>(p.wires);

    if (p.meeting_delay > 0) {
      const DelayPlan& plan = inst.plan(p.bunch, p.pair);
      if (!plan.feasible) {
        return fail("delay-met wires on a pair with no feasible plan");
      }
      rep_area += static_cast<double>(p.meeting_delay) * plan.area_per_wire;
      rep_count += p.meeting_delay * plan.repeaters_per_wire();
      pair_repeaters[p.pair] +=
          static_cast<double>(p.meeting_delay * plan.repeaters_per_wire());
    }
  }

  // Every wire placed exactly once.
  for (std::size_t b = 0; b < n; ++b) {
    if (placed[b] != inst.bunch(b).count) {
      std::ostringstream os;
      os << "bunch " << b << " places " << placed[b] << " of "
         << inst.bunch(b).count << " wires";
      return fail(os.str());
    }
  }

  // Order constraint: a longer bunch may not sit strictly below a
  // shorter one (ties in length are interchangeable).
  for (std::size_t b = 0; b + 1 < n; ++b) {
    if (inst.bunch(b).length > inst.bunch(b + 1).length &&
        max_pair[b] > min_pair[b + 1]) {
      std::ostringstream os;
      os << "order violation: bunch " << b << " below bunch " << b + 1;
      return fail(os.str());
    }
  }

  // Prefix property: delay-met wires are exactly the `rank` longest.
  std::int64_t total_meeting = 0;
  bool broken = false;
  for (std::size_t b = 0; b < n; ++b) {
    total_meeting += meeting[b];
    if (broken && meeting[b] > 0) {
      return fail("delay-met wires after the prefix boundary");
    }
    if (meeting[b] < placed[b]) broken = true;
  }
  if (total_meeting != result.rank) {
    std::ostringstream os;
    os << "certificate meets " << total_meeting << " wires, result claims "
       << result.rank;
    return fail(os.str());
  }

  // Repeater budget and bookkeeping.
  if (rep_area > inst.repeater_budget() * (1.0 + 1e-6) + 1e-18) {
    return fail("repeater area exceeds the budget");
  }
  if (rep_count != result.repeater_count) {
    return fail("repeater count mismatch vs result");
  }

  // Per-pair capacity with via blockage from above.
  double wires_above = 0.0;
  double reps_above = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double capacity =
        inst.pair_capacity() - inst.blockage(j, wires_above, reps_above);
    if (pair_wire_area[j] > capacity + tol) {
      std::ostringstream os;
      os << "pair " << j << " over capacity: " << pair_wire_area[j] << " > "
         << capacity;
      return fail(os.str());
    }
    wires_above += pair_wires[j];
    reps_above += pair_repeaters[j];
  }

  return {true, ""};
}

}  // namespace iarank::core
