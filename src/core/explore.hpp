/// \file explore.hpp
/// \brief Crash-tolerant multi-dimensional design-space exploration.
///
/// `rank_tool explore` evaluates the cross product of a declarative
/// scenario spec — tech node x WLD family (Rent exponent) x target-delay
/// model x K x M x C x R — sharded across worker *processes* coordinated
/// through a file-based leased work queue (util/lease_queue.hpp). Workers
/// journal every completed point into a per-worker CheckpointJournal; the
/// coordinator reclaims leases from killed or hung workers, lets idle
/// workers steal from stragglers, and finally merges all journals into a
/// global result table, Pareto front and CSV.
///
/// The standing contract: the merged result of an N-worker run with
/// injected kills is bitwise-identical to a clean single-process run
/// (workers = 0). Three mechanisms carry it:
///
///  * journaled payloads are deterministic — workers zero the
///    scheduling/timing-dependent DpStats before encoding, so the same
///    grid index always journals the same bytes, and duplicate records
///    (from lease reclaim or steal overlap) are required to be
///    bitwise-equal at merge (first-complete-wins, audited loudly);
///  * a point is only trusted once its completion record is intact — a
///    worker appends an intent marker before evaluating, so a torn tail
///    or a trailing intent just means "recompute this index";
///  * poisoned points (those whose evaluation crashed a worker twice) are
///    quarantined from the worker phase and re-evaluated at merge time in
///    a sacrificial child process, so a spuriously-suspected point (two
///    random kills landing on it) still produces its normal result.
///
/// Spec file format — a normal rank_tool config (config_run.hpp keys)
/// defining the base scenario, plus `explore.*` list keys naming the
/// swept dimensions (omitted dimensions stay at the base value):
///
///   explore.node         = 130nm, 90nm            (names or .tech paths)
///   explore.rent_p       = 0.55, 0.6, 0.65        (Davis WLD family)
///   explore.target_model = linear, sqrt
///   explore.K            = 1.8:3.9:22             (lo:hi:n linspace ...)
///   explore.M            = 1.0, 1.5, 2.0          (... or explicit list)
///   explore.C            = 0.5e9:1.7e9:13
///   explore.R            = 0.1, 0.3, 0.5
///
/// Grid order is row-major with node slowest and R fastest, so index 0 is
/// the first value of every dimension.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/config_run.hpp"
#include "src/core/sweep.hpp"
#include "src/util/config.hpp"
#include "src/wld/wld.hpp"

namespace iarank::core {

/// A fully parsed, resolved exploration grid. Parsing validates every
/// dimension value eagerly (per-node designs are built and validated, all
/// WLDs generated), so workers never discover a bad spec mid-run.
class ExploreSpec {
 public:
  /// Parses `config`; throws util::Error (kBadInput) on malformed lists,
  /// unknown nodes/models, or an explore.rent_p sweep combined with
  /// wld.file (a file pins the WLD, so a Rent sweep would be a lie).
  [[nodiscard]] static ExploreSpec parse(const util::Config& config);

  /// parse() of util::Config::load(path).
  [[nodiscard]] static ExploreSpec load(const std::string& path);

  [[nodiscard]] std::int64_t total_points() const;

  /// 64-bit work key: digests every resolved design, WLD, base option and
  /// dimension value (doubles as bit patterns). Journals and run
  /// directories are only resumable against the same key.
  [[nodiscard]] std::uint64_t key() const;

  /// Dimension indices of one grid point (row-major decomposition).
  struct Scenario {
    std::size_t node = 0;
    std::size_t rent = 0;
    std::size_t target = 0;
    std::size_t k = 0;
    std::size_t m = 0;
    std::size_t c = 0;
    std::size_t r = 0;
  };
  [[nodiscard]] Scenario scenario(std::int64_t index) const;

  /// RankOptions of one grid point: base options with the scenario's
  /// target model and K/M/C/R applied.
  [[nodiscard]] RankOptions options_at(const Scenario& s) const;

  // Resolved dimensions (never empty; a fixed dimension has one entry).
  [[nodiscard]] const std::vector<std::string>& nodes() const { return node_names_; }
  [[nodiscard]] const std::vector<double>& rent_ps() const { return rent_ps_; }
  [[nodiscard]] const std::vector<delay::TargetModel>& target_models() const {
    return target_models_;
  }
  [[nodiscard]] const std::vector<double>& k_values() const { return k_; }
  [[nodiscard]] const std::vector<double>& m_values() const { return m_; }
  [[nodiscard]] const std::vector<double>& c_values() const { return c_; }
  [[nodiscard]] const std::vector<double>& r_values() const { return r_; }

  /// Resolved design of node dimension entry `node_idx`.
  [[nodiscard]] const DesignSpec& design(std::size_t node_idx) const {
    return designs_[node_idx];
  }
  /// Resolved WLD of (node_idx, rent_idx), in gate pitches.
  [[nodiscard]] const wld::Wld& wld(std::size_t node_idx,
                                    std::size_t rent_idx) const {
    return wlds_[node_idx * rent_ps_.size() + rent_idx];
  }

 private:
  std::vector<std::string> node_names_;
  std::vector<double> rent_ps_;
  std::vector<delay::TargetModel> target_models_;
  std::vector<double> k_, m_, c_, r_;
  std::vector<DesignSpec> designs_;       ///< per node entry
  std::vector<RankOptions> base_options_; ///< per node entry (regime-applied)
  std::vector<wld::Wld> wlds_;            ///< node-major [node][rent]
};

/// Execution knobs of one exploration run.
struct ExploreOptions {
  std::string dir = "explore-run";  ///< run directory (created)

  /// Worker processes to fork. 0 = clean single-process mode: no queue,
  /// no forks — the reference a chaos run must match bitwise.
  int workers = 0;

  /// Threads for in-process evaluation (workers = 0 mode, and the merge
  /// phase's recomputation of missing points).
  unsigned jobs = 1;

  std::int64_t chunk_points = 256;   ///< lease granularity
  double lease_ttl_seconds = 10.0;   ///< heartbeat staleness before reclaim
  int poison_threshold = 2;          ///< crashes before quarantine
  bool fsync_journal = false;        ///< fsync per record (SIGKILL needs none)
};

/// Merged outcome of a run.
struct ExploreResult {
  std::vector<SweepPoint> points;       ///< index-ordered, size total_points
  std::vector<std::int64_t> pareto;     ///< indices: normalized up, area down
  std::int64_t ok = 0;
  std::int64_t failed = 0;       ///< evaluated, but Status not ok
  std::int64_t quarantined = 0;  ///< poisoned and unsalvageable
  std::int64_t resumed = 0;      ///< recovered from journals at merge
  std::int64_t torn_tails = 0;   ///< journals with a torn tail at merge
  std::int64_t duplicates = 0;   ///< duplicate records (all bitwise-audited)
};

/// Runs the full exploration as the coordinator (forking workers when
/// options.workers > 0) and merges. Restartable: an existing run
/// directory with the same spec key resumes; with a different key the
/// journals restart from scratch. Throws util::Error on spec/IO errors or
/// a failed bitwise audit.
[[nodiscard]] ExploreResult run_explore(const ExploreSpec& spec,
                                        const ExploreOptions& options);

/// Worker main loop: attach to `dir`'s queue, claim/renew/steal leases,
/// journal points, export per-worker metrics. Returns a process exit
/// code. Used by forked workers and `rank_tool explore --worker`.
[[nodiscard]] int run_explore_worker(const ExploreSpec& spec,
                                     const ExploreOptions& options);

/// Writes the merged table and Pareto front as CSV (atomic, classic
/// locale, doubles in shortest round-trip spelling).
void write_explore_csv(const std::string& path, const ExploreSpec& spec,
                       const ExploreResult& result, bool pareto_only);

}  // namespace iarank::core
