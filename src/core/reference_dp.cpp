#include "src/core/reference_dp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/free_pack.hpp"
#include "src/util/error.hpp"

namespace iarank::core {

namespace {

constexpr double kRelTol = 1e-9;

class RefDp {
 public:
  RefDp(const Instance& inst, const ReferenceDpOptions& opt)
      : inst_(inst), n_(inst.bunch_count()), m_(inst.pair_count()),
        q_(opt.area_quanta) {
    iarank::util::require(q_ >= 1, "reference_dp: area_quanta must be >= 1");
    const double cells = static_cast<double>(n_ + 1) * static_cast<double>(m_) *
                         static_cast<double>(q_ + 1) *
                         static_cast<double>(n_ + 1);
    iarank::util::require(cells < 5e7, "reference_dp: table too large");
    quantum_ = inst_.repeater_budget() / static_cast<double>(q_);
    table_.assign(static_cast<std::size_t>(cells), 0);
  }

  RankResult run();

  /// Direct table access for tests: the paper's M[i, j, r, i'] with
  /// 1-based j as in the paper (j layer-pairs used).
  [[nodiscard]] bool cell(std::size_t i, std::size_t j, int r,
                          std::size_t ip) const {
    return table_[index(i, j, r, ip)] != 0;
  }

 private:
  const Instance& inst_;
  const std::size_t n_;
  const std::size_t m_;
  const int q_;
  double quantum_ = 0.0;
  std::vector<char> table_;

  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j, int r,
                                  std::size_t ip) const {
    return ((i * m_ + (j - 1)) * static_cast<std::size_t>(q_ + 1) +
            static_cast<std::size_t>(r)) *
               (n_ + 1) +
           ip;
  }

  void set_from(std::size_t i, std::size_t j, int r_min, std::size_t ip) {
    for (int r = r_min; r <= q_; ++r) table_[index(i, j, r, ip)] = 1;
  }

  /// Eq. 5: repeater count approximated from area, using the repeater
  /// size of the pair whose blockage is being computed.
  [[nodiscard]] double z_of(int quanta, std::size_t pair) const {
    const double rep_area = inst_.pair(pair).repeater_area;
    if (rep_area <= 0.0) return 0.0;
    return static_cast<double>(quanta) * quantum_ / rep_area;
  }

  /// Quanta needed (rounded up) for the exact repeater area `area`.
  [[nodiscard]] int quanta_up(double area) const {
    if (area <= 0.0) return 0;
    if (quantum_ <= 0.0) return q_ + 1;  // no budget: any demand overflows
    return static_cast<int>(std::ceil(area / quantum_ - kRelTol));
  }

  /// M' (wire_assign, Alg. 4): bunches [i1, ip) meet delay and bunches
  /// [ip, i) are placed delay-free, all on pair `j`, with `z_above`
  /// repeaters above. Returns the quanta consumed, or -1 if infeasible.
  [[nodiscard]] int wire_assign(std::size_t i1, std::size_t ip, std::size_t i,
                                std::size_t j, int quanta_avail,
                                double z_above) const;

  /// M'' (greedy_assign, Alg. 5): bunches [i, n) into pairs (j, m).
  [[nodiscard]] bool suffix_ok(std::size_t i, std::size_t j,
                               int quanta_used) const;
};

int RefDp::wire_assign(std::size_t i1, std::size_t ip, std::size_t i,
                       std::size_t j, int quanta_avail, double z_above) const {
  const double wires_above = static_cast<double>(inst_.wires_before(i1));
  const double capacity =
      inst_.pair_capacity() - inst_.blockage(j, wires_above, z_above);

  // Delay-met part [i1, ip) plus delay-free part [ip, i), all on pair j,
  // as prefix differences (instance tables, same sums the other engines
  // read). Wiring area is length * pitch * count either way, so one
  // prefix difference over [i1, i) covers both parts.
  if (inst_.first_infeasible(j, i1) < ip) return -1;
  const double wire_area =
      inst_.prefix_wire_area(j, i) - inst_.prefix_wire_area(j, i1);
  const double rep_area =
      inst_.prefix_repeater_area(j, ip) - inst_.prefix_repeater_area(j, i1);
  if (wire_area > capacity + inst_.pair_capacity() * kRelTol) return -1;
  const int quanta = quanta_up(rep_area);
  if (quanta > quanta_avail) return -1;
  return quanta;
}

bool RefDp::suffix_ok(std::size_t i, std::size_t j, int quanta_used) const {
  FreePackInput in;
  in.first_pair = j + 1;
  in.first_bunch = i;
  if (j + 1 < m_) {
    in.wires_above_first = static_cast<double>(inst_.wires_before(i));
    in.repeaters_above_first = z_of(quanta_used, j + 1);
    in.repeaters_total = in.repeaters_above_first;
  }
  return free_pack_feasible(inst_, in);
}

RankResult RefDp::run() {
  // min_quanta[i]: cheapest quanta putting bunches [0, i) all-delay-met on
  // the pairs processed so far (the diagonal states the recurrence reads).
  constexpr int kInf = 1 << 28;
  std::vector<int> min_quanta(n_ + 1, kInf);

  // --- Initialize_M (Alg. 2): pair 0, i.e. the paper's j = 1. ----------------
  std::vector<int> next_min(n_ + 1, kInf);
  for (std::size_t i = 0; i <= n_; ++i) {
    for (std::size_t ip = 0; ip <= i; ++ip) {
      const int quanta = wire_assign(0, ip, i, 0, q_, 0.0);
      if (quanta < 0) continue;
      if (!suffix_ok(i, 0, quanta)) continue;
      set_from(i, 1, quanta, ip);
      if (ip == i) next_min[i] = std::min(next_min[i], quanta);
    }
  }
  min_quanta = next_min;

  // --- update_M (Alg. 3): pairs 1..m-1 (paper j+1 = 2..m). -------------------
  for (std::size_t j = 1; j < m_; ++j) {
    next_min.assign(n_ + 1, kInf);
    for (std::size_t i1 = 0; i1 <= n_; ++i1) {
      const int q1 = min_quanta[i1];
      if (q1 > q_) continue;
      const double z_above = z_of(q1, j);
      for (std::size_t ip = i1; ip <= n_; ++ip) {
        for (std::size_t i = ip; i <= n_; ++i) {
          const int q2 = wire_assign(i1, ip, i, j, q_ - q1, z_above);
          if (q2 < 0) continue;
          if (!suffix_ok(i, j, q1 + q2)) continue;
          set_from(i, j + 1, q1 + q2, ip);
          if (ip == i) next_min[i] = std::min(next_min[i], q1 + q2);
        }
      }
    }
    // A diagonal state can also persist without using the new pair — but
    // only if that pair may legally stay empty: the via shadow of the
    // wires and repeaters above must still fit its capacity. (The
    // wire_assign path covers the same case via an empty chunk, but
    // requires suffix_ok at this pair; persistence is for states that
    // complete further down.)
    for (std::size_t i = 0; i <= n_; ++i) {
      const int q1 = min_quanta[i];
      if (q1 > q_) continue;
      const double blocked = inst_.blockage(
          j, static_cast<double>(inst_.wires_before(i)), z_of(q1, j));
      if (blocked > inst_.pair_capacity() * (1.0 + kRelTol)) continue;
      next_min[i] = std::min(next_min[i], q1);
    }
    min_quanta = next_min;
  }

  // --- Rank query (Alg. 1): max i' over all true cells. ------------------------
  RankResult res;
  res.total_wires = inst_.total_wires();
  std::int64_t best_ip = -1;
  for (std::size_t j = m_; j >= 1; --j) {
    for (std::size_t i = n_ + 1; i-- > 0;) {
      for (std::size_t ip = i + 1; ip-- > 0;) {
        if (cell(i, j, q_, ip)) {
          best_ip = std::max(best_ip, static_cast<std::int64_t>(ip));
          break;
        }
      }
    }
    if (j == 1) break;
  }
  if (best_ip < 0) {
    res.rank = 0;
    res.all_assigned = false;
    return res;
  }
  res.all_assigned = true;
  res.prefix_bunches = best_ip;
  res.rank = inst_.wires_before(static_cast<std::size_t>(best_ip));
  res.normalized = res.total_wires > 0
                       ? static_cast<double>(res.rank) /
                             static_cast<double>(res.total_wires)
                       : 0.0;
  return res;
}

}  // namespace

RankResult reference_dp_rank(const Instance& inst,
                             const ReferenceDpOptions& options) {
  RefDp dp(inst, options);
  return dp.run();
}

}  // namespace iarank::core
