#include "src/core/greedy_rank.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/metrics.hpp"
#include "src/util/trace.hpp"

namespace iarank::core {

namespace {

util::Counter& kGreedyRuns = util::MetricsRegistry::counter(
    "iarank_greedy_runs_total", "greedy_rank invocations");

}  // namespace

RankResult greedy_rank(const Instance& inst) {
  TRACE_SPAN("greedy_rank");
  kGreedyRuns.inc();
  const std::size_t m = inst.pair_count();

  RankResult res;
  res.total_wires = inst.total_wires();
  res.usage.resize(m);
  for (std::size_t j = 0; j < m; ++j) res.usage[j].pair_name = inst.pair(j).name;

  std::size_t j = 0;
  double area_used = 0.0;
  double wires_above = 0.0;     // wires on pairs < j
  double reps_above = 0.0;      // repeaters on pairs < j
  std::int64_t placed_in_pair = 0;
  std::int64_t reps_in_pair = 0;
  double budget_left = inst.repeater_budget();
  bool prefix_intact = true;
  std::int64_t rank = 0;
  bool overflow = false;

  res.usage[0].via_blockage = inst.blockage(0, 0.0, 0.0);

  for (std::size_t b = 0; b < inst.bunch_count() && !overflow; ++b) {
    const Bunch& bunch = inst.bunch(b);
    std::int64_t remaining = bunch.count;
    while (remaining > 0) {
      if (j >= m) {
        overflow = true;
        break;
      }
      const std::int64_t offset = bunch.count - remaining;
      const std::int64_t fit =
          inst.max_fit(b, j, offset, area_used, wires_above, reps_above);
      if (fit <= 0) {
        // Advance to the next pair down. A pair left behind must be legal
        // as it stands: if the via shadow from above already overruns its
        // capacity (possible when it was skipped outright), nothing placed
        // below can repair it — the greedy gives up (Definition 3).
        if (area_used + inst.blockage(j, wires_above, reps_above) >
            inst.pair_capacity() * (1.0 + 1e-9)) {
          overflow = true;
          break;
        }
        wires_above += static_cast<double>(placed_in_pair);
        reps_above += static_cast<double>(reps_in_pair);
        ++j;
        area_used = 0.0;
        placed_in_pair = 0;
        reps_in_pair = 0;
        if (j < m) {
          res.usage[j].via_blockage = inst.blockage(j, wires_above, reps_above);
        }
        continue;
      }
      const std::int64_t take = std::min(fit, remaining);

      std::int64_t met = 0;
      if (prefix_intact) {
        const DelayPlan& plan = inst.plan(b, j);
        if (!plan.feasible) {
          prefix_intact = false;
        } else {
          std::int64_t affordable = take;
          if (plan.area_per_wire > 0.0) {
            affordable = static_cast<std::int64_t>(
                std::floor((budget_left + 1e-30) / plan.area_per_wire));
          }
          met = std::clamp<std::int64_t>(affordable, 0, take);
          budget_left -= static_cast<double>(met) * plan.area_per_wire;
          reps_in_pair += met * plan.repeaters_per_wire();
          rank += met;
          res.usage[j].wires_meeting_delay += met;
          res.usage[j].repeaters += met * plan.repeaters_per_wire();
          res.usage[j].repeater_area +=
              static_cast<double>(met) * plan.area_per_wire;
          res.repeater_count += met * plan.repeaters_per_wire();
          res.repeater_area_used +=
              static_cast<double>(met) * plan.area_per_wire;
          if (met < take) prefix_intact = false;
        }
      }

      const double added = inst.wire_area(b, j, take);
      area_used += added;
      placed_in_pair += take;
      remaining -= take;
      res.usage[j].wires_total += take;
      res.usage[j].wire_area += added;
      res.placements.push_back({b, j, take, met});
    }
  }

  // Trailing pairs below the last one used carry the via shadow of every
  // wire and repeater placed; the per-pair constraint binds there too,
  // even though they end up empty (the certificate checker enforces it).
  if (!overflow) {
    const double wa = wires_above + static_cast<double>(placed_in_pair);
    const double ra = reps_above + static_cast<double>(reps_in_pair);
    for (std::size_t q = j + 1; q < m; ++q) {
      res.usage[q].via_blockage = inst.blockage(q, wa, ra);
      if (res.usage[q].via_blockage > inst.pair_capacity() * (1.0 + 1e-9)) {
        overflow = true;
      }
    }
  }

  res.all_assigned = !overflow;
  res.rank = overflow ? 0 : rank;  // Definition 3
  res.normalized = res.total_wires > 0
                       ? static_cast<double>(res.rank) /
                             static_cast<double>(res.total_wires)
                       : 0.0;
  return res;
}

}  // namespace iarank::core
