#include "src/core/optimizer.hpp"

#include <algorithm>

#include "src/util/error.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"

namespace iarank::core {

namespace {

/// True when `a` beats `b` under (rank desc, total pairs asc, globals asc).
bool better(const ArchCandidate& a, const ArchCandidate& b) {
  if (a.result.rank != b.result.rank) return a.result.rank > b.result.rank;
  if (a.spec.total_pairs() != b.spec.total_pairs()) {
    return a.spec.total_pairs() < b.spec.total_pairs();
  }
  return a.spec.global_pairs < b.spec.global_pairs;
}

/// Re-raises an all-candidates-failed search as the category of its
/// first failure (a fully bad-input grid is the caller's error, not ours).
iarank::util::ErrorCategory category_of(iarank::util::StatusCode code) {
  switch (code) {
    case iarank::util::StatusCode::kBadInput:
      return iarank::util::ErrorCategory::kBadInput;
    case iarank::util::StatusCode::kInfeasible:
      return iarank::util::ErrorCategory::kInfeasible;
    default:
      return iarank::util::ErrorCategory::kInternal;
  }
}

}  // namespace

OptimizerResult optimize_architecture(const tech::TechNode& node,
                                      std::int64_t gate_count,
                                      const RankOptions& options,
                                      const wld::Wld& wld_in_pitches,
                                      const OptimizerOptions& search) {
  TRACE_SPAN("optimize_architecture");
  // Enumerate the grid first so candidates can be evaluated concurrently
  // yet scanned for the winner in the original grid order — the result is
  // identical for any thread count.
  std::vector<tech::ArchitectureSpec> grid;
  for (const double ild : search.ild_height_factors) {
    for (int g = 0; g <= search.max_global_pairs; ++g) {
      for (int s = 0; s <= search.max_semi_global_pairs; ++s) {
        for (int l = 1; l <= search.max_local_pairs; ++l) {
          const int total = g + s + l;
          if (total < search.min_total_pairs || total > search.max_total_pairs) {
            continue;
          }
          grid.push_back({g, s, l, ild});
        }
      }
    }
  }
  iarank::util::require(!grid.empty(), "optimize_architecture: empty search grid");

  OptimizerResult out;
  out.evaluated.resize(grid.size());
  iarank::util::ThreadPool::shared().parallel_for(
      grid.size(), std::max(1u, search.threads), [&](std::size_t i) {
        DesignSpec design;
        design.node = node;
        design.arch = grid[i];
        design.gate_count = gate_count;
        out.evaluated[i].spec = design.arch;
        try {
          out.evaluated[i].result =
              compute_rank(design, options, wld_in_pitches);
        } catch (const std::exception& e) {
          out.evaluated[i].result = RankResult{};
          out.evaluated[i].status = iarank::util::Status::from_exception(e);
        }
      });

  // Winner scan skips failed candidates; the search only gives up when
  // nothing evaluated at all.
  const ArchCandidate* best = nullptr;
  for (const ArchCandidate& cand : out.evaluated) {
    if (!cand.status.ok()) {
      ++out.failed_candidates;
      continue;
    }
    if (best == nullptr || better(cand, *best)) best = &cand;
  }
  if (best == nullptr) {
    const iarank::util::Status& first = out.evaluated.front().status;
    throw iarank::util::Error(
        "optimize_architecture: all " + std::to_string(out.evaluated.size()) +
            " candidates failed; first: " + first.message,
        category_of(first.code));
  }
  out.best = *best;
  return out;
}

MinPairsResult min_pairs_for_rank(const tech::TechNode& node,
                                  std::int64_t gate_count,
                                  const RankOptions& options,
                                  const wld::Wld& wld_in_pitches,
                                  double target_normalized,
                                  const OptimizerOptions& search) {
  TRACE_SPAN("min_pairs_for_rank");
  iarank::util::require(target_normalized >= 0.0 && target_normalized <= 1.0,
                        "min_pairs_for_rank: target must be in [0, 1]");
  MinPairsResult out;
  for (int total = search.min_total_pairs; total <= search.max_total_pairs;
       ++total) {
    OptimizerOptions level = search;
    level.min_total_pairs = total;
    level.max_total_pairs = total;
    OptimizerResult best_at_level;
    try {
      best_at_level = optimize_architecture(node, gate_count, options,
                                            wld_in_pitches, level);
    } catch (const iarank::util::Error&) {
      continue;  // no valid allocation at this pair count
    }
    if (best_at_level.best.result.normalized >= target_normalized) {
      out.achievable = true;
      out.spec = best_at_level.best.spec;
      out.result = best_at_level.best.result;
      return out;
    }
  }
  return out;
}

}  // namespace iarank::core
