/// \file engine.hpp
/// \brief High-level entry points: design + options + WLD -> rank.
///
/// This is the facade a downstream user calls. It wires the substrates
/// together exactly as the paper's Section 5.2 flow does: Davis WLD at
/// Rent p = 0.6, die sizing per Eq. 6, architecture from Table 2/3,
/// coarsening, then the exact DP.

#pragma once

#include <cstdint>
#include <string>

#include "src/core/dp_rank.hpp"
#include "src/core/instance.hpp"
#include "src/core/options.hpp"
#include "src/core/rank_result.hpp"
#include "src/wld/wld.hpp"

namespace iarank::core {

/// Parameters of the default (Davis) WLD generation.
struct WldParams {
  double rent_p = 0.6;     ///< the paper's value
  double rent_k = 4.0;
  double avg_fanout = 3.0;
};

/// Generates the Davis WLD (lengths in gate pitches) for the design's
/// gate count.
[[nodiscard]] wld::Wld default_wld(const DesignSpec& design,
                                   const WldParams& params = {});

/// The paper's Table 2 baseline design at the given node: 1 global +
/// 2 semi-global + 1 local layer-pair, 1M gates (overridable).
[[nodiscard]] DesignSpec baseline_design(const std::string& node_name,
                                         std::int64_t gate_count = 1000000);

/// Full evaluation flow: build the instance and run the exact DP.
[[nodiscard]] RankResult compute_rank(const DesignSpec& design,
                                      const RankOptions& options,
                                      const wld::Wld& wld_in_pitches);

/// Same, with the Davis WLD generated internally.
[[nodiscard]] RankResult compute_rank(const DesignSpec& design,
                                      const RankOptions& options = {});

/// The greedy baseline on the identical instance (for comparisons).
[[nodiscard]] RankResult compute_rank_greedy(const DesignSpec& design,
                                             const RankOptions& options,
                                             const wld::Wld& wld_in_pitches);

}  // namespace iarank::core
