#include "src/core/checkpoint.hpp"

#include <bit>
#include <cerrno>
#include <cstdlib>

namespace iarank::core {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

/// 16-hex-digit IEEE-754 bit pattern: round-trips every double bitwise,
/// including -0.0 and NaN payloads.
std::string hex_f64(double v) {
  auto bits = std::bit_cast<std::uint64_t>(v);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[bits & 0xF];
    bits >>= 4;
  }
  return out;
}

/// Hex bytes; "." stands for the empty string (a bare empty token would
/// vanish in the whitespace-separated stream).
std::string hex_str(std::string_view s) {
  if (s.empty()) return ".";
  std::string out;
  out.reserve(2 * s.size());
  for (const char c : s) {
    const auto b = static_cast<unsigned char>(c);
    out += kHexDigits[b >> 4];
    out += kHexDigits[b & 0xF];
  }
  return out;
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// Whitespace-token pull parser over one encoded record.
class TokenReader {
 public:
  explicit TokenReader(std::string_view text) : text_(text) {}

  bool next(std::string_view& out) {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
    if (pos_ >= text_.size()) return false;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ' ') ++pos_;
    out = text_.substr(start, pos_ - start);
    return true;
  }

  bool next_i64(std::int64_t& out) {
    std::string_view tok;
    if (!next(tok)) return false;
    errno = 0;
    char* end = nullptr;
    const std::string buf(tok);
    const long long v = std::strtoll(buf.c_str(), &end, 10);
    if (errno != 0 || end != buf.c_str() + buf.size() || buf.empty()) {
      return false;
    }
    out = v;
    return true;
  }

  bool next_size(std::size_t& out) {
    std::int64_t v = 0;
    if (!next_i64(v) || v < 0) return false;
    out = static_cast<std::size_t>(v);
    return true;
  }

  bool next_f64(double& out) {
    std::string_view tok;
    if (!next(tok) || tok.size() != 16) return false;
    std::uint64_t bits = 0;
    for (const char c : tok) {
      const int v = hex_value(c);
      if (v < 0) return false;
      bits = (bits << 4) | static_cast<std::uint64_t>(v);
    }
    out = std::bit_cast<double>(bits);
    return true;
  }

  bool next_str(std::string& out) {
    std::string_view tok;
    if (!next(tok)) return false;
    out.clear();
    if (tok == ".") return true;
    if (tok.size() % 2 != 0) return false;
    out.reserve(tok.size() / 2);
    for (std::size_t i = 0; i < tok.size(); i += 2) {
      const int hi = hex_value(tok[i]);
      const int lo = hex_value(tok[i + 1]);
      if (hi < 0 || lo < 0) return false;
      out += static_cast<char>((hi << 4) | lo);
    }
    return true;
  }

  bool next_bool(bool& out) {
    std::int64_t v = 0;
    if (!next_i64(v) || (v != 0 && v != 1)) return false;
    out = v == 1;
    return true;
  }

  bool done() {
    std::string_view tok;
    return !next(tok);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

void digest_tier(util::Digest& d, const tech::TierGeometry& tier) {
  d.f64(tier.min_width)
      .f64(tier.min_spacing)
      .f64(tier.thickness)
      .f64(tier.via_width);
}

}  // namespace

void digest_design(util::Digest& d, const DesignSpec& design) {
  const tech::TechNode& node = design.node;
  d.str(node.name).f64(node.feature_size);
  digest_tier(d, node.local);
  digest_tier(d, node.semi_global);
  digest_tier(d, node.global);
  d.f64(node.device.r_o)
      .f64(node.device.c_o)
      .f64(node.device.c_p)
      .f64(node.device.min_inv_area);
  d.str(node.conductor.name).f64(node.conductor.resistivity);
  d.i64(node.total_metal_layers)
      .f64(node.gate_pitch_factor)
      .f64(node.max_clock);
  d.i64(design.arch.global_pairs)
      .i64(design.arch.semi_global_pairs)
      .i64(design.arch.local_pairs)
      .f64(design.arch.ild_height_factor);
  d.i64(design.gate_count);
}

void digest_wld(util::Digest& d, const wld::Wld& wld) {
  d.u64(wld.group_count());
  for (const wld::WireGroup& g : wld.groups()) {
    d.f64(g.length).i64(g.count);
  }
}

void digest_rank_options(util::Digest& d, const RankOptions& options) {
  d.f64(options.ild_permittivity)
      .f64(options.miller_factor)
      .f64(options.clock_frequency)
      .f64(options.repeater_fraction);
  d.i64(static_cast<int>(options.cap_model))
      .i64(static_cast<int>(options.target_model));
  d.f64(options.switching.a).f64(options.switching.b);
  d.f64(options.vias.vias_per_wire).f64(options.vias.vias_per_repeater);
  d.boolean(options.max_stages.has_value())
      .i64(options.max_stages ? *options.max_stages : 0);
  d.f64(options.min_repeater_spacing)
      .boolean(options.charge_drivers)
      .f64(options.max_noise_ratio)
      .f64(options.pair_capacity_factor);
  d.i64(options.bunch_size)
      .f64(options.bin_window)
      .boolean(options.refine_boundary);
}

std::uint64_t sweep_checkpoint_key(std::uint64_t builder_fingerprint,
                                   const RankOptions& base,
                                   SweepParameter parameter,
                                   const std::vector<double>& values) {
  util::Digest d;
  d.str("iarank.sweep.v1");
  d.u64(builder_fingerprint);
  digest_rank_options(d, base);
  d.i64(static_cast<int>(parameter));
  d.u64(values.size());
  for (const double v : values) d.f64(v);
  return d.value();
}

std::uint64_t selfcheck_checkpoint_key(std::int64_t count,
                                       std::uint64_t first_seed) {
  util::Digest d;
  d.str("iarank.selfcheck.v1");
  d.i64(count);
  d.u64(first_seed);
  return d.value();
}

std::string encode_sweep_point(const SweepPoint& point) {
  const RankResult& r = point.result;
  std::string out;
  out.reserve(256);
  const auto add = [&out](const std::string& token) {
    if (!out.empty()) out += ' ';
    out += token;
  };
  add(hex_f64(point.value));
  add(std::to_string(static_cast<int>(point.status.code)));
  add(hex_str(point.status.message));
  add(std::to_string(r.rank));
  add(hex_f64(r.normalized));
  add(r.all_assigned ? "1" : "0");
  add(std::to_string(r.prefix_bunches));
  add(std::to_string(r.refined_wires));
  add(std::to_string(r.repeater_count));
  add(hex_f64(r.repeater_area_used));
  add(std::to_string(r.total_wires));
  add(hex_f64(r.dp.seconds));
  add(hex_f64(r.dp.forward_seconds));
  add(std::to_string(r.dp.arena_nodes));
  add(std::to_string(r.dp.max_frontier));
  add(std::to_string(r.dp.heap_pops));
  add(std::to_string(r.dp.verify_calls));
  add(std::to_string(r.usage.size()));
  for (const PairUsage& u : r.usage) {
    add(hex_str(u.pair_name));
    add(std::to_string(u.wires_meeting_delay));
    add(std::to_string(u.wires_total));
    add(hex_f64(u.wire_area));
    add(hex_f64(u.via_blockage));
    add(std::to_string(u.repeaters));
    add(hex_f64(u.repeater_area));
  }
  add(std::to_string(r.placements.size()));
  for (const BunchPlacement& p : r.placements) {
    add(std::to_string(p.bunch));
    add(std::to_string(p.pair));
    add(std::to_string(p.wires));
    add(std::to_string(p.meeting_delay));
  }
  return out;
}

bool decode_sweep_point(std::string_view text, SweepPoint& point) {
  TokenReader in(text);
  SweepPoint out;
  RankResult& r = out.result;

  std::int64_t code = 0;
  if (!in.next_f64(out.value)) return false;
  if (!in.next_i64(code) || code < 0 ||
      code > static_cast<int>(util::StatusCode::kTimedOut)) {
    return false;
  }
  out.status.code = static_cast<util::StatusCode>(code);
  if (!in.next_str(out.status.message)) return false;

  if (!in.next_i64(r.rank)) return false;
  if (!in.next_f64(r.normalized)) return false;
  if (!in.next_bool(r.all_assigned)) return false;
  if (!in.next_i64(r.prefix_bunches)) return false;
  if (!in.next_i64(r.refined_wires)) return false;
  if (!in.next_i64(r.repeater_count)) return false;
  if (!in.next_f64(r.repeater_area_used)) return false;
  if (!in.next_i64(r.total_wires)) return false;
  if (!in.next_f64(r.dp.seconds)) return false;
  if (!in.next_f64(r.dp.forward_seconds)) return false;
  if (!in.next_i64(r.dp.arena_nodes)) return false;
  if (!in.next_i64(r.dp.max_frontier)) return false;
  if (!in.next_i64(r.dp.heap_pops)) return false;
  if (!in.next_i64(r.dp.verify_calls)) return false;

  std::size_t usage_count = 0;
  if (!in.next_size(usage_count) || usage_count > (1u << 20)) return false;
  r.usage.resize(usage_count);
  for (PairUsage& u : r.usage) {
    if (!in.next_str(u.pair_name)) return false;
    if (!in.next_i64(u.wires_meeting_delay)) return false;
    if (!in.next_i64(u.wires_total)) return false;
    if (!in.next_f64(u.wire_area)) return false;
    if (!in.next_f64(u.via_blockage)) return false;
    if (!in.next_i64(u.repeaters)) return false;
    if (!in.next_f64(u.repeater_area)) return false;
  }

  std::size_t placement_count = 0;
  if (!in.next_size(placement_count) || placement_count > (1u << 24)) {
    return false;
  }
  r.placements.resize(placement_count);
  for (BunchPlacement& p : r.placements) {
    if (!in.next_size(p.bunch)) return false;
    if (!in.next_size(p.pair)) return false;
    if (!in.next_i64(p.wires)) return false;
    if (!in.next_i64(p.meeting_delay)) return false;
  }

  if (!in.done()) return false;
  point = std::move(out);
  return true;
}

std::string encode_scenario_check(const ScenarioCheck& check) {
  std::string out;
  const auto add = [&out](const std::string& token) {
    if (!out.empty()) out += ' ';
    out += token;
  };
  add(check.ok ? "1" : "0");
  add(hex_str(check.mismatch));
  add(std::to_string(check.dp));
  add(std::to_string(check.dp_bunch));
  add(std::to_string(check.greedy));
  add(std::to_string(check.brute));
  add(std::to_string(check.reference));
  add(check.brute_checked ? "1" : "0");
  add(check.reference_checked ? "1" : "0");
  return out;
}

bool decode_scenario_check(std::string_view text, ScenarioCheck& check) {
  TokenReader in(text);
  ScenarioCheck out;
  if (!in.next_bool(out.ok)) return false;
  if (!in.next_str(out.mismatch)) return false;
  if (!in.next_i64(out.dp)) return false;
  if (!in.next_i64(out.dp_bunch)) return false;
  if (!in.next_i64(out.greedy)) return false;
  if (!in.next_i64(out.brute)) return false;
  if (!in.next_i64(out.reference)) return false;
  if (!in.next_bool(out.brute_checked)) return false;
  if (!in.next_bool(out.reference_checked)) return false;
  if (!in.done()) return false;
  check = std::move(out);
  return true;
}

}  // namespace iarank::core
