#include "src/core/figure2.hpp"

namespace iarank::core {

Instance figure2_instance() {
  // Four wires of length 1 (abstract units), one per bunch so wire and
  // bunch granularity coincide.
  std::vector<Bunch> bunches(4, Bunch{1.0, 1, 1.0});

  // Upper pair holds at most 2 wires (pitch 5, die 10); lower pair holds
  // at most 3 (pitch 3.3). Vias are disabled for clarity.
  std::vector<PairInfo> pairs = {
      {"upper (slow RC)", 5.0, 0.0, 1.0, 1.0},
      {"lower (fast RC)", 10.0 / 3.0, 0.0, 1.0, 1.0},
  };

  // Meeting the target needs 4 repeaters per wire on the upper pair and
  // 1 on the lower pair; each repeater has unit area.
  DelayPlan upper;
  upper.feasible = true;
  upper.stages = 5;
  upper.delay = 1.0;
  upper.area_per_wire = 4.0;
  DelayPlan lower;
  lower.feasible = true;
  lower.stages = 2;
  lower.delay = 1.0;
  lower.area_per_wire = 1.0;

  std::vector<std::vector<DelayPlan>> plans(4, {upper, lower});

  return Instance::from_raw(std::move(bunches), std::move(pairs),
                            std::move(plans), /*pair_capacity=*/10.0,
                            /*repeater_budget=*/8.0, tech::ViaSpec{});
}

Figure2Expectation figure2_expectation() { return {}; }

}  // namespace iarank::core
