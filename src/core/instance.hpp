/// \file instance.hpp
/// \brief The concrete assignment problem consumed by every rank engine.
///
/// An Instance freezes one rank computation: the coarsened WLD (bunches of
/// identical-length wires, longest first — paper Section 5.1), the
/// layer-pair stack with derived electrical and area parameters (topmost
/// first), the die area, the repeater area budget, and a precomputed
/// (bunch x pair) table of wiring areas and repeater plans. All engines —
/// the exact DP, the paper-faithful 4-D reference DP, the greedy baseline
/// and the brute-force oracle — operate on this one structure, which is
/// what makes their cross-validation meaningful.
///
/// Geometry and blockage conventions (paper Section 3 / 4.2 / 4.3):
///  * wire area of a length-l wire on pair j is l * (W_j + S_j); the
///    L-corner via is folded into this area;
///  * a wire on pair j blocks via area in every pair strictly below j
///    (vias_per_wire cuts of that pair's via size);
///  * a repeater on pair j blocks one via cut in every pair strictly
///    below j;
///  * available area per pair is the pair's routing capacity
///    (pair_capacity_factor x A_d; two layers per pair by default) minus
///    that blockage.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/options.hpp"
#include "src/delay/stack.hpp"
#include "src/wld/wld.hpp"

namespace iarank::core {

/// One assignment unit: `count` wires of identical physical length.
struct Bunch {
  double length = 0.0;        ///< physical wire length [m]
  std::int64_t count = 0;     ///< wires in this bunch
  double target_delay = 0.0;  ///< d_i of each wire [s]
};

/// Per-layer-pair parameters needed by the assignment engines.
struct PairInfo {
  std::string name;        ///< e.g. "G1 (global)"
  double pitch = 0.0;      ///< W_j + S_j [m]
  double via_area = 0.0;   ///< v_a of this pair [m^2]
  double s_opt = 0.0;      ///< optimal repeater size [min-inverter units]
  double repeater_area = 0.0;  ///< silicon area of ONE repeater (s_opt x a_inv) [m^2]
};

/// Result of planning repeater insertion for one wire of a bunch on one
/// pair (paper Section 4.1 incremental insertion, solved in closed form).
struct DelayPlan {
  bool feasible = false;        ///< can this wire meet its target here?
  std::int64_t stages = 1;      ///< eta; repeaters per wire = stages - 1
  double delay = 0.0;           ///< achieved delay [s]
  double area_per_wire = 0.0;   ///< repeater area per wire [m^2]

  [[nodiscard]] std::int64_t repeaters_per_wire() const { return stages - 1; }
};

/// Frozen rank-computation input. Build via `build_instance` (physical
/// flow) or `Instance::from_raw` (hand-crafted scenarios, e.g. the
/// Figure 2 counterexample and unit tests).
class Instance {
 public:
  /// Raw constructor: bunches must be sorted by non-increasing length,
  /// pairs ordered top to bottom. `plans[b][j]` gives the delay plan of
  /// bunch b on pair j. Throws util::Error on inconsistent shapes.
  [[nodiscard]] static Instance from_raw(std::vector<Bunch> bunches,
                                         std::vector<PairInfo> pairs,
                                         std::vector<std::vector<DelayPlan>> plans,
                                         double pair_capacity,
                                         double repeater_budget,
                                         tech::ViaSpec vias);

  /// Default-constructed instances are empty shells; populate them with
  /// assign_raw before use (the reuse idiom of the sweep workers).
  Instance() = default;

  /// from_raw into an existing instance: same validation, same resulting
  /// values, but every member is copy-assigned so a reused instance with
  /// matching shapes performs zero heap allocation — the per-point build
  /// path of the hot drivers (DESIGN.md Section 10.6).
  void assign_raw(const std::vector<Bunch>& bunches,
                  const std::vector<PairInfo>& pairs,
                  const std::vector<std::vector<DelayPlan>>& plans,
                  double pair_capacity, double repeater_budget,
                  tech::ViaSpec vias);

  // --- Shape ----------------------------------------------------------------
  [[nodiscard]] std::size_t bunch_count() const { return bunches_.size(); }
  [[nodiscard]] std::size_t pair_count() const { return pairs_.size(); }
  [[nodiscard]] const std::vector<Bunch>& bunches() const { return bunches_; }
  [[nodiscard]] const std::vector<PairInfo>& pairs() const { return pairs_; }
  [[nodiscard]] const Bunch& bunch(std::size_t b) const { return bunches_[b]; }
  [[nodiscard]] const PairInfo& pair(std::size_t j) const { return pairs_[j]; }

  // --- Globals ----------------------------------------------------------------
  [[nodiscard]] double pair_capacity() const { return pair_capacity_; }
  [[nodiscard]] double repeater_budget() const { return repeater_budget_; }
  [[nodiscard]] const tech::ViaSpec& vias() const { return vias_; }
  [[nodiscard]] std::int64_t total_wires() const { return total_wires_; }

  /// Wires in bunches [0, b) — the number of wires strictly above the
  /// first wire of bunch b in rank order.
  [[nodiscard]] std::int64_t wires_before(std::size_t b) const;

  // --- Per (bunch, pair) quantities ---------------------------------------------
  /// Wiring area of `wires` wires of bunch b on pair j.
  [[nodiscard]] double wire_area(std::size_t b, std::size_t j,
                                 std::int64_t wires) const;

  /// Delay/repeater plan of one wire of bunch b on pair j.
  [[nodiscard]] const DelayPlan& plan(std::size_t b, std::size_t j) const;

  /// Via blockage charged against pair j when `wires_above` wires and
  /// `repeaters_above` repeaters live on pairs 0..j-1.
  [[nodiscard]] double blockage(std::size_t j, double wires_above,
                                double repeaters_above) const;

  /// Max wires of bunch b, starting at `offset` wires already consumed,
  /// that fit in pair j given `area_used` wiring area already in the pair
  /// and the blockage arguments. Used by the packing engines.
  [[nodiscard]] std::int64_t max_fit(std::size_t b, std::size_t j,
                                     std::int64_t offset, double area_used,
                                     double wires_above,
                                     double repeaters_above) const;

  // --- Prefix-cost tables ----------------------------------------------------
  // Per-pair cumulative delay-met costs over bunches [0, b), built once in
  // from_raw so the engines' chunk loops become prefix differences plus a
  // binary search (DESIGN.md Section 10). Sums skip infeasible plans (a
  // feasible chunk never crosses one — guard with first_infeasible). All
  // four rank engines read these same tables, so any floating-point
  // difference vs. sequential accumulation is shared and cross-engine
  // agreement is preserved.

  /// Cumulative wiring area of bunches [0, b) fully placed on pair j.
  [[nodiscard]] double prefix_wire_area(std::size_t j, std::size_t b) const {
    return prefix_wire_area_[j * prefix_stride_ + b];
  }
  /// Cumulative repeater area of delay-met bunches [0, b) on pair j.
  [[nodiscard]] double prefix_repeater_area(std::size_t j, std::size_t b) const {
    return prefix_rep_area_[j * prefix_stride_ + b];
  }
  /// Cumulative repeater count of delay-met bunches [0, b) on pair j.
  [[nodiscard]] std::int64_t prefix_repeater_count(std::size_t j,
                                                   std::size_t b) const {
    return prefix_rep_count_[j * prefix_stride_ + b];
  }
  /// First bunch t >= b whose plan on pair j is infeasible (bunch_count()
  /// when every bunch from b on is feasible). A delay-met chunk [b, b+c)
  /// on pair j is plan-feasible iff first_infeasible(j, b) >= b + c.
  [[nodiscard]] std::size_t first_infeasible(std::size_t j,
                                             std::size_t b) const {
    return next_infeasible_[j * prefix_stride_ + b];
  }

  /// Aggregate cost of the delay-met chunk [b, b+c) on pair j, as prefix
  /// differences. Caller guarantees plan feasibility over the range.
  struct ChunkTotals {
    double wire_area = 0.0;
    double rep_area = 0.0;
    std::int64_t rep_count = 0;
  };
  [[nodiscard]] ChunkTotals chunk_totals(std::size_t j, std::size_t b,
                                         std::size_t c) const {
    const std::size_t base = j * prefix_stride_;
    return {prefix_wire_area_[base + b + c] - prefix_wire_area_[base + b],
            prefix_rep_area_[base + b + c] - prefix_rep_area_[base + b],
            prefix_rep_count_[base + b + c] - prefix_rep_count_[base + b]};
  }

  /// Largest c such that the delay-met chunk [b, b+c) on pair j has every
  /// plan feasible, wire area <= wire_limit and repeater area <= rep_limit
  /// (absolute limits, tolerances folded in by the caller). Binary search
  /// over the monotone prefix sums.
  [[nodiscard]] std::int64_t max_feasible_chunk(std::size_t j, std::size_t b,
                                                double wire_limit,
                                                double rep_limit) const;

  // --- Structure-of-arrays lanes ---------------------------------------------
  // Flat per-pair views of the plan matrix and the bunch list, built once
  // in from_raw for the data-oriented DP kernel: the forward pass reads
  // one field of many bunches at a time, and the AoS plan()/bunch()
  // accessors would make those loops gather loads. Each plan lane is
  // bunch_count() + 1 long — index bunch_count() is a sentinel row
  // (infeasible, zero cost) so batched reads at a chunk's one-past-the-end
  // bunch stay in bounds. Values are copies of the plan()/bunch() fields,
  // so lane reads are bitwise-identical to AoS reads.

  /// plan(b, j).feasible as 0/1, lane of pair j (stride bunch_count()+1).
  [[nodiscard]] const std::uint8_t* plan_feasible_lane(std::size_t j) const {
    return plan_feasible_.data() + j * prefix_stride_;
  }
  /// plan(b, j).area_per_wire, lane of pair j (sentinel 0.0 at index n).
  [[nodiscard]] const double* plan_area_per_wire_lane(std::size_t j) const {
    return plan_area_per_wire_.data() + j * prefix_stride_;
  }
  /// plan(b, j).repeaters_per_wire(), lane of pair j (sentinel 0).
  [[nodiscard]] const std::int64_t* plan_reps_per_wire_lane(
      std::size_t j) const {
    return plan_reps_per_wire_.data() + j * prefix_stride_;
  }
  /// bunch(b).count with a 0 sentinel at index bunch_count().
  [[nodiscard]] const std::int64_t* bunch_count_lane() const {
    return bunch_count_.data();
  }
  /// bunch(b).length with a 0.0 sentinel at index bunch_count().
  [[nodiscard]] const double* bunch_length_lane() const {
    return bunch_length_.data();
  }
  /// wires_before(b) for b in [0, bunch_count()], unchecked.
  [[nodiscard]] const std::int64_t* wires_before_lane() const {
    return wires_before_.data();
  }
  /// prefix_repeater_area(j, b) for b in [0, bunch_count()].
  [[nodiscard]] const double* prefix_repeater_area_lane(std::size_t j) const {
    return prefix_rep_area_.data() + j * prefix_stride_;
  }
  /// prefix_repeater_count(j, b) for b in [0, bunch_count()].
  [[nodiscard]] const std::int64_t* prefix_repeater_count_lane(
      std::size_t j) const {
    return prefix_rep_count_.data() + j * prefix_stride_;
  }
  /// prefix_wire_area(j, b) for b in [0, bunch_count()].
  [[nodiscard]] const double* prefix_wire_area_lane(std::size_t j) const {
    return prefix_wire_area_.data() + j * prefix_stride_;
  }

 private:
  static void validate_raw(const std::vector<Bunch>& bunches,
                           const std::vector<PairInfo>& pairs,
                           const std::vector<std::vector<DelayPlan>>& plans,
                           double pair_capacity, double repeater_budget);

  /// Derived state (wires_before_, prefix tables, SoA lanes) from the
  /// just-assigned raw members. Reuses existing vector capacity.
  void finish_raw(double pair_capacity, double repeater_budget,
                  tech::ViaSpec vias);

  void build_prefix_tables();

  std::vector<Bunch> bunches_;
  std::vector<PairInfo> pairs_;
  std::vector<std::vector<DelayPlan>> plans_;  ///< [bunch][pair]
  std::vector<std::int64_t> wires_before_;     ///< prefix sums, size B+1
  std::size_t prefix_stride_ = 0;              ///< bunch_count() + 1
  std::vector<double> prefix_wire_area_;       ///< [pair][bunch], flattened
  std::vector<double> prefix_rep_area_;
  std::vector<std::int64_t> prefix_rep_count_;
  std::vector<std::size_t> next_infeasible_;
  std::vector<std::uint8_t> plan_feasible_;    ///< [pair][bunch] SoA lanes,
  std::vector<double> plan_area_per_wire_;     ///< sentinel row at index
  std::vector<std::int64_t> plan_reps_per_wire_;  ///< bunch_count()
  std::vector<std::int64_t> bunch_count_;      ///< size B+1, sentinel 0
  std::vector<double> bunch_length_;           ///< size B+1, sentinel 0.0
  double pair_capacity_ = 0.0;
  double repeater_budget_ = 0.0;
  tech::ViaSpec vias_;
  std::int64_t total_wires_ = 0;
};

/// Builds the physical instance: scales the (gate-pitch) WLD to metres via
/// the die model, derives per-pair electricals, computes target delays and
/// the (bunch x pair) plan table, applies binning and bunching.
/// Throws util::Error on invalid inputs.
[[nodiscard]] Instance build_instance(const DesignSpec& design,
                                      const RankOptions& options,
                                      const wld::Wld& wld_in_pitches);

}  // namespace iarank::core
