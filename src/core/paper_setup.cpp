#include "src/core/paper_setup.hpp"

#include <cmath>

#include "src/tech/die.hpp"
#include "src/tech/node.hpp"
#include "src/util/error.hpp"

namespace iarank::core {

PaperRegime scaled_regime(std::int64_t gate_count) {
  iarank::util::require(gate_count > 0, "scaled_regime: gate_count must be > 0");
  const double n_ratio = 1e6 / static_cast<double>(gate_count);
  PaperRegime regime;
  regime.die_scale *= std::sqrt(n_ratio);
  regime.repeater_cell_f2 *= n_ratio;
  regime.capacity_factor /= n_ratio;
  return regime;
}

PaperSetup paper_baseline(const std::string& node_name, std::int64_t gate_count,
                          const PaperRegime& regime) {
  iarank::util::require(regime.die_scale > 0.0 &&
                            regime.device_ideality > 0.0 &&
                            regime.repeater_cell_f2 > 0.0 &&
                            regime.min_spacing_pitches >= 0.0 &&
                            regime.capacity_factor > 0.0,
                        "paper_baseline: invalid regime parameters");

  PaperSetup setup;
  setup.design.node = tech::node_by_name(node_name);
  setup.design.arch = tech::ArchitectureSpec{};  // Table 2: 1G + 2S + 1L
  setup.design.gate_count = gate_count;

  tech::TechNode& node = setup.design.node;
  node.gate_pitch_factor *= regime.die_scale;
  node.device.r_o *= regime.device_ideality;
  node.device.c_o *= regime.device_ideality;
  node.device.c_p *= regime.device_ideality;
  node.device.min_inv_area =
      regime.repeater_cell_f2 * node.feature_size * node.feature_size;

  RankOptions& opt = setup.options;  // Table 2 defaults otherwise
  opt.target_model = delay::TargetModel::kQuadratic;
  opt.cap_model = tech::CapacitanceModel::kParallelPlate;
  opt.pair_capacity_factor = regime.capacity_factor;

  // Fix the repeater interval in metres at the baseline R = 0.4 die.
  const tech::DieModel die(
      {gate_count, node.gate_pitch(), opt.repeater_fraction});
  opt.min_repeater_spacing =
      regime.min_spacing_pitches * die.effective_gate_pitch();
  return setup;
}

}  // namespace iarank::core
