#include "src/core/selfcheck.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iterator>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "src/core/brute_force.hpp"
#include "src/core/checkpoint.hpp"
#include "src/core/dp_rank.hpp"
#include "src/core/greedy_rank.hpp"
#include "src/core/paper_setup.hpp"
#include "src/core/reference_dp.hpp"
#include "src/core/verify.hpp"
#include "src/tech/envelope.hpp"
#include "src/util/error.hpp"
#include "src/util/journal.hpp"
#include "src/util/metrics.hpp"
#include "src/util/rng.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/trace.hpp"
#include "src/util/units.hpp"
#include "src/wld/davis.hpp"
#include "src/wld/synthetic.hpp"

namespace iarank::core {

namespace {

// Substream ids for Rng::fork — fixed constants so adding a sampler never
// shifts the scenarios behind existing seeds.
constexpr std::uint64_t kStreamFamily = 1;
constexpr std::uint64_t kStreamRawSmall = 2;
constexpr std::uint64_t kStreamRawExact = 3;
constexpr std::uint64_t kStreamPhysical = 4;
constexpr std::uint64_t kStreamFallback = 5;

/// Oracle cost guard, same shape as brute_force_rank's internal one but
/// much tighter: C(n+m-1, m-1) ordered partitions.
double partition_count(std::size_t n, std::size_t m) {
  double result = 1.0;
  for (std::size_t i = 1; i < m; ++i) {
    result *= static_cast<double>(n + i) / static_cast<double>(i);
  }
  return result;
}

/// Reference-DP table size guard (mirrors reference_dp.cpp).
double reference_cells(std::size_t n, std::size_t m, int quanta) {
  return static_cast<double>(n + 1) * static_cast<double>(m) *
         static_cast<double>(quanta + 1) * static_cast<double>(n + 1);
}

/// Wire-granular expansion: every bunch becomes `count` one-wire bunches
/// (lengths stay non-increasing, plans are shared). The DP on this
/// instance is the comparison point for greedy on multi-count scenarios.
Instance expand_to_wires(const Scenario& s) {
  std::vector<Bunch> bunches;
  std::vector<std::vector<DelayPlan>> plans;
  for (std::size_t b = 0; b < s.bunches.size(); ++b) {
    for (std::int64_t k = 0; k < s.bunches[b].count; ++k) {
      bunches.push_back({s.bunches[b].length, 1, s.bunches[b].target_delay});
      plans.push_back(s.plans[b]);
    }
  }
  return Instance::from_raw(std::move(bunches), s.pairs, std::move(plans),
                            s.pair_capacity, s.repeater_budget, s.vias);
}

std::string full_precision(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

// --- scenario samplers ---------------------------------------------------------

/// Tiny raw instances over broad envelopes: the bread-and-butter family
/// where every engine (including the brute-force oracle) runs.
void sample_raw_small(util::Rng rng, Scenario& s) {
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 4));
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 8));
  const bool multi_count = rng.chance(0.3);
  const bool with_vias = rng.chance(0.6);
  // Shadow-dominant vias: a via cut costs more area than a wire track, so
  // packing engines must move whole wire groups (and may leave a pair
  // over-blocked even when empty). This regime once hid a free_pack bug —
  // keep it permanently in the sampled population.
  const bool shadow_vias = with_vias && rng.chance(0.25);
  // Per-scenario infeasibility density: all-feasible scenarios probe the
  // budget/capacity constraints, dense-infeasible ones probe the prefix
  // break logic.
  const double infeasible_p = rng.chance(0.3) ? 0.0 : rng.uniform(0.1, 0.5);

  std::vector<double> lengths;
  lengths.reserve(n);
  for (std::size_t i = 0; i < n; ++i) lengths.push_back(rng.uniform(1.0, 10.0));
  std::sort(lengths.rbegin(), lengths.rend());
  for (const double l : lengths) {
    s.bunches.push_back({l, multi_count ? rng.uniform_int(1, 3) : 1, 1.0});
  }

  for (std::size_t j = 0; j < m; ++j) {
    PairInfo p;
    p.name = "pair" + std::to_string(j);
    p.pitch = rng.uniform(0.3, 3.0);
    p.via_area = shadow_vias ? rng.uniform(0.5, 5.0)
                             : (with_vias ? rng.uniform(0.0, 0.08) : 0.0);
    p.s_opt = 1.0;
    p.repeater_area = rng.uniform(0.2, 1.5);
    s.pairs.push_back(p);
  }

  s.plans.assign(n, std::vector<DelayPlan>(m));
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t j = 0; j < m; ++j) {
      DelayPlan& plan = s.plans[b][j];
      plan.feasible = !rng.chance(infeasible_p);
      if (plan.feasible) {
        plan.stages = rng.uniform_int(1, 5);
        plan.delay = 0.9;
        plan.area_per_wire =
            static_cast<double>(plan.stages - 1) * s.pairs[j].repeater_area;
      }
    }
  }

  s.pair_capacity = rng.uniform(3.0, 40.0);
  s.repeater_budget = rng.chance(0.15) ? 0.0 : rng.uniform(0.0, 8.0);
  s.vias.vias_per_wire = with_vias ? 2.0 : 0.0;
  s.vias.vias_per_repeater = with_vias ? 1.0 : 0.0;
  constexpr int kQuanta[] = {16, 32, 64, 96, 128};
  s.ref_quanta = kQuanta[rng.pick(std::size(kQuanta))];

  std::ostringstream os;
  os << "raw-small m=" << m << " n=" << n << " vias=" << (with_vias ? 1 : 0)
     << " shadow_vias=" << (shadow_vias ? 1 : 0)
     << " infeasible_p=" << infeasible_p;
  s.provenance = os.str();
}

/// Integer-quantized raw instances: repeater areas are whole units, the
/// budget is a whole number of units, quanta == budget and vias are off —
/// the regime where the paper's discretized reference DP is provably
/// exact, so the reference-vs-dp contract tightens to equality.
void sample_raw_exact(util::Rng rng, Scenario& s) {
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 3));
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 6));

  std::vector<double> lengths;
  lengths.reserve(n);
  for (std::size_t i = 0; i < n; ++i) lengths.push_back(rng.uniform(1.0, 8.0));
  std::sort(lengths.rbegin(), lengths.rend());
  // One wire per bunch: wire and bunch granularity coincide, so the
  // reference-DP equality contract is provable (see check_scenario).
  for (const double l : lengths) {
    s.bunches.push_back({l, 1, 1.0});
  }

  for (std::size_t j = 0; j < m; ++j) {
    PairInfo p;
    p.name = "pair" + std::to_string(j);
    p.pitch = rng.uniform(0.3, 2.0);
    p.via_area = 0.0;
    p.s_opt = 1.0;
    p.repeater_area = 1.0;  // unit repeater area: quantization-exact
    s.pairs.push_back(p);
  }

  s.plans.assign(n, std::vector<DelayPlan>(m));
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t j = 0; j < m; ++j) {
      DelayPlan& plan = s.plans[b][j];
      plan.feasible = rng.chance(0.8);
      if (plan.feasible) {
        plan.stages = rng.uniform_int(1, 4);
        plan.delay = 0.9;
        plan.area_per_wire = static_cast<double>(plan.stages - 1);
      }
    }
  }

  const std::int64_t budget = rng.uniform_int(0, 8);
  s.pair_capacity = rng.uniform(2.0, 30.0);
  s.repeater_budget = static_cast<double>(budget);
  s.vias.vias_per_wire = 0.0;
  s.vias.vias_per_repeater = 0.0;
  s.ref_quanta = static_cast<int>(std::max<std::int64_t>(budget, 1));
  s.quantization_exact = true;

  std::ostringstream os;
  os << "raw-exact m=" << m << " n=" << n << " budget=" << budget;
  s.provenance = os.str();
}

/// Samples a WLD (synthetic generators, closed-form Davis, or Monte-Carlo
/// Davis), keeping group counts small enough that coarsening can hold the
/// bunch count in oracle range.
wld::Wld sample_wld(util::Rng& rng, std::int64_t gates, std::string& trail) {
  std::ostringstream os;
  switch (rng.uniform_int(0, 5)) {
    case 0: {
      const double min_len = rng.uniform(1.0, 10.0);
      const double max_len = min_len + rng.uniform(5.0, 100.0);
      const std::int64_t groups = rng.uniform_int(3, 8);
      const std::int64_t total = rng.uniform_int(20, 400);
      os << "uniform_spread(" << min_len << ", " << max_len << ", " << groups
         << ", " << total << ")";
      trail = os.str();
      return wld::uniform_spread(min_len, max_len, groups, total);
    }
    case 1: {
      const double max_len = rng.uniform(20.0, 200.0);
      const std::int64_t first = rng.uniform_int(1, 4);
      const double decay = rng.uniform(1.1, 2.0);
      const double shrink = rng.uniform(0.5, 0.9);
      const std::int64_t groups = rng.uniform_int(4, 8);
      os << "geometric(" << max_len << ", " << first << ", " << decay << ", "
         << shrink << ", " << groups << ")";
      trail = os.str();
      return wld::geometric(max_len, first, decay, shrink, groups);
    }
    case 2: {
      const std::int64_t max_len = rng.uniform_int(4, 12);
      const double scale = rng.uniform(5.0, 100.0);
      const double exponent = rng.uniform(1.2, 2.5);
      os << "power_law(" << max_len << ", " << scale << ", " << exponent << ")";
      trail = os.str();
      return wld::power_law(max_len, scale, exponent);
    }
    case 3: {
      const std::int64_t wires = rng.uniform_int(20, 300);
      const double mean = rng.uniform(2.0, 12.0);
      const double max_len = rng.uniform(8.0, 40.0);
      const std::uint64_t sub = rng.next();
      os << "sampled_exponential(" << wires << ", " << mean << ", " << max_len
         << ", " << sub << ")";
      trail = os.str();
      return wld::sampled_exponential(wires, mean, max_len, sub);
    }
    case 4: {
      wld::DavisParams params;
      params.gate_count = rng.uniform_int(16, 2000);
      params.rent_p = rng.uniform(0.45, 0.75);
      params.rent_k = rng.uniform(2.0, 6.0);
      params.avg_fanout = rng.uniform(2.0, 4.0);
      os << "davis(N=" << params.gate_count << ", p=" << params.rent_p
         << ", k=" << params.rent_k << ", fo=" << params.avg_fanout << ")";
      trail = os.str();
      return wld::DavisModel(params).generate();
    }
    default: {
      wld::DavisParams params;
      params.gate_count = std::max<std::int64_t>(gates / 10, 64);
      const std::int64_t wires = rng.uniform_int(50, 400);
      const std::uint64_t sub = rng.next();
      os << "davis_sample(N=" << params.gate_count << ", wires=" << wires
         << ", seed=" << sub << ")";
      trail = os.str();
      return wld::DavisModel(params).sample(wires, sub);
    }
  }
}

/// Full physical scenarios: a sampled technology stack and WLD run through
/// build_instance, then lowered to raw scenario form. Samples inside the
/// documented validity envelopes (tech::sampling_envelopes), half the time
/// starting from the calibrated paper regime.
void sample_physical(util::Rng rng, Scenario& s) {
  constexpr const char* kNodes[] = {"180nm", "130nm", "90nm"};
  const std::string node_name = kNodes[rng.pick(std::size(kNodes))];
  const std::int64_t gates = rng.uniform_int(1000, 100000);
  const bool regime = rng.chance(0.5);

  DesignSpec design;
  RankOptions options;
  std::ostringstream trail;
  trail << "physical node=" << node_name << " gates=" << gates;

  if (regime) {
    PaperRegime knobs;
    knobs.die_scale = rng.uniform(1.0, 8.0);
    knobs.device_ideality = std::pow(10.0, rng.uniform(-4.0, 0.0));
    knobs.repeater_cell_f2 = rng.uniform(4.0, 16.0);
    knobs.min_spacing_pitches = rng.uniform(0.0, 0.5);
    knobs.capacity_factor = rng.uniform(0.8, 2.0);
    const PaperSetup setup = paper_baseline(node_name, gates, knobs);
    design = setup.design;
    options = setup.options;
    trail << " regime(die_scale=" << knobs.die_scale
          << ", ideality=" << knobs.device_ideality << ")";
  } else {
    design.node = tech::node_by_name(node_name);
    design.gate_count = gates;
  }

  const tech::SamplingEnvelopes env = tech::sampling_envelopes(design.node);
  design.arch.global_pairs = static_cast<int>(
      rng.uniform_int(env.global_pairs.lo, env.global_pairs.hi));
  design.arch.semi_global_pairs = static_cast<int>(
      rng.uniform_int(env.semi_global_pairs.lo, env.semi_global_pairs.hi));
  design.arch.local_pairs = static_cast<int>(
      rng.uniform_int(env.local_pairs.lo, env.local_pairs.hi));
  design.arch.ild_height_factor =
      rng.uniform(env.ild_height_factor.lo, env.ild_height_factor.hi);

  options.ild_permittivity =
      rng.uniform(env.ild_permittivity.lo, env.ild_permittivity.hi);
  options.miller_factor =
      rng.uniform(env.miller_factor.lo, env.miller_factor.hi);
  options.clock_frequency =
      rng.uniform(env.clock_frequency.lo, env.clock_frequency.hi);
  options.repeater_fraction =
      rng.uniform(env.repeater_fraction.lo, env.repeater_fraction.hi);
  options.pair_capacity_factor =
      rng.uniform(env.pair_capacity_factor.lo, env.pair_capacity_factor.hi);
  options.cap_model = rng.chance(0.5) ? tech::CapacitanceModel::kSakuraiTamaru
                                      : tech::CapacitanceModel::kParallelPlate;
  constexpr delay::TargetModel kTargets[] = {
      delay::TargetModel::kLinear, delay::TargetModel::kSqrt,
      delay::TargetModel::kQuadratic, delay::TargetModel::kUniform};
  options.target_model = kTargets[rng.pick(std::size(kTargets))];
  if (rng.chance(0.25)) options.max_stages = rng.uniform_int(1, 6);
  if (rng.chance(0.3)) options.min_repeater_spacing *= rng.uniform(0.0, 2.0);
  options.charge_drivers = rng.chance(0.3);
  options.max_noise_ratio =
      rng.chance(0.3) ? rng.uniform(env.max_noise_ratio.lo, env.max_noise_ratio.hi)
                      : 1.0;
  if (rng.chance(0.3)) {
    options.vias.vias_per_wire = rng.uniform(0.0, 3.0);
    options.vias.vias_per_repeater = rng.uniform(0.0, 2.0);
  }

  std::string wld_trail;
  const wld::Wld w = sample_wld(rng, gates, wld_trail);
  trail << " arch=" << design.arch.global_pairs << "G+"
        << design.arch.semi_global_pairs << "S+" << design.arch.local_pairs
        << "L wld=" << wld_trail << " K=" << options.ild_permittivity
        << " M=" << options.miller_factor
        << " C=" << options.clock_frequency / util::units::MHz << "MHz"
        << " R=" << options.repeater_fraction
        << " target=" << delay::to_string(options.target_model);

  // Coarsen toward a bunch count every engine can handle; many-group WLDs
  // additionally get binned (paper footnote 7) before bunching.
  const std::int64_t target_bunches = rng.uniform_int(3, 10);
  options.bin_window =
      w.group_count() > 12
          ? w.max_length() / rng.uniform(5.0, 9.0)
          : (rng.chance(0.3) ? rng.uniform(0.0, 2.0) : 0.0);
  options.bunch_size =
      std::max<std::int64_t>(1, w.total_wires() / target_bunches);
  trail << " bunch_size=" << options.bunch_size
        << " bin_window=" << options.bin_window;

  Instance inst = build_instance(design, options, w);
  for (int attempt = 0; attempt < 6 && inst.bunch_count() > 12; ++attempt) {
    options.bunch_size *= 2;
    options.bin_window = std::max(options.bin_window, 1.0) * 1.5;
    inst = build_instance(design, options, w);
  }

  s.bunches = inst.bunches();
  s.pairs = inst.pairs();
  s.plans.assign(inst.bunch_count(),
                 std::vector<DelayPlan>(inst.pair_count()));
  for (std::size_t b = 0; b < inst.bunch_count(); ++b) {
    for (std::size_t j = 0; j < inst.pair_count(); ++j) {
      s.plans[b][j] = inst.plan(b, j);
    }
  }
  s.pair_capacity = inst.pair_capacity();
  s.repeater_budget = inst.repeater_budget();
  s.vias = inst.vias();
  constexpr int kQuanta[] = {32, 64, 96};
  s.ref_quanta = kQuanta[rng.pick(std::size(kQuanta))];
  s.provenance = trail.str();
}

}  // namespace

const char* to_string(ScenarioFamily family) {
  switch (family) {
    case ScenarioFamily::kRawSmall: return "raw-small";
    case ScenarioFamily::kRawExact: return "raw-exact";
    case ScenarioFamily::kPhysical: return "physical";
  }
  return "?";
}

Instance Scenario::instance() const {
  return Instance::from_raw(bunches, pairs, plans, pair_capacity,
                            repeater_budget, vias);
}

bool Scenario::wire_granular() const {
  return std::all_of(bunches.begin(), bunches.end(),
                     [](const Bunch& b) { return b.count == 1; });
}

std::string Scenario::describe() const {
  std::ostringstream os;
  os << "# selfcheck scenario\n";
  os << "seed = " << seed << "\n";
  os << "family = " << to_string(family) << "\n";
  os << "provenance = " << provenance << "\n";
  os << "ref_quanta = " << ref_quanta << "\n";
  os << "quantization_exact = " << (quantization_exact ? 1 : 0) << "\n";
  os << "pair_capacity = " << full_precision(pair_capacity) << "\n";
  os << "repeater_budget = " << full_precision(repeater_budget) << "\n";
  os << "vias_per_wire = " << full_precision(vias.vias_per_wire) << "\n";
  os << "vias_per_repeater = " << full_precision(vias.vias_per_repeater)
     << "\n";
  for (std::size_t j = 0; j < pairs.size(); ++j) {
    const PairInfo& p = pairs[j];
    os << "pair." << j << " = pitch:" << full_precision(p.pitch)
       << " via_area:" << full_precision(p.via_area)
       << " s_opt:" << full_precision(p.s_opt)
       << " repeater_area:" << full_precision(p.repeater_area)
       << " name:" << p.name << "\n";
  }
  for (std::size_t b = 0; b < bunches.size(); ++b) {
    const Bunch& bb = bunches[b];
    os << "bunch." << b << " = length:" << full_precision(bb.length)
       << " count:" << bb.count
       << " target_delay:" << full_precision(bb.target_delay) << "\n";
    for (std::size_t j = 0; j < plans[b].size(); ++j) {
      const DelayPlan& p = plans[b][j];
      os << "plan." << b << "." << j << " = feasible:" << (p.feasible ? 1 : 0);
      if (p.feasible) {
        os << " stages:" << p.stages << " delay:" << full_precision(p.delay)
           << " area_per_wire:" << full_precision(p.area_per_wire);
      }
      os << "\n";
    }
  }
  return os.str();
}

Scenario sample_scenario(std::uint64_t seed) {
  util::Rng rng(seed);
  Scenario s;
  s.seed = seed;
  const double f = rng.fork(kStreamFamily).uniform01();
  if (f < 0.40) {
    s.family = ScenarioFamily::kRawSmall;
    sample_raw_small(rng.fork(kStreamRawSmall), s);
  } else if (f < 0.65) {
    s.family = ScenarioFamily::kRawExact;
    sample_raw_exact(rng.fork(kStreamRawExact), s);
  } else {
    s.family = ScenarioFamily::kPhysical;
    try {
      sample_physical(rng.fork(kStreamPhysical), s);
    } catch (const util::Error&) {
      // A sampled physical point outside the buildable regime falls back
      // to a raw scenario — deterministically, from its own substream.
      s = Scenario{};
      s.seed = seed;
      s.family = ScenarioFamily::kRawSmall;
      sample_raw_small(rng.fork(kStreamFallback), s);
      s.provenance += " (physical point unbuildable; raw fallback)";
    }
  }
  return s;
}

ScenarioCheck check_scenario(const Scenario& scenario) {
  ScenarioCheck check;
  const auto fail = [&check](const std::string& message) {
    if (check.ok) {
      check.ok = false;
      check.mismatch = message;
    }
  };

  try {
    const Instance inst = scenario.instance();

    const RankResult dp = dp_rank(inst);                  // refinement on
    const RankResult dpb = dp_rank(inst, {true, false});  // bunch-granular
    const RankResult greedy = greedy_rank(inst);
    check.dp = dp.rank;
    check.dp_bunch = dpb.rank;
    check.greedy = greedy.rank;

    // Per-engine invariants + independent certificate validation.
    const auto audit = [&](const char* name, const RankResult& r) {
      std::ostringstream os;
      if (r.rank < 0 || r.rank > inst.total_wires()) {
        os << name << ": rank " << r.rank << " outside [0, "
           << inst.total_wires() << "]";
        fail(os.str());
        return;
      }
      if (!r.all_assigned && r.rank != 0) {
        os << name << ": infeasible result with rank " << r.rank;
        fail(os.str());
        return;
      }
      if (inst.total_wires() > 0) {
        const double expected = static_cast<double>(r.rank) /
                                static_cast<double>(inst.total_wires());
        if (std::abs(r.normalized - expected) > 1e-9) {
          os << name << ": normalized " << r.normalized << " != " << expected;
          fail(os.str());
          return;
        }
      }
      if (r.repeater_area_used >
          inst.repeater_budget() * (1.0 + 1e-6) + 1e-18) {
        os << name << ": repeater area " << r.repeater_area_used
           << " over budget " << inst.repeater_budget();
        fail(os.str());
        return;
      }
      const VerifyOutcome verdict = verify_placements(inst, r);
      if (!verdict.ok) {
        os << name << " certificate: " << verdict.failure;
        fail(os.str());
      }
    };
    audit("dp", dp);
    audit("dp[no-refine]", dpb);
    audit("greedy", greedy);

    // Pairwise contracts (DESIGN.md Section 6 table).
    if (dpb.rank > dp.rank) {
      fail("refinement lowered the dp rank: " + std::to_string(dp.rank) +
           " < " + std::to_string(dpb.rank));
    }
    if (dpb.all_assigned != dp.all_assigned) {
      fail("dp refinement flipped all_assigned");
    }
    if (greedy.all_assigned && !dp.all_assigned) {
      fail("greedy packed an instance the dp calls infeasible");
    }

    const bool wire_granular = scenario.wire_granular();

    // greedy <= dp (the paper's Figure 2 claim). Greedy splits bunches
    // wire-by-wire, so on multi-count scenarios the comparison point is
    // the DP on the wire-granular *expansion* of the instance (one bunch
    // per wire) — the bunch-granular DP can legitimately fall below
    // greedy there.
    if (wire_granular) {
      if (greedy.rank > dp.rank) {
        fail("greedy exceeds dp: " + std::to_string(greedy.rank) + " > " +
             std::to_string(dp.rank));
      }
    } else if (inst.total_wires() <= 300) {
      const Instance expanded = expand_to_wires(scenario);
      const RankResult dpw = dp_rank(expanded);
      const auto wverdict = verify_placements(expanded, dpw);
      if (!wverdict.ok) fail("dp[wire] certificate: " + wverdict.failure);
      if (greedy.rank > dpw.rank) {
        fail("greedy exceeds wire-granular dp: " +
             std::to_string(greedy.rank) + " > " + std::to_string(dpw.rank));
      }
      if (dp.rank > dpw.rank) {
        fail("bunch-granular dp exceeds wire-granular dp: " +
             std::to_string(dp.rank) + " > " + std::to_string(dpw.rank));
      }
      // Feasibility is a wire-level property; bunching cannot change it.
      if (dpw.all_assigned != dp.all_assigned) {
        fail("wire-granular expansion flipped all_assigned");
      }
    }

    const std::size_t n = inst.bunch_count();
    const std::size_t m = inst.pair_count();

    if (partition_count(n, m) < 1e5) {
      const RankResult brute = brute_force_rank(inst);
      check.brute = brute.rank;
      check.brute_checked = true;
      if (wire_granular) {
        if (brute.rank != dpb.rank) {
          fail("oracle disagrees with dp: brute=" +
               std::to_string(brute.rank) +
               " dp[no-refine]=" + std::to_string(dpb.rank));
        }
        if (brute.all_assigned != dpb.all_assigned) {
          fail("oracle disagrees with dp on feasibility");
        }
      } else {
        // The oracle packs the non-critical suffix at bunch granularity
        // while the dp packs it wire-by-wire, so only a bound applies.
        if (brute.rank > dpb.rank) {
          fail("oracle exceeds dp: brute=" + std::to_string(brute.rank) +
               " dp[no-refine]=" + std::to_string(dpb.rank));
        }
        if (brute.all_assigned && !dpb.all_assigned) {
          fail("oracle packed an instance the dp calls infeasible");
        }
      }
    }

    if (reference_cells(n, m, scenario.ref_quanta) < 5e7) {
      const RankResult ref =
          reference_dp_rank(inst, {scenario.ref_quanta});
      check.reference = ref.rank;
      check.reference_checked = true;
      // ref <= dp holds when quantization is the only approximation
      // (rounding repeater area up only restricts). When repeater vias
      // meet nonzero via areas, the paper's Eq. 5 reconstructs repeater
      // *count* from quantized area over the blocked pair's repeater
      // size; that can under- as well as overestimate blockage, so no
      // ordering is provable there (DESIGN.md Section 6).
      const bool rep_blockage_exact =
          scenario.vias.vias_per_repeater == 0.0 ||
          std::all_of(scenario.pairs.begin(), scenario.pairs.end(),
                      [](const PairInfo& p) { return p.via_area == 0.0; });
      if (rep_blockage_exact && ref.rank > dpb.rank) {
        fail("reference dp exceeds dp: ref=" + std::to_string(ref.rank) +
             " dp[no-refine]=" + std::to_string(dpb.rank));
      }
      if (scenario.quantization_exact && ref.rank != dpb.rank) {
        fail("exact-quantization reference dp mismatch: ref=" +
             std::to_string(ref.rank) +
             " dp[no-refine]=" + std::to_string(dpb.rank));
      }
      // The reference DP's witness is a valid assignment, so it can never
      // call an infeasible instance feasible; the converse only binds on
      // wire-granular scenarios (its chunk structure is bunch-granular,
      // like the oracle's).
      if (ref.all_assigned && !dpb.all_assigned) {
        fail("reference dp packed an instance the dp calls infeasible");
      }
      if (wire_granular && ref.all_assigned != dpb.all_assigned) {
        fail("reference dp disagrees with dp on feasibility");
      }
      // Convergence: a coarser quantization can never gain rank.
      const int coarse_quanta = std::max(1, scenario.ref_quanta / 4);
      if (coarse_quanta < scenario.ref_quanta) {
        const RankResult coarse = reference_dp_rank(inst, {coarse_quanta});
        if (coarse.rank > ref.rank) {
          fail("reference dp not monotone in quanta: " +
               std::to_string(coarse.rank) + " @" +
               std::to_string(coarse_quanta) + " > " +
               std::to_string(ref.rank) + " @" +
               std::to_string(scenario.ref_quanta));
        }
      }
    }
  } catch (const std::exception& e) {
    fail(std::string("engine exception: ") + e.what());
  }
  return check;
}

Scenario shrink_scenario(
    const Scenario& scenario,
    const std::function<bool(const Scenario&)>& still_fails_in) {
  const auto still_fails =
      still_fails_in
          ? still_fails_in
          : std::function<bool(const Scenario&)>(
                [](const Scenario& s) { return !check_scenario(s).ok; });
  Scenario best = scenario;
  if (!still_fails(best)) return best;

  const auto drop_pair = [](Scenario s, std::size_t j) {
    s.pairs.erase(s.pairs.begin() + static_cast<std::ptrdiff_t>(j));
    for (auto& row : s.plans) {
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(j));
    }
    return s;
  };
  const auto drop_bunch = [](Scenario s, std::size_t b) {
    s.bunches.erase(s.bunches.begin() + static_cast<std::ptrdiff_t>(b));
    s.plans.erase(s.plans.begin() + static_cast<std::ptrdiff_t>(b));
    return s;
  };

  bool changed = true;
  while (changed) {
    changed = false;

    for (std::size_t b = 0; best.bunches.size() > 1 && b < best.bunches.size();) {
      const Scenario candidate = drop_bunch(best, b);
      if (still_fails(candidate)) {
        best = candidate;
        changed = true;
      } else {
        ++b;
      }
    }

    for (std::size_t j = 0; best.pairs.size() > 1 && j < best.pairs.size();) {
      const Scenario candidate = drop_pair(best, j);
      if (still_fails(candidate)) {
        best = candidate;
        changed = true;
      } else {
        ++j;
      }
    }

    for (std::size_t b = 0; b < best.bunches.size(); ++b) {
      if (best.bunches[b].count <= 1) continue;
      Scenario candidate = best;
      candidate.bunches[b].count = 1;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        changed = true;
      }
    }

    const bool has_vias =
        best.vias.vias_per_wire > 0.0 || best.vias.vias_per_repeater > 0.0 ||
        std::any_of(best.pairs.begin(), best.pairs.end(),
                    [](const PairInfo& p) { return p.via_area > 0.0; });
    if (has_vias) {
      Scenario candidate = best;
      candidate.vias.vias_per_wire = 0.0;
      candidate.vias.vias_per_repeater = 0.0;
      for (PairInfo& p : candidate.pairs) p.via_area = 0.0;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        changed = true;
      }
    }

    for (std::size_t b = 0; b < best.bunches.size(); ++b) {
      for (std::size_t j = 0; j < best.pairs.size(); ++j) {
        if (!best.plans[b][j].feasible) continue;
        Scenario candidate = best;
        candidate.plans[b][j] = DelayPlan{};
        if (still_fails(candidate)) {
          best = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  return best;
}

// Per-seed check wall time (scheduling-dependent; excluded from the
// determinism contract, included so long runs expose their tail).
util::Histogram& kSelfCheckSeedSeconds = util::MetricsRegistry::histogram(
    "iarank_selfcheck_seed_seconds", util::Histogram::duration_bounds(),
    "wall time per selfcheck seed");
util::Counter& kSelfCheckSeeds = util::MetricsRegistry::counter(
    "iarank_selfcheck_seeds_total", "selfcheck seeds evaluated (not resumed)");

SelfCheckReport run_selfcheck(std::int64_t count,
                              const SelfCheckOptions& options,
                              util::ThreadPool* pool) {
  TRACE_SPAN("selfcheck");
  SelfCheckReport report;
  if (count <= 0) return report;
  util::ThreadPool& workers = pool ? *pool : util::ThreadPool::shared();

  std::vector<ScenarioCheck> checks(static_cast<std::size_t>(count));
  std::vector<char> done(static_cast<std::size_t>(count), 0);

  // Checkpoint/resume: recover already-checked seeds, journal new ones.
  // check_scenario is deterministic per seed, so a resumed report is
  // identical to an uninterrupted one.
  std::unique_ptr<util::CheckpointJournal> journal;
  if (!options.checkpoint_path.empty()) {
    util::CheckpointJournal::Options jopt;
    jopt.fsync_each_append = options.fsync_checkpoint;
    journal = std::make_unique<util::CheckpointJournal>(
        options.checkpoint_path,
        selfcheck_checkpoint_key(count, options.first_seed), jopt);
    for (const auto& [index, payload] : journal->entries()) {
      if (index < 0 || index >= count) continue;
      ScenarioCheck check;
      if (!decode_scenario_check(payload, check)) continue;
      const auto i = static_cast<std::size_t>(index);
      checks[i] = std::move(check);
      done[i] = 1;
      ++report.resumed;
    }
  }

  std::vector<double> seed_seconds(static_cast<std::size_t>(count), -1.0);
  workers.parallel_for(static_cast<std::size_t>(count), options.parallelism,
                       [&](std::size_t i) {
                         if (done[i]) return;
                         TRACE_SPAN("selfcheck.seed");
                         util::Stopwatch timer;
                         checks[i] = check_scenario(sample_scenario(
                             options.first_seed + i));
                         seed_seconds[i] = timer.seconds();
                         kSelfCheckSeedSeconds.observe(seed_seconds[i]);
                         kSelfCheckSeeds.inc();
                         if (journal) {
                           journal->append(static_cast<std::int64_t>(i),
                                           encode_scenario_check(checks[i]));
                         }
                       });

  std::vector<double> evaluated;
  evaluated.reserve(seed_seconds.size());
  for (const double t : seed_seconds) {
    if (t >= 0.0) evaluated.push_back(t);
  }
  const util::TimingSummary timing = util::summarize_timings(evaluated);
  report.seed_seconds_p50 = timing.p50;
  report.seed_seconds_p95 = timing.p95;
  report.seed_seconds_max = timing.max;

  report.scenarios = count;
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const ScenarioCheck& check = checks[i];
    if (check.brute_checked) ++report.brute_checked;
    if (check.reference_checked) ++report.reference_checked;
    if (check.ok || report.failures.size() >= options.max_failures) continue;
    const std::uint64_t seed = options.first_seed + i;
    SelfCheckFailure failure;
    failure.seed = seed;
    failure.mismatch = check.mismatch;
    const Scenario original = sample_scenario(seed);
    failure.shrunk =
        options.shrink ? shrink_scenario(original) : original;
    report.failures.push_back(std::move(failure));
  }
  return report;
}

}  // namespace iarank::core
