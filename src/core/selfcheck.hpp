/// \file selfcheck.hpp
/// \brief Differential self-check harness across all four rank engines.
///
/// The paper's central claim is that the DP computes rank *exactly* while
/// greedy assignment is provably suboptimal (Figure 2). The repo therefore
/// carries four engines with provable pairwise contracts:
///
///  * `dp_rank` (bunch-granular, no refinement) equals `brute_force_rank`
///    on wire-granular instances, and never falls below it otherwise;
///  * `reference_dp_rank` (paper Alg. 1-3, conservative area quantization)
///    is a lower bound on the DP, exact when the quantization is;
///  * `greedy_rank` never exceeds the DP;
///  * every engine's certificate re-validates under `verify_placements`.
///
/// This module turns those contracts into a randomized differential test:
/// a deterministic scenario sampler (seeded `util::Rng`, validity
/// envelopes from `tech::sampling_envelopes`) draws raw engine-level
/// instances and full physical stacks (tech node + WLD + RankOptions ->
/// build_instance), a checker runs every applicable engine pair, and a
/// greedy shrinker minimizes any mismatching scenario before printing a
/// copy-pasteable repro (seed + full-precision instance dump).
///
/// Exposed as `rank_tool selfcheck <seeds> [--shrink]`, as the tier-1
/// tests in tests/test_differential.cpp, and as the bench_selfcheck
/// throughput target. The engine-equivalence contracts are tabulated in
/// DESIGN.md Section 6.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/instance.hpp"
#include "src/util/thread_pool.hpp"

namespace iarank::core {

/// How a scenario was sampled (which contracts apply follows from the
/// instance itself, not the family; the family steers the envelopes).
enum class ScenarioFamily {
  kRawSmall,   ///< tiny raw instance, wire-granular, brute-forceable
  kRawExact,   ///< unit-quantized repeater areas: reference DP is exact
  kPhysical,   ///< sampled tech stack + WLD + RankOptions -> build_instance
};

[[nodiscard]] const char* to_string(ScenarioFamily family);

/// One sampled differential scenario: the frozen assignment problem every
/// engine consumes, plus the contract knobs. Holds the *raw* instance data
/// (physical scenarios are lowered to raw form after build_instance) so
/// one shrinker and one printer cover every family.
struct Scenario {
  std::uint64_t seed = 0;
  ScenarioFamily family = ScenarioFamily::kRawSmall;
  std::string provenance;  ///< human-readable sampling trail (node, WLD, ...)

  std::vector<Bunch> bunches;
  std::vector<PairInfo> pairs;
  std::vector<std::vector<DelayPlan>> plans;  ///< [bunch][pair]
  double pair_capacity = 0.0;
  double repeater_budget = 0.0;
  tech::ViaSpec vias;

  int ref_quanta = 64;  ///< area quanta for the reference-DP contract
  /// True when the quantization provably loses nothing (integer areas,
  /// quantum 1, no via coupling): reference DP must then match the DP
  /// exactly instead of lower-bounding it.
  bool quantization_exact = false;

  /// Materializes the Instance (throws util::Error on malformed data —
  /// cannot happen for sampled scenarios).
  [[nodiscard]] Instance instance() const;

  /// True when every bunch holds exactly one wire, i.e. bunch and wire
  /// granularity coincide and the brute-force contract is an equality.
  [[nodiscard]] bool wire_granular() const;

  /// Copy-pasteable repro: `key = value` lines with full double precision,
  /// restorable scenario-for-scenario. Printed on mismatch.
  [[nodiscard]] std::string describe() const;
};

/// Draws the scenario for `seed`. Deterministic and platform-independent:
/// the same seed always yields the identical scenario (see util::Rng).
[[nodiscard]] Scenario sample_scenario(std::uint64_t seed);

/// Outcome of checking one scenario against every applicable contract.
struct ScenarioCheck {
  bool ok = true;
  std::string mismatch;  ///< first violated contract (empty when ok)

  // Headline ranks, -1 when the engine was not run on this scenario.
  std::int64_t dp = -1;         ///< dp_rank, boundary refinement on
  std::int64_t dp_bunch = -1;   ///< dp_rank, refinement off
  std::int64_t greedy = -1;
  std::int64_t brute = -1;
  std::int64_t reference = -1;

  bool brute_checked = false;
  bool reference_checked = false;
};

/// Runs every engine the scenario is small enough for and cross-checks
/// the contracts listed in the file header. Never throws: an engine
/// exception is itself reported as a mismatch.
[[nodiscard]] ScenarioCheck check_scenario(const Scenario& scenario);

/// Greedy scenario minimization: repeatedly tries to drop bunches and
/// pairs, collapse bunch counts to one wire, zero the via coupling and
/// simplify plans, keeping each mutation only while `still_fails` holds.
/// The default predicate is `!check_scenario(s).ok`. Deterministic;
/// terminates (every accepted mutation strictly shrinks the scenario).
[[nodiscard]] Scenario shrink_scenario(
    const Scenario& scenario,
    const std::function<bool(const Scenario&)>& still_fails = {});

/// One mismatch as reported by the sweep driver.
struct SelfCheckFailure {
  std::uint64_t seed = 0;
  std::string mismatch;     ///< violated contract of the original scenario
  Scenario shrunk;          ///< minimized repro (== original when not shrunk)
};

/// Aggregate of a seed sweep.
struct SelfCheckReport {
  std::int64_t scenarios = 0;
  std::int64_t brute_checked = 0;      ///< scenarios the oracle also ran on
  std::int64_t reference_checked = 0;  ///< scenarios the reference DP ran on
  std::int64_t resumed = 0;            ///< scenarios recovered from checkpoint
  std::vector<SelfCheckFailure> failures;

  /// Per-seed check wall time over the seeds evaluated this run (resumed
  /// seeds cost no work and are excluded). Exact order statistics from
  /// the sorted per-seed samples; all zero when every seed was resumed.
  double seed_seconds_p50 = 0.0;
  double seed_seconds_p95 = 0.0;
  double seed_seconds_max = 0.0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Sweep knobs for run_selfcheck.
struct SelfCheckOptions {
  std::uint64_t first_seed = 0;
  bool shrink = true;          ///< minimize failures before reporting
  std::size_t max_failures = 8;  ///< stop collecting (not checking) beyond
  unsigned parallelism = 0;    ///< thread-pool fan-out; 0 = all workers

  /// Journaled checkpoint/resume (util::CheckpointJournal), keyed by the
  /// seed range. Every checked scenario is appended; a rerun after a
  /// crash re-checks only the missing seeds and reports identically to an
  /// uninterrupted run (check_scenario is deterministic per seed).
  std::string checkpoint_path;

  /// fsync per appended record. Off by default: selfcheck appends at a
  /// much higher rate than a sweep, and the CRC guard already bounds a
  /// crash's damage to the records the kernel had not written back.
  bool fsync_checkpoint = false;
};

/// Checks seeds [first_seed, first_seed + count) over `pool` (the shared
/// pool when null). Results are deterministic regardless of parallelism.
[[nodiscard]] SelfCheckReport run_selfcheck(std::int64_t count,
                                            const SelfCheckOptions& options = {},
                                            util::ThreadPool* pool = nullptr);

}  // namespace iarank::core
