/// \file report.hpp
/// \brief CSV export of rank results and sweeps — the bridge from bench
///        output to plotting scripts and regression artefacts.

#pragma once

#include <iosfwd>
#include <string>

#include "src/core/rank_result.hpp"
#include "src/core/sweep.hpp"

namespace iarank::core {

/// Writes one result as `key,value` rows (rank, normalized, repeaters,
/// repeater_area, all_assigned, per-pair usage rows).
void write_result_csv(std::ostream& os, const RankResult& result);

/// Writes a sweep as `value,normalized_rank,rank,repeaters` rows with a
/// header naming the swept parameter.
void write_sweep_csv(std::ostream& os, const SweepResult& sweep);

/// File variants; throw util::Error when the file cannot be opened.
void save_result_csv(const std::string& path, const RankResult& result);
void save_sweep_csv(const std::string& path, const SweepResult& sweep);

}  // namespace iarank::core
