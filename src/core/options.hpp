/// \file options.hpp
/// \brief User-facing knobs of a rank computation.
///
/// The four headline parameters of the paper's Table 4 sweep — ILD
/// permittivity K, Miller coupling factor M, target clock frequency C and
/// repeater area fraction R — live here, next to the modelling options
/// (capacitance model, target-delay model, via accounting, coarsening).

#pragma once

#include <cstdint>
#include <optional>

#include "src/delay/model.hpp"
#include "src/delay/target.hpp"
#include "src/tech/architecture.hpp"
#include "src/tech/node.hpp"
#include "src/tech/rc.hpp"
#include "src/tech/via.hpp"
#include "src/util/units.hpp"

namespace iarank::core {

/// The design under evaluation: node + layer stack + size.
struct DesignSpec {
  tech::TechNode node;                ///< process node (Table 3)
  tech::ArchitectureSpec arch;        ///< layer-pair stack (Table 2 baseline)
  std::int64_t gate_count = 1000000;  ///< N (paper: 1M / 4M / 10M)

  /// Throws util::Error via member validators.
  void validate() const;
};

/// All tunable parameters of one rank evaluation. Defaults reproduce the
/// paper's Table 2 baseline for the 130 nm / 1M gate design.
struct RankOptions {
  // --- Table 4 sweep parameters -------------------------------------------
  double ild_permittivity = 3.9;  ///< K
  double miller_factor = 2.0;     ///< M
  double clock_frequency = 500.0 * util::units::MHz;  ///< C (f_c)
  double repeater_fraction = 0.4;                     ///< R (of die area)

  // --- Modelling choices -----------------------------------------------------
  tech::CapacitanceModel cap_model = tech::CapacitanceModel::kSakuraiTamaru;
  delay::TargetModel target_model = delay::TargetModel::kLinear;
  delay::SwitchingConstants switching;  ///< a = 0.4, b = 0.7
  tech::ViaSpec vias;                   ///< via blockage accounting

  /// Optional global cap on stages per wire; nullopt lets insertion run to
  /// the delay-optimal stage count.
  std::optional<std::int64_t> max_stages = std::nullopt;

  /// Minimum spacing between consecutive repeaters [m]. Caps a length-l
  /// wire at floor(l / spacing) stages — the paper's Section 4.1 stopping
  /// rule "repeaters cannot be placed at appropriate intervals". 0
  /// disables the constraint. This is what makes high target clocks
  /// unattainable for short wires (the paper's Table 4 C-column plateaus).
  double min_repeater_spacing = 0.0;

  /// Paper footnote 3 extension: when true, the *driver* of each
  /// delay-met wire is also charged against the repeater area budget
  /// (stage count eta instead of eta - 1 cells of size s_opt,j) —
  /// reconciling implied driver sizing with the gate-area budget, which
  /// the paper explicitly leaves to future work. Drivers sit at the
  /// source gate, so via accounting is unchanged.
  bool charge_drivers = false;

  /// Crosstalk budget: layer-pairs whose charge-sharing noise ratio
  /// (tech::coupling_noise_ratio) exceeds this cannot carry delay-met
  /// wires — they may still hold non-critical wires in the packing
  /// phase. 1.0 disables the constraint (the paper's behaviour).
  double max_noise_ratio = 1.0;

  /// Routing capacity of one layer-pair, as a multiple of the die area.
  /// A pair has two orthogonal routing layers, so the physical capacity
  /// is 2 x A_d (an L-shaped wire's two segments land one per layer);
  /// vias are charged against both layers symmetrically. Set to 1.0 for
  /// the paper's literal B_j = A_d accounting (which corresponds to 50%
  /// per-layer utilization).
  double pair_capacity_factor = 2.0;

  // --- Coarsening (paper Section 5.1 / footnote 7) ---------------------------
  std::int64_t bunch_size = 10000;  ///< max wires per assignment unit
  double bin_window = 0.0;          ///< binning window [pitches]; 0 = off

  /// When true, after the DP finds the optimal bunch-granular prefix, try
  /// to extend the prefix into the first failing bunch wire-by-wire with
  /// the leftover repeater area (reduces the bunching error; extension
  /// beyond the paper).
  bool refine_boundary = true;

  /// Throws util::Error for out-of-range values.
  void validate() const;
};

}  // namespace iarank::core
