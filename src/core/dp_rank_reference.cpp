/// \file dp_rank_reference.cpp
/// \brief The retained scalar reference DP kernel (the pre-v2 solver).
///
/// This is the v1 sweep-line solver, kept verbatim as the oracle the
/// data-oriented kernel in dp_rank.cpp is pinned against: nested-vector
/// frontiers, AoS nodes, a std::priority_queue, per-solve heap
/// allocation. The property suite in tests/test_dp_kernel.cpp requires
/// dp_rank() to match this path bitwise — rank, witness, placements AND
/// the deterministic effort counters — over hundreds of seeded scenarios,
/// in every option combination. It publishes nothing to the process
/// metrics registry and traces nothing: it exists only to be compared
/// against (DESIGN.md Section 10.5).
///
/// Do not optimize this file. Its value is being boring.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "src/core/dp_rank.hpp"
#include "src/core/free_pack.hpp"
#include "src/util/error.hpp"
#include "src/util/stopwatch.hpp"

namespace iarank::core {

namespace {

constexpr double kRelTol = 1e-9;

/// One Pareto-frontier element: repeater area and count consumed by the
/// delay-met prefix placed on pairs 0..level-1, plus reconstruction links.
struct Node {
  double r = 0.0;        ///< repeater area used [m^2]
  std::int64_t z = 0;    ///< repeater count used
  std::int32_t parent = -1;  ///< arena index of the predecessor
  std::int32_t c = 0;    ///< bunches assigned to the previous pair
};

/// Frontier entry: the Pareto key duplicated next to the arena index.
struct FrontEntry {
  double r = 0.0;
  std::int64_t z = 0;
  std::int32_t idx = -1;  ///< arena index of the full node
};

/// A chunk source in the forward sweep line (see dp_rank.cpp for the
/// target-independence argument that underlies the active Pareto set).
struct ActiveSource {
  double kr = 0.0;           ///< r - prefix_repeater_area at the source bucket
  std::int64_t kz = 0;       ///< z - prefix_repeater_count at the source bucket
  std::int64_t end = 0;      ///< last admissible target bucket, inclusive
  std::int64_t b = 0;        ///< source bucket (chunk length at t is t - b)
  std::int32_t parent = -1;  ///< arena index of the source node
};

/// Heap entry: either an unverified iterator positioned at its best
/// remaining break point, or a verified candidate.
struct HeapEntry {
  std::int64_t key = 0;  ///< upper bound (optimistic) or exact (verified) rank
  bool verified = false;
  std::int32_t node = -1;  ///< arena index of the state element
  std::int32_t j = 0;      ///< break pair
  std::int64_t b = 0;      ///< first bunch of pair j's chunk
  std::int64_t c = 0;      ///< delay-met bunches on pair j
  std::int64_t w_extra = 0;  ///< refined wires (verified entries only)
};

/// Strict total order: no two live entries compare equivalent, so the pop
/// sequence is the fully sorted order regardless of heap layout.
struct HeapCmp {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.key != b.key) return a.key < b.key;  // max-heap on rank
    if (a.verified != b.verified) return a.verified < b.verified;
    if (a.node != b.node) return a.node > b.node;  // older state first
    return a.c < b.c;                              // longer chunk first
  }
};

/// Cumulative cost of placing bunches b..b+c-1, all meeting delay, on
/// pair j.
struct ChunkCost {
  double wire_area = 0.0;
  double rep_area = 0.0;
  std::int64_t rep_count = 0;
  bool ok = true;
};

class ReferenceSolver {
 public:
  ReferenceSolver(const Instance& inst, const DpOptions& opt)
      : inst_(inst), opt_(opt), m_(inst.pair_count()),
        n_bunches_(static_cast<std::int64_t>(inst.bunch_count())) {}

  RankResult solve();

 private:
  const Instance& inst_;
  const DpOptions& opt_;
  const std::size_t m_;
  const std::int64_t n_bunches_;

  std::vector<Node> arena_;
  std::vector<std::vector<std::vector<FrontEntry>>> levels_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp> heap_;
  RankResult::DpStats stats_;

  std::int64_t warm_bound_ = std::numeric_limits<std::int64_t>::min();
  std::int64_t incumbent_ = std::numeric_limits<std::int64_t>::min();

  [[nodiscard]] double budget_tol() const {
    return inst_.repeater_budget() * kRelTol + 1e-30;
  }
  [[nodiscard]] double area_tol() const {
    return inst_.pair_capacity() * kRelTol;
  }

  std::vector<ActiveSource> actives_;
  std::vector<std::vector<ActiveSource>> wakes_;
  std::vector<Node> chunk_cands_;
  std::vector<Node> c0_cands_;
  std::vector<Node> merged_;

  [[nodiscard]] ChunkCost chunk_cost(std::int64_t b, std::size_t j,
                                     std::int64_t c, double base_r,
                                     double capacity) const;
  void activate(const ActiveSource& s);
  void merge_and_materialize(std::size_t level, std::size_t t);
  void forward_pass();
  void try_warm_start();
  void push_iterator(std::int32_t node, std::size_t j, std::int64_t b,
                     std::int64_t c);
  [[nodiscard]] std::int64_t refine_extra(std::size_t j, std::int64_t b,
                                          std::int64_t c, double node_r,
                                          const ChunkCost& cost,
                                          double capacity) const;
  [[nodiscard]] std::optional<HeapEntry> verify(const HeapEntry& e) const;
  [[nodiscard]] FreePackInput pack_input(std::size_t j, std::int64_t b,
                                         std::int64_t c, std::int64_t node_z,
                                         const ChunkCost& cost,
                                         std::int64_t w_extra) const;
  [[nodiscard]] RankResult assemble(const HeapEntry& best) const;
};

ChunkCost ReferenceSolver::chunk_cost(std::int64_t b, std::size_t j,
                                      std::int64_t c, double base_r,
                                      double capacity) const {
  ChunkCost cost;
  if (c <= 0) return cost;
  const auto bb = static_cast<std::size_t>(b);
  const auto cc = static_cast<std::size_t>(c);
  if (inst_.first_infeasible(j, bb) < bb + cc) {
    cost.ok = false;
    return cost;
  }
  const Instance::ChunkTotals totals = inst_.chunk_totals(j, bb, cc);
  cost.wire_area = totals.wire_area;
  cost.rep_area = totals.rep_area;
  cost.rep_count = totals.rep_count;
  if (cost.wire_area > capacity + area_tol() ||
      base_r + cost.rep_area > inst_.repeater_budget() + budget_tol()) {
    cost.ok = false;
  }
  return cost;
}

std::int64_t ReferenceSolver::refine_extra(std::size_t j, std::int64_t b,
                                           std::int64_t c, double node_r,
                                           const ChunkCost& cost,
                                           double capacity) const {
  if (!opt_.refine_boundary || b + c >= n_bunches_) return 0;
  const auto bb = static_cast<std::size_t>(b + c);
  const DelayPlan& plan = inst_.plan(bb, j);
  if (!plan.feasible) return 0;
  const Bunch& bunch = inst_.bunch(bb);
  std::int64_t by_budget = bunch.count;
  if (plan.area_per_wire > 0.0) {
    const double left =
        inst_.repeater_budget() + budget_tol() - node_r - cost.rep_area;
    by_budget = left <= 0.0
                    ? 0
                    : static_cast<std::int64_t>(
                          std::floor(left / plan.area_per_wire));
  }
  const double area_left = capacity + area_tol() - cost.wire_area;
  const double per_wire = bunch.length * inst_.pair(j).pitch;
  const auto by_area = static_cast<std::int64_t>(
      std::floor(std::max(0.0, area_left) / per_wire));
  return std::clamp<std::int64_t>(std::min(by_budget, by_area), 0,
                                  bunch.count);
}

void ReferenceSolver::push_iterator(std::int32_t node, std::size_t j,
                                    std::int64_t b, std::int64_t c) {
  const Node& nd = arena_[static_cast<std::size_t>(node)];
  const std::int64_t base =
      inst_.wires_before(static_cast<std::size_t>(std::min(b + c, n_bunches_)));
  std::int64_t key = base;
  if (opt_.refine_boundary && b + c < n_bunches_) {
    const double wires_above =
        static_cast<double>(inst_.wires_before(static_cast<std::size_t>(b)));
    const double capacity =
        inst_.pair_capacity() -
        inst_.blockage(j, wires_above, static_cast<double>(nd.z));
    ChunkCost cost;
    if (c > 0) {
      const Instance::ChunkTotals totals = inst_.chunk_totals(
          j, static_cast<std::size_t>(b), static_cast<std::size_t>(c));
      cost.wire_area = totals.wire_area;
      cost.rep_area = totals.rep_area;
      cost.rep_count = totals.rep_count;
    }
    key = base + refine_extra(j, b, c, nd.r, cost, capacity);
  }
  if (key < warm_bound_ || (opt_.enable_pruning && key <= incumbent_)) {
    ++stats_.pruned_entries;
    return;
  }
  heap_.push({key, false, node, static_cast<std::int32_t>(j), b, c, 0});
}

void ReferenceSolver::activate(const ActiveSource& s) {
  const auto pos = std::lower_bound(
      actives_.begin(), actives_.end(), s.kr,
      [](const ActiveSource& have, double kr) { return have.kr < kr; });
  std::int64_t dom_end = -1;
  if (pos != actives_.begin() && std::prev(pos)->kz <= s.kz) {
    dom_end = std::prev(pos)->end;
  }
  if (pos != actives_.end() && pos->kr == s.kr && pos->kz <= s.kz) {
    dom_end = std::max(dom_end, pos->end);
  }
  if (dom_end >= s.end) {
    ++stats_.frontier_dominated;
    return;
  }
  if (dom_end >= 0) {
    wakes_[static_cast<std::size_t>(dom_end) + 1].push_back(s);
    return;
  }
  auto q = pos;
  while (q != actives_.end() && q->kz >= s.kz) {
    if (q->end > s.end) {
      wakes_[static_cast<std::size_t>(s.end) + 1].push_back(*q);
    } else {
      ++stats_.frontier_erased;
    }
    ++q;
  }
  const auto at = actives_.erase(pos, q);
  actives_.insert(at, s);
}

void ReferenceSolver::merge_and_materialize(std::size_t level, std::size_t t) {
  merged_.clear();
  const auto push_cand = [this](const Node& nd) {
    if (!merged_.empty()) {
      const Node& back = merged_.back();
      if (nd.z >= back.z) {
        ++stats_.frontier_dominated;
        return;
      }
      if (nd.r == back.r) {
        ++stats_.frontier_erased;
        merged_.pop_back();
      }
    }
    merged_.push_back(nd);
  };
  std::size_t i = 0;
  std::size_t k = 0;
  while (i < chunk_cands_.size() || k < c0_cands_.size()) {
    bool take_chunk;
    if (i >= chunk_cands_.size()) {
      take_chunk = false;
    } else if (k >= c0_cands_.size()) {
      take_chunk = true;
    } else {
      const Node& a = chunk_cands_[i];
      const Node& b = c0_cands_[k];
      take_chunk = a.r < b.r || (a.r == b.r && a.z <= b.z);
    }
    push_cand(take_chunk ? chunk_cands_[i++] : c0_cands_[k++]);
  }

  std::vector<FrontEntry>& frontier = levels_[level][t];
  frontier.reserve(merged_.size());
  for (const Node& nd : merged_) {
    arena_.push_back(nd);
    frontier.push_back(
        {nd.r, nd.z, static_cast<std::int32_t>(arena_.size() - 1)});
  }
  stats_.max_frontier = std::max(stats_.max_frontier,
                                 static_cast<std::int64_t>(frontier.size()));
  if (opt_.check_invariants) {
    for (std::size_t x = 1; x < frontier.size(); ++x) {
      iarank::util::require(frontier[x - 1].r < frontier[x].r &&
                                frontier[x - 1].z > frontier[x].z,
                            "dp_rank_reference: frontier invariant violated");
    }
  }
}

void ReferenceSolver::forward_pass() {
  const std::size_t buckets = static_cast<std::size_t>(n_bunches_) + 1;
  levels_.assign(m_ + 1, std::vector<std::vector<FrontEntry>>(buckets));

  const std::size_t estimate =
      std::min<std::size_t>((m_ + 1) * buckets * 2, std::size_t{1} << 22);
  arena_.reserve(estimate);
  {
    std::vector<HeapEntry> storage;
    storage.reserve(estimate);
    heap_ = std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp>(
        HeapCmp{}, std::move(storage));
  }

  arena_.push_back({0.0, 0, -1, 0});
  levels_[0][0].push_back({0.0, 0, 0});
  stats_.max_frontier = std::max<std::int64_t>(stats_.max_frontier, 1);

  wakes_.assign(buckets + 1, {});

  for (std::size_t j = 0; j < m_; ++j) {
    const bool build_next = j + 1 < m_;
    actives_.clear();
    for (std::size_t t = 0; t < buckets; ++t) {
      const auto tb = static_cast<std::int64_t>(t);
      if (build_next) {
        if (!actives_.empty()) {
          actives_.erase(
              std::remove_if(
                  actives_.begin(), actives_.end(),
                  [tb](const ActiveSource& a) { return a.end < tb; }),
              actives_.end());
        }
        std::vector<ActiveSource>& wl = wakes_[t];
        for (const ActiveSource& s : wl) activate(s);
        wl.clear();
      }

      chunk_cands_.clear();
      if (build_next && t >= 1 && tb < n_bunches_ && !actives_.empty()) {
        const double pr = inst_.prefix_repeater_area(j, t);
        const std::int64_t pz = inst_.prefix_repeater_count(j, t);
        for (const ActiveSource& a : actives_) {
          chunk_cands_.push_back({pr + a.kr, pz + a.kz, a.parent,
                                  static_cast<std::int32_t>(tb - a.b)});
        }
      }

      c0_cands_.clear();
      const std::vector<FrontEntry>& frontier = levels_[j][t];
      if (!frontier.empty()) {
        const double wires_above = static_cast<double>(inst_.wires_before(t));
        for (const FrontEntry& entry : frontier) {
          const Node node = arena_[static_cast<std::size_t>(entry.idx)];
          const double capacity =
              inst_.pair_capacity() -
              inst_.blockage(j, wires_above, static_cast<double>(node.z));

          if (build_next && capacity >= -area_tol()) {
            c0_cands_.push_back({node.r, node.z, entry.idx, 0});
          }

          const std::int64_t c_max = inst_.max_feasible_chunk(
              j, t, capacity + area_tol(),
              inst_.repeater_budget() + budget_tol() - node.r);
          if (build_next && c_max >= 1) {
            const std::int64_t end = std::min(tb + c_max, n_bunches_ - 1);
            if (end > tb) {
              activate({node.r - inst_.prefix_repeater_area(j, t),
                        node.z - inst_.prefix_repeater_count(j, t), end, tb,
                        entry.idx});
            }
          }
          push_iterator(entry.idx, j, tb, c_max);
        }
      }

      if (!chunk_cands_.empty() || !c0_cands_.empty()) {
        merge_and_materialize(j + 1, t);
      }
    }
  }
}

FreePackInput ReferenceSolver::pack_input(std::size_t j, std::int64_t b,
                                          std::int64_t c, std::int64_t node_z,
                                          const ChunkCost& cost,
                                          std::int64_t w_extra) const {
  FreePackInput in;
  in.first_pair = j;
  in.first_bunch = static_cast<std::size_t>(std::min(b + c, n_bunches_));
  in.first_bunch_offset = w_extra;
  in.area_used_first_pair = cost.wire_area;
  in.wires_above_first =
      static_cast<double>(inst_.wires_before(static_cast<std::size_t>(b)));
  in.repeaters_above_first = static_cast<double>(node_z);
  in.repeaters_total = static_cast<double>(node_z + cost.rep_count);
  if (w_extra > 0) {
    const auto bb = static_cast<std::size_t>(b + c);
    const DelayPlan& plan = inst_.plan(bb, j);
    in.area_used_first_pair += inst_.wire_area(bb, j, w_extra);
    in.repeaters_total +=
        static_cast<double>(w_extra * plan.repeaters_per_wire());
  }
  return in;
}

std::optional<HeapEntry> ReferenceSolver::verify(const HeapEntry& e) const {
  const Node& node = arena_[static_cast<std::size_t>(e.node)];
  const auto j = static_cast<std::size_t>(e.j);
  const double wires_above =
      static_cast<double>(inst_.wires_before(static_cast<std::size_t>(e.b)));
  const double capacity =
      inst_.pair_capacity() -
      inst_.blockage(j, wires_above, static_cast<double>(node.z));
  const ChunkCost cost = chunk_cost(e.b, j, e.c, node.r, capacity);
  if (!cost.ok) return std::nullopt;

  const std::int64_t base = inst_.wires_before(
      static_cast<std::size_t>(std::min(e.b + e.c, n_bunches_)));

  const std::int64_t w_extra =
      refine_extra(j, e.b, e.c, node.r, cost, capacity);

  for (const std::int64_t w : {w_extra, std::int64_t{0}}) {
    if (free_pack_feasible(inst_, pack_input(j, e.b, e.c, node.z, cost, w))) {
      HeapEntry out = e;
      out.verified = true;
      out.w_extra = w;
      out.key = base + w;
      return out;
    }
    if (w == 0) break;
  }
  return std::nullopt;
}

void ReferenceSolver::try_warm_start() {
  if (opt_.warm_start == nullptr) return;
  const DpWitness& wit = *opt_.warm_start;
  if (!wit.valid()) return;
  stats_.warm_start_checked = true;

  const auto jb = static_cast<std::size_t>(wit.break_pair);
  if (jb >= m_) return;
  if (wit.first_bunch != wit.chunk_first.back()) return;
  if (wit.first_bunch < 0 || wit.chunk_len < 0 ||
      wit.first_bunch + wit.chunk_len > n_bunches_) {
    return;
  }
  if (wit.chunk_first.front() != 0) return;
  for (std::size_t j = 0; j + 1 < wit.chunk_first.size(); ++j) {
    if (wit.chunk_first[j] > wit.chunk_first[j + 1]) return;
  }

  double r = 0.0;
  std::int64_t z = 0;
  for (std::size_t j = 0; j < jb; ++j) {
    const std::int64_t lo = wit.chunk_first[j];
    const std::int64_t hi = wit.chunk_first[j + 1];
    const double wires_above =
        static_cast<double>(inst_.wires_before(static_cast<std::size_t>(lo)));
    const double capacity =
        inst_.pair_capacity() -
        inst_.blockage(j, wires_above, static_cast<double>(z));
    if (hi == lo) {
      if (capacity < -area_tol()) return;
      continue;
    }
    const ChunkCost cost = chunk_cost(lo, j, hi - lo, r, capacity);
    if (!cost.ok) return;
    r += cost.rep_area;
    z += cost.rep_count;
  }

  const double wires_above = static_cast<double>(
      inst_.wires_before(static_cast<std::size_t>(wit.first_bunch)));
  const double capacity =
      inst_.pair_capacity() -
      inst_.blockage(jb, wires_above, static_cast<double>(z));
  const ChunkCost cost =
      chunk_cost(wit.first_bunch, jb, wit.chunk_len, r, capacity);
  if (!cost.ok) return;
  const std::int64_t base = inst_.wires_before(static_cast<std::size_t>(
      std::min(wit.first_bunch + wit.chunk_len, n_bunches_)));
  const std::int64_t w_extra =
      refine_extra(jb, wit.first_bunch, wit.chunk_len, r, cost, capacity);
  for (const std::int64_t w : {w_extra, std::int64_t{0}}) {
    if (free_pack_feasible(
            inst_,
            pack_input(jb, wit.first_bunch, wit.chunk_len, z, cost, w),
            /*count_metrics=*/false)) {
      warm_bound_ = base + w;
      stats_.warm_start_hit = true;
      return;
    }
    if (w == 0) break;
  }
}

RankResult ReferenceSolver::assemble(const HeapEntry& best) const {
  RankResult res;
  res.total_wires = inst_.total_wires();
  res.rank = best.key;
  res.normalized = res.total_wires > 0
                       ? static_cast<double>(res.rank) /
                             static_cast<double>(res.total_wires)
                       : 0.0;
  res.all_assigned = true;
  res.prefix_bunches = best.b + best.c;
  res.refined_wires = best.w_extra;

  const Node& node = arena_[static_cast<std::size_t>(best.node)];
  const double wires_above =
      static_cast<double>(inst_.wires_before(static_cast<std::size_t>(best.b)));
  const double capacity =
      inst_.pair_capacity() - inst_.blockage(static_cast<std::size_t>(best.j),
                                             wires_above,
                                             static_cast<double>(node.z));
  const ChunkCost cost = chunk_cost(best.b, static_cast<std::size_t>(best.j),
                                    best.c, node.r, capacity);

  double refine_rep_area = 0.0;
  std::int64_t refine_rep_count = 0;
  if (best.w_extra > 0) {
    const auto bb = static_cast<std::size_t>(best.b + best.c);
    const DelayPlan& plan = inst_.plan(bb, static_cast<std::size_t>(best.j));
    refine_rep_area = static_cast<double>(best.w_extra) * plan.area_per_wire;
    refine_rep_count = best.w_extra * plan.repeaters_per_wire();
  }
  res.repeater_area_used = node.r + cost.rep_area + refine_rep_area;
  res.repeater_count = node.z + cost.rep_count + refine_rep_count;

  auto& chunk_first = res.witness.chunk_first;
  chunk_first.assign(static_cast<std::size_t>(best.j) + 1, 0);
  {
    std::int64_t b = best.b;
    std::int32_t idx = best.node;
    for (std::int32_t j = best.j; j > 0; --j) {
      chunk_first[static_cast<std::size_t>(j)] = b;
      const Node& nd = arena_[static_cast<std::size_t>(idx)];
      b -= nd.c;
      idx = nd.parent;
    }
    chunk_first[0] = 0;
  }
  res.witness.break_pair = best.j;
  res.witness.first_bunch = best.b;
  res.witness.chunk_len = best.c;
  res.witness.w_extra = best.w_extra;

  if (!opt_.build_trace) return res;

  res.usage.resize(m_);
  double z_above = 0.0;
  for (std::size_t j = 0; j < m_; ++j) {
    res.usage[j].pair_name = inst_.pair(j).name;
  }

  res.placements.reserve(static_cast<std::size_t>(n_bunches_) + 2 * m_);

  for (std::size_t j = 0; j <= static_cast<std::size_t>(best.j); ++j) {
    const std::int64_t lo = chunk_first[j];
    const std::int64_t hi = (j == static_cast<std::size_t>(best.j))
                                ? best.b + best.c
                                : chunk_first[j + 1];
    PairUsage& u = res.usage[j];
    u.via_blockage = inst_.blockage(
        j,
        static_cast<double>(inst_.wires_before(static_cast<std::size_t>(lo))),
        z_above);
    for (std::int64_t t = lo; t < hi; ++t) {
      const auto bb = static_cast<std::size_t>(t);
      const DelayPlan& plan = inst_.plan(bb, j);
      const std::int64_t count = inst_.bunch(bb).count;
      u.wires_meeting_delay += count;
      u.wires_total += count;
      u.wire_area += inst_.wire_area(bb, j, count);
      u.repeaters += count * plan.repeaters_per_wire();
      u.repeater_area += static_cast<double>(count) * plan.area_per_wire;
      res.placements.push_back({bb, j, count, count});
    }
    if (j == static_cast<std::size_t>(best.j) && best.w_extra > 0) {
      const auto bb = static_cast<std::size_t>(best.b + best.c);
      const DelayPlan& plan = inst_.plan(bb, j);
      u.wires_meeting_delay += best.w_extra;
      u.wires_total += best.w_extra;
      u.wire_area += inst_.wire_area(bb, j, best.w_extra);
      u.repeaters += best.w_extra * plan.repeaters_per_wire();
      u.repeater_area += static_cast<double>(best.w_extra) * plan.area_per_wire;
      res.placements.push_back({bb, j, best.w_extra, best.w_extra});
    }
    z_above += static_cast<double>(u.repeaters);
  }

  const auto detail = free_pack_detailed(
      inst_, pack_input(static_cast<std::size_t>(best.j), best.b, best.c,
                        node.z, cost, best.w_extra));
  iarank::util::require(detail.has_value(),
                        "dp_rank_reference: winning candidate failed re-pack");
  for (const BunchPlacement& p : *detail) {
    PairUsage& u = res.usage[p.pair];
    u.wires_total += p.wires;
    u.wire_area += inst_.wire_area(p.bunch, p.pair, p.wires);
    res.placements.push_back(p);
  }
  std::sort(res.placements.begin(), res.placements.end(),
            [](const BunchPlacement& a, const BunchPlacement& b) {
              if (a.bunch != b.bunch) return a.bunch < b.bunch;
              return a.pair < b.pair;
            });

  double wires_above_total = 0.0;
  double reps_above_total = 0.0;
  for (std::size_t j = 0; j < m_; ++j) {
    res.usage[j].via_blockage =
        inst_.blockage(j, wires_above_total, reps_above_total);
    wires_above_total += static_cast<double>(res.usage[j].wires_total);
    reps_above_total += static_cast<double>(res.usage[j].repeaters);
  }
  return res;
}

RankResult ReferenceSolver::solve() {
  util::Stopwatch total;

  if (!free_pack_feasible(inst_, FreePackInput{})) {
    RankResult res;
    res.total_wires = inst_.total_wires();
    res.rank = 0;
    res.normalized = 0.0;
    res.all_assigned = false;
    res.dp = stats_;
    res.dp.seconds = total.seconds();
    return res;
  }

  try_warm_start();

  {
    util::Stopwatch forward;
    forward_pass();
    stats_.forward_seconds = forward.seconds();
  }
  stats_.arena_nodes = static_cast<std::int64_t>(arena_.size());

  while (!heap_.empty()) {
    const HeapEntry e = heap_.top();
    heap_.pop();
    ++stats_.heap_pops;
    if (e.verified) {
      RankResult res = assemble(e);
      res.dp = stats_;
      res.dp.seconds = total.seconds();
      return res;
    }
    ++stats_.verify_calls;
    const auto verified = verify(e);
    if (verified) {
      incumbent_ = std::max(incumbent_, verified->key);
      heap_.push(*verified);
    }
    if (e.c > 0) {
      push_iterator(e.node, static_cast<std::size_t>(e.j), e.b, e.c - 1);
    }
  }

  RankResult res;
  res.total_wires = inst_.total_wires();
  res.rank = 0;
  res.normalized = 0.0;
  res.all_assigned = false;
  res.dp = stats_;
  res.dp.seconds = total.seconds();
  return res;
}

}  // namespace

RankResult dp_rank_reference(const Instance& inst, const DpOptions& options) {
  ReferenceSolver solver(inst, options);
  return solver.solve();
}

}  // namespace iarank::core
