#include "src/core/faultcheck.hpp"

#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "src/core/checkpoint.hpp"
#include "src/core/engine.hpp"
#include "src/core/sweep.hpp"
#include "src/util/atomic_file.hpp"
#include "src/util/config.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"
#include "src/util/journal.hpp"
#include "src/util/lease_queue.hpp"
#include "src/util/metrics.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/trace.hpp"
#include "src/wld/io.hpp"

namespace iarank::core {

namespace {

/// The workload's inputs are parsed each run so the IO sites
/// (util.config.parse, wld.io.read) sit on the exercised path.
constexpr const char* kConfigText =
    "# faultcheck workload\n"
    "node = 130nm\n"
    "gates = 4000\n"
    "bunch = 200\n";

constexpr const char* kWldText =
    "# faultcheck WLD (lengths in gate pitches)\n"
    "600 2\n"
    "350 30\n"
    "180 200\n"
    "90 1500\n"
    "40 2200\n";

const std::vector<double>& sweep_values() {
  static const std::vector<double> values = {3.9, 3.0, 2.2};
  return values;
}

/// Input stage: config parse + WLD read + design assembly. Hits the IO
/// sites; throws when one of them is armed.
struct WorkloadInputs {
  DesignSpec design;
  RankOptions base;
  wld::Wld wld;
};

WorkloadInputs make_inputs() {
  const util::Config cfg = util::Config::parse(kConfigText);
  std::istringstream wld_stream{std::string(kWldText)};
  WorkloadInputs in;
  in.wld = wld::read_wld(wld_stream);
  in.design = baseline_design(cfg.get("node"), cfg.get_int("gates"));
  in.base.bunch_size = cfg.get_int("bunch");
  return in;
}

/// Compute stage: the 3-point K sweep through `builder`. Single-threaded
/// so the nth-hit arithmetic is deterministic.
SweepResult run_sweep(InstanceBuilder& builder, const RankOptions& base) {
  return sweep_parameter(builder, base,
                         SweepParameter::kIldPermittivity, sweep_values(),
                         /*threads=*/1);
}

/// Encoding of a point with the wall-clock fields zeroed: equal strings
/// iff the deterministic result fields are bitwise equal.
std::string deterministic_encoding(SweepPoint point) {
  point.result.dp.seconds = 0.0;
  point.result.dp.forward_seconds = 0.0;
  return encode_sweep_point(point);
}

/// Output stage: publish the sweep's deterministic encoding through the
/// atomic-file path, putting util.atomic_file.rename on the exercised
/// path (an injected publish failure must propagate as the injected
/// error and leave no temporary behind). The artifact itself is scratch.
void publish_output(const SweepResult& swept) {
  std::string text;
  for (SweepPoint point : swept.points) {
    point.result.dp.seconds = 0.0;
    point.result.dp.forward_seconds = 0.0;
    text += encode_sweep_point(point);
    text += '\n';
  }
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "iarank_faultcheck.out";
  util::atomic_write_file(path.string(), text);
  std::filesystem::remove(path);
}

/// Work-queue stage: one enqueue/claim/renew/complete lease cycle plus a
/// journal append and read-only scan in a scratch directory — the
/// coordination path of `rank_tool explore`. Puts util.lease.acquire,
/// util.lease.renew and util.journal.scan on the exercised path. The
/// queue layer has no per-point isolation of its own, so an injected
/// failure propagates as the injected error (the explore driver's process
/// supervision is the recovery story at that layer).
void exercise_work_queue() {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "iarank_faultcheck_queue";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  try {
    util::LeaseQueue queue((dir / "queue").string(), {});
    queue.enqueue(0, 8, 0);
    const std::optional<util::LeaseChunk> chunk = queue.claim("faultcheck");
    if (chunk.has_value()) {
      (void)queue.renew(*chunk, "faultcheck", chunk->lo + 4);
      queue.complete(*chunk, "faultcheck");
    }
    const std::string journal_path = (dir / "probe.journal").string();
    {
      util::CheckpointJournal journal(journal_path, 0xfa57u, {false});
      journal.append(0, "probe");
    }
    (void)util::CheckpointJournal::scan(journal_path, 0xfa57u);
    std::filesystem::remove_all(dir);
  } catch (...) {
    std::filesystem::remove_all(dir);  // scratch must not leak across runs
    throw;
  }
}

bool sweeps_identical(const SweepResult& a, const SweepResult& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (deterministic_encoding(a.points[i]) !=
        deterministic_encoding(b.points[i])) {
      return false;
    }
  }
  return true;
}

bool mentions_injection(const std::string& text, const std::string& site) {
  return text.find("injected fault at " + site) != std::string::npos;
}

/// Disarms the process injector on every exit path.
struct DisarmGuard {
  ~DisarmGuard() { util::FaultInjector::instance().disarm(); }
};

}  // namespace

util::Histogram& kFaultCheckRunSeconds = util::MetricsRegistry::histogram(
    "iarank_faultcheck_run_seconds", util::Histogram::duration_bounds(),
    "wall time per armed faultcheck (site, seed) run");

/// Books one armed run's wall time into the report sample vector and the
/// process histogram at scope exit — the loop body leaves through many
/// `continue`s, so the recording must be RAII.
struct RunTimerGuard {
  explicit RunTimerGuard(std::vector<double>& sink) : sink_(sink) {}
  ~RunTimerGuard() {
    const double elapsed = timer_.seconds();
    sink_.push_back(elapsed);
    kFaultCheckRunSeconds.observe(elapsed);
  }
  RunTimerGuard(const RunTimerGuard&) = delete;
  RunTimerGuard& operator=(const RunTimerGuard&) = delete;

 private:
  std::vector<double>& sink_;
  util::Stopwatch timer_;
};

FaultCheckReport run_faultcheck(const FaultCheckOptions& options) {
  TRACE_SPAN("faultcheck");
  util::require(options.seeds >= 1, "faultcheck: seeds must be >= 1");
  FaultCheckReport report;
  std::vector<double> run_seconds;
  DisarmGuard guard;
  util::FaultInjector& injector = util::FaultInjector::instance();

  // Clean baseline: the expected results, and (via counting mode) how
  // often each site fires in one workload — the modulus for the
  // seed-derived nth hit.
  injector.start_counting();
  const WorkloadInputs baseline_inputs = make_inputs();
  InstanceBuilder baseline_builder(baseline_inputs.design,
                                   baseline_inputs.wld);
  const SweepResult baseline =
      run_sweep(baseline_builder, baseline_inputs.base);
  publish_output(baseline);
  exercise_work_queue();
  injector.disarm();
  if (baseline.profile.failed_points != 0) {
    report.violations.push_back("baseline workload has failed points");
    return report;
  }

  // Snapshot the counting-mode tallies now: the first arm() resets them.
  std::vector<std::pair<std::string, std::int64_t>> site_hits;
  for (const util::FaultSite* site : util::FaultInjector::sites()) {
    site_hits.emplace_back(site->name(), injector.hits(site->name()));
  }

  for (const auto& [site_name, hits] : site_hits) {
    FaultSiteOutcome outcome;
    outcome.site = site_name;
    outcome.workload_hits = hits;
    if (outcome.workload_hits == 0) {
      report.sites.push_back(std::move(outcome));
      continue;
    }

    for (std::int64_t k = 0; k < options.seeds; ++k) {
      const std::uint64_t seed = options.first_seed +
                                 static_cast<std::uint64_t>(k);
      const std::int64_t nth =
          1 + static_cast<std::int64_t>(
                  seed % static_cast<std::uint64_t>(outcome.workload_hits));
      injector.arm(outcome.site, nth);
      ++report.runs;
      TRACE_SPAN("faultcheck.run");
      const RunTimerGuard run_timer(run_seconds);

      std::unique_ptr<InstanceBuilder> builder;
      RankOptions base;
      bool threw = false;
      std::string thrown_message;
      SweepResult swept;
      try {
        WorkloadInputs inputs = make_inputs();
        base = inputs.base;
        builder = std::make_unique<InstanceBuilder>(std::move(inputs.design),
                                                    std::move(inputs.wld));
        swept = run_sweep(*builder, base);
        publish_output(swept);
        exercise_work_queue();
      } catch (const util::Error& e) {
        threw = true;
        thrown_message = e.what();
      } catch (const std::exception& e) {
        injector.disarm();
        report.violations.push_back("site " + outcome.site + " seed " +
                                    std::to_string(seed) +
                                    ": non-Error exception escaped: " +
                                    e.what());
        continue;
      }
      const bool fired = injector.fired();
      injector.disarm();

      if (!fired) {
        report.violations.push_back(
            "site " + outcome.site + " seed " + std::to_string(seed) +
            ": armed hit " + std::to_string(nth) + " never fired");
        continue;
      }
      ++outcome.injections;

      if (threw) {
        // Only the pre-sweep input stages and the post-sweep output
        // stage may propagate, and only the injected error itself.
        if (!mentions_injection(thrown_message, outcome.site)) {
          report.violations.push_back("site " + outcome.site + " seed " +
                                      std::to_string(seed) +
                                      ": unexpected propagated error: " +
                                      thrown_message);
          continue;
        }
        ++outcome.propagated;
      } else {
        // The sweep must have isolated the fault into exactly one
        // point's status, leaving the rest of the grid evaluated.
        std::int64_t flagged = 0;
        for (const SweepPoint& p : swept.points) {
          if (p.status.ok()) continue;
          ++flagged;
          if (!mentions_injection(p.status.message, outcome.site)) {
            report.violations.push_back(
                "site " + outcome.site + " seed " + std::to_string(seed) +
                ": failed point carries foreign status: " + p.status.label());
          }
        }
        if (flagged != 1 || swept.profile.failed_points != 1) {
          report.violations.push_back(
              "site " + outcome.site + " seed " + std::to_string(seed) +
              ": expected exactly one failed point, got " +
              std::to_string(flagged));
          continue;
        }
        ++outcome.isolated;
      }

      // Recovery: rerun with injection off. When the builder survived the
      // fault, reuse it — a stage that threw mid-compute must have left
      // its caches reusable, and the rebuilt results bitwise equal.
      try {
        SweepResult recovered;
        if (builder) {
          recovered = run_sweep(*builder, base);
        } else {
          WorkloadInputs inputs = make_inputs();
          InstanceBuilder fresh(std::move(inputs.design),
                                std::move(inputs.wld));
          recovered = run_sweep(fresh, inputs.base);
        }
        if (!sweeps_identical(recovered, baseline)) {
          report.violations.push_back(
              "site " + outcome.site + " seed " + std::to_string(seed) +
              ": post-failure rerun diverged from baseline");
          continue;
        }
        ++outcome.recovered;
      } catch (const std::exception& e) {
        report.violations.push_back("site " + outcome.site + " seed " +
                                    std::to_string(seed) +
                                    ": post-failure rerun threw: " + e.what());
        continue;
      }
    }
    report.sites.push_back(std::move(outcome));
  }
  const util::TimingSummary timing = util::summarize_timings(run_seconds);
  report.run_seconds_p50 = timing.p50;
  report.run_seconds_p95 = timing.p95;
  report.run_seconds_max = timing.max;
  return report;
}

}  // namespace iarank::core
