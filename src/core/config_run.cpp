#include "src/core/config_run.hpp"

#include "src/tech/io.hpp"
#include "src/util/error.hpp"
#include "src/util/strings.hpp"
#include "src/wld/io.hpp"

namespace iarank::core {

namespace {

bool looks_like_path(const std::string& name) {
  return name.find('/') != std::string::npos ||
         name.find(".tech") != std::string::npos;
}

tech::CapacitanceModel cap_model_from(const std::string& name) {
  if (name == "parallel_plate") return tech::CapacitanceModel::kParallelPlate;
  if (name == "sakurai") return tech::CapacitanceModel::kSakuraiTamaru;
  throw iarank::util::Error("config: unknown cap_model '" + name + "'");
}

delay::TargetModel target_model_from(const std::string& name) {
  if (name == "linear") return delay::TargetModel::kLinear;
  if (name == "sqrt") return delay::TargetModel::kSqrt;
  if (name == "quadratic") return delay::TargetModel::kQuadratic;
  if (name == "uniform") return delay::TargetModel::kUniform;
  throw iarank::util::Error("config: unknown target_model '" + name + "'");
}

}  // namespace

void apply_rank_options(const util::Config& config, RankOptions& o) {
  o.ild_permittivity = config.get_double("ild_permittivity", o.ild_permittivity);
  o.miller_factor = config.get_double("miller_factor", o.miller_factor);
  o.clock_frequency = config.get_double("clock_hz", o.clock_frequency);
  o.repeater_fraction =
      config.get_double("repeater_fraction", o.repeater_fraction);
  if (config.has("cap_model")) o.cap_model = cap_model_from(config.get("cap_model"));
  if (config.has("target_model")) {
    o.target_model = target_model_from(config.get("target_model"));
  }
  o.max_noise_ratio = config.get_double("max_noise_ratio", o.max_noise_ratio);
  o.charge_drivers =
      config.get_int("charge_drivers", o.charge_drivers ? 1 : 0) != 0;
  o.bunch_size = config.get_int("bunch_size", o.bunch_size);
  o.bin_window = config.get_double("bin_window", o.bin_window);
  o.refine_boundary =
      config.get_int("refine_boundary", o.refine_boundary ? 1 : 0) != 0;
  o.vias.vias_per_wire = config.get_double("vias_per_wire", o.vias.vias_per_wire);
  o.vias.vias_per_repeater =
      config.get_double("vias_per_repeater", o.vias.vias_per_repeater);
}

RunSpec run_spec_from_config(const util::Config& config) {
  RunSpec spec;

  const std::string node_name =
      config.has("node") ? config.get("node") : std::string("130nm");
  const auto gates = config.get_int("gates", 1000000);
  const bool paper_regime = config.get_int("paper_regime", 1) != 0;

  if (paper_regime) {
    PaperRegime regime;
    regime.die_scale = config.get_double("regime.die_scale", regime.die_scale);
    regime.device_ideality =
        config.get_double("regime.device_ideality", regime.device_ideality);
    regime.repeater_cell_f2 =
        config.get_double("regime.repeater_cell_f2", regime.repeater_cell_f2);
    regime.min_spacing_pitches = config.get_double(
        "regime.min_spacing_pitches", regime.min_spacing_pitches);
    regime.capacity_factor =
        config.get_double("regime.capacity_factor", regime.capacity_factor);
    // Custom node files get the regime applied on top of their raw values.
    if (looks_like_path(node_name)) {
      PaperSetup setup = paper_baseline("130nm", gates, regime);
      tech::TechNode custom = tech::load_node(node_name);
      custom.gate_pitch_factor *= regime.die_scale;
      custom.device.r_o *= regime.device_ideality;
      custom.device.c_o *= regime.device_ideality;
      custom.device.c_p *= regime.device_ideality;
      custom.device.min_inv_area = regime.repeater_cell_f2 *
                                   custom.feature_size * custom.feature_size;
      setup.design.node = custom;
      spec.design = setup.design;
      spec.options = setup.options;
    } else {
      const PaperSetup setup = paper_baseline(node_name, gates, regime);
      spec.design = setup.design;
      spec.options = setup.options;
    }
  } else {
    spec.design.node = looks_like_path(node_name)
                           ? tech::load_node(node_name)
                           : tech::node_by_name(node_name);
    spec.design.gate_count = gates;
  }

  // Architecture overrides.
  spec.design.arch.global_pairs = static_cast<int>(
      config.get_int("arch.global_pairs", spec.design.arch.global_pairs));
  spec.design.arch.semi_global_pairs = static_cast<int>(config.get_int(
      "arch.semi_global_pairs", spec.design.arch.semi_global_pairs));
  spec.design.arch.local_pairs = static_cast<int>(
      config.get_int("arch.local_pairs", spec.design.arch.local_pairs));
  spec.design.arch.ild_height_factor = config.get_double(
      "arch.ild_height_factor", spec.design.arch.ild_height_factor);

  // Table 4 parameters and modelling options.
  apply_rank_options(config, spec.options);

  // WLD source.
  spec.wld.rent_p = config.get_double("wld.rent_p", spec.wld.rent_p);
  spec.wld.rent_k = config.get_double("wld.rent_k", spec.wld.rent_k);
  spec.wld.avg_fanout = config.get_double("wld.fanout", spec.wld.avg_fanout);
  if (config.has("wld.file")) spec.wld_file = config.get("wld.file");

  spec.design.validate();
  spec.options.validate();
  return spec;
}

wld::Wld resolve_wld(const RunSpec& spec) {
  if (!spec.wld_file.empty()) return wld::load_wld(spec.wld_file);
  return default_wld(spec.design, spec.wld);
}

}  // namespace iarank::core
