/// \file dp_rank.cpp
/// \brief The data-oriented DP kernel (v2 engine).
///
/// Same algorithm as the retained scalar reference (dp_rank_reference.cpp;
/// DESIGN.md Sections 3.2 and 10): a sweep-line forward pass builds the
/// per-(pair, bunch) Pareto frontiers, then a best-first search over break
/// candidates verifies the winner with delay-free packing. What changed is
/// the memory layout, not the mathematics — every comparison, tie-break
/// and counter matches the reference bitwise (tests/test_dp_kernel.cpp
/// pins that over hundreds of seeded scenarios).
///
/// Layout (DESIGN.md Section 10.6):
///
///  * Every per-solve structure lives in one util::MonotonicPool owned by
///    the DpKernel. The pool is reset — not freed — between solves, so a
///    kernel reused across sweep points performs zero steady-state heap
///    allocation (the IARANK_COUNT_ALLOCS hook is the referee).
///
///  * The node arena, the frontiers, the active set, the wake lists and
///    the candidate scratch are structure-of-arrays: one contiguous lane
///    per field. Only two frontier levels are ever alive (level j is read
///    while level j+1 is written, and reconstruction walks the arena's
///    parent links instead of the frontiers), so the nested
///    vector<vector<vector>> of the reference collapses into two flat
///    CSR-style lane sets swapped per level.
///
///  * Wake lists are a pooled linked list (per-step head/tail plus a next
///    lane over an append-only entry store), FIFO per step like the
///    reference's per-step vectors.
///
///  * The hot mapping loops of the forward pass — active Pareto set onto
///    bucket t's chunk candidates — are branch-free lane loops tagged
///    `VEC-LOOP`; CI compiles this file with -fopt-info-vec and fails if a
///    tagged loop stops vectorizing (tests/check_vectorization.py).
///    Element-wise IEEE adds vectorize value-safely, so SIMD here cannot
///    perturb results.

#include "src/core/dp_rank.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "src/core/free_pack.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"
#include "src/util/metrics.hpp"
#include "src/util/pool.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/trace.hpp"

namespace iarank::core {

namespace {

// DP effort mirrored into the process registry once per solve. Every
// count except pruned_entries and the warm-start pair is deterministic
// per instance, so those totals are identical across thread counts and
// hosts. Pruned/warm counts depend on which warm witness a sweep point
// received, which is scheduling-dependent — results are not (DESIGN.md
// Section 10.4).
util::Counter& kDpRuns = util::MetricsRegistry::counter(
    "iarank_dp_runs_total", "dp_rank invocations");
util::Counter& kDpCells = util::MetricsRegistry::counter(
    "iarank_dp_cells_total", "DP state elements (arena nodes) evaluated");
util::Counter& kDpHeapPops = util::MetricsRegistry::counter(
    "iarank_dp_heap_pops_total", "best-first candidates examined");
util::Counter& kDpVerifyCalls = util::MetricsRegistry::counter(
    "iarank_dp_verify_calls_total", "free-pack verifications run by the DP");
util::Counter& kDpPrunedEntries = util::MetricsRegistry::counter(
    "iarank_dp_pruned_entries_total",
    "heap pushes skipped by incumbent/warm-start bounds");
util::Counter& kDpWarmChecks = util::MetricsRegistry::counter(
    "iarank_dp_warm_start_checks_total",
    "solves offered a warm-start witness");
util::Counter& kDpWarmHits = util::MetricsRegistry::counter(
    "iarank_dp_warm_start_hits_total",
    "warm-start witnesses verified feasible on the new instance");
util::Counter& kDpFrontierDominated = util::MetricsRegistry::counter(
    "iarank_dp_frontier_dominated_total",
    "frontier newcomers dropped as dominated");
util::Counter& kDpFrontierErased = util::MetricsRegistry::counter(
    "iarank_dp_frontier_erased_total",
    "frontier incumbents erased by a dominating newcomer");
util::Gauge& kDpMaxFrontier = util::MetricsRegistry::gauge(
    "iarank_dp_max_frontier", "largest Pareto frontier seen (high-water)");

// Pool accounting (satellite of the v2 kernel): how many bytes one solve
// draws from its kernel's pool, the process-wide pool high-water, and how
// many chunks the pools ever requested from the heap. The chunk counter
// going flat while solves keep running IS the zero-steady-state-allocation
// property, visible from /metrics.
util::Gauge& kDpArenaBytes = util::MetricsRegistry::gauge(
    "iarank_dp_arena_bytes",
    "pool bytes drawn by one DP solve (high-water across solves)");
util::Gauge& kPoolBytes = util::MetricsRegistry::gauge(
    "iarank_pool_bytes", "DP kernel pool bytes in use (high-water)");
util::Counter& kPoolChunks = util::MetricsRegistry::counter(
    "iarank_pool_chunks_total",
    "pool chunks heap-allocated by DP kernels (flat once warm)");

constexpr double kRelTol = 1e-9;

/// Heap entry: either an unverified iterator positioned at its best
/// remaining break point, or a verified candidate.
struct HeapEntry {
  std::int64_t key = 0;  ///< upper bound (optimistic) or exact (verified) rank
  bool verified = false;
  std::int32_t node = -1;  ///< arena index of the state element
  std::int32_t j = 0;      ///< break pair
  std::int64_t b = 0;      ///< first bunch of pair j's chunk
  std::int64_t c = 0;      ///< delay-met bunches on pair j
  std::int64_t w_extra = 0;  ///< refined wires (verified entries only)
};

/// Strict total order: no two live entries compare equivalent, so the pop
/// sequence is the fully sorted order regardless of heap layout. That is
/// what makes push-time pruning invisible — removing entries that would
/// never pop cannot reorder ties among the ones that do. It is also why a
/// PoolVec + push_heap/pop_heap pops the exact sequence the reference's
/// std::priority_queue does.
struct HeapCmp {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.key != b.key) return a.key < b.key;  // max-heap on rank
    if (a.verified != b.verified) return a.verified < b.verified;
    if (a.node != b.node) return a.node > b.node;  // older state first
    return a.c < b.c;                              // longer chunk first
  }
};

/// Cumulative cost of placing bunches b..b+c-1, all meeting delay, on
/// pair j.
struct ChunkCost {
  double wire_area = 0.0;
  double rep_area = 0.0;
  std::int64_t rep_count = 0;
  bool ok = true;
};

void publish_stats(const RankResult::DpStats& stats) {
  kDpRuns.inc();
  kDpCells.inc(stats.arena_nodes);
  kDpHeapPops.inc(stats.heap_pops);
  kDpVerifyCalls.inc(stats.verify_calls);
  kDpPrunedEntries.inc(stats.pruned_entries);
  kDpFrontierDominated.inc(stats.frontier_dominated);
  kDpFrontierErased.inc(stats.frontier_erased);
  if (stats.warm_start_checked) kDpWarmChecks.inc();
  if (stats.warm_start_hit) kDpWarmHits.inc();
  kDpMaxFrontier.set_max(stats.max_frontier);
  kDpArenaBytes.set_max(stats.arena_bytes);
}

const util::FaultSite kSiteDpRank{"core.dp_rank"};

}  // namespace

using util::MonotonicPool;
using util::PoolVec;

/// The kernel state. Everything below `// --- per-solve lanes` is backed by
/// pool_ and re-attached at the start of every solve; nothing in this
/// struct touches the heap once the pool's high-water chunk is in place.
struct DpKernel::Impl {
  MonotonicPool pool_;

  // Persistent accounting (heap members of the kernel itself, allocated
  // once at kernel construction).
  std::int64_t last_solve_bytes_ = 0;
  std::int64_t chunks_published_ = 0;

  // --- per-solve problem view (set at the top of solve) -----------------
  const Instance* inst_ = nullptr;
  DpOptions opt_;
  std::size_t m_ = 0;
  std::int64_t n_bunches_ = 0;
  const std::int64_t* wb_ = nullptr;  ///< wires_before lane, size n+1
  // Cached per solve (deterministic functions of the instance; identical
  // to recomputing them per use as the reference does).
  double pair_capacity_ = 0.0;
  double atol_ = 0.0;             ///< area_tol()
  double budget_plus_tol_ = 0.0;  ///< repeater_budget() + budget_tol()
  double vias_per_wire_ = 0.0;
  double vias_per_repeater_ = 0.0;

  /// Instance::blockage with the via spec cached: same expression, same
  /// evaluation order, minus a cross-TU call per frontier entry.
  [[nodiscard]] double blockage_j(std::size_t j, double wires_above,
                                  double repeaters_above) const {
    return (vias_per_wire_ * wires_above +
            vias_per_repeater_ * repeaters_above) *
           inst_->pair(j).via_area;
  }

  RankResult::DpStats stats_;

  /// Strict lower bound from a verified warm-start witness. Unverified
  /// pushes with key < warm_bound_ are dropped; the witness itself is
  /// never pushed, so it can never be returned (DESIGN.md Section 10.4).
  std::int64_t warm_bound_ = std::numeric_limits<std::int64_t>::min();
  /// Best verified key currently in the heap. Unverified pushes with
  /// key <= incumbent_ are dropped: verified entries win ties, so such an
  /// entry could never pop before the search terminates.
  std::int64_t incumbent_ = std::numeric_limits<std::int64_t>::min();

  // --- per-solve lanes (pool-backed, re-attached every solve) -----------

  /// Node arena, one lane per field of the reference's Node struct.
  PoolVec<double> arena_r_;
  PoolVec<std::int64_t> arena_z_;
  PoolVec<std::int32_t> arena_parent_;
  PoolVec<std::int32_t> arena_c_;

  /// Frontier of the level being read (j) and the one being written
  /// (j+1), CSR over buckets: entries of bucket t are [off[t], off[t+1]).
  /// Each frontier entry duplicates the Pareto key (r, z) next to the
  /// arena index, sorted r ascending / z descending. Swapped per level —
  /// reconstruction walks arena parent links, so older levels need not
  /// stay alive (the memory insight behind the two-lane layout).
  PoolVec<std::int32_t> cur_off_, next_off_;
  PoolVec<double> cur_r_, next_r_;
  PoolVec<std::int64_t> cur_z_, next_z_;
  PoolVec<std::int32_t> cur_idx_, next_idx_;

  /// Active chunk sources (the sweep line's Pareto set), sorted by kr.
  /// See dp_rank_reference.cpp for the target-independence argument. Lanes
  /// of the reference's ActiveSource; act_n_ is the live count (lane
  /// size() lags and is synced before any reserve).
  PoolVec<double> act_kr_;
  PoolVec<std::int64_t> act_kz_, act_end_, act_b_;
  PoolVec<std::int32_t> act_parent_;
  std::size_t act_n_ = 0;
  std::size_t act_cap_ = 0;

  /// Wake lists: suspended sources, FIFO per wake step. Append-only entry
  /// store + intrusive next links + per-step head/tail — the pooled
  /// equivalent of the reference's vector-per-step wakes_ (and the v2 home
  /// of the formerly heap-allocated `wakes_[s.end + 1]` lists).
  PoolVec<double> wk_kr_;
  PoolVec<std::int64_t> wk_kz_, wk_end_, wk_b_;
  PoolVec<std::int32_t> wk_parent_, wk_next_;
  PoolVec<std::int32_t> wake_head_, wake_tail_;  ///< -1 = empty, per step

  /// Per-bucket scratch: actives mapped to bucket t (chunk candidates),
  /// c = 0 carries, and the fused frontier. Counts tracked manually; the
  /// cand_c_ lane is int64 so the mapping loop is a pure int64 subtract
  /// (int64→int32 narrowing does not vectorize on SSE; the cast happens
  /// at materialize time, where the reference also created its int32).
  PoolVec<double> cand_r_;
  PoolVec<std::int64_t> cand_z_, cand_c_;
  PoolVec<std::int32_t> cand_parent_;
  std::size_t n_cand_ = 0;
  PoolVec<double> c0_r_;
  PoolVec<std::int64_t> c0_z_;
  PoolVec<std::int32_t> c0_idx_;
  std::size_t c0_n_ = 0;
  PoolVec<double> mg_r_;
  PoolVec<std::int64_t> mg_z_;
  PoolVec<std::int32_t> mg_parent_, mg_c_;
  std::size_t mg_n_ = 0;

  /// Best-first search pool. During the forward pass entries are only
  /// appended; the search then pops by linear max-scan for the first few
  /// pops (the typical search terminates after a handful) and heapifies
  /// only if it runs long. Sound because HeapCmp is a strict total order
  /// — (node, c) is unique per entry — so the pop sequence is the fully
  /// sorted order no matter how the entries are arranged.
  PoolVec<HeapEntry> heap_;
  bool heapified_ = false;

  /// Scan pops before falling back to make_heap + push/pop_heap. The
  /// baseline instance pops twice out of ~3.9k entries; paying O(n) per
  /// scan beats the O(n) heap build plus per-push sift-ups until the pop
  /// count grows past a handful.
  static constexpr std::int64_t kScanPops = 8;

  // ----------------------------------------------------------------------

  [[nodiscard]] double budget_tol() const {
    return inst_->repeater_budget() * kRelTol + 1e-30;
  }
  [[nodiscard]] double area_tol() const {
    return inst_->pair_capacity() * kRelTol;
  }

  /// Instance::max_feasible_chunk inlined over cached lane pointers: the
  /// forward pass calls this once per frontier entry and the cross-TU
  /// call plus per-call base-pointer arithmetic were measurable. Same
  /// arrays, same comparisons — bitwise-identical result.
  [[nodiscard]] static std::int64_t max_chunk_lanes(
      const double* pw, const double* pr, std::size_t cap, std::size_t b,
      double wire_limit, double rep_limit) {
    const double w0 = pw[b];
    const double r0 = pr[b];
    std::int64_t lo = 0;
    std::int64_t hi = static_cast<std::int64_t>(cap - b);
    while (lo < hi) {
      const std::int64_t mid = lo + (hi - lo + 1) / 2;
      const std::size_t e = b + static_cast<std::size_t>(mid);
      if (pw[e] - w0 <= wire_limit && pr[e] - r0 <= rep_limit) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  }

  /// max_chunk_lanes with a locality hint: the answer barely moves from
  /// one bucket to the next, so a short walk from the previous entry's
  /// result usually settles in one or two probes where the binary search
  /// pays ~log2(B) unpredictable branches. The predicate is monotone in c
  /// (non-decreasing prefix sums), so the largest feasible c is unique and
  /// every search strategy returns the identical value — this changes how
  /// the answer is found, never what it is.
  [[nodiscard]] static std::int64_t max_chunk_hinted(
      const double* pw, const double* pr, std::size_t cap, std::size_t b,
      double wire_limit, double rep_limit, std::int64_t hint_c) {
    const auto n = static_cast<std::int64_t>(cap - b);
    if (n <= 0) return 0;
    const double w0 = pw[b];
    const double r0 = pr[b];
    const auto ok = [&](std::int64_t c) {
      const std::size_t e = b + static_cast<std::size_t>(c);
      return pw[e] - w0 <= wire_limit && pr[e] - r0 <= rep_limit;
    };
    std::int64_t c = std::clamp<std::int64_t>(hint_c, 0, n);
    if (ok(c)) {
      for (int s = 0; s < 8; ++s) {
        if (c == n || !ok(c + 1)) return c;
        ++c;
      }
    } else {
      for (int s = 0; s < 8; ++s) {
        --c;
        if (c <= 0) return 0;  // !ok(1) held, so nothing beyond 0 fits
        if (ok(c)) return c;
      }
    }
    return max_chunk_lanes(pw, pr, cap, b, wire_limit, rep_limit);
  }

  void attach_lanes() {
    for (PoolVec<double>* v :
         {&arena_r_, &cur_r_, &next_r_, &act_kr_, &wk_kr_, &cand_r_, &c0_r_,
          &mg_r_}) {
      v->attach(&pool_);
    }
    for (PoolVec<std::int64_t>* v :
         {&arena_z_, &cur_z_, &next_z_, &act_kz_, &act_end_, &act_b_,
          &wk_kz_, &wk_end_, &wk_b_, &cand_z_, &cand_c_, &c0_z_, &mg_z_}) {
      v->attach(&pool_);
    }
    for (PoolVec<std::int32_t>* v :
         {&arena_parent_, &arena_c_, &cur_off_, &next_off_, &cur_idx_,
          &next_idx_, &act_parent_, &wk_parent_, &wk_next_, &wake_head_,
          &wake_tail_, &cand_parent_, &c0_idx_, &mg_parent_, &mg_c_}) {
      v->attach(&pool_);
    }
    heap_.attach(&pool_);
    act_n_ = act_cap_ = 0;
    n_cand_ = c0_n_ = mg_n_ = 0;
  }

  std::int32_t arena_push(double r, std::int64_t z, std::int32_t parent,
                          std::int32_t c) {
    arena_r_.push_back(r);
    arena_z_.push_back(z);
    arena_parent_.push_back(parent);
    arena_c_.push_back(c);
    return static_cast<std::int32_t>(arena_r_.size() - 1);
  }

  void heap_push(const HeapEntry& e) {
    heap_.push_back(e);
    if (heapified_) std::push_heap(heap_.begin(), heap_.end(), HeapCmp{});
  }

  // --- shared arithmetic (identical expressions to the reference) -------

  [[nodiscard]] ChunkCost chunk_cost(std::int64_t b, std::size_t j,
                                     std::int64_t c, double base_r,
                                     double capacity) const {
    ChunkCost cost;
    if (c <= 0) return cost;
    const auto bb = static_cast<std::size_t>(b);
    const auto cc = static_cast<std::size_t>(c);
    if (inst_->first_infeasible(j, bb) < bb + cc) {
      cost.ok = false;
      return cost;
    }
    const Instance::ChunkTotals totals = inst_->chunk_totals(j, bb, cc);
    cost.wire_area = totals.wire_area;
    cost.rep_area = totals.rep_area;
    cost.rep_count = totals.rep_count;
    if (cost.wire_area > capacity + area_tol() ||
        base_r + cost.rep_area > inst_->repeater_budget() + budget_tol()) {
      cost.ok = false;
    }
    return cost;
  }

  [[nodiscard]] std::int64_t refine_extra(std::size_t j, std::int64_t b,
                                          std::int64_t c, double node_r,
                                          const ChunkCost& cost,
                                          double capacity) const {
    if (!opt_.refine_boundary || b + c >= n_bunches_) return 0;
    const auto bb = static_cast<std::size_t>(b + c);
    if (inst_->plan_feasible_lane(j)[bb] == 0) return 0;
    const std::int64_t bunch_count = inst_->bunch_count_lane()[bb];
    const double area_per_wire = inst_->plan_area_per_wire_lane(j)[bb];
    std::int64_t by_budget = bunch_count;
    if (area_per_wire > 0.0) {
      const double left =
          inst_->repeater_budget() + budget_tol() - node_r - cost.rep_area;
      by_budget = left <= 0.0
                      ? 0
                      : static_cast<std::int64_t>(
                            std::floor(left / area_per_wire));
    }
    const double area_left = capacity + area_tol() - cost.wire_area;
    const double per_wire = inst_->bunch_length_lane()[bb] * inst_->pair(j).pitch;
    const auto by_area = static_cast<std::int64_t>(
        std::floor(std::max(0.0, area_left) / per_wire));
    return std::clamp<std::int64_t>(std::min(by_budget, by_area), 0,
                                    bunch_count);
  }

  /// `capacity` is the node's free area on pair j at bucket b — callers
  /// already have it (the forward loop computes it per entry; the search
  /// retry recomputes it), so it is passed in instead of re-derived.
  void push_iterator(std::int32_t node, std::size_t j, std::int64_t b,
                     std::int64_t c, double capacity) {
    const auto ni = static_cast<std::size_t>(node);
    const std::int64_t base = wb_[std::min(b + c, n_bunches_)];
    std::int64_t key = base;
    if (opt_.refine_boundary && b + c < n_bunches_) {
      ChunkCost cost;
      if (c > 0) {
        const Instance::ChunkTotals totals = inst_->chunk_totals(
            j, static_cast<std::size_t>(b), static_cast<std::size_t>(c));
        cost.wire_area = totals.wire_area;
        cost.rep_area = totals.rep_area;
        cost.rep_count = totals.rep_count;
      }
      key = base + refine_extra(j, b, c, arena_r_[ni], cost, capacity);
    }
    if (key < warm_bound_ || (opt_.enable_pruning && key <= incumbent_)) {
      ++stats_.pruned_entries;
      return;
    }
    heap_push({key, false, node, static_cast<std::int32_t>(j), b, c, 0});
  }

  // --- active set / wake lists ------------------------------------------

  void act_grow(std::size_t need) {
    std::size_t cap = act_cap_ == 0 ? 16 : act_cap_ * 2;
    if (cap < need) cap = need;
    // Sync lane sizes so reserve() carries the live elements.
    act_kr_.set_size(act_n_);
    act_kz_.set_size(act_n_);
    act_end_.set_size(act_n_);
    act_b_.set_size(act_n_);
    act_parent_.set_size(act_n_);
    act_kr_.reserve(cap);
    act_kz_.reserve(cap);
    act_end_.reserve(cap);
    act_b_.reserve(cap);
    act_parent_.reserve(cap);
    act_cap_ = cap;
  }

  /// Replaces actives [pos, q) with the single source given — the lane
  /// form of the reference's erase(pos, q) + insert(at, s).
  void act_replace(std::size_t pos, std::size_t q, double kr, std::int64_t kz,
                   std::int64_t end, std::int64_t b, std::int32_t parent) {
    const std::size_t tail = act_n_ - q;
    const std::size_t new_n = pos + 1 + tail;
    if (new_n > act_cap_) act_grow(new_n);
    if (tail > 0 && q != pos + 1) {
      std::memmove(act_kr_.data() + pos + 1, act_kr_.data() + q,
                   tail * sizeof(double));
      std::memmove(act_kz_.data() + pos + 1, act_kz_.data() + q,
                   tail * sizeof(std::int64_t));
      std::memmove(act_end_.data() + pos + 1, act_end_.data() + q,
                   tail * sizeof(std::int64_t));
      std::memmove(act_b_.data() + pos + 1, act_b_.data() + q,
                   tail * sizeof(std::int64_t));
      std::memmove(act_parent_.data() + pos + 1, act_parent_.data() + q,
                   tail * sizeof(std::int32_t));
    }
    act_kr_[pos] = kr;
    act_kz_[pos] = kz;
    act_end_[pos] = end;
    act_b_[pos] = b;
    act_parent_[pos] = parent;
    act_n_ = new_n;
  }

  void wake_push(std::int64_t step, double kr, std::int64_t kz,
                 std::int64_t end, std::int64_t b, std::int32_t parent) {
    const auto s = static_cast<std::size_t>(step);
    const auto idx = static_cast<std::int32_t>(wk_kr_.size());
    wk_kr_.push_back(kr);
    wk_kz_.push_back(kz);
    wk_end_.push_back(end);
    wk_b_.push_back(b);
    wk_parent_.push_back(parent);
    wk_next_.push_back(-1);
    if (wake_tail_[s] >= 0) {
      wk_next_[static_cast<std::size_t>(wake_tail_[s])] = idx;
    } else {
      wake_head_[s] = idx;
    }
    wake_tail_[s] = idx;
  }

  void activate(double kr, std::int64_t kz, std::int64_t end, std::int64_t b,
                std::int32_t parent) {
    // lower_bound over the kr lane.
    std::size_t lo = 0;
    std::size_t hi = act_n_;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (act_kr_[mid] < kr) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const std::size_t pos = lo;
    std::int64_t dom_end = -1;
    if (pos > 0 && act_kz_[pos - 1] <= kz) dom_end = act_end_[pos - 1];
    if (pos < act_n_ && act_kr_[pos] == kr && act_kz_[pos] <= kz) {
      dom_end = std::max(dom_end, act_end_[pos]);
    }
    if (dom_end >= end) {
      ++stats_.frontier_dominated;
      return;
    }
    if (dom_end >= 0) {
      wake_push(dom_end + 1, kr, kz, end, b, parent);
      return;
    }
    std::size_t q = pos;
    while (q < act_n_ && act_kz_[q] >= kz) {
      if (act_end_[q] > end) {
        wake_push(end + 1, act_kr_[q], act_kz_[q], act_end_[q], act_b_[q],
                  act_parent_[q]);
      } else {
        ++stats_.frontier_erased;
      }
      ++q;
    }
    act_replace(pos, q, kr, kz, end, b, parent);
  }

  // --- forward pass ------------------------------------------------------

  /// Fuses bucket t's chunk candidates and c = 0 carries into the merged
  /// frontier, then commits it to the arena and the next-level lanes.
  void merge_and_materialize() {
    mg_n_ = 0;
    mg_r_.clear();
    mg_z_.clear();
    mg_parent_.clear();
    mg_c_.clear();
    mg_r_.reserve(n_cand_ + c0_n_);
    mg_z_.reserve(n_cand_ + c0_n_);
    mg_parent_.reserve(n_cand_ + c0_n_);
    mg_c_.reserve(n_cand_ + c0_n_);
    const auto push_cand = [this](double r, std::int64_t z,
                                  std::int32_t parent, std::int32_t c) {
      if (mg_n_ > 0) {
        if (z >= mg_z_[mg_n_ - 1]) {
          ++stats_.frontier_dominated;
          return;
        }
        if (r == mg_r_[mg_n_ - 1]) {
          ++stats_.frontier_erased;
          --mg_n_;
        }
      }
      mg_r_[mg_n_] = r;
      mg_z_[mg_n_] = z;
      mg_parent_[mg_n_] = parent;
      mg_c_[mg_n_] = c;
      ++mg_n_;
    };
    std::size_t i = 0;
    std::size_t k = 0;
    while (i < n_cand_ || k < c0_n_) {
      bool take_chunk;
      if (i >= n_cand_) {
        take_chunk = false;
      } else if (k >= c0_n_) {
        take_chunk = true;
      } else {
        take_chunk = cand_r_[i] < c0_r_[k] ||
                     (cand_r_[i] == c0_r_[k] && cand_z_[i] <= c0_z_[k]);
      }
      if (take_chunk) {
        push_cand(cand_r_[i], cand_z_[i], cand_parent_[i],
                  static_cast<std::int32_t>(cand_c_[i]));
        ++i;
      } else {
        push_cand(c0_r_[k], c0_z_[k], c0_idx_[k], 0);
        ++k;
      }
    }

    const std::size_t seg0 = next_r_.size();
    for (std::size_t x = 0; x < mg_n_; ++x) {
      const std::int32_t idx =
          arena_push(mg_r_[x], mg_z_[x], mg_parent_[x], mg_c_[x]);
      next_r_.push_back(mg_r_[x]);
      next_z_.push_back(mg_z_[x]);
      next_idx_.push_back(idx);
    }
    stats_.max_frontier =
        std::max(stats_.max_frontier, static_cast<std::int64_t>(mg_n_));
    if (opt_.check_invariants) {
      for (std::size_t x = seg0 + 1; x < next_r_.size(); ++x) {
        iarank::util::require(next_r_[x - 1] < next_r_[x] &&
                                  next_z_[x - 1] > next_z_[x],
                              "dp_rank: frontier invariant violated");
      }
    }
  }

  void forward_pass() {
    const std::size_t buckets = static_cast<std::size_t>(n_bunches_) + 1;
    const std::size_t estimate =
        std::min<std::size_t>((m_ + 1) * buckets * 2, std::size_t{1} << 22);
    arena_r_.reserve(estimate);
    arena_z_.reserve(estimate);
    arena_parent_.reserve(estimate);
    arena_c_.reserve(estimate);
    heap_.reserve(estimate);

    arena_push(0.0, 0, -1, 0);
    // Level-0 frontier: the root at bucket 0, nothing elsewhere.
    cur_off_.resize(buckets + 1);
    cur_off_[0] = 0;
    for (std::size_t t = 1; t <= buckets; ++t) cur_off_[t] = 1;
    cur_r_.reserve(buckets);
    cur_z_.reserve(buckets);
    cur_idx_.reserve(buckets);
    cur_r_.push_back(0.0);
    cur_z_.push_back(0);
    cur_idx_.push_back(0);
    next_off_.resize(buckets + 1);
    next_r_.reserve(buckets);
    next_z_.reserve(buckets);
    next_idx_.reserve(buckets);
    stats_.max_frontier = std::max<std::int64_t>(stats_.max_frontier, 1);

    wake_head_.resize(buckets + 1);
    wake_tail_.resize(buckets + 1);
    std::fill(wake_head_.begin(), wake_head_.end(), -1);
    std::fill(wake_tail_.begin(), wake_tail_.end(), -1);

    for (std::size_t j = 0; j < m_; ++j) {
      const bool build_next = j + 1 < m_;
      act_n_ = 0;
      next_r_.clear();
      next_z_.clear();
      next_idx_.clear();
      next_off_[0] = 0;

      const double* pr_area = inst_->prefix_repeater_area_lane(j);
      const std::int64_t* pr_count = inst_->prefix_repeater_count_lane(j);
      const double* pw_area = inst_->prefix_wire_area_lane(j);

      // Absolute end bunch of the previous entry's feasible chunk: the
      // locality hint for max_chunk_hinted across this level's sweep.
      std::int64_t hint_e = 0;

      for (std::size_t t = 0; t < buckets; ++t) {
        const auto tb = static_cast<std::int64_t>(t);
        if (build_next) {
          if (act_n_ > 0) {
            // Expire sources whose admissible range ended (stable, like
            // the reference's remove_if).
            std::size_t w = 0;
            for (std::size_t i = 0; i < act_n_; ++i) {
              if (act_end_[i] >= tb) {
                if (w != i) {
                  act_kr_[w] = act_kr_[i];
                  act_kz_[w] = act_kz_[i];
                  act_end_[w] = act_end_[i];
                  act_b_[w] = act_b_[i];
                  act_parent_[w] = act_parent_[i];
                }
                ++w;
              }
            }
            act_n_ = w;
          }
          // Drain this step's wake list (FIFO). activate() may park new
          // entries, always at strictly later steps, so the chain we are
          // walking is never extended under us — but lane storage may
          // move, hence the scalar copies before the call.
          std::int32_t wi = wake_head_[t];
          if (wi >= 0) {
            wake_head_[t] = -1;
            wake_tail_[t] = -1;
            while (wi >= 0) {
              const auto w = static_cast<std::size_t>(wi);
              const double kr = wk_kr_[w];
              const std::int64_t kz = wk_kz_[w];
              const std::int64_t end = wk_end_[w];
              const std::int64_t b = wk_b_[w];
              const std::int32_t parent = wk_parent_[w];
              const std::int32_t nxt = wk_next_[w];
              activate(kr, kz, end, b, parent);
              wi = nxt;
            }
          }
        }

        // Map the active Pareto set onto bucket t's chunk candidates:
        //   (r, z) = (prefix_rep_area[t] + kr, prefix_rep_count[t] + kz),
        // chunk length t - b. The actives are sorted by kr and the prefix
        // shift is monotone, so the candidates inherit the frontier order
        // — this is the insight that turns per-candidate insertion into
        // three branch-free lane loops.
        n_cand_ = 0;
        if (build_next && t >= 1 && tb < n_bunches_ && act_n_ > 0) {
          const std::size_t n_act = act_n_;
          cand_r_.clear();
          cand_z_.clear();
          cand_c_.clear();
          cand_parent_.clear();
          cand_r_.reserve(n_act);
          cand_z_.reserve(n_act);
          cand_c_.reserve(n_act);
          cand_parent_.reserve(n_act);
          const double pr = pr_area[t];
          const std::int64_t pz = pr_count[t];
          const double* __restrict__ akr = act_kr_.data();
          const std::int64_t* __restrict__ akz = act_kz_.data();
          const std::int64_t* __restrict__ ab = act_b_.data();
          double* __restrict__ cr = cand_r_.data();
          std::int64_t* __restrict__ cz = cand_z_.data();
          std::int64_t* __restrict__ cc = cand_c_.data();
          // VEC-LOOP: map-chunk-area
          for (std::size_t i = 0; i < n_act; ++i) cr[i] = pr + akr[i];
          // VEC-LOOP: map-chunk-count
          for (std::size_t i = 0; i < n_act; ++i) cz[i] = pz + akz[i];
          // VEC-LOOP: map-chunk-len
          for (std::size_t i = 0; i < n_act; ++i) cc[i] = tb - ab[i];
          std::memcpy(cand_parent_.data(), act_parent_.data(),
                      n_act * sizeof(std::int32_t));
          n_cand_ = n_act;
        }

        c0_n_ = 0;
        const auto f0 = static_cast<std::size_t>(cur_off_[t]);
        const auto f1 = static_cast<std::size_t>(cur_off_[t + 1]);
        if (f1 > f0) {
          c0_r_.clear();
          c0_z_.clear();
          c0_idx_.clear();
          c0_r_.reserve(f1 - f0);
          c0_z_.reserve(f1 - f0);
          c0_idx_.reserve(f1 - f0);
          const double wires_above = static_cast<double>(wb_[t]);
          for (std::size_t i = f0; i < f1; ++i) {
            const double node_r = cur_r_[i];
            const std::int64_t node_z = cur_z_[i];
            const std::int32_t idx = cur_idx_[i];
            const double capacity =
                pair_capacity_ -
                blockage_j(j, wires_above, static_cast<double>(node_z));

            if (build_next && capacity >= -atol_) {
              c0_r_[c0_n_] = node_r;
              c0_z_[c0_n_] = node_z;
              c0_idx_[c0_n_] = idx;
              ++c0_n_;
            }

            const std::size_t chunk_cap =
                std::min(inst_->first_infeasible(j, t),
                         static_cast<std::size_t>(n_bunches_));
            const std::int64_t c_max =
                max_chunk_hinted(pw_area, pr_area, chunk_cap, t,
                                 capacity + atol_, budget_plus_tol_ - node_r,
                                 hint_e - tb);
            hint_e = tb + c_max;
            if (build_next && c_max >= 1) {
              const std::int64_t end = std::min(tb + c_max, n_bunches_ - 1);
              if (end > tb) {
                activate(node_r - pr_area[t], node_z - pr_count[t], end, tb,
                         idx);
              }
            }
            push_iterator(idx, j, tb, c_max, capacity);
          }
        }

        if (n_cand_ > 0 || c0_n_ > 0) merge_and_materialize();
        next_off_[t + 1] = static_cast<std::int32_t>(next_r_.size());
      }

      std::swap(cur_off_, next_off_);
      std::swap(cur_r_, next_r_);
      std::swap(cur_z_, next_z_);
      std::swap(cur_idx_, next_idx_);
    }
  }

  // --- verification / warm start / reconstruction ------------------------

  [[nodiscard]] FreePackInput pack_input(std::size_t j, std::int64_t b,
                                         std::int64_t c, std::int64_t node_z,
                                         const ChunkCost& cost,
                                         std::int64_t w_extra) const {
    FreePackInput in;
    in.first_pair = j;
    in.first_bunch = static_cast<std::size_t>(std::min(b + c, n_bunches_));
    in.first_bunch_offset = w_extra;
    in.area_used_first_pair = cost.wire_area;
    in.wires_above_first = static_cast<double>(wb_[b]);
    in.repeaters_above_first = static_cast<double>(node_z);
    in.repeaters_total = static_cast<double>(node_z + cost.rep_count);
    if (w_extra > 0) {
      const auto bb = static_cast<std::size_t>(b + c);
      const DelayPlan& plan = inst_->plan(bb, j);
      in.area_used_first_pair += inst_->wire_area(bb, j, w_extra);
      in.repeaters_total +=
          static_cast<double>(w_extra * plan.repeaters_per_wire());
    }
    return in;
  }

  [[nodiscard]] std::optional<HeapEntry> verify(const HeapEntry& e) const {
    const auto ni = static_cast<std::size_t>(e.node);
    const double node_r = arena_r_[ni];
    const std::int64_t node_z = arena_z_[ni];
    const auto j = static_cast<std::size_t>(e.j);
    const double wires_above = static_cast<double>(wb_[e.b]);
    const double capacity =
        inst_->pair_capacity() -
        blockage_j(j, wires_above, static_cast<double>(node_z));
    const ChunkCost cost = chunk_cost(e.b, j, e.c, node_r, capacity);
    if (!cost.ok) return std::nullopt;

    const std::int64_t base = wb_[std::min(e.b + e.c, n_bunches_)];
    const std::int64_t w_extra =
        refine_extra(j, e.b, e.c, node_r, cost, capacity);

    // Try the refined width first; fall back to the bare chunk.
    for (const std::int64_t w : {w_extra, std::int64_t{0}}) {
      if (free_pack_feasible(*inst_,
                             pack_input(j, e.b, e.c, node_z, cost, w))) {
        HeapEntry out = e;
        out.verified = true;
        out.w_extra = w;
        out.key = base + w;
        return out;
      }
      if (w == 0) break;
    }
    return std::nullopt;
  }

  void try_warm_start() {
    if (opt_.warm_start == nullptr) return;
    const DpWitness& wit = *opt_.warm_start;
    if (!wit.valid()) return;
    stats_.warm_start_checked = true;

    const auto jb = static_cast<std::size_t>(wit.break_pair);
    if (jb >= m_) return;
    if (wit.first_bunch != wit.chunk_first.back()) return;
    if (wit.first_bunch < 0 || wit.chunk_len < 0 ||
        wit.first_bunch + wit.chunk_len > n_bunches_) {
      return;
    }
    if (wit.chunk_first.front() != 0) return;
    for (std::size_t j = 0; j + 1 < wit.chunk_first.size(); ++j) {
      if (wit.chunk_first[j] > wit.chunk_first[j + 1]) return;
    }

    // Replay the witness prefix on THIS instance, chunk by chunk.
    double r = 0.0;
    std::int64_t z = 0;
    for (std::size_t j = 0; j < jb; ++j) {
      const std::int64_t lo = wit.chunk_first[j];
      const std::int64_t hi = wit.chunk_first[j + 1];
      const double wires_above = static_cast<double>(wb_[lo]);
      const double capacity =
          inst_->pair_capacity() -
          blockage_j(j, wires_above, static_cast<double>(z));
      if (hi == lo) {
        if (capacity < -area_tol()) return;
        continue;
      }
      const ChunkCost cost = chunk_cost(lo, j, hi - lo, r, capacity);
      if (!cost.ok) return;
      r += cost.rep_area;
      z += cost.rep_count;
    }

    const double wires_above = static_cast<double>(wb_[wit.first_bunch]);
    const double capacity =
        inst_->pair_capacity() -
        blockage_j(jb, wires_above, static_cast<double>(z));
    const ChunkCost cost =
        chunk_cost(wit.first_bunch, jb, wit.chunk_len, r, capacity);
    if (!cost.ok) return;
    const std::int64_t base =
        wb_[std::min(wit.first_bunch + wit.chunk_len, n_bunches_)];
    const std::int64_t w_extra =
        refine_extra(jb, wit.first_bunch, wit.chunk_len, r, cost, capacity);
    for (const std::int64_t w : {w_extra, std::int64_t{0}}) {
      if (free_pack_feasible(
              *inst_,
              pack_input(jb, wit.first_bunch, wit.chunk_len, z, cost, w),
              /*count_metrics=*/false)) {
        warm_bound_ = base + w;
        stats_.warm_start_hit = true;
        return;
      }
      if (w == 0) break;
    }
  }

  void assemble(const HeapEntry& best, RankResult& res) const {
    res.total_wires = inst_->total_wires();
    res.rank = best.key;
    res.normalized = res.total_wires > 0
                         ? static_cast<double>(res.rank) /
                               static_cast<double>(res.total_wires)
                         : 0.0;
    res.all_assigned = true;
    res.prefix_bunches = best.b + best.c;
    res.refined_wires = best.w_extra;

    const auto ni = static_cast<std::size_t>(best.node);
    const double node_r = arena_r_[ni];
    const std::int64_t node_z = arena_z_[ni];
    const double wires_above = static_cast<double>(wb_[best.b]);
    const double capacity =
        inst_->pair_capacity() -
        blockage_j(static_cast<std::size_t>(best.j), wires_above,
                        static_cast<double>(node_z));
    const ChunkCost cost = chunk_cost(best.b, static_cast<std::size_t>(best.j),
                                      best.c, node_r, capacity);

    double refine_rep_area = 0.0;
    std::int64_t refine_rep_count = 0;
    if (best.w_extra > 0) {
      const auto bb = static_cast<std::size_t>(best.b + best.c);
      const DelayPlan& plan = inst_->plan(bb, static_cast<std::size_t>(best.j));
      refine_rep_area = static_cast<double>(best.w_extra) * plan.area_per_wire;
      refine_rep_count = best.w_extra * plan.repeaters_per_wire();
    }
    res.repeater_area_used = node_r + cost.rep_area + refine_rep_area;
    res.repeater_count = node_z + cost.rep_count + refine_rep_count;

    // Backtrack the chunk boundaries through the arena's parent links.
    auto& chunk_first = res.witness.chunk_first;
    chunk_first.assign(static_cast<std::size_t>(best.j) + 1, 0);
    {
      std::int64_t b = best.b;
      std::int32_t idx = best.node;
      for (std::int32_t j = best.j; j > 0; --j) {
        chunk_first[static_cast<std::size_t>(j)] = b;
        const auto ai = static_cast<std::size_t>(idx);
        b -= arena_c_[ai];
        idx = arena_parent_[ai];
      }
      chunk_first[0] = 0;
    }
    res.witness.break_pair = best.j;
    res.witness.first_bunch = best.b;
    res.witness.chunk_len = best.c;
    res.witness.w_extra = best.w_extra;

    if (!opt_.build_trace) return;

    res.usage.resize(m_);
    double z_above = 0.0;
    for (std::size_t j = 0; j < m_; ++j) {
      res.usage[j].pair_name = inst_->pair(j).name;
    }

    // n_bunches placements is the prefix ceiling; the packed suffix adds
    // at most one split row per pair on top of its bunch rows.
    res.placements.reserve(static_cast<std::size_t>(n_bunches_) + 2 * m_);

    for (std::size_t j = 0; j <= static_cast<std::size_t>(best.j); ++j) {
      const std::int64_t lo = chunk_first[j];
      const std::int64_t hi = (j == static_cast<std::size_t>(best.j))
                                  ? best.b + best.c
                                  : chunk_first[j + 1];
      PairUsage& u = res.usage[j];
      u.via_blockage =
          blockage_j(j, static_cast<double>(wb_[lo]), z_above);
      for (std::int64_t t = lo; t < hi; ++t) {
        const auto bb = static_cast<std::size_t>(t);
        const DelayPlan& plan = inst_->plan(bb, j);
        const std::int64_t count = inst_->bunch(bb).count;
        u.wires_meeting_delay += count;
        u.wires_total += count;
        u.wire_area += inst_->wire_area(bb, j, count);
        u.repeaters += count * plan.repeaters_per_wire();
        u.repeater_area += static_cast<double>(count) * plan.area_per_wire;
        res.placements.push_back({bb, j, count, count});
      }
      if (j == static_cast<std::size_t>(best.j) && best.w_extra > 0) {
        const auto bb = static_cast<std::size_t>(best.b + best.c);
        const DelayPlan& plan = inst_->plan(bb, j);
        u.wires_meeting_delay += best.w_extra;
        u.wires_total += best.w_extra;
        u.wire_area += inst_->wire_area(bb, j, best.w_extra);
        u.repeaters += best.w_extra * plan.repeaters_per_wire();
        u.repeater_area +=
            static_cast<double>(best.w_extra) * plan.area_per_wire;
        res.placements.push_back({bb, j, best.w_extra, best.w_extra});
      }
      z_above += static_cast<double>(u.repeaters);
    }

    // Suffix loads from the packer, at per-bunch detail.
    const auto detail = free_pack_detailed(
        *inst_, pack_input(static_cast<std::size_t>(best.j), best.b, best.c,
                           node_z, cost, best.w_extra));
    iarank::util::require(detail.has_value(),
                          "dp_rank: winning candidate failed re-packing");
    for (const BunchPlacement& p : *detail) {
      PairUsage& u = res.usage[p.pair];
      u.wires_total += p.wires;
      u.wire_area += inst_->wire_area(p.bunch, p.pair, p.wires);
      res.placements.push_back(p);
    }
    std::sort(res.placements.begin(), res.placements.end(),
              [](const BunchPlacement& a, const BunchPlacement& b) {
                if (a.bunch != b.bunch) return a.bunch < b.bunch;
                return a.pair < b.pair;
              });

    // Recompute blockage uniformly now that every pair's load is known.
    double wires_above_total = 0.0;
    double reps_above_total = 0.0;
    for (std::size_t j = 0; j < m_; ++j) {
      res.usage[j].via_blockage =
          blockage_j(j, wires_above_total, reps_above_total);
      wires_above_total += static_cast<double>(res.usage[j].wires_total);
      reps_above_total += static_cast<double>(res.usage[j].repeaters);
    }
  }

  // --- orchestration -----------------------------------------------------

  static void reset_result(RankResult& out) {
    out.rank = 0;
    out.normalized = 0.0;
    out.all_assigned = false;
    out.prefix_bunches = 0;
    out.refined_wires = 0;
    out.repeater_count = 0;
    out.repeater_area_used = 0.0;
    out.total_wires = 0;
    out.dp = {};
    out.witness.chunk_first.clear();
    out.witness.break_pair = -1;
    out.witness.first_bunch = 0;
    out.witness.chunk_len = 0;
    out.witness.w_extra = 0;
    out.usage.clear();
    out.placements.clear();
  }

  void finish(RankResult& out, const util::Stopwatch& total) {
    stats_.arena_bytes = pool_.bytes_used();
    last_solve_bytes_ = stats_.arena_bytes;
    out.dp = stats_;
    out.dp.seconds = total.seconds();
    publish_stats(out.dp);
    kPoolBytes.set_max(pool_.high_water_bytes());
    const std::int64_t chunks = pool_.chunks_allocated();
    kPoolChunks.inc(chunks - chunks_published_);
    chunks_published_ = chunks;
  }

  void solve(const Instance& inst, const DpOptions& options, RankResult& out) {
    util::Stopwatch total;
    // Full reinit up front (not on exit) so a solve aborted by an
    // exception — e.g. an injected free-pack fault — leaves the kernel
    // reusable.
    inst_ = &inst;
    opt_ = options;
    m_ = inst.pair_count();
    n_bunches_ = static_cast<std::int64_t>(inst.bunch_count());
    wb_ = inst.wires_before_lane();
    pair_capacity_ = inst.pair_capacity();
    atol_ = area_tol();
    budget_plus_tol_ = inst.repeater_budget() + budget_tol();
    vias_per_wire_ = inst.vias().vias_per_wire;
    vias_per_repeater_ = inst.vias().vias_per_repeater;
    stats_ = {};
    warm_bound_ = std::numeric_limits<std::int64_t>::min();
    incumbent_ = std::numeric_limits<std::int64_t>::min();
    pool_.reset();
    attach_lanes();
    heapified_ = false;
    reset_result(out);
    out.total_wires = inst.total_wires();

    // Definition 3 fast path: delay-free packing of the whole WLD is the
    // least constrained assignment (Lemma 1); if it fails, nothing fits.
    if (!free_pack_feasible(inst, FreePackInput{})) {
      finish(out, total);
      return;
    }

    // Establish the warm-start bound before the forward pass so it prunes
    // pushes from the start.
    try_warm_start();

    {
      TRACE_SPAN("dp.forward");
      util::Stopwatch forward;
      forward_pass();
      stats_.forward_seconds = forward.seconds();
    }
    stats_.arena_nodes = static_cast<std::int64_t>(arena_r_.size());

    TRACE_SPAN("dp.search");
    while (!heap_.empty()) {
      if (!heapified_ && stats_.heap_pops >= kScanPops) {
        std::make_heap(heap_.begin(), heap_.end(), HeapCmp{});
        heapified_ = true;
      }
      if (heapified_) {
        std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
      } else {
        // Selection pop: the strict total order has a unique maximum, so
        // swapping it to the back pops the same entry a heap would.
        HeapEntry* best =
            std::max_element(heap_.begin(), heap_.end(), HeapCmp{});
        std::swap(*best, heap_.back());
      }
      const HeapEntry e = heap_.back();
      heap_.pop_back();
      ++stats_.heap_pops;
      if (e.verified) {
        assemble(e, out);
        finish(out, total);
        return;
      }
      ++stats_.verify_calls;
      const auto verified = verify(e);
      if (verified) {
        incumbent_ = std::max(incumbent_, verified->key);
        heap_push(*verified);
      }
      if (e.c > 0) {
        // Retry this state's next-lower break point later.
        const auto j = static_cast<std::size_t>(e.j);
        const double capacity =
            pair_capacity_ -
            blockage_j(j, static_cast<double>(wb_[e.b]),
                       static_cast<double>(
                           arena_z_[static_cast<std::size_t>(e.node)]));
        push_iterator(e.node, j, e.b, e.c - 1, capacity);
      }
    }

    // Not even delay-free assignment exists: Definition 3.
    finish(out, total);
  }
};

DpKernel::DpKernel() : impl_(std::make_unique<Impl>()) {}
DpKernel::~DpKernel() = default;
DpKernel::DpKernel(DpKernel&&) noexcept = default;
DpKernel& DpKernel::operator=(DpKernel&&) noexcept = default;

RankResult DpKernel::solve(const Instance& inst, const DpOptions& options) {
  RankResult out;
  impl_->solve(inst, options, out);
  return out;
}

void DpKernel::solve_into(const Instance& inst, const DpOptions& options,
                          RankResult& out) {
  impl_->solve(inst, options, out);
}

DpKernel::PoolStats DpKernel::pool_stats() const {
  return {impl_->last_solve_bytes_, impl_->pool_.high_water_bytes(),
          impl_->pool_.chunks_allocated()};
}

namespace {

DpKernel& thread_kernel() {
  thread_local DpKernel kernel;
  return kernel;
}

}  // namespace

RankResult dp_rank(const Instance& inst, const DpOptions& options) {
  TRACE_SPAN("dp_rank");
  util::maybe_inject(kSiteDpRank);
  return thread_kernel().solve(inst, options);
}

void dp_rank_into(const Instance& inst, const DpOptions& options,
                  RankResult& out) {
  TRACE_SPAN("dp_rank");
  util::maybe_inject(kSiteDpRank);
  thread_kernel().solve_into(inst, options, out);
}

}  // namespace iarank::core
